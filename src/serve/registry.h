// Versioned model registry with zero-downtime hot swap.
//
// A ModelVersion is one immutable release of surrogate weights: a manifest
// (version number, params path, FNV-1a checksum — tensor/serialize.h) plus
// one ChainNet+Surrogate pair per evaluation slot (EvalService worker).
// The registry loads a new version in the background, verifies the params
// file against the manifest checksum *before* any parameter is parsed, and
// flips an atomic active pointer once every slot's model is fully built —
// so no request can ever observe a half-loaded model.
//
// State machine per version:
//
//   LOADING ──(checksum ok, all slots built)──► ACTIVE
//      │                                          │ next load() flips
//      └──(any failure)──► FAILED                 ▼
//                                              DRAINING ──(last in-flight
//                                              batch drops its ref)──► RETIRED
//
// Draining is reference-counted, not signalled: every evaluation pins the
// active version with a shared_ptr for exactly the duration of its batch,
// so after a flip the old version stays alive until the last in-flight
// batch completes, then frees its weights. stats_json reports the live
// state of every version the registry has seen.
//
// Tape-lifetime contract: model parameters are tensor::Var leaves, which
// live on the *creating thread's* thread_local tape arena (tape.h). A
// version therefore owns a dedicated host thread that builds its models,
// parks until retirement, and destroys them before exiting — the arena's
// lifetime is exactly the version's lifetime, and repeated reloads of a
// long-lived server leak nothing.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/chainnet.h"
#include "core/surrogate.h"
#include "optim/evaluator.h"
#include "runtime/eval_service.h"
#include "support/json.h"
#include "tensor/serialize.h"

namespace chainnet::serve {

/// Snapshot of one version's identity and lifecycle state, as reported by
/// `stats` and the reload response.
struct ModelVersionInfo {
  std::uint32_t version = 0;
  std::uint64_t checksum = 0;
  std::string params_path;
  std::string state;  ///< loading | active | draining | retired | failed
  std::string dtype;  ///< effective numeric tier (manifest or server default)
};

/// One fully-built release of weights: `slots` independent model+surrogate
/// pairs (one per EvalService worker — Surrogates hold mutable inference
/// workspaces and are single-threaded by contract). Immutable once ready;
/// destroyed when the last shared_ptr (registry or in-flight batch) drops.
class ModelVersion {
 public:
  /// Starts the host thread, which builds the models and loads `manifest`'s
  /// params into each. Construction returns immediately; wait_ready()
  /// blocks for the outcome. `plan_cache` (may be null) is installed on
  /// every slot's model: plans are weight-independent, so the registry
  /// passes one cache to every version it ever loads and a hot swap never
  /// recompiles a plan — only a topology change does.
  ModelVersion(tensor::WeightsManifest manifest, core::ChainNetConfig config,
               int slots, std::shared_ptr<gnn::PlanCache> plan_cache = {});
  ~ModelVersion();  // signals retirement, joins the host thread

  ModelVersion(const ModelVersion&) = delete;
  ModelVersion& operator=(const ModelVersion&) = delete;

  /// Blocks until the host thread finished loading; rethrows its error
  /// (tensor::SerializeError on bad weight files). Idempotent.
  void wait_ready() const { ready_.get(); }

  const tensor::WeightsManifest& manifest() const noexcept {
    return manifest_;
  }

  /// The surrogate bound to evaluation slot `slot`. Only valid after
  /// wait_ready(); each slot must be driven by at most one thread at a
  /// time (the EvalService worker owning it).
  const core::Surrogate& surrogate(int slot) const;

 private:
  void host_main();

  tensor::WeightsManifest manifest_;
  core::ChainNetConfig config_;
  int slots_;
  std::shared_ptr<gnn::PlanCache> plan_cache_;

  // Written by the host thread before ready_ resolves; the promise/future
  // pair publishes them to every reader (wait_ready happens-before use).
  std::vector<std::unique_ptr<core::ChainNet>> models_;
  std::vector<std::unique_ptr<core::Surrogate>> surrogates_;

  std::promise<void> ready_promise_;
  mutable std::shared_future<void> ready_;

  std::mutex retire_mutex_;
  std::condition_variable retire_cv_;
  bool retired_ = false;  // GUARDED_BY(retire_mutex_)
  std::thread host_;
};

/// The registry: owns the version history and the atomic active pointer.
/// Thread-safe; loads are serialized, evaluation reads are lock-cheap.
class ModelRegistry {
 public:
  /// `defaults` supplies model shape (hidden/iterations) when a manifest
  /// omits it; `slots` is the number of concurrent evaluation slots every
  /// version must provide (EvalService builds pool-size + 1 evaluators).
  ModelRegistry(core::ChainNetConfig defaults, int slots);

  /// Loads the manifest at `manifest_path`, verifies the params-file
  /// checksum, builds the version on its host thread, and flips it active.
  /// Blocking; concurrent calls are serialized. Throws
  /// tensor::SerializeError on any validation failure — the previously
  /// active version keeps serving untouched.
  ModelVersionInfo load(const std::string& manifest_path);

  /// The active version, pinned: callers hold the returned shared_ptr for
  /// the duration of their batch, which is what makes draining safe.
  /// Null until the first successful load().
  std::shared_ptr<const ModelVersion> active() const;

  /// Identity of the active version ({} when none is loaded yet).
  ModelVersionInfo active_info() const;

  /// Every version ever loaded, oldest first, with live states.
  std::vector<ModelVersionInfo> versions() const;

  /// The `model` section of the server's stats response (includes the
  /// plan-cache counters, which make hot-swap plan survival observable:
  /// `compiles` stays flat across reloads while `hits` keeps growing).
  support::Json stats_json() const;

  int slots() const noexcept { return slots_; }

  /// The registry-lifetime compiled-plan cache shared by every version's
  /// models. Created at construction and immutable thereafter (safe to
  /// read without mutex_); this is what makes plans survive hot swaps.
  const std::shared_ptr<gnn::PlanCache>& plan_cache() const noexcept {
    return plan_cache_;
  }

 private:
  struct Record {
    tensor::WeightsManifest manifest;
    std::string explicit_state;  ///< "loading" / "failed"; else derived
    std::weak_ptr<const ModelVersion> version;
  };

  ModelVersionInfo info_for(const Record& record) const;

  core::ChainNetConfig defaults_;
  int slots_;
  std::shared_ptr<gnn::PlanCache> plan_cache_;  ///< immutable after ctor

  mutable std::mutex mutex_;
  std::shared_ptr<const ModelVersion> active_;  // GUARDED_BY(mutex_)
  std::vector<Record> records_;                 // GUARDED_BY(mutex_)

  std::mutex load_mutex_;  ///< serializes load(); never held with mutex_
};

/// PlacementEvaluator adapter: each evaluation pins the registry's active
/// version and runs on this evaluator's private slot. A batch holds the
/// version for its whole duration — the drain unit of a hot swap.
class RegistryEvaluator final : public optim::PlacementEvaluator {
 public:
  RegistryEvaluator(std::shared_ptr<ModelRegistry> registry, int slot)
      : registry_(std::move(registry)), slot_(slot) {}

  double total_throughput(const edge::EdgeSystem& system,
                          const edge::Placement& placement) override;
  void total_throughput_batch(const edge::EdgeSystem& system,
                              std::span<const edge::Placement> placements,
                              std::span<double> out) override;

  // set_plan_cache deliberately keeps the inherited no-op: the models this
  // adapter evaluates with belong to ModelVersions, which already share the
  // registry's own cache — versions loaded *before* an EvalService existed
  // would never see a service-injected cache, so the registry is the one
  // authoritative owner on the serving path.

 private:
  std::shared_ptr<const ModelVersion> pinned_active() const;

  std::shared_ptr<ModelRegistry> registry_;
  int slot_;
};

/// EvalService factory handing out one RegistryEvaluator per construction,
/// with slots assigned in construction order (EvalService builds evaluators
/// eagerly in worker order, so slot k is worker k). Throws when more
/// evaluators are requested than the registry has slots.
runtime::EvalService::EvaluatorFactory registry_factory(
    std::shared_ptr<ModelRegistry> registry);

}  // namespace chainnet::serve
