#include "serve/router.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>
#include <stdexcept>
#include <utility>

#include "edge/placement.h"
#include "tensor/kernels.h"

namespace chainnet::serve {

using support::Json;

struct Router::Connection {
  int fd = -1;
  bool metrics = false;
  std::atomic<bool> done{false};
  std::thread thread;
};

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

/// Bound on a blocked upstream read: a backend that accepted the request
/// but will never answer (wedged, not dead) must not pin a router reader
/// forever. Generous because a reload round trip builds a model.
constexpr timeval kUpstreamRecvTimeout{30, 0};
constexpr timeval kUpstreamSendTimeout{5, 0};
/// Bound on reading the HTTP request line of a metrics scrape.
constexpr timeval kMetricsRecvTimeout{2, 0};

bool send_all(int fd, const char* data, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

void append_metric(std::string& out, std::string_view name,
                   std::string_view type, std::string_view labels,
                   double value) {
  if (!type.empty()) {
    out.append("# TYPE ").append(name).append(" ").append(type).append("\n");
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  out.append(name);
  if (!labels.empty()) out.append("{").append(labels).append("}");
  out.append(" ").append(buf).append("\n");
}

std::string backend_label(const BackendAddress& addr) {
  return "backend=\"" + addr.label() + "\"";
}

bool response_ok(const Json& doc) {
  return doc.is_object() && doc.has("ok") && doc.at("ok").is_bool() &&
         doc.at("ok").as_bool();
}

}  // namespace

Router::Router(RouterConfig config)
    : config_(std::move(config)),
      ring_(config_.backends.size(),
            std::max(1, config_.vnodes_per_backend)) {
  if (config_.backends.empty()) {
    throw std::runtime_error("Router: at least one backend is required");
  }
  const std::size_t n = config_.backends.size();
  backend_forwards_.reserve(n);
  backend_errors_.reserve(n);
  for (std::size_t b = 0; b < n; ++b) {
    backend_forwards_.push_back(std::make_unique<Counter>());
    backend_errors_.push_back(std::make_unique<Counter>());
  }
  // Optimistic start: every backend is presumed healthy until a probe or a
  // live request says otherwise, so traffic flows before the first tick.
  // LINT:unguarded(constructor — no reader/health thread exists yet)
  healthy_.assign(n, 1);
  backend_stats_.resize(n);  // LINT:unguarded(constructor — no threads yet)
}

Router::~Router() { stop(); }

namespace {

int listen_on(const std::string& host, int port, int& bound_port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("Router: socket");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  const std::string numeric = host == "localhost" ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, numeric.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw std::runtime_error("Router: invalid host '" + host + "'");
  }
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(fd, 64) != 0) {
    const int err = errno;
    ::close(fd);
    errno = err;
    throw_errno("Router: bind/listen on " + numeric + ":" +
                std::to_string(port));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len);
  bound_port = static_cast<int>(ntohs(bound.sin_port));
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  return fd;
}

}  // namespace

void Router::start() {
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    if (started_) throw std::runtime_error("Router: already started");
  }
  listen_fd_ = listen_on(config_.host, config_.port, bound_port_);
  if (config_.metrics_port >= 0) {
    try {
      metrics_fd_ =
          listen_on(config_.host, config_.metrics_port, bound_metrics_port_);
    } catch (...) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      throw;
    }
  }
  if (::pipe(wake_pipe_) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    if (metrics_fd_ >= 0) ::close(metrics_fd_);
    metrics_fd_ = -1;
    errno = err;
    throw_errno("Router: pipe");
  }
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    started_ = true;
  }
  health_thread_ = std::thread([this] { health_loop(); });
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void Router::wait() {
  std::unique_lock<std::mutex> lock(state_mutex_);
  state_cv_.wait(lock, [this] { return shutdown_requested_ || stopped_; });
}

bool Router::wait_for(std::chrono::milliseconds timeout) {
  std::unique_lock<std::mutex> lock(state_mutex_);
  return state_cv_.wait_for(
      lock, timeout, [this] { return shutdown_requested_ || stopped_; });
}

void Router::stop() {
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    const bool was_running = started_ && !stopped_;
    stopped_ = true;
    if (!was_running) {
      state_cv_.notify_all();
      return;
    }
  }
  state_cv_.notify_all();  // wakes wait() and the health thread's timer

  const char wake = 1;
  while (::write(wake_pipe_[1], &wake, 1) < 0 && errno == EINTR) {
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  if (health_thread_.joinable()) health_thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  if (metrics_fd_ >= 0) ::close(metrics_fd_);
  metrics_fd_ = -1;
  ::close(wake_pipe_[0]);
  ::close(wake_pipe_[1]);
  wake_pipe_[0] = wake_pipe_[1] = -1;

  // Half-close client sockets so idle readers see EOF at once. A reader
  // blocked on an upstream round trip finishes within the upstream
  // recv/send timeouts — stop() is graceful, not instantaneous. The lock
  // covers only taking ownership of the list; the shutdowns, joins, and
  // closes run outside it so stop() never blocks with conn_mutex_ held.
  std::vector<std::unique_ptr<Connection>> doomed;
  {
    std::lock_guard<std::mutex> lock(conn_mutex_);
    doomed.swap(connections_);
  }
  for (auto& conn : doomed) {
    if (!conn->done.load(std::memory_order_acquire)) {
      ::shutdown(conn->fd, SHUT_RD);
    }
  }
  for (auto& conn : doomed) {
    if (conn->thread.joinable()) conn->thread.join();
    ::close(conn->fd);
  }
}

void Router::accept_loop() {
  for (;;) {
    pollfd fds[3] = {{wake_pipe_[0], POLLIN, 0},
                     {listen_fd_, POLLIN, 0},
                     {metrics_fd_, POLLIN, 0}};
    // A disabled metrics listener (fd -1) is legal in poll: the slot is
    // simply ignored.
    const int ready = ::poll(fds, 3, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (fds[0].revents != 0) break;  // stop() wrote the wake byte
    for (int which = 1; which <= 2; ++which) {
      if ((fds[which].revents & (POLLIN | POLLERR | POLLHUP)) == 0) continue;
      const int fd = ::accept(fds[which].fd, nullptr, nullptr);
      if (fd < 0) continue;  // raced abort / EAGAIN: poll again
      auto conn = std::make_unique<Connection>();
      conn->fd = fd;
      conn->metrics = which == 2;
      Connection* raw = conn.get();
      std::lock_guard<std::mutex> lock(conn_mutex_);
      reap_finished_connections();
      if (raw->metrics) {
        ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &kMetricsRecvTimeout,
                     sizeof(kMetricsRecvTimeout));
        conn->thread = std::thread([this, raw] { metrics_loop(raw); });
      } else {
        metrics_.connections_accepted.add();
        set_low_latency(fd);
        conn->thread = std::thread([this, raw] { reader_loop(raw); });
      }
      connections_.push_back(std::move(conn));
    }
  }
}

void Router::reap_finished_connections() {
  // LINT:unguarded(caller holds conn_mutex_ — the accept loop reaps while
  // already inside its lock_guard, mirroring serve::Server)
  std::erase_if(connections_, [](const std::unique_ptr<Connection>& conn) {
    if (!conn->done.load(std::memory_order_acquire)) return false;
    if (conn->thread.joinable()) conn->thread.join();
    ::close(conn->fd);
    return true;
  });
}

void Router::reader_loop(Connection* conn) {
  using Clock = std::chrono::steady_clock;
  // Each client connection keeps one lazily-opened socket per backend:
  // requests on one connection are serial, so the sockets are single-owner,
  // and a long-lived client amortizes its connects to zero.
  std::vector<int> upstreams(config_.backends.size(), -1);
  std::string payload;
  std::string frame_error;
  for (;;) {
    const FrameStatus status = read_frame(conn->fd, payload, frame_error);
    if (status == FrameStatus::kClosed) break;
    if (status == FrameStatus::kError) {
      metrics_.parse_errors.add();
      write_frame(conn->fd,
                  error_response(ErrorCode::kParseError, frame_error).dump());
      break;
    }
    const auto start = Clock::now();
    metrics_.requests_total.add();
    std::string response;
    try {
      response = dispatch(payload, upstreams);
    } catch (const std::exception& e) {
      metrics_.bad_requests.add();
      response = error_response(ErrorCode::kInternal, e.what()).dump();
    }
    const bool written = write_frame(conn->fd, response);
    metrics_.route_latency.record(
        std::chrono::duration<double>(Clock::now() - start).count());
    if (!written) break;
  }
  for (int fd : upstreams) {
    if (fd >= 0) ::close(fd);
  }
  conn->done.store(true, std::memory_order_release);
}

std::string Router::dispatch(const std::string& payload,
                             std::vector<int>& upstreams) {
  Json request;
  try {
    request = Json::parse(payload);
  } catch (const support::JsonError& e) {
    metrics_.parse_errors.add();
    return error_response(ErrorCode::kParseError, e.what()).dump();
  }
  if (!request.is_object() || !request.has("type") ||
      !request.at("type").is_string()) {
    metrics_.bad_requests.add();
    return error_response(ErrorCode::kBadRequest,
                          "request must be an object with a \"type\" string")
        .dump();
  }
  const std::string& type = request.at("type").as_string();
  if (type == "ping") return ok_response().dump();
  if (type == "eval") return route_eval(request, payload, upstreams);
  if (type == "stats") {
    Json response = stats_json();
    response["ok"] = Json(true);
    return response.dump();
  }
  if (type == "load_system" || type == "reload") {
    return fanout(payload, upstreams);
  }
  if (type == "shutdown") {
    {
      std::lock_guard<std::mutex> lock(state_mutex_);
      shutdown_requested_ = true;
    }
    state_cv_.notify_all();
    return ok_response().dump();
  }
  metrics_.bad_requests.add();
  return error_response(ErrorCode::kBadRequest,
                        "unknown request type '" + type + "'")
      .dump();
}

std::uint64_t Router::routing_key(const Json& request) const {
  const std::string system = request.get_string("system", "default");
  std::uint64_t key = HashRing::hash_bytes(system);
  if (config_.affinity != RouteAffinity::kPlacement) return key;
  // Best-effort: fold in the first placement's canonical hash so one hot
  // system spreads across backends while identical (system, placement)
  // pairs still co-locate. Anything malformed routes on the system hash
  // alone — the backend owns the authoritative reject.
  try {
    const auto& docs = request.at("placements").as_array();
    if (docs.empty()) return key;
    std::vector<std::vector<int>> assignment;
    for (const auto& row : docs.front().as_array()) {
      std::vector<int> devices;
      for (const auto& dev : row.as_array()) {
        const double v = dev.as_number();
        if (v != std::floor(v) ||
            v < static_cast<double>(std::numeric_limits<int>::min()) ||
            v > static_cast<double>(std::numeric_limits<int>::max())) {
          return key;
        }
        devices.push_back(static_cast<int>(v));
      }
      assignment.push_back(std::move(devices));
    }
    key = HashRing::mix(key,
                        edge::Placement(std::move(assignment)).canonical_hash());
  } catch (const std::exception&) {
    // fall through: system-only key
  }
  return key;
}

std::string Router::route_eval(const Json& request, const std::string& payload,
                               std::vector<int>& upstreams) {
  const std::uint64_t key = routing_key(request);
  const auto order = ring_.sequence(key);
  std::vector<char> healthy = healthy_snapshot();

  std::string response;
  int attempts = 0;
  for (const std::size_t b : order) {
    if (!healthy[b]) continue;
    if (attempts == 1) metrics_.retries.add();
    ++attempts;
    if (backend_roundtrip(b, payload, response, upstreams)) {
      backend_forwards_[b]->add();
      metrics_.evals_routed.add();
      return response;
    }
    backend_errors_[b]->add();
    mark_backend(b, false);
    healthy[b] = 0;
    if (attempts >= 2) break;  // original + one retry, then give up
  }
  metrics_.upstream_failures.add();
  return error_response(
             ErrorCode::kUpstreamFailed,
             attempts == 0
                 ? "no healthy backends"
                 : std::to_string(attempts) + " backend(s) failed mid-request")
      .dump();
}

std::string Router::fanout(const std::string& payload,
                           std::vector<int>& upstreams) {
  metrics_.fanout_requests.add();
  Json results;
  bool all_ok = true;
  for (std::size_t b = 0; b < config_.backends.size(); ++b) {
    Json entry;
    entry["backend"] = Json(config_.backends[b].label());
    std::string response;
    if (backend_roundtrip(b, payload, response, upstreams)) {
      try {
        Json doc = Json::parse(response);
        all_ok = all_ok && response_ok(doc);
        entry["response"] = std::move(doc);
      } catch (const std::exception& e) {
        all_ok = false;
        entry["response"] =
            error_response(ErrorCode::kUpstreamFailed, e.what());
      }
    } else {
      backend_errors_[b]->add();
      mark_backend(b, false);
      all_ok = false;
      entry["response"] = error_response(ErrorCode::kUpstreamFailed,
                                         "backend unreachable");
    }
    results.push_back(std::move(entry));
  }
  Json response = all_ok ? ok_response()
                         : error_response(ErrorCode::kUpstreamFailed,
                                          "one or more backends failed");
  response["results"] = std::move(results);
  return response.dump();
}

int Router::connect_backend(std::size_t b) const {
  const BackendAddress& addr = config_.backends[b];
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(static_cast<std::uint16_t>(addr.port));
  const std::string numeric =
      addr.host == "localhost" ? "127.0.0.1" : addr.host;
  if (::inet_pton(AF_INET, numeric.c_str(), &sa.sin_addr) != 1) {
    ::close(fd);
    return -1;
  }
  // Non-blocking connect bounded by connect_timeout_ms, then back to
  // blocking I/O with send/recv timeouts for the round trips.
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  const int rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&sa),
                           sizeof(sa));
  if (rc != 0) {
    if (errno != EINPROGRESS) {
      ::close(fd);
      return -1;
    }
    pollfd pfd{fd, POLLOUT, 0};
    const int timeout_ms =
        std::max(1, static_cast<int>(config_.connect_timeout_ms));
    if (::poll(&pfd, 1, timeout_ms) <= 0) {
      ::close(fd);
      return -1;
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 || err != 0) {
      ::close(fd);
      return -1;
    }
  }
  ::fcntl(fd, F_SETFL, flags);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &kUpstreamRecvTimeout,
               sizeof(kUpstreamRecvTimeout));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &kUpstreamSendTimeout,
               sizeof(kUpstreamSendTimeout));
  set_low_latency(fd);
  return fd;
}

bool Router::backend_roundtrip(std::size_t b, const std::string& payload,
                               std::string& response,
                               std::vector<int>& upstreams) {
  std::string frame_error;
  for (int attempt = 0; attempt < 2; ++attempt) {
    const bool cached = upstreams[b] >= 0;
    if (!cached) {
      upstreams[b] = connect_backend(b);
      if (upstreams[b] < 0) return false;
    }
    if (write_frame(upstreams[b], payload)) {
      const FrameStatus status =
          read_frame(upstreams[b], response, frame_error);
      if (status == FrameStatus::kOk) return true;
    }
    ::close(upstreams[b]);
    upstreams[b] = -1;
    // A cached socket may simply be stale (backend restarted since the
    // last request): one transparent retry on a fresh connection. A fresh
    // connection failing is a real backend failure.
    if (!cached) return false;
  }
  return false;
}

void Router::mark_backend(std::size_t b, bool healthy_now) {
  std::lock_guard<std::mutex> lock(health_mutex_);
  const bool was = healthy_[b] != 0;
  if (was == healthy_now) return;
  healthy_[b] = healthy_now ? 1 : 0;
  if (healthy_now) {
    metrics_.reinstatements.add();
  } else {
    metrics_.ejections.add();
  }
}

void Router::set_backend_stats(std::size_t b, Json stats) {
  std::lock_guard<std::mutex> lock(health_mutex_);
  backend_stats_[b] = std::move(stats);
}

std::vector<char> Router::healthy_snapshot() const {
  std::lock_guard<std::mutex> lock(health_mutex_);
  return healthy_;
}

void Router::health_loop() {
  const auto interval = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::duration<double, std::milli>(
          std::max(1.0, config_.health_interval_ms)));
  const std::string probe = [] {
    Json request;
    request["type"] = Json("stats");
    return request.dump();
  }();
  for (;;) {
    for (std::size_t b = 0; b < config_.backends.size(); ++b) {
      // Fresh connection per probe: the probe then validates the full
      // accept -> serve path, not just an already-open socket.
      const int fd = connect_backend(b);
      bool alive = false;
      if (fd >= 0) {
        std::string response;
        std::string frame_error;
        if (write_frame(fd, probe) &&
            read_frame(fd, response, frame_error) == FrameStatus::kOk) {
          try {
            Json doc = Json::parse(response);
            if (response_ok(doc)) {
              alive = true;
              set_backend_stats(b, std::move(doc));
            }
          } catch (const std::exception&) {
            // Unparseable stats: treat the backend as down.
          }
        }
        ::close(fd);
      }
      mark_backend(b, alive);
    }
    std::unique_lock<std::mutex> lock(state_mutex_);
    if (state_cv_.wait_for(lock, interval, [this] { return stopped_; })) {
      return;
    }
  }
}

Json Router::stats_json() const {
  Json doc;
  const auto count = [](const Counter& c) {
    return Json(static_cast<double>(c.value()));
  };
  doc["connections_accepted"] = count(metrics_.connections_accepted);
  doc["requests"] = count(metrics_.requests_total);
  doc["evals_routed"] = count(metrics_.evals_routed);
  doc["retries"] = count(metrics_.retries);
  doc["upstream_failures"] = count(metrics_.upstream_failures);
  doc["fanout_requests"] = count(metrics_.fanout_requests);
  doc["parse_errors"] = count(metrics_.parse_errors);
  doc["bad_requests"] = count(metrics_.bad_requests);
  doc["ejections"] = count(metrics_.ejections);
  doc["reinstatements"] = count(metrics_.reinstatements);
  doc["metrics_scrapes"] = count(metrics_.metrics_scrapes);

  const auto latency = metrics_.route_latency.snapshot();
  Json lat;
  lat["count"] = Json(static_cast<double>(latency.total));
  lat["mean_s"] = Json(latency.mean());
  lat["p50_s"] = Json(latency.quantile(0.50));
  lat["p95_s"] = Json(latency.quantile(0.95));
  lat["p99_s"] = Json(latency.quantile(0.99));
  doc["route_latency"] = std::move(lat);

  std::vector<char> healthy;
  std::vector<Json> cached;
  {
    std::lock_guard<std::mutex> lock(health_mutex_);
    healthy = healthy_;
    cached = backend_stats_;
  }
  Json backends;
  const std::string probe = [] {
    Json request;
    request["type"] = Json("stats");
    return request.dump();
  }();
  for (std::size_t b = 0; b < config_.backends.size(); ++b) {
    Json entry;
    entry["address"] = Json(config_.backends[b].label());
    entry["healthy"] = Json(healthy[b] != 0);
    entry["forwarded"] = count(*backend_forwards_[b]);
    entry["errors"] = count(*backend_errors_[b]);
    // Live snapshot when reachable so a stats caller (the reload test, an
    // operator) sees the backend's *current* model section; the cached
    // health-probe snapshot is the fallback.
    Json stats = cached[b];
    if (healthy[b]) {
      const int fd = connect_backend(b);
      if (fd >= 0) {
        std::string response;
        std::string frame_error;
        if (write_frame(fd, probe) &&
            read_frame(fd, response, frame_error) == FrameStatus::kOk) {
          try {
            stats = Json::parse(response);
          } catch (const std::exception&) {
          }
        }
        ::close(fd);
      }
    }
    if (!stats.is_null()) entry["stats"] = std::move(stats);
    backends.push_back(std::move(entry));
  }
  doc["backends"] = std::move(backends);
  return doc;
}

std::string Router::prometheus_text() const {
  std::string out;
  out.reserve(4096);
  const auto v = [](const Counter& c) {
    return static_cast<double>(c.value());
  };
  // Build-info style gauge: the runtime-resolved kernel ISA tier of this
  // router process, as labels on a constant-1 metric (Prometheus idiom for
  // exposing strings).
  append_metric(out, "chainnet_router_build_info", "gauge",
                std::string("kernel_isa=\"") + tensor::kernels::isa() + "\"",
                1.0);
  append_metric(out, "chainnet_router_requests_total", "counter", "",
                v(metrics_.requests_total));
  append_metric(out, "chainnet_router_evals_routed_total", "counter", "",
                v(metrics_.evals_routed));
  append_metric(out, "chainnet_router_retries_total", "counter", "",
                v(metrics_.retries));
  append_metric(out, "chainnet_router_upstream_failures_total", "counter", "",
                v(metrics_.upstream_failures));
  append_metric(out, "chainnet_router_parse_errors_total", "counter", "",
                v(metrics_.parse_errors));
  append_metric(out, "chainnet_router_bad_requests_total", "counter", "",
                v(metrics_.bad_requests));
  append_metric(out, "chainnet_router_ejections_total", "counter", "",
                v(metrics_.ejections));
  append_metric(out, "chainnet_router_reinstatements_total", "counter", "",
                v(metrics_.reinstatements));
  append_metric(out, "chainnet_router_metrics_scrapes_total", "counter", "",
                v(metrics_.metrics_scrapes));

  const auto latency = metrics_.route_latency.snapshot();
  out.append("# TYPE chainnet_router_latency_seconds summary\n");
  append_metric(out, "chainnet_router_latency_seconds", "",
                "quantile=\"0.5\"", latency.quantile(0.50));
  append_metric(out, "chainnet_router_latency_seconds", "",
                "quantile=\"0.95\"", latency.quantile(0.95));
  append_metric(out, "chainnet_router_latency_seconds", "",
                "quantile=\"0.99\"", latency.quantile(0.99));
  append_metric(out, "chainnet_router_latency_seconds_sum", "", "",
                latency.sum);
  append_metric(out, "chainnet_router_latency_seconds_count", "", "",
                static_cast<double>(latency.total));

  std::vector<char> healthy;
  std::vector<Json> cached;
  {
    std::lock_guard<std::mutex> lock(health_mutex_);
    healthy = healthy_;
    cached = backend_stats_;
  }
  out.append("# TYPE chainnet_router_backend_up gauge\n");
  for (std::size_t b = 0; b < config_.backends.size(); ++b) {
    append_metric(out, "chainnet_router_backend_up", "",
                  backend_label(config_.backends[b]), healthy[b] ? 1.0 : 0.0);
  }
  out.append("# TYPE chainnet_router_backend_forwarded_total counter\n");
  for (std::size_t b = 0; b < config_.backends.size(); ++b) {
    append_metric(out, "chainnet_router_backend_forwarded_total", "",
                  backend_label(config_.backends[b]),
                  v(*backend_forwards_[b]));
  }
  out.append("# TYPE chainnet_router_backend_errors_total counter\n");
  for (std::size_t b = 0; b < config_.backends.size(); ++b) {
    append_metric(out, "chainnet_router_backend_errors_total", "",
                  backend_label(config_.backends[b]), v(*backend_errors_[b]));
  }
  // Backend-reported counters, aggregated from the health probes' cached
  // stats snapshots (absent until the first successful probe).
  struct Field {
    const char* metric;
    const char* type;
    const char* key;
  };
  static constexpr Field kFields[] = {
      {"chainnet_backend_requests_total", "counter", "requests"},
      {"chainnet_backend_placements_evaluated_total", "counter",
       "placements_evaluated"},
      {"chainnet_backend_batches_total", "counter", "batches"},
      {"chainnet_backend_rejects_overload_total", "counter",
       "rejects_overload"},
      {"chainnet_backend_deadline_drops_total", "counter", "deadline_drops"},
      {"chainnet_backend_queue_depth", "gauge", "queue_depth"},
  };
  for (const Field& field : kFields) {
    bool typed = false;
    for (std::size_t b = 0; b < config_.backends.size(); ++b) {
      if (cached[b].is_null() || !cached[b].has(field.key)) continue;
      if (!typed) {
        out.append("# TYPE ").append(field.metric).append(" ").append(
            field.type);
        out.append("\n");
        typed = true;
      }
      append_metric(out, field.metric, "",
                    backend_label(config_.backends[b]),
                    cached[b].get_number(field.key, 0.0));
    }
  }
  return out;
}

void Router::metrics_loop(Connection* conn) {
  // Best-effort HTTP: read whatever request bytes arrive (bounded by the
  // recv timeout), answer one exposition, close. Every scraper speaks this.
  char buf[1024];
  while (::recv(conn->fd, buf, sizeof(buf), 0) < 0 && errno == EINTR) {
  }
  metrics_.metrics_scrapes.add();
  const std::string body = prometheus_text();
  std::string response;
  response.reserve(body.size() + 160);
  response.append("HTTP/1.0 200 OK\r\n");
  response.append(
      "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n");
  response.append("Content-Length: " + std::to_string(body.size()) + "\r\n");
  response.append("Connection: close\r\n\r\n");
  response.append(body);
  send_all(conn->fd, response.data(), response.size());
  // Deliver EOF now: scrapers read until close, and the fd itself is only
  // reclaimed at the next accept-loop reap, which may be much later.
  ::shutdown(conn->fd, SHUT_RDWR);
  conn->done.store(true, std::memory_order_release);
}

}  // namespace chainnet::serve
