// Consistent-hash ring for the scale-out router: maps a request's routing
// key to one of N backends such that (a) load spreads evenly — each backend
// appears at `vnodes_per_backend` pseudo-random points on a 64-bit ring, so
// the max/min shard-load ratio stays small — and (b) membership changes
// move few keys: ejecting one backend remaps only the keys that hashed to
// it (~1/N of the keyspace), because every other key's first healthy
// backend in ring-walk order is unchanged.
//
// The ring itself is immutable after construction (membership is the
// configured backend list); liveness is applied at lookup time via a
// healthy mask. That split keeps this class a pure, lock-free data
// structure — the router owns the mask under its own mutex — and makes the
// remap property exact rather than approximate: a backend flapping
// unhealthy/healthy returns exactly its original keys.
//
// Determinism: vnode points derive from splitmix64(backend, vnode) only, so
// every router replica built from the same backend list routes identically
// (no cross-process coordination needed).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

namespace chainnet::serve {

class HashRing {
 public:
  /// A ring over backends [0, backends). vnodes_per_backend trades lookup
  /// table size for balance; 128 keeps the max/min shard ratio under ~2.8
  /// for up to 16 backends (pinned by consistent_hash_test).
  explicit HashRing(std::size_t backends, int vnodes_per_backend = 128);

  std::size_t backends() const noexcept { return backends_; }

  /// The backend owning `key`: the first vnode at or after the key's ring
  /// position (wrapping).
  std::size_t pick(std::uint64_t key) const noexcept;

  /// All backends in ring-walk order from the key's position, each listed
  /// once: element 0 is pick(key); the rest is the failover order.
  std::vector<std::size_t> sequence(std::uint64_t key) const;

  /// First backend in walk order whose healthy flag is set; nullopt when
  /// every backend is down. healthy.size() must equal backends().
  std::optional<std::size_t> pick_healthy(
      std::uint64_t key, const std::vector<char>& healthy) const;

  /// FNV-1a over a byte string — the routing-key hash for system names.
  static std::uint64_t hash_bytes(std::string_view bytes) noexcept;

  /// Order-dependent combination of two 64-bit hashes (boost-style mix),
  /// used to fold a placement's canonical hash into the system key.
  static std::uint64_t mix(std::uint64_t a, std::uint64_t b) noexcept;

 private:
  struct VNode {
    std::uint64_t point;
    std::uint32_t backend;
  };

  std::size_t backends_;
  std::vector<VNode> ring_;  ///< sorted by point; immutable after build
};

}  // namespace chainnet::serve
