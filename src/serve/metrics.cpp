// LINT:counters — histogram buckets and totals are monotonic statistics;
// relaxed increments are the whole point of this file (see metrics.h).
#include "serve/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace chainnet::serve {

LatencyHistogram::LatencyHistogram(double min_value, double growth,
                                   int buckets)
    : min_value_(min_value),
      inv_log_growth_(1.0 / std::log(growth)),
      upper_edges_(static_cast<std::size_t>(std::max(2, buckets))),
      counts_(upper_edges_.size()) {
  double edge = min_value_;
  for (std::size_t i = 0; i + 1 < upper_edges_.size(); ++i) {
    upper_edges_[i] = edge;
    edge *= growth;
  }
  upper_edges_.back() = std::numeric_limits<double>::infinity();
}

int LatencyHistogram::bucket_for(double value) const noexcept {
  if (!(value > min_value_)) return 0;  // also catches NaN / negatives
  const int i =
      1 + static_cast<int>(std::log(value / min_value_) * inv_log_growth_);
  return std::min(i, static_cast<int>(counts_.size()) - 1);
}

void LatencyHistogram::record(double value) noexcept {
  counts_[static_cast<std::size_t>(bucket_for(value))].fetch_add(
      1, std::memory_order_relaxed);
  total_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(std::isfinite(value) ? value : 0.0,
                 std::memory_order_relaxed);
}

LatencyHistogram::Snapshot LatencyHistogram::snapshot() const {
  Snapshot snap;
  snap.counts.reserve(counts_.size());
  for (const auto& c : counts_) {
    snap.counts.push_back(c.load(std::memory_order_relaxed));
  }
  snap.upper_edges = upper_edges_;
  snap.total = total_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  return snap;
}

double LatencyHistogram::Snapshot::quantile(double q) const {
  if (total == 0) return 0.0;
  const double rank = std::clamp(q, 0.0, 1.0) * static_cast<double>(total);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    cumulative += counts[i];
    if (static_cast<double>(cumulative) >= rank && cumulative > 0) {
      // The overflow bucket has no finite edge; report the last finite one.
      return std::isinf(upper_edges[i]) ? upper_edges[i - 1] : upper_edges[i];
    }
  }
  return upper_edges[upper_edges.size() - 2];
}

SizeHistogram::SizeHistogram(std::size_t max_size)
    : counts_(std::max<std::size_t>(max_size, 1) + 1) {}

void SizeHistogram::record(std::size_t size) noexcept {
  counts_[std::min(size, counts_.size() - 1)].fetch_add(
      1, std::memory_order_relaxed);
  total_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<std::uint64_t> SizeHistogram::snapshot() const {
  std::vector<std::uint64_t> out;
  out.reserve(counts_.size());
  for (const auto& c : counts_) {
    out.push_back(c.load(std::memory_order_relaxed));
  }
  return out;
}

}  // namespace chainnet::serve
