// TCP serving front end for the concurrent evaluation runtime: an accept
// loop plus one reader thread per connection speak the length-prefixed JSON
// protocol of serve/protocol.h; eval requests are microbatched across
// connections into EvalService::evaluate_batch by a dedicated flusher
// thread (flush when max_batch placements pend or the oldest has waited
// flush_window_ms). Admission control bounds the pending queue — a full
// queue fast-rejects with a typed "overloaded" error — and per-request
// deadlines drop expired work *before* it reaches an evaluator. stop()
// shuts down gracefully: stop accepting, drain the pending queue, answer
// every in-flight request, then join the readers.
//
// Threading map (all TSan-clean):
//   accept thread  -> spawns/reaps reader threads
//   reader threads -> parse requests, enqueue eval items, wait on the
//                     request future, write the response (a connection's
//                     requests are served in order; concurrency comes from
//                     multiple connections)
//   flusher thread -> forms batches, calls EvalService, fulfills promises
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "edge/model.h"
#include "edge/placement.h"
#include "runtime/eval_cache.h"
#include "runtime/eval_service.h"
#include "serve/metrics.h"
#include "serve/protocol.h"
#include "tensor/dtype.h"

namespace chainnet::serve {

class ModelRegistry;

struct ServerConfig {
  std::string host = "127.0.0.1";
  int port = 0;  ///< 0 binds an ephemeral port; see Server::port()
  /// Flush a batch as soon as this many placements pend.
  int max_batch = 32;
  /// ... or once the oldest pending placement has waited this long.
  double flush_window_ms = 0.5;
  /// Admission bound: placements pending beyond this are fast-rejected.
  std::size_t max_pending = 1024;
  /// Optional: the cache the evaluators share, so `stats` can report the
  /// hit rate. The server never touches it beyond reading stats().
  std::shared_ptr<runtime::EvalCache> cache;
  /// Optional: the versioned model registry behind the evaluators. Enables
  /// the `reload` request (zero-downtime hot swap) and the `model` section
  /// of `stats`. The server must have been built with registry_factory
  /// evaluators for a reload to take effect.
  std::shared_ptr<ModelRegistry> registry;
  /// Numeric tier the server's evaluators run at, reported in the `runtime`
  /// section of `stats` alongside the dispatched kernel ISA. Informational
  /// only (the evaluators were already built at their tier); registry-backed
  /// servers additionally report the per-version tier under `model`.
  tensor::DType dtype = tensor::DType::kF64;
};

class Server {
 public:
  /// The service (and its pool) must outlive the server.
  explicit Server(runtime::EvalService& service, ServerConfig config = {});
  ~Server();  // stop()

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Registers a system under `name`; eval requests reference it by name.
  /// Thread-safe (the load_system request uses it live). Re-registering a
  /// name throws — requests may still hold the old pointer.
  void add_system(std::string name, edge::EdgeSystem system);

  /// Binds, listens, and starts the accept + flusher threads. Throws
  /// std::runtime_error when the socket cannot be bound.
  void start();

  /// The actually-bound port (resolves port 0). Valid after start().
  int port() const noexcept { return bound_port_; }

  /// Blocks until a client sends {"type":"shutdown"} or stop() is called.
  /// wait_for returns true under the same conditions, false on timeout —
  /// a poll-friendly variant for callers that also watch signals.
  void wait();
  bool wait_for(std::chrono::milliseconds timeout);

  /// Graceful shutdown: stop accepting, drain pending evaluations (every
  /// admitted request is answered), join all threads. Idempotent.
  void stop();

  const ServerMetrics& metrics() const noexcept { return metrics_; }

  /// The `stats` response body (also handed out over the wire).
  support::Json stats_json() const;

 private:
  struct RequestState;
  struct PendingItem;
  struct Connection;
  using Clock = std::chrono::steady_clock;

  void accept_loop();
  void reader_loop(Connection* conn);
  void flusher_loop();
  void reap_finished_connections();  // conn_mutex_ held

  support::Json dispatch(const std::string& payload);
  support::Json handle_eval(const support::Json& request);
  support::Json handle_reload(const support::Json& request);
  const edge::EdgeSystem* find_system(const std::string& name) const;

  runtime::EvalService& service_;
  ServerConfig config_;
  std::chrono::nanoseconds flush_window_;

  // Registry of named systems; pointers are stable (never erased).
  mutable std::mutex systems_mutex_;
  std::map<std::string, std::unique_ptr<edge::EdgeSystem>>
      systems_;  // GUARDED_BY(systems_mutex_)

  // Microbatcher state (mutable: stats_json reads the depth under lock).
  mutable std::mutex batch_mutex_;
  std::condition_variable batch_cv_;
  std::deque<PendingItem> pending_;  // GUARDED_BY(batch_mutex_)
  bool draining_ = false;            // GUARDED_BY(batch_mutex_)

  // Lifecycle.
  std::mutex state_mutex_;
  std::condition_variable state_cv_;
  bool started_ = false;             // GUARDED_BY(state_mutex_)
  bool stopped_ = false;             // GUARDED_BY(state_mutex_)
  bool shutdown_requested_ = false;  // GUARDED_BY(state_mutex_)

  int listen_fd_ = -1;
  // Self-pipe that stop() writes to so the accept loop's poll() wakes
  // portably (shutdown() on a listening socket is Linux-specific).
  int wake_pipe_[2] = {-1, -1};
  int bound_port_ = 0;
  std::thread accept_thread_;
  std::thread flusher_thread_;

  std::mutex conn_mutex_;
  std::vector<std::unique_ptr<Connection>>
      connections_;  // GUARDED_BY(conn_mutex_)

  ServerMetrics metrics_;
};

}  // namespace chainnet::serve
