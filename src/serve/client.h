// Blocking client for the serving protocol: one TCP connection, one
// request in flight at a time (issue concurrent requests from separate
// Client instances — the server batches across connections). Typed server
// failures ("overloaded", "deadline_exceeded", ...) surface as ServeError;
// transport failures as std::runtime_error.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "edge/model.h"
#include "edge/placement.h"
#include "serve/protocol.h"
#include "support/json.h"

namespace chainnet::serve {

class Client {
 public:
  /// Connects immediately; throws std::runtime_error on failure.
  Client(const std::string& host, int port);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Sends one request document and returns the server's response. Throws
  /// ServeError when the response is {"ok":false}, std::runtime_error on
  /// transport failure. The raw escape hatch the typed helpers build on.
  support::Json call(const support::Json& request);

  /// Scores placements against the named system; out[i] matches
  /// placements[i]. deadline_ms <= 0 means no deadline.
  std::vector<double> evaluate(std::span<const edge::Placement> placements,
                               const std::string& system = "default",
                               double deadline_ms = 0.0);
  double evaluate_one(const edge::Placement& placement,
                      const std::string& system = "default",
                      double deadline_ms = 0.0);

  /// Registers a system on the server under `name`.
  void load_system(const std::string& name, const edge::EdgeSystem& system);

  support::Json stats();
  void ping();
  /// Asks the server to shut down (its owner observes this via wait()).
  void request_shutdown();

 private:
  int fd_ = -1;
};

/// The eval request document `evaluate` sends — exposed so tests and the
/// CLI can build identical requests.
support::Json make_eval_request(std::span<const edge::Placement> placements,
                                const std::string& system,
                                double deadline_ms);

}  // namespace chainnet::serve
