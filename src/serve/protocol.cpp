#include "serve/protocol.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>

#include <cerrno>
#include <cstring>

namespace chainnet::serve {

namespace {

struct CodeName {
  ErrorCode code;
  std::string_view name;
};

constexpr CodeName kCodeNames[] = {
    {ErrorCode::kParseError, "parse_error"},
    {ErrorCode::kBadRequest, "bad_request"},
    {ErrorCode::kUnknownSystem, "unknown_system"},
    {ErrorCode::kOverloaded, "overloaded"},
    {ErrorCode::kDeadlineExceeded, "deadline_exceeded"},
    {ErrorCode::kShuttingDown, "shutting_down"},
    {ErrorCode::kInternal, "internal"},
    {ErrorCode::kUpstreamFailed, "upstream_failed"},
};

/// send() with MSG_NOSIGNAL so a vanished peer surfaces as EPIPE, not a
/// process-killing signal; loops over EINTR and short writes.
bool send_all(int fd, const char* data, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

/// Returns bytes read (== size), 0 on EOF at the first byte, -1 on error
/// or EOF mid-buffer.
int recv_all(int fd, char* data, std::size_t size) {
  std::size_t got = 0;
  while (got < size) {
    const ssize_t n = ::recv(fd, data + got, size - got, 0);
    if (n == 0) return got == 0 ? 0 : -1;  // clean close vs truncation
    if (n < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    got += static_cast<std::size_t>(n);
  }
  return static_cast<int>(size);
}

}  // namespace

void set_low_latency(int fd) noexcept {
  const int one = 1;
  // Fails with ENOTSUP/EOPNOTSUPP on non-TCP sockets; deliberately ignored.
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

std::string_view error_code_name(ErrorCode code) noexcept {
  for (const auto& entry : kCodeNames) {
    if (entry.code == code) return entry.name;
  }
  return "internal";
}

std::optional<ErrorCode> error_code_from_name(
    std::string_view name) noexcept {
  for (const auto& entry : kCodeNames) {
    if (entry.name == name) return entry.code;
  }
  return std::nullopt;
}

bool write_frame(int fd, std::string_view payload) {
  if (payload.size() > kMaxFramePayload) return false;
  const auto size = static_cast<std::uint32_t>(payload.size());
  // Prefix and payload go out as one buffer: a separate 4-byte send would
  // interact with Nagle + delayed ACK on TCP and stall each request-reply
  // round trip by tens of milliseconds.
  std::string frame;
  frame.reserve(sizeof(std::uint32_t) + payload.size());
  frame.push_back(static_cast<char>((size >> 24) & 0xff));
  frame.push_back(static_cast<char>((size >> 16) & 0xff));
  frame.push_back(static_cast<char>((size >> 8) & 0xff));
  frame.push_back(static_cast<char>(size & 0xff));
  frame.append(payload);
  return send_all(fd, frame.data(), frame.size());
}

FrameStatus read_frame(int fd, std::string& payload, std::string& error) {
  char prefix[4];
  const int head = recv_all(fd, prefix, sizeof(prefix));
  if (head == 0) return FrameStatus::kClosed;
  if (head < 0) {
    error = "truncated length prefix";
    return FrameStatus::kError;
  }
  const std::uint32_t size =
      (static_cast<std::uint32_t>(static_cast<unsigned char>(prefix[0]))
       << 24) |
      (static_cast<std::uint32_t>(static_cast<unsigned char>(prefix[1]))
       << 16) |
      (static_cast<std::uint32_t>(static_cast<unsigned char>(prefix[2]))
       << 8) |
      static_cast<std::uint32_t>(static_cast<unsigned char>(prefix[3]));
  if (size > kMaxFramePayload) {
    error = "frame payload of " + std::to_string(size) +
            " bytes exceeds the " + std::to_string(kMaxFramePayload) +
            " byte limit";
    return FrameStatus::kError;
  }
  payload.resize(size);
  if (size > 0 && recv_all(fd, payload.data(), size) < 0) {
    error = "connection closed mid-frame";
    return FrameStatus::kError;
  }
  return FrameStatus::kOk;
}

support::Json ok_response() {
  support::Json response;
  response["ok"] = support::Json(true);
  return response;
}

support::Json error_response(ErrorCode code, const std::string& message) {
  support::Json detail;
  detail["code"] = support::Json(std::string(error_code_name(code)));
  detail["message"] = support::Json(message);
  support::Json response;
  response["ok"] = support::Json(false);
  response["error"] = std::move(detail);
  return response;
}

}  // namespace chainnet::serve
