// Scale-out front end: a router that speaks the same length-prefixed JSON
// protocol as serve::Server and consistent-hashes every eval request across
// N backend servers.
//
//   clients ──tcp──► Router ──tcp──► backend 0 (serve::Server)
//                      │    └──tcp──► backend 1
//                      │        ...
//                      ├─ health thread: stats-probe every backend on a
//                      │  timer; probe failure ejects a backend from the
//                      │  healthy mask, the next success reinstates it
//                      └─ metrics listener: GET anything -> Prometheus
//                         plain-text exposition of router + backend counters
//
// Routing policy: the key is the FNV-1a hash of the eval's system name
// (RouteAffinity::kSystem, the default) so all requests for one system land
// on one backend — that keeps each backend's EvalCache and graph-build
// workspaces hot for the systems it owns. kPlacement additionally folds the
// first placement's canonical_hash into the key: identical (system,
// placement) pairs still co-locate (cache hits survive) while distinct
// placements of a single hot system spread across all backends. Requests a
// router cannot attribute (malformed placements, absent system field) route
// on what is parseable; the backend owns rejecting them.
//
// Failure handling: a backend that fails mid-request (connect, write, or
// read) is ejected and the request is retried ONCE on the next healthy
// backend in ring-walk order; a second failure answers the client with the
// typed "upstream_failed" error. Non-eval requests fan out: "load_system"
// and "reload" go to every backend, "stats" merges the router's own
// counters with a live per-backend snapshot.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/hash_ring.h"
#include "serve/metrics.h"
#include "serve/protocol.h"
#include "support/json.h"

namespace chainnet::serve {

/// One backend address in the router's static membership list.
struct BackendAddress {
  std::string host;
  int port = 0;

  std::string label() const { return host + ":" + std::to_string(port); }
};

/// What the routing key is built from; see the header comment.
enum class RouteAffinity {
  kSystem,     ///< system name only: one system -> one backend
  kPlacement,  ///< system name + first placement hash: spreads hot systems
};

struct RouterConfig {
  std::string host = "127.0.0.1";
  int port = 0;          ///< 0 binds an ephemeral port; see Router::port()
  int metrics_port = 0;  ///< Prometheus listener; -1 disables it entirely
  std::vector<BackendAddress> backends;
  int vnodes_per_backend = 128;
  RouteAffinity affinity = RouteAffinity::kSystem;
  /// Health-probe period. Each tick sends `stats` to every backend; the
  /// response doubles as the cached counter snapshot for /metrics.
  double health_interval_ms = 200.0;
  /// Per-attempt bound on connecting to a backend.
  double connect_timeout_ms = 1000.0;
};

/// Router-side counters (the backends keep their own; ServerMetrics).
/// LINT:counters — Counter is the relaxed-atomic type from metrics.h.
struct RouterMetrics {
  Counter connections_accepted;
  Counter requests_total;      ///< every decoded frame, any type
  Counter evals_routed;        ///< eval requests answered by a backend
  Counter retries;             ///< evals re-routed after a backend failure
  Counter upstream_failures;   ///< evals answered with upstream_failed
  Counter fanout_requests;     ///< load_system / reload broadcasts
  Counter parse_errors;
  Counter bad_requests;
  Counter ejections;           ///< healthy -> unhealthy transitions
  Counter reinstatements;      ///< unhealthy -> healthy transitions
  Counter metrics_scrapes;
  LatencyHistogram route_latency;  ///< frame decoded -> response written
};

class Router {
 public:
  explicit Router(RouterConfig config);
  ~Router();  // stop()

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// Binds the client and metrics listeners and starts the accept + health
  /// threads. Backends do not need to be up yet — the health thread
  /// admits them as they appear. Throws std::runtime_error on bind failure.
  void start();

  /// Actually-bound ports (resolve port 0). Valid after start();
  /// metrics_port() is -1 when the metrics listener is disabled.
  int port() const noexcept { return bound_port_; }
  int metrics_port() const noexcept { return bound_metrics_port_; }

  /// Blocks until a client sends {"type":"shutdown"} or stop() is called;
  /// wait_for is the poll-friendly variant (true = shutdown, false =
  /// timeout).
  void wait();
  bool wait_for(std::chrono::milliseconds timeout);

  /// Stops accepting, joins every thread, closes every socket. Idempotent.
  /// Backends are left running — the router does not own them.
  void stop();

  const RouterMetrics& metrics() const noexcept { return metrics_; }

  /// Healthy flags by backend index, as the health thread last saw them.
  std::vector<char> healthy_snapshot() const;

  /// The `stats` response body: router counters, per-backend health and a
  /// live (best-effort) stats snapshot from each healthy backend.
  support::Json stats_json() const;

  /// The Prometheus text exposition served on the metrics port.
  std::string prometheus_text() const;

 private:
  struct Connection;

  void accept_loop();
  void reader_loop(Connection* conn);
  void metrics_loop(Connection* conn);
  void health_loop();
  void reap_finished_connections();  // conn_mutex_ held

  // These return the serialized response payload: a routed eval relays the
  // backend's bytes verbatim instead of re-parsing and re-dumping them.
  std::string dispatch(const std::string& payload,
                       std::vector<int>& upstreams);
  std::string route_eval(const support::Json& request,
                         const std::string& payload,
                         std::vector<int>& upstreams);
  std::string fanout(const std::string& payload, std::vector<int>& upstreams);

  /// The consistent-hash key of an eval request (affinity-dependent).
  std::uint64_t routing_key(const support::Json& request) const;

  /// One request/response round trip against backend `b`, using (and
  /// maintaining) the caller's cached connection. A stale cached socket
  /// gets one transparent fresh-connect retry; returns false only when the
  /// backend is genuinely unreachable or misbehaving.
  bool backend_roundtrip(std::size_t b, const std::string& payload,
                         std::string& response, std::vector<int>& upstreams);
  int connect_backend(std::size_t b) const;

  void mark_backend(std::size_t b, bool healthy_now);
  void set_backend_stats(std::size_t b, support::Json stats);

  RouterConfig config_;
  HashRing ring_;
  RouterMetrics metrics_;
  std::vector<std::unique_ptr<Counter>> backend_forwards_;
  std::vector<std::unique_ptr<Counter>> backend_errors_;

  // Health state: written by the health thread and by readers observing a
  // mid-request failure; read on every routing decision.
  mutable std::mutex health_mutex_;
  std::vector<char> healthy_;                  // GUARDED_BY(health_mutex_)
  std::vector<support::Json> backend_stats_;   // GUARDED_BY(health_mutex_)

  // Lifecycle (mirrors serve::Server).
  std::mutex state_mutex_;
  std::condition_variable state_cv_;
  bool started_ = false;             // GUARDED_BY(state_mutex_)
  bool stopped_ = false;             // GUARDED_BY(state_mutex_)
  bool shutdown_requested_ = false;  // GUARDED_BY(state_mutex_)

  int listen_fd_ = -1;
  int metrics_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  int bound_port_ = 0;
  int bound_metrics_port_ = -1;
  std::thread accept_thread_;
  std::thread health_thread_;

  mutable std::mutex conn_mutex_;
  std::vector<std::unique_ptr<Connection>>
      connections_;  // GUARDED_BY(conn_mutex_)
};

}  // namespace chainnet::serve
