#include "serve/hash_ring.h"

#include <algorithm>

namespace chainnet::serve {

namespace {

/// splitmix64: a full-period 64-bit mixer with excellent avalanche — every
/// (backend, vnode) pair lands at an independent-looking ring point.
std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

HashRing::HashRing(std::size_t backends, int vnodes_per_backend)
    : backends_(backends) {
  const int vnodes = std::max(1, vnodes_per_backend);
  ring_.reserve(backends * static_cast<std::size_t>(vnodes));
  for (std::size_t b = 0; b < backends; ++b) {
    for (int v = 0; v < vnodes; ++v) {
      const std::uint64_t point = splitmix64(
          (static_cast<std::uint64_t>(b) << 32) |
          static_cast<std::uint64_t>(static_cast<std::uint32_t>(v)));
      ring_.push_back(VNode{point, static_cast<std::uint32_t>(b)});
    }
  }
  std::sort(ring_.begin(), ring_.end(),
            [](const VNode& a, const VNode& b) {
              // Tie-break on backend index so equal points (vanishingly
              // unlikely) still order deterministically.
              return a.point != b.point ? a.point < b.point
                                        : a.backend < b.backend;
            });
}

std::size_t HashRing::pick(std::uint64_t key) const noexcept {
  if (ring_.empty()) return 0;
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), key,
      [](const VNode& node, std::uint64_t k) { return node.point < k; });
  if (it == ring_.end()) it = ring_.begin();  // wrap past the last vnode
  return it->backend;
}

std::vector<std::size_t> HashRing::sequence(std::uint64_t key) const {
  std::vector<std::size_t> order;
  if (ring_.empty()) return order;
  order.reserve(backends_);
  std::vector<char> seen(backends_, 0);
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), key,
      [](const VNode& node, std::uint64_t k) { return node.point < k; });
  for (std::size_t step = 0;
       step < ring_.size() && order.size() < backends_; ++step, ++it) {
    if (it == ring_.end()) it = ring_.begin();
    if (!seen[it->backend]) {
      seen[it->backend] = 1;
      order.push_back(it->backend);
    }
  }
  return order;
}

std::optional<std::size_t> HashRing::pick_healthy(
    std::uint64_t key, const std::vector<char>& healthy) const {
  if (ring_.empty() || healthy.size() != backends_) return std::nullopt;
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), key,
      [](const VNode& node, std::uint64_t k) { return node.point < k; });
  // Walk at most the whole ring once; the first healthy backend hit in walk
  // order is by construction stable for keys whose owner is healthy.
  for (std::size_t step = 0; step < ring_.size(); ++step, ++it) {
    if (it == ring_.end()) it = ring_.begin();
    if (healthy[it->backend]) return it->backend;
  }
  return std::nullopt;
}

std::uint64_t HashRing::hash_bytes(std::string_view bytes) noexcept {
  std::uint64_t hash = 14695981039346656037ull;  // FNV offset basis
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;  // FNV prime
  }
  return hash;
}

std::uint64_t HashRing::mix(std::uint64_t a, std::uint64_t b) noexcept {
  return a ^ (splitmix64(b) + 0x9e3779b97f4a7c15ull + (a << 6) + (a >> 2));
}

}  // namespace chainnet::serve
