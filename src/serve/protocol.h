// Wire protocol of the surrogate serving layer: length-prefixed JSON over
// a stream socket.
//
// Frame:   [u32 payload length, big-endian][payload bytes]
// Payload: one JSON document (support::Json), parsed with the hardened
//          depth-limited parser since it arrives off the wire.
//
// Requests are objects tagged by "type":
//   {"type":"eval","system":"default","deadline_ms":5,
//    "placements":[[[0,1,2],[1,3]], ...]}       -> {"ok":true,"values":[..]}
//   {"type":"stats"}                            -> {"ok":true, ...counters}
//   {"type":"load_system","name":"x","system":{...}}  -> {"ok":true}
//   {"type":"reload","manifest":"path.json"}    -> {"ok":true,"version":2,
//                                                   "checksum":"fnv1a:..."}
//   {"type":"ping"} / {"type":"shutdown"}       -> {"ok":true}
// Failures are typed:
//   {"ok":false,"error":{"code":"overloaded","message":"..."}}
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>

#include "support/json.h"

namespace chainnet::serve {

/// Upper bound on a frame payload; larger prefixes are a protocol error
/// (never allocated), so a hostile length prefix cannot balloon memory.
inline constexpr std::uint32_t kMaxFramePayload = 8u << 20;

enum class ErrorCode {
  kParseError,        ///< frame was not valid JSON / violated framing
  kBadRequest,        ///< well-formed JSON, invalid request
  kUnknownSystem,     ///< eval named a system the server has not loaded
  kOverloaded,        ///< admission control: pending queue full
  kDeadlineExceeded,  ///< request expired before evaluation
  kShuttingDown,      ///< server is draining; no new work admitted
  kInternal,          ///< evaluator threw
  kUpstreamFailed,    ///< router: every candidate backend failed mid-request
};

std::string_view error_code_name(ErrorCode code) noexcept;
std::optional<ErrorCode> error_code_from_name(std::string_view name) noexcept;

/// Typed failure the client raises when the server answers {"ok":false}.
class ServeError : public std::runtime_error {
 public:
  ServeError(ErrorCode code, const std::string& message)
      : std::runtime_error(std::string(error_code_name(code)) + ": " +
                           message),
        code_(code) {}
  ErrorCode code() const noexcept { return code_; }

 private:
  ErrorCode code_;
};

enum class FrameStatus {
  kOk,      ///< payload filled
  kClosed,  ///< peer closed cleanly before a frame started
  kError,   ///< truncated frame, oversized prefix, or socket error
};

/// Disables Nagle's algorithm (TCP_NODELAY) on a TCP socket so small
/// request/response frames are not held back waiting for ACKs. A no-op on
/// non-TCP sockets (e.g. the socketpairs tests use).
void set_low_latency(int fd) noexcept;

/// Writes one frame; loops over partial writes. Returns false when the
/// peer is gone (EPIPE/ECONNRESET — never raises SIGPIPE).
bool write_frame(int fd, std::string_view payload);

/// Reads one frame into `payload`. kError fills `error` with a diagnostic;
/// EOF mid-frame is kError (truncation), EOF on the prefix boundary is a
/// clean kClosed.
FrameStatus read_frame(int fd, std::string& payload, std::string& error);

/// Response builders shared by server, client and tests.
support::Json ok_response();
support::Json error_response(ErrorCode code, const std::string& message);

}  // namespace chainnet::serve
