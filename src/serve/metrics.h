// Lock-cheap live metrics for the serving layer: relaxed-atomic counters, a
// geometric-bucket latency histogram with percentile extraction, and a
// linear batch-size histogram. Everything here is written on request /
// flush hot paths by many threads at once, so recording is a handful of
// relaxed fetch_adds — no mutex, no allocation. Snapshots are taken by the
// `stats` endpoint; they are monotonic-consistent per counter but not
// cross-counter atomic (live counters, not a checkpoint), which is exactly
// what an operations dashboard wants.
//
// LINT:counters — every relaxed atomic here is a monotonic statistic; no
// other code may order around these loads/stores.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace chainnet::serve {

/// Monotonic event counter (relaxed atomics; saturation is a non-issue at
/// one increment per request).
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Histogram over positive values (latencies in seconds) with geometric
/// bucket edges: bucket 0 covers (0, min_value], bucket i covers
/// (min_value*growth^{i-1}, min_value*growth^i], and the last bucket is the
/// +inf overflow. With the defaults (1 us floor, 1.25 growth, 80 buckets)
/// the range reaches ~47 s with <= 25% quantile error per bucket — plenty
/// for p50/p95/p99 service-latency reporting.
class LatencyHistogram {
 public:
  explicit LatencyHistogram(double min_value = 1e-6, double growth = 1.25,
                            int buckets = 80);

  void record(double value) noexcept;

  struct Snapshot {
    std::vector<std::uint64_t> counts;  ///< per bucket, overflow last
    std::vector<double> upper_edges;    ///< upper edge per bucket (last inf)
    std::uint64_t total = 0;
    double sum = 0.0;

    /// Upper edge of the bucket holding the q-quantile observation
    /// (q in [0,1]); 0 when empty.
    double quantile(double q) const;
    double mean() const { return total == 0 ? 0.0 : sum / total; }
  };
  Snapshot snapshot() const;

 private:
  int bucket_for(double value) const noexcept;

  double min_value_;
  double inv_log_growth_;
  std::vector<double> upper_edges_;
  std::vector<std::atomic<std::uint64_t>> counts_;
  std::atomic<std::uint64_t> total_{0};
  std::atomic<double> sum_{0.0};
};

/// Linear histogram over small integer sizes: slot i counts observations of
/// exactly i, the last slot counts >= max_size. Slot 0 is unused for batch
/// sizes but kept so indices read literally.
class SizeHistogram {
 public:
  explicit SizeHistogram(std::size_t max_size = 64);

  void record(std::size_t size) noexcept;
  std::vector<std::uint64_t> snapshot() const;
  std::uint64_t total() const noexcept {
    return total_.load(std::memory_order_relaxed);
  }
  std::size_t max_size() const noexcept { return counts_.size() - 1; }

 private:
  std::vector<std::atomic<std::uint64_t>> counts_;
  std::atomic<std::uint64_t> total_{0};
};

/// Every live counter the `stats` endpoint reports. Owned by serve::Server;
/// split out so tests and benches can assert on it directly.
struct ServerMetrics {
  Counter connections_accepted;
  Counter requests_total;       ///< every decoded frame, any type
  Counter eval_requests;        ///< eval requests admitted or rejected
  Counter placements_received;  ///< placements carried by eval requests
  Counter placements_evaluated; ///< placements actually scored
  Counter batches_flushed;
  Counter rejects_overload;     ///< admission-control fast rejects
  Counter rejects_shutdown;     ///< evals arriving while draining
  Counter deadline_drops;       ///< expired before evaluation
  Counter parse_errors;         ///< malformed frames / JSON
  Counter bad_requests;
  LatencyHistogram service_latency;  ///< frame decoded -> response written
  SizeHistogram batch_sizes;
};

}  // namespace chainnet::serve
