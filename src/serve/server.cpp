#include "serve/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cmath>
#include <cstring>
#include <future>
#include <limits>
#include <stdexcept>
#include <utility>

#include "edge/json_io.h"
#include "gnn/plan.h"
#include "serve/registry.h"
#include "tensor/kernels.h"

namespace chainnet::serve {

using support::Json;

/// Shared completion state of one eval request. All mutation happens on the
/// flusher thread (values, failure, completion); the reader thread only
/// waits on `done` and reads afterwards, synchronized by the promise.
struct Server::RequestState {
  explicit RequestState(std::size_t n) : values(n), remaining(n) {}

  std::vector<double> values;
  std::atomic<std::size_t> remaining;
  std::atomic<bool> failed{false};
  ErrorCode code = ErrorCode::kInternal;
  std::string message;
  std::promise<void> done;

  void fail(ErrorCode c, const std::string& m) {
    bool expected = false;
    if (failed.compare_exchange_strong(expected, true)) {
      code = c;
      message = m;
    }
  }
  void complete_one() {
    if (remaining.fetch_sub(1) == 1) done.set_value();
  }
};

/// One placement awaiting evaluation, queued by a reader thread.
struct Server::PendingItem {
  std::shared_ptr<RequestState> state;
  std::size_t index = 0;
  const edge::EdgeSystem* system = nullptr;
  edge::Placement placement;
  Clock::time_point enqueued;
  Clock::time_point deadline;  // time_point::max() when none
};

struct Server::Connection {
  int fd = -1;
  std::atomic<bool> done{false};
  std::thread thread;
};

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

/// Client deadlines saturate here: converting an arbitrary double to the
/// clock's integer rep overflows for huge values, and anything beyond an
/// hour is indistinguishable from "no deadline" for a microbatched eval.
constexpr double kMaxDeadlineMs = 3600.0 * 1000.0;

/// Bound on how long a response write may block on a peer that stopped
/// reading, so a stalled client cannot hang graceful shutdown.
constexpr timeval kSendTimeout{5, 0};

void set_blocking_with_send_timeout(int fd) noexcept {
  // Accepted sockets inherit O_NONBLOCK from the listener on the BSDs
  // (not on Linux); the readers want plain blocking I/O either way.
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0 && (flags & O_NONBLOCK) != 0) {
    ::fcntl(fd, F_SETFL, flags & ~O_NONBLOCK);
  }
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &kSendTimeout,
               sizeof(kSendTimeout));
}

}  // namespace

Server::Server(runtime::EvalService& service, ServerConfig config)
    : service_(service),
      config_(std::move(config)),
      flush_window_(std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::duration<double, std::milli>(
              std::max(0.0, config_.flush_window_ms)))) {
  config_.max_batch = std::max(1, config_.max_batch);
  config_.max_pending = std::max<std::size_t>(1, config_.max_pending);
}

Server::~Server() { stop(); }

void Server::add_system(std::string name, edge::EdgeSystem system) {
  system.validate();
  std::lock_guard<std::mutex> lock(systems_mutex_);
  auto [it, inserted] = systems_.emplace(
      std::move(name), std::make_unique<edge::EdgeSystem>(std::move(system)));
  if (!inserted) {
    throw std::runtime_error("system '" + it->first +
                             "' is already registered");
  }
}

const edge::EdgeSystem* Server::find_system(const std::string& name) const {
  std::lock_guard<std::mutex> lock(systems_mutex_);
  const auto it = systems_.find(name);
  // Registry entries are never erased, so the pointer stays valid after
  // the lock is dropped.
  return it == systems_.end() ? nullptr : it->second.get();
}

void Server::start() {
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    if (started_) throw std::runtime_error("Server: already started");
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw_errno("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(config_.port));
  const std::string host =
      config_.host == "localhost" ? "127.0.0.1" : config_.host;
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("Server: invalid host '" + config_.host + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 64) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    errno = err;
    throw_errno("Server: bind/listen on " + host + ":" +
                std::to_string(config_.port));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
  bound_port_ = static_cast<int>(ntohs(bound.sin_port));
  // Non-blocking listener + self-pipe: the accept loop polls both, so
  // stop() can wake it portably (shutdown() on a listening socket only
  // interrupts accept() on Linux) and accept() itself can never block
  // on a connection that aborted between poll() and the call.
  const int flags = ::fcntl(listen_fd_, F_GETFL, 0);
  if (flags >= 0) ::fcntl(listen_fd_, F_SETFL, flags | O_NONBLOCK);
  if (::pipe(wake_pipe_) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    errno = err;
    throw_errno("Server: pipe");
  }
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    started_ = true;
  }
  flusher_thread_ = std::thread([this] { flusher_loop(); });
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void Server::wait() {
  std::unique_lock<std::mutex> lock(state_mutex_);
  state_cv_.wait(lock, [this] { return shutdown_requested_ || stopped_; });
}

bool Server::wait_for(std::chrono::milliseconds timeout) {
  std::unique_lock<std::mutex> lock(state_mutex_);
  return state_cv_.wait_for(
      lock, timeout, [this] { return shutdown_requested_ || stopped_; });
}

void Server::stop() {
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    const bool was_running = started_ && !stopped_;
    stopped_ = true;
    if (!was_running) {
      state_cv_.notify_all();
      return;
    }
  }
  state_cv_.notify_all();

  // 1. Stop accepting: a byte down the self-pipe wakes the accept loop's
  //    poll(), which then exits.
  const char wake = 1;
  while (::write(wake_pipe_[1], &wake, 1) < 0 && errno == EINTR) {
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  ::close(wake_pipe_[0]);
  ::close(wake_pipe_[1]);
  wake_pipe_[0] = wake_pipe_[1] = -1;

  // 2. Drain the batcher. New evals are rejected as shutting_down; the
  //    flusher exits only once the pending queue is empty, so every
  //    admitted request has its promise fulfilled after the join.
  {
    std::lock_guard<std::mutex> lock(batch_mutex_);
    draining_ = true;
  }
  batch_cv_.notify_all();
  if (flusher_thread_.joinable()) flusher_thread_.join();

  // 3. Half-close the connections (SHUT_RD): a reader blocked in recv sees
  //    EOF immediately, while one still writing a drained response gets to
  //    finish the write before its next read returns 0. A peer that stopped
  //    reading (zero TCP window) cannot stall the join indefinitely: every
  //    connection socket carries SO_SNDTIMEO, so the blocked send errors
  //    out within kSendTimeout and the reader exits.
  //    The lock covers only taking ownership of the list; the shutdowns,
  //    joins, and closes run outside it so stop() never blocks with
  //    conn_mutex_ held.
  std::vector<std::unique_ptr<Connection>> doomed;
  {
    std::lock_guard<std::mutex> lock(conn_mutex_);
    doomed.swap(connections_);
  }
  for (auto& conn : doomed) {
    if (!conn->done.load(std::memory_order_acquire)) {
      ::shutdown(conn->fd, SHUT_RD);
    }
  }
  for (auto& conn : doomed) {
    if (conn->thread.joinable()) conn->thread.join();
    ::close(conn->fd);
  }
}

void Server::accept_loop() {
  for (;;) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {wake_pipe_[0], POLLIN, 0}};
    const int ready = ::poll(fds, 2, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (fds[1].revents != 0) break;  // stop() wrote the wake byte
    if ((fds[0].revents & (POLLIN | POLLERR | POLLHUP)) == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED || errno == EAGAIN ||
          errno == EWOULDBLOCK) {
        continue;
      }
      break;  // listening socket gone
    }
    metrics_.connections_accepted.add();
    set_low_latency(fd);
    set_blocking_with_send_timeout(fd);
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    Connection* raw = conn.get();
    std::lock_guard<std::mutex> lock(conn_mutex_);
    reap_finished_connections();
    conn->thread = std::thread([this, raw] { reader_loop(raw); });
    connections_.push_back(std::move(conn));
  }
}

void Server::reap_finished_connections() {
  // LINT:unguarded(caller holds conn_mutex_ — the accept loop reaps while
  // already inside its lock_guard; see the declaration comment in server.h)
  std::erase_if(connections_, [](const std::unique_ptr<Connection>& conn) {
    if (!conn->done.load(std::memory_order_acquire)) return false;
    if (conn->thread.joinable()) conn->thread.join();
    ::close(conn->fd);
    return true;
  });
}

void Server::reader_loop(Connection* conn) {
  std::string payload;
  std::string frame_error;
  for (;;) {
    const FrameStatus status = read_frame(conn->fd, payload, frame_error);
    if (status == FrameStatus::kClosed) break;
    if (status == FrameStatus::kError) {
      // Framing is unrecoverable — answer once, then hang up.
      metrics_.parse_errors.add();
      write_frame(conn->fd,
                  error_response(ErrorCode::kParseError, frame_error).dump());
      break;
    }
    const auto start = Clock::now();
    metrics_.requests_total.add();
    Json response;
    try {
      response = dispatch(payload);
    } catch (const std::exception& e) {
      // Last-resort guard: this runs on a detached-ish std::thread, so an
      // escaping exception would std::terminate the whole process.
      metrics_.bad_requests.add();
      response = error_response(ErrorCode::kInternal, e.what());
    }
    const bool written = write_frame(conn->fd, response.dump());
    metrics_.service_latency.record(
        std::chrono::duration<double>(Clock::now() - start).count());
    if (!written) break;
  }
  conn->done.store(true, std::memory_order_release);
}

Json Server::dispatch(const std::string& payload) {
  Json request;
  try {
    request = Json::parse(payload);
  } catch (const support::JsonError& e) {
    metrics_.parse_errors.add();
    return error_response(ErrorCode::kParseError, e.what());
  }
  if (!request.is_object() || !request.has("type") ||
      !request.at("type").is_string()) {
    metrics_.bad_requests.add();
    return error_response(ErrorCode::kBadRequest,
                          "request must be an object with a \"type\" string");
  }
  const std::string& type = request.at("type").as_string();
  if (type == "ping") return ok_response();
  if (type == "eval") return handle_eval(request);
  if (type == "stats") {
    Json response = stats_json();
    response["ok"] = Json(true);
    return response;
  }
  if (type == "reload") return handle_reload(request);
  if (type == "load_system") {
    try {
      const std::string name = request.at("name").as_string();
      add_system(name, edge::system_from_json(request.at("system")));
      return ok_response();
    } catch (const std::exception& e) {
      metrics_.bad_requests.add();
      return error_response(ErrorCode::kBadRequest, e.what());
    }
  }
  if (type == "shutdown") {
    {
      std::lock_guard<std::mutex> lock(state_mutex_);
      shutdown_requested_ = true;
    }
    state_cv_.notify_all();
    return ok_response();
  }
  metrics_.bad_requests.add();
  return error_response(ErrorCode::kBadRequest,
                        "unknown request type '" + type + "'");
}

Json Server::handle_reload(const Json& request) {
  if (!config_.registry) {
    metrics_.bad_requests.add();
    return error_response(ErrorCode::kBadRequest,
                          "server was started without a model registry");
  }
  std::string manifest_path;
  try {
    manifest_path = request.at("manifest").as_string();
  } catch (const std::exception& e) {
    metrics_.bad_requests.add();
    return error_response(ErrorCode::kBadRequest, e.what());
  }
  // Runs inline on this connection's reader thread: only the reloading
  // client blocks while the new version builds; every other connection
  // keeps evaluating against the still-active version, and the flip is a
  // pointer swap — no request ever sees a half-loaded model.
  try {
    const ModelVersionInfo info = config_.registry->load(manifest_path);
    Json response = ok_response();
    response["version"] = Json(static_cast<double>(info.version));
    response["checksum"] = Json(tensor::checksum_to_string(info.checksum));
    response["state"] = Json(info.state);
    return response;
  } catch (const tensor::SerializeError& e) {
    // A bad manifest or corrupt weight file is the client's problem; the
    // previously active version is untouched.
    metrics_.bad_requests.add();
    return error_response(ErrorCode::kBadRequest, e.what());
  } catch (const std::exception& e) {
    return error_response(ErrorCode::kInternal, e.what());
  }
}

Json Server::handle_eval(const Json& request) {
  metrics_.eval_requests.add();
  const auto now = Clock::now();
  const edge::EdgeSystem* system = nullptr;
  std::vector<edge::Placement> placements;
  auto deadline = Clock::time_point::max();
  // Every field access sits inside this try: the accessors throw on
  // wrong-typed values, and nothing a client sends may escape as an
  // exception.
  try {
    const std::string system_name = request.get_string("system", "default");
    system = find_system(system_name);
    if (system == nullptr) {
      return error_response(ErrorCode::kUnknownSystem,
                            "no system named '" + system_name +
                                "' is loaded");
    }
    const auto& docs = request.at("placements").as_array();
    if (docs.empty()) {
      throw support::JsonError("placements must be non-empty", 0);
    }
    placements.reserve(docs.size());
    for (const auto& doc : docs) {
      std::vector<std::vector<int>> assignment;
      for (const auto& row : doc.as_array()) {
        std::vector<int> devices;
        for (const auto& dev : row.as_array()) {
          const double v = dev.as_number();
          // Reject non-integral and int-overflowing values up front:
          // static_cast<int> of an out-of-range double is undefined
          // behavior, so the range check must precede the cast.
          if (v != std::floor(v) ||
              v < static_cast<double>(std::numeric_limits<int>::min()) ||
              v > static_cast<double>(std::numeric_limits<int>::max())) {
            throw support::JsonError(
                "device index must be an integer in int range", 0);
          }
          devices.push_back(static_cast<int>(v));
        }
        assignment.push_back(std::move(devices));
      }
      edge::Placement placement(std::move(assignment));
      placement.validate(*system);
      placements.push_back(std::move(placement));
    }
    const double deadline_ms = request.get_number("deadline_ms", 0.0);
    if (deadline_ms > 0.0) {
      deadline = now + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double, std::milli>(
                               std::min(deadline_ms, kMaxDeadlineMs)));
    }
  } catch (const std::exception& e) {
    metrics_.bad_requests.add();
    return error_response(ErrorCode::kBadRequest, e.what());
  }
  metrics_.placements_received.add(placements.size());

  auto state = std::make_shared<RequestState>(placements.size());
  auto done = state->done.get_future();
  {
    std::lock_guard<std::mutex> lock(batch_mutex_);
    if (draining_) {
      metrics_.rejects_shutdown.add();
      return error_response(ErrorCode::kShuttingDown, "server is draining");
    }
    if (pending_.size() + placements.size() > config_.max_pending) {
      metrics_.rejects_overload.add();
      return error_response(
          ErrorCode::kOverloaded,
          "pending queue full (" + std::to_string(pending_.size()) + " of " +
              std::to_string(config_.max_pending) + " placements)");
    }
    for (std::size_t i = 0; i < placements.size(); ++i) {
      pending_.push_back(PendingItem{state, i, system,
                                     std::move(placements[i]), now,
                                     deadline});
    }
  }
  batch_cv_.notify_all();
  done.wait();

  if (state->failed.load(std::memory_order_acquire)) {
    return error_response(state->code, state->message);
  }
  Json values;
  for (double v : state->values) values.push_back(Json(v));
  Json response = ok_response();
  response["values"] = std::move(values);
  return response;
}

void Server::flusher_loop() {
  std::unique_lock<std::mutex> lock(batch_mutex_);
  for (;;) {
    if (pending_.empty()) {
      if (draining_) return;
      batch_cv_.wait(lock, [this] { return draining_ || !pending_.empty(); });
      continue;
    }
    if (static_cast<int>(pending_.size()) < config_.max_batch && !draining_) {
      // Wait for the batch to fill, but no longer than the flush window of
      // the oldest pending placement.
      const auto flush_at = pending_.front().enqueued + flush_window_;
      batch_cv_.wait_until(lock, flush_at, [this] {
        return static_cast<int>(pending_.size()) >= config_.max_batch ||
               draining_;
      });
      if (pending_.empty()) continue;
    }

    // Pop expired items (dropped before evaluation) and a same-system
    // prefix of up to max_batch placements; a system change ends the batch
    // and the remainder flushes on the next iteration.
    const auto now = Clock::now();
    std::vector<PendingItem> expired;
    std::vector<PendingItem> batch;
    const edge::EdgeSystem* system = nullptr;
    while (!pending_.empty() &&
           static_cast<int>(batch.size()) < config_.max_batch) {
      PendingItem& front = pending_.front();
      if (now >= front.deadline) {
        expired.push_back(std::move(front));
        pending_.pop_front();
        continue;
      }
      if (system == nullptr) {
        system = front.system;
      } else if (front.system != system) {
        break;
      }
      batch.push_back(std::move(front));
      pending_.pop_front();
    }
    // LINT:manual-lock(the flusher drops batch_mutex_ around the evaluate
    // call so readers can keep admitting work during a long batch; it only
    // touches the popped-off locals until it re-locks below)
    lock.unlock();

    for (auto& item : expired) {
      metrics_.deadline_drops.add();
      item.state->fail(ErrorCode::kDeadlineExceeded,
                       "deadline expired before evaluation");
      item.state->complete_one();
    }
    if (!batch.empty()) {
      std::vector<edge::Placement> placements;
      placements.reserve(batch.size());
      for (auto& item : batch) placements.push_back(std::move(item.placement));
      metrics_.batches_flushed.add();
      metrics_.batch_sizes.record(batch.size());
      try {
        const auto values = service_.evaluate_batch(*system, placements);
        for (std::size_t i = 0; i < batch.size(); ++i) {
          batch[i].state->values[batch[i].index] = values[i];
        }
        metrics_.placements_evaluated.add(batch.size());
      } catch (const std::exception& e) {
        for (auto& item : batch) {
          item.state->fail(ErrorCode::kInternal, e.what());
        }
      }
      for (auto& item : batch) item.state->complete_one();
    }
    // LINT:manual-lock(re-acquires batch_mutex_ for the next loop pass;
    // pairs with the waived unlock above)
    lock.lock();
  }
}

Json Server::stats_json() const {
  Json doc;
  const auto count = [](const Counter& c) {
    return Json(static_cast<double>(c.value()));
  };
  doc["connections_accepted"] = count(metrics_.connections_accepted);
  doc["requests"] = count(metrics_.requests_total);
  doc["eval_requests"] = count(metrics_.eval_requests);
  doc["placements_received"] = count(metrics_.placements_received);
  doc["placements_evaluated"] = count(metrics_.placements_evaluated);
  doc["batches"] = count(metrics_.batches_flushed);
  doc["rejects_overload"] = count(metrics_.rejects_overload);
  doc["rejects_shutdown"] = count(metrics_.rejects_shutdown);
  doc["deadline_drops"] = count(metrics_.deadline_drops);
  doc["parse_errors"] = count(metrics_.parse_errors);
  doc["bad_requests"] = count(metrics_.bad_requests);
  {
    std::lock_guard<std::mutex> lock(batch_mutex_);
    doc["queue_depth"] = Json(static_cast<double>(pending_.size()));
  }
  doc["pool_queue_depth"] =
      Json(static_cast<double>(service_.pool().queue_depth()));

  const auto latency = metrics_.service_latency.snapshot();
  Json lat;
  lat["count"] = Json(static_cast<double>(latency.total));
  lat["mean_s"] = Json(latency.mean());
  lat["p50_s"] = Json(latency.quantile(0.50));
  lat["p95_s"] = Json(latency.quantile(0.95));
  lat["p99_s"] = Json(latency.quantile(0.99));
  doc["service_latency"] = std::move(lat);

  // Batch-size histogram as [size, count] pairs, zero rows elided; the
  // final slot aggregates sizes >= the histogram bound.
  const auto sizes = metrics_.batch_sizes.snapshot();
  Json histogram;
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    if (sizes[i] == 0) continue;
    Json row;
    row.push_back(Json(static_cast<double>(i)));
    row.push_back(Json(static_cast<double>(sizes[i])));
    histogram.push_back(std::move(row));
  }
  if (histogram.is_null()) histogram = Json(Json::Array{});
  doc["batch_size_histogram"] = std::move(histogram);

  // Runtime-resolved execution environment: the kernel ISA tier this
  // process dispatched and the numeric tier the evaluators run at.
  {
    Json runtime;
    runtime["kernel_isa"] = Json(std::string(tensor::kernels::isa()));
    runtime["dtype"] = Json(std::string(tensor::dtype_name(config_.dtype)));
    doc["runtime"] = std::move(runtime);
  }
  if (config_.registry) {
    doc["model"] = config_.registry->stats_json();
  }
  // Compiled-plan cache counters: the registry's cache when one is serving
  // (hot swaps share it across versions), else the eval service's own.
  {
    const auto& plans = config_.registry ? config_.registry->plan_cache()
                                         : service_.plan_cache();
    const gnn::PlanCache::Stats stats = plans->stats();
    Json cache;
    cache["hits"] = Json(static_cast<double>(stats.hits));
    cache["compiles"] = Json(static_cast<double>(stats.compiles));
    cache["entries"] = Json(static_cast<double>(stats.entries));
    cache["evictions"] = Json(static_cast<double>(stats.evictions));
    doc["plan_cache"] = std::move(cache);
  }
  if (config_.cache) {
    const auto stats = config_.cache->stats();
    Json cache;
    cache["hits"] = Json(static_cast<double>(stats.hits));
    cache["misses"] = Json(static_cast<double>(stats.misses));
    cache["entries"] = Json(static_cast<double>(stats.entries));
    cache["evictions"] = Json(static_cast<double>(stats.evictions));
    const double lookups = static_cast<double>(stats.hits + stats.misses);
    cache["hit_rate"] =
        Json(lookups > 0 ? static_cast<double>(stats.hits) / lookups : 0.0);
    doc["cache"] = std::move(cache);
  }
  return doc;
}

}  // namespace chainnet::serve
