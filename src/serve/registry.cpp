#include "serve/registry.h"

#include <atomic>
#include <stdexcept>
#include <utility>

#include "gnn/plan.h"
#include "support/rng.h"
#include "tensor/dtype.h"
#include "tensor/kernels.h"

namespace chainnet::serve {

using tensor::SerializeErrc;
using tensor::SerializeError;

ModelVersion::ModelVersion(tensor::WeightsManifest manifest,
                           core::ChainNetConfig config, int slots,
                           std::shared_ptr<gnn::PlanCache> plan_cache)
    : manifest_(std::move(manifest)),
      config_(config),
      slots_(std::max(1, slots)),
      plan_cache_(std::move(plan_cache)),
      ready_(ready_promise_.get_future().share()),
      host_([this] { host_main(); }) {}

ModelVersion::~ModelVersion() {
  {
    std::lock_guard<std::mutex> lock(retire_mutex_);
    retired_ = true;
  }
  retire_cv_.notify_all();
  if (host_.joinable()) host_.join();
}

void ModelVersion::host_main() {
  // Build every slot's model on THIS thread: parameter leaves land on its
  // thread_local tape, which lives until this function returns — i.e. until
  // the version is retired.
  try {
    models_.reserve(static_cast<std::size_t>(slots_));
    surrogates_.reserve(static_cast<std::size_t>(slots_));
    for (int s = 0; s < slots_; ++s) {
      // Fixed init seed: values are fully overwritten by load_parameters,
      // the seed only shapes the parameter tree.
      support::Rng init_rng(1);
      auto model = std::make_unique<core::ChainNet>(config_, init_rng);
      tensor::load_parameters(*model, manifest_.params_path);
      // Registry-lifetime cache: plans compiled by any earlier version are
      // replayed verbatim by this one — hot swaps change weights, not plans.
      if (plan_cache_ != nullptr) model->set_plan_cache(plan_cache_);
      surrogates_.push_back(std::make_unique<core::Surrogate>(*model));
      models_.push_back(std::move(model));
    }
  } catch (...) {
    models_.clear();
    surrogates_.clear();
    ready_promise_.set_exception(std::current_exception());
    return;
  }
  ready_promise_.set_value();

  {
    std::unique_lock<std::mutex> lock(retire_mutex_);
    retire_cv_.wait(lock, [this] { return retired_; });
  }
  // Destroy the models before the thread (and its tape arena) exits; no
  // reader can still exist — retirement is only signalled from the
  // destructor, after the last shared_ptr dropped.
  surrogates_.clear();
  models_.clear();
}

const core::Surrogate& ModelVersion::surrogate(int slot) const {
  if (slot < 0 || slot >= static_cast<int>(surrogates_.size())) {
    throw std::out_of_range("ModelVersion: slot " + std::to_string(slot) +
                            " of " + std::to_string(surrogates_.size()));
  }
  return *surrogates_[static_cast<std::size_t>(slot)];
}

ModelRegistry::ModelRegistry(core::ChainNetConfig defaults, int slots)
    : defaults_(defaults),
      slots_(std::max(1, slots)),
      plan_cache_(std::make_shared<gnn::PlanCache>()) {}

ModelVersionInfo ModelRegistry::load(const std::string& manifest_path) {
  // One load at a time: concurrent reloads would race on "who becomes
  // active"; serializing gives last-call-wins with a total order.
  // LINT:blocking(load_mutex_ exists to serialize whole reloads including
  // their manifest and checksum file I/O; it is never held together with
  // mutex_, and reload is the admin path, not the request path)
  std::lock_guard<std::mutex> load_lock(load_mutex_);

  tensor::WeightsManifest manifest = tensor::load_manifest(manifest_path);
  // Checksum gate BEFORE any parameter parsing: a truncated or tampered
  // file is rejected while the current version keeps serving.
  const std::uint64_t actual = tensor::file_checksum(manifest.params_path);
  if (actual != manifest.checksum) {
    throw SerializeError(
        SerializeErrc::kChecksumMismatch,
        manifest.params_path + " hashes to " +
            tensor::checksum_to_string(actual) + " but the manifest pins " +
            tensor::checksum_to_string(manifest.checksum));
  }

  core::ChainNetConfig config = defaults_;
  if (manifest.hidden > 0) config.hidden = manifest.hidden;
  if (manifest.iterations > 0) config.iterations = manifest.iterations;
  // Validated here (not at manifest parse) so the failure carries the
  // registry's reject-and-keep-serving semantics like a bad checksum.
  if (!manifest.dtype.empty() &&
      !tensor::parse_dtype(manifest.dtype, config.dtype)) {
    throw SerializeError(SerializeErrc::kBadManifest,
                         "manifest dtype \"" + manifest.dtype +
                             "\" is not a known tier (accepted: f64, f32, "
                             "bf16) in " + manifest_path);
  }

  std::size_t index;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    index = records_.size();
    records_.push_back(Record{manifest, "loading", {}});
  }

  auto version =
      std::make_shared<ModelVersion>(manifest, config, slots_, plan_cache_);
  try {
    version->wait_ready();
  } catch (...) {
    std::lock_guard<std::mutex> lock(mutex_);
    records_[index].explicit_state = "failed";
    throw;
  }

  ModelVersionInfo info;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    records_[index].explicit_state.clear();
    records_[index].version = version;
    // The flip: from here every pinned_active() call returns the new
    // version; the old one drains as in-flight batches release it.
    active_ = std::move(version);
    info = info_for(records_[index]);
  }
  return info;
}

std::shared_ptr<const ModelVersion> ModelRegistry::active() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return active_;
}

ModelVersionInfo ModelRegistry::info_for(const Record& record) const {
  // LINT:unguarded(caller holds mutex_ — private helper used only from
  // locked scopes; active_/records_ are read, never written)
  ModelVersionInfo info;
  info.version = record.manifest.version;
  info.checksum = record.manifest.checksum;
  info.params_path = record.manifest.params_path;
  info.dtype = record.manifest.dtype.empty()
                   ? std::string(tensor::dtype_name(defaults_.dtype))
                   : record.manifest.dtype;
  if (!record.explicit_state.empty()) {
    info.state = record.explicit_state;
    return info;
  }
  // LINT:manual-lock(weak_ptr::lock — pin attempt, not a mutex acquire)
  const auto locked = record.version.lock();
  // LINT:unguarded(caller holds mutex_ — see the helper contract above)
  if (locked != nullptr && locked == active_) {
    info.state = "active";
  } else if (locked != nullptr) {
    info.state = "draining";
  } else {
    info.state = "retired";
  }
  return info;
}

ModelVersionInfo ModelRegistry::active_info() const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = records_.rbegin(); it != records_.rend(); ++it) {
    // LINT:manual-lock(weak_ptr::lock — pin attempt, not a mutex acquire)
    if (!it->version.expired() && it->version.lock() == active_) {
      return info_for(*it);
    }
  }
  return {};
}

std::vector<ModelVersionInfo> ModelRegistry::versions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<ModelVersionInfo> out;
  out.reserve(records_.size());
  for (const auto& record : records_) out.push_back(info_for(record));
  return out;
}

support::Json ModelRegistry::stats_json() const {
  support::Json doc;
  const auto all = versions();
  support::Json rows;
  for (const auto& info : all) {
    support::Json row;
    row["version"] = support::Json(static_cast<double>(info.version));
    row["checksum"] = support::Json(tensor::checksum_to_string(info.checksum));
    row["state"] = support::Json(info.state);
    rows.push_back(std::move(row));
    if (info.state == "active") {
      support::Json active;
      active["version"] = support::Json(static_cast<double>(info.version));
      active["checksum"] =
          support::Json(tensor::checksum_to_string(info.checksum));
      active["params"] = support::Json(info.params_path);
      active["dtype"] = support::Json(info.dtype);
      doc["active"] = std::move(active);
    }
  }
  if (rows.is_null()) rows = support::Json(support::Json::Array{});
  doc["versions"] = std::move(rows);
  // Runtime-resolved execution environment (satellite of the reduced-
  // precision tier): which kernel ISA this process dispatches and which
  // numeric tier a default-config model would run at.
  support::Json runtime;
  runtime["kernel_isa"] = support::Json(std::string(tensor::kernels::isa()));
  runtime["dtype"] =
      support::Json(std::string(tensor::dtype_name(defaults_.dtype)));
  doc["runtime"] = std::move(runtime);
  const gnn::PlanCache::Stats plans = plan_cache_->stats();
  support::Json plan_stats;
  plan_stats["hits"] = support::Json(static_cast<double>(plans.hits));
  plan_stats["compiles"] = support::Json(static_cast<double>(plans.compiles));
  plan_stats["evictions"] =
      support::Json(static_cast<double>(plans.evictions));
  plan_stats["entries"] = support::Json(static_cast<double>(plans.entries));
  doc["plan_cache"] = std::move(plan_stats);
  return doc;
}

std::shared_ptr<const ModelVersion> RegistryEvaluator::pinned_active() const {
  auto version = registry_->active();
  if (version == nullptr) {
    throw std::runtime_error("model registry has no active version");
  }
  return version;
}

double RegistryEvaluator::total_throughput(const edge::EdgeSystem& system,
                                           const edge::Placement& placement) {
  const auto version = pinned_active();
  record_evaluation();
  return version->surrogate(slot_).total_throughput(system, placement);
}

void RegistryEvaluator::total_throughput_batch(
    const edge::EdgeSystem& system,
    std::span<const edge::Placement> placements, std::span<double> out) {
  // One pin for the whole batch: the version cannot retire mid-batch, and
  // every placement in the batch is scored by the same weights.
  const auto version = pinned_active();
  for (std::size_t i = 0; i < placements.size(); ++i) record_evaluation();
  version->surrogate(slot_).total_throughput_batch(system, placements, out);
}

runtime::EvalService::EvaluatorFactory registry_factory(
    std::shared_ptr<ModelRegistry> registry) {
  // EvalService constructs evaluators eagerly on one thread, in worker
  // order; the shared counter therefore assigns slot k to worker k (and the
  // final slot to the service's owning thread).
  auto next_slot = std::make_shared<std::atomic<int>>(0);
  return [registry = std::move(registry), next_slot](
             support::Rng) -> std::unique_ptr<optim::PlacementEvaluator> {
    const int slot = next_slot->fetch_add(1);
    if (slot >= registry->slots()) {
      throw std::runtime_error(
          "registry_factory: more evaluators requested than registry slots (" +
          std::to_string(registry->slots()) + ")");
    }
    return std::make_unique<RegistryEvaluator>(registry, slot);
  };
}

}  // namespace chainnet::serve
