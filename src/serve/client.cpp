#include "serve/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "edge/json_io.h"

namespace chainnet::serve {

using support::Json;

Json make_eval_request(std::span<const edge::Placement> placements,
                       const std::string& system, double deadline_ms) {
  Json docs;
  for (const auto& placement : placements) {
    Json rows;
    for (const auto& chain : placement.assignment()) {
      Json row;
      for (int dev : chain) row.push_back(Json(dev));
      rows.push_back(std::move(row));
    }
    docs.push_back(std::move(rows));
  }
  Json request;
  request["type"] = Json("eval");
  request["system"] = Json(system);
  request["placements"] = std::move(docs);
  if (deadline_ms > 0.0) request["deadline_ms"] = Json(deadline_ms);
  return request;
}

Client::Client(const std::string& host, int port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    throw std::runtime_error(std::string("Client: socket: ") +
                             std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  const std::string numeric = host == "localhost" ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, numeric.c_str(), &addr.sin_addr) != 1) {
    ::close(fd_);
    throw std::runtime_error("Client: invalid host '" + host + "'");
  }
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const std::string detail = std::strerror(errno);
    ::close(fd_);
    throw std::runtime_error("Client: connect to " + numeric + ":" +
                             std::to_string(port) + ": " + detail);
  }
  set_low_latency(fd_);
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Json Client::call(const Json& request) {
  if (!write_frame(fd_, request.dump())) {
    throw std::runtime_error("Client: connection lost while sending");
  }
  std::string payload;
  std::string error;
  const FrameStatus status = read_frame(fd_, payload, error);
  if (status == FrameStatus::kClosed) {
    throw std::runtime_error("Client: server closed the connection");
  }
  if (status == FrameStatus::kError) {
    throw std::runtime_error("Client: " + error);
  }
  Json response = Json::parse(payload);
  if (!response.is_object() || !response.has("ok")) {
    throw std::runtime_error("Client: malformed response");
  }
  if (!response.at("ok").as_bool()) {
    const Json& detail = response.at("error");
    const auto code =
        error_code_from_name(detail.get_string("code", "internal"));
    throw ServeError(code.value_or(ErrorCode::kInternal),
                     detail.get_string("message", "unknown error"));
  }
  return response;
}

std::vector<double> Client::evaluate(
    std::span<const edge::Placement> placements, const std::string& system,
    double deadline_ms) {
  const Json response =
      call(make_eval_request(placements, system, deadline_ms));
  const auto& values = response.at("values").as_array();
  std::vector<double> out;
  out.reserve(values.size());
  for (const auto& v : values) out.push_back(v.as_number());
  return out;
}

double Client::evaluate_one(const edge::Placement& placement,
                            const std::string& system, double deadline_ms) {
  return evaluate({&placement, 1}, system, deadline_ms).front();
}

void Client::load_system(const std::string& name,
                         const edge::EdgeSystem& system) {
  Json request;
  request["type"] = Json("load_system");
  request["name"] = Json(name);
  request["system"] = edge::to_json(system);
  call(request);
}

Json Client::stats() {
  Json request;
  request["type"] = Json("stats");
  return call(request);
}

void Client::ping() {
  Json request;
  request["type"] = Json("ping");
  call(request);
}

void Client::request_shutdown() {
  Json request;
  request["type"] = Json("shutdown");
  call(request);
}

}  // namespace chainnet::serve
