// Experiment harness for the surrogate-optimization study (§VIII-C): the
// loss-probability metrics of eqs. (18)-(19), simulation post-processing of
// search results (the paper reports simulated — not surrogate-estimated —
// loss for GNN decisions), and aggregation of best-so-far trajectories onto
// common time/step grids for the Fig. 14-15 curves.
#pragma once

#include <string>
#include <vector>

#include "edge/model.h"
#include "edge/placement.h"
#include "optim/annealing.h"
#include "queueing/simulator.h"

namespace chainnet::optim {

/// pi_loss(p) of eq. (18) given the objective value X_total(p).
double loss_probability(const edge::EdgeSystem& system,
                        double total_throughput);

/// eta(p) of eq. (19): relative loss reduction of `p` w.r.t. the initial
/// placement's objective value.
double relative_loss_reduction(const edge::EdgeSystem& system,
                               double initial_throughput,
                               double optimized_throughput);

/// Simulated X_total of a placement (the post-processing step of
/// §VIII-C5: surrogate decisions are re-scored by the simulator).
double simulated_total_throughput(const edge::EdgeSystem& system,
                                  const edge::Placement& placement,
                                  const queueing::SimConfig& config);

/// Samples a trajectory's best-so-far objective at the given time points
/// (seconds since search start). Values before the first recorded point
/// take the first point's value.
std::vector<double> best_at_times(const std::vector<TrajectoryPoint>& traj,
                                  const std::vector<double>& times);

/// Samples a trajectory's best-so-far objective at the given cumulative
/// step indices.
std::vector<double> best_at_steps(const std::vector<TrajectoryPoint>& traj,
                                  const std::vector<int>& steps);

/// One-line diagnostic summary of a search run's counters — acceptance
/// rate always; exchange/resample rates only when the run attempted any
/// (population optimizers). Used by the CLI and the bench harnesses so
/// algorithm comparisons are diagnosable, not just scored.
std::string search_diagnostics(const SaResult& result);

}  // namespace chainnet::optim
