#include "optim/experiment.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "edge/qn_mapping.h"

namespace chainnet::optim {

double loss_probability(const edge::EdgeSystem& system,
                        double total_throughput) {
  const double lambda_total = system.total_arrival_rate();
  if (lambda_total <= 0.0) return 0.0;
  return std::clamp((lambda_total - total_throughput) / lambda_total, 0.0,
                    1.0);
}

double relative_loss_reduction(const edge::EdgeSystem& system,
                               double initial_throughput,
                               double optimized_throughput) {
  const double lambda_total = system.total_arrival_rate();
  const double denom = lambda_total - initial_throughput;
  if (denom <= 0.0) return 0.0;  // initial placement already lossless
  return (optimized_throughput - initial_throughput) / denom;
}

double simulated_total_throughput(const edge::EdgeSystem& system,
                                  const edge::Placement& placement,
                                  const queueing::SimConfig& config) {
  const auto qn = edge::build_qn(system, placement);
  return queueing::simulate(qn, config).total_throughput();
}

std::vector<double> best_at_times(const std::vector<TrajectoryPoint>& traj,
                                  const std::vector<double>& times) {
  if (traj.empty()) throw std::invalid_argument("best_at_times: empty");
  std::vector<double> out;
  out.reserve(times.size());
  std::size_t idx = 0;
  double last = traj.front().best;
  for (double t : times) {
    while (idx < traj.size() && traj[idx].seconds <= t) {
      last = traj[idx].best;
      ++idx;
    }
    out.push_back(last);
  }
  return out;
}

std::vector<double> best_at_steps(const std::vector<TrajectoryPoint>& traj,
                                  const std::vector<int>& steps) {
  if (traj.empty()) throw std::invalid_argument("best_at_steps: empty");
  std::vector<double> out;
  out.reserve(steps.size());
  std::size_t idx = 0;
  double last = traj.front().best;
  for (int s : steps) {
    while (idx < traj.size() && traj[idx].step <= s) {
      last = traj[idx].best;
      ++idx;
    }
    out.push_back(last);
  }
  return out;
}

std::string search_diagnostics(const SaResult& result) {
  const SearchCounters& c = result.counters;
  std::ostringstream out;
  out.precision(3);
  out << "accepted " << c.accepts << "/" << c.proposals << " proposals ("
      << c.acceptance_rate() * 100.0 << "%";
  if (c.proposal_failures > 0) {
    out << ", " << c.proposal_failures << " infeasible";
  }
  out << ")";
  if (c.exchange_attempts > 0) {
    out << "; exchanged " << c.exchange_accepts << "/" << c.exchange_attempts
        << " replica pairs (" << c.exchange_rate() * 100.0 << "%)";
  }
  if (c.resample_events > 0) {
    out << "; " << c.resample_events << " resamples replaced "
        << c.resampled_replicas << " replicas";
  }
  return out.str();
}

}  // namespace chainnet::optim
