// Placement evaluators: the objective-function oracles plugged into the
// simulated-annealing search of §VII. The baseline evaluates candidates by
// simulation (the paper's JMT-based search); the surrogate evaluates them
// with a trained GNN, which is the ChainNet speed advantage measured in
// Fig. 14-15.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <span>

#include "core/surrogate.h"
#include "edge/model.h"
#include "edge/placement.h"
#include "edge/qn_mapping.h"
#include "queueing/approximation.h"
#include "queueing/simulator.h"

namespace chainnet::optim {

/// Overflow-safe counter addition: clamps at the uint64 maximum instead of
/// wrapping, so long-running services and cross-worker aggregation report a
/// floor rather than a wrapped-around lie.
constexpr std::uint64_t saturating_add(std::uint64_t a,
                                       std::uint64_t b) noexcept {
  return b > std::numeric_limits<std::uint64_t>::max() - a
             ? std::numeric_limits<std::uint64_t>::max()
             : a + b;
}

class PlacementEvaluator {
 public:
  virtual ~PlacementEvaluator() = default;
  /// Estimated objective of eq. (2): total throughput of the placement.
  virtual double total_throughput(const edge::EdgeSystem& system,
                                  const edge::Placement& placement) = 0;
  /// Batched objective: out[i] = total_throughput(system, placements[i]).
  /// `out` must have placements.size() elements. The default is a serial
  /// loop; oracles with a genuinely batched fast path (SurrogateEvaluator's
  /// lock-stepped GNN forward) override it. Results are bit-identical to
  /// the scalar loop either way.
  virtual void total_throughput_batch(
      const edge::EdgeSystem& system,
      std::span<const edge::Placement> placements, std::span<double> out) {
    for (std::size_t i = 0; i < placements.size(); ++i) {
      out[i] = total_throughput(system, placements[i]);
    }
  }
  /// Number of *oracle* evaluations performed so far (saturating, never
  /// wrapping). Decorators that satisfy calls without consulting the oracle
  /// (runtime::CachedEvaluator) do not count those here — hits are reported
  /// separately — so aggregating this across workers counts real work only.
  std::uint64_t evaluations() const noexcept { return evaluations_; }

  /// Installs a shared compiled-plan cache (gnn/plan.h) on whatever model
  /// this oracle evaluates with. Default no-op: simulation / approximation
  /// oracles have no plans. Decorators forward to their inner oracle.
  virtual void set_plan_cache(std::shared_ptr<gnn::PlanCache> cache) {
    (void)cache;
  }

 protected:
  /// Overflow-safe accounting bump for implementations.
  void record_evaluation() noexcept {
    evaluations_ = saturating_add(evaluations_, 1);
  }
  std::uint64_t evaluations_ = 0;
};

/// Ground-truth-by-simulation evaluator (the baseline search oracle).
class SimulationEvaluator final : public PlacementEvaluator {
 public:
  SimulationEvaluator(queueing::SimConfig config,
                      edge::ServiceModel service_model =
                          edge::ServiceModel::kExponential)
      : config_(config), service_model_(service_model) {}

  double total_throughput(const edge::EdgeSystem& system,
                          const edge::Placement& placement) override;

 private:
  queueing::SimConfig config_;
  edge::ServiceModel service_model_;
};

/// GNN-surrogate evaluator (the ChainNet search oracle).
class SurrogateEvaluator final : public PlacementEvaluator {
 public:
  explicit SurrogateEvaluator(core::Surrogate surrogate)
      : surrogate_(surrogate) {}

  double total_throughput(const edge::EdgeSystem& system,
                          const edge::Placement& placement) override;
  /// Routes the whole batch through one lock-stepped GNN forward pass
  /// (core::Surrogate::total_throughput_batch); counts one oracle
  /// evaluation per placement.
  void total_throughput_batch(const edge::EdgeSystem& system,
                              std::span<const edge::Placement> placements,
                              std::span<double> out) override;

  void set_plan_cache(std::shared_ptr<gnn::PlanCache> cache) override {
    surrogate_.set_plan_cache(std::move(cache));
  }

 private:
  core::Surrogate surrogate_;
};

/// Training-free analytical oracle: the M/M/1/K decomposition of
/// queueing/approximation.h. Faster than simulation and needs no GNN, but
/// biased under heavy sharing — included as the "classical alternative"
/// the paper's related work dismisses, so benches can quantify that claim.
class ApproximationEvaluator final : public PlacementEvaluator {
 public:
  explicit ApproximationEvaluator(queueing::ApproxConfig config = {})
      : config_(config) {}

  double total_throughput(const edge::EdgeSystem& system,
                          const edge::Placement& placement) override;

 private:
  queueing::ApproxConfig config_;
};

}  // namespace chainnet::optim
