#include "optim/evaluator.h"

namespace chainnet::optim {

double SimulationEvaluator::total_throughput(
    const edge::EdgeSystem& system, const edge::Placement& placement) {
  record_evaluation();
  const auto qn = edge::build_qn(system, placement, service_model_);
  return queueing::simulate(qn, config_).total_throughput();
}

double SurrogateEvaluator::total_throughput(
    const edge::EdgeSystem& system, const edge::Placement& placement) {
  record_evaluation();
  return surrogate_.total_throughput(system, placement);
}

void SurrogateEvaluator::total_throughput_batch(
    const edge::EdgeSystem& system,
    std::span<const edge::Placement> placements, std::span<double> out) {
  if (placements.empty()) return;
  if (placements.size() == 1) {
    out[0] = total_throughput(system, placements[0]);
    return;
  }
  for (std::size_t i = 0; i < placements.size(); ++i) record_evaluation();
  surrogate_.total_throughput_batch(system, placements, out);
}

double ApproximationEvaluator::total_throughput(
    const edge::EdgeSystem& system, const edge::Placement& placement) {
  record_evaluation();
  const auto qn = edge::build_qn(system, placement);
  return queueing::approximate(qn, config_).total_throughput();
}

}  // namespace chainnet::optim
