#include "optim/evaluator.h"

namespace chainnet::optim {

double SimulationEvaluator::total_throughput(
    const edge::EdgeSystem& system, const edge::Placement& placement) {
  record_evaluation();
  const auto qn = edge::build_qn(system, placement, service_model_);
  return queueing::simulate(qn, config_).total_throughput();
}

double SurrogateEvaluator::total_throughput(
    const edge::EdgeSystem& system, const edge::Placement& placement) {
  record_evaluation();
  return surrogate_.total_throughput(system, placement);
}

double ApproximationEvaluator::total_throughput(
    const edge::EdgeSystem& system, const edge::Placement& placement) {
  record_evaluation();
  const auto qn = edge::build_qn(system, placement);
  return queueing::approximate(qn, config_).total_throughput();
}

}  // namespace chainnet::optim
