#include "optim/annealing.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <exception>
#include <future>
#include <limits>
#include <stdexcept>
#include <utility>

namespace chainnet::optim {

using edge::EdgeSystem;
using edge::Placement;
using support::Rng;

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  // LINT:nondet(elapsed-seconds helper feeds time budgets and reports; a
  // budget only truncates the loop, every step is seed-deterministic)
  return std::chrono::duration<double>(Clock::now() - start).count();
}

double auto_temperature(const EdgeSystem& system) {
  return auto_initial_temperature(system);
}

/// Moves fragment (chain, frag) of `p` to `to_device`, swapping back a
/// random subset of foreign fragments already on `to_device` to the vacated
/// device. Returns false when the swap would break the distinct-device
/// invariant or memory feasibility.
bool try_move(const EdgeSystem& system, Placement& p, int chain, int frag,
              int to_device, Rng& rng) {
  const int from_device = p.device_of(chain, frag);
  p.assign(chain, frag, to_device);

  // Foreign fragments already on to_device (excluding the one just moved).
  auto foreign = p.fragments_on(to_device);
  std::erase_if(foreign, [&](const std::pair<int, int>& f) {
    return f.first == chain && f.second == frag;
  });
  if (!foreign.empty()) {
    // Choose b in [0, F] fragments to swap back to from_device.
    const auto b = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(foreign.size())));
    // Partial shuffle to pick b distinct fragments.
    for (std::size_t i = 0; i < b; ++i) {
      const auto j = static_cast<std::size_t>(rng.uniform_int(
          static_cast<std::int64_t>(i),
          static_cast<std::int64_t>(foreign.size()) - 1));
      std::swap(foreign[i], foreign[j]);
    }
    for (std::size_t i = 0; i < b; ++i) {
      const auto [ci, fj] = foreign[i];
      // The displaced fragment may only go to from_device if its chain has
      // no other fragment there.
      for (int jj = 0; jj < p.chain_length(ci); ++jj) {
        if (jj != fj && p.device_of(ci, jj) == from_device) return false;
      }
      p.assign(ci, fj, from_device);
    }
  }
  return p.memory_feasible(system);
}

}  // namespace

double auto_initial_temperature(const EdgeSystem& system) {
  return 0.05 * system.total_arrival_rate() + 1e-9;
}

void SearchCounters::merge(const SearchCounters& other) noexcept {
  proposals = saturating_add(proposals, other.proposals);
  proposal_failures =
      saturating_add(proposal_failures, other.proposal_failures);
  accepts = saturating_add(accepts, other.accepts);
  exchange_attempts =
      saturating_add(exchange_attempts, other.exchange_attempts);
  exchange_accepts = saturating_add(exchange_accepts, other.exchange_accepts);
  resample_events = saturating_add(resample_events, other.resample_events);
  resampled_replicas =
      saturating_add(resampled_replicas, other.resampled_replicas);
}

bool propose_move(const EdgeSystem& system, const Placement& current,
                  Rng& rng, const SaConfig& config, Placement& out) {
  for (int attempt = 0; attempt < config.max_move_attempts; ++attempt) {
    Placement candidate = current;
    const int chain = static_cast<int>(
        rng.uniform_int(0, system.num_chains() - 1));
    const int frag = static_cast<int>(
        rng.uniform_int(0, system.chains[chain].length() - 1));
    const int from = candidate.device_of(chain, frag);
    // Eligible targets: any other device with no fragment of this chain.
    std::vector<int> eligible;
    eligible.reserve(static_cast<std::size_t>(system.num_devices()));
    for (int k = 0; k < system.num_devices(); ++k) {
      if (k == from) continue;
      bool same_chain = false;
      for (int jj = 0; jj < candidate.chain_length(chain); ++jj) {
        if (candidate.device_of(chain, jj) == k) {
          same_chain = true;
          break;
        }
      }
      if (!same_chain) eligible.push_back(k);
    }
    if (eligible.empty()) continue;
    const int to = eligible[static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(eligible.size()) - 1))];
    if (try_move(system, candidate, chain, frag, to, rng)) {
      out = std::move(candidate);
      return true;
    }
  }
  return false;
}

SaResult anneal(const EdgeSystem& system, const Placement& initial,
                PlacementEvaluator& evaluator, const SaConfig& config) {
  initial.validate(system);
  // LINT:nondet(start stamp feeds the time budget and report seconds; a
  // budget only truncates the loop, every step is seed-deterministic)
  const auto start = Clock::now();
  const std::uint64_t eval_start = evaluator.evaluations();

  Rng rng(config.seed);
  double temperature = config.initial_temperature > 0.0
                           ? config.initial_temperature
                           : auto_temperature(system);

  Placement current = initial;
  double current_obj = evaluator.total_throughput(system, current);
  SaResult result;
  result.best = current;
  result.best_objective = current_obj;
  result.trajectory.push_back({0, seconds_since(start), current_obj,
                               current_obj,
                               evaluator.evaluations() - eval_start});
  if (config.record_best_placements) result.best_placements.push_back(current);

  for (int step = 1; step <= config.max_steps; ++step) {
    Placement candidate;
    if (propose_move(system, current, rng, config, candidate)) {
      result.counters.proposals += 1;
      const double candidate_obj =
          evaluator.total_throughput(system, candidate);
      const double delta = candidate_obj - current_obj;
      const bool accept =
          delta > 0.0 ||
          rng.uniform01() < std::exp(delta / std::max(temperature, 1e-12));
      if (accept) {
        result.counters.accepts += 1;
        current = std::move(candidate);
        current_obj = candidate_obj;
        if (current_obj > result.best_objective) {
          result.best = current;
          result.best_objective = current_obj;
        }
      }
    } else {
      result.counters.proposal_failures += 1;
    }
    temperature *= config.cooling_rate;
    result.trajectory.push_back({step, seconds_since(start), current_obj,
                                 result.best_objective,
                                 evaluator.evaluations() - eval_start});
    if (config.record_best_placements) {
      result.best_placements.push_back(result.best);
    }
  }

  result.evaluations = evaluator.evaluations() - eval_start;
  result.seconds = seconds_since(start);
  result.wall_seconds = result.seconds;
  result.trials = 1;
  return result;
}

void merge_trial(SaResult& acc, const SaResult& trial) {
  const int step_offset =
      acc.trajectory.empty() ? 0 : acc.trajectory.back().step;
  const double time_offset = acc.seconds;
  const std::uint64_t eval_offset = acc.evaluations;
  double best = acc.trials == 0 ? trial.trajectory.front().best
                                : acc.best_objective;
  // Skip the duplicate step-0 point on trials after the first.
  const std::size_t first = acc.trials == 0 ? 0 : 1;
  const bool track_placements = !trial.best_placements.empty();
  edge::Placement best_placement =
      acc.trials == 0 || acc.best_placements.empty()
          ? (track_placements ? trial.best_placements.front()
                              : edge::Placement())
          : acc.best_placements.back();
  double best_placement_obj = acc.trials == 0
                                  ? -std::numeric_limits<double>::infinity()
                                  : acc.best_objective;
  for (std::size_t i = first; i < trial.trajectory.size(); ++i) {
    TrajectoryPoint merged = trial.trajectory[i];
    merged.step += step_offset;
    merged.seconds += time_offset;
    merged.evals = saturating_add(merged.evals, eval_offset);
    best = std::max(best, merged.best);
    merged.best = best;
    acc.trajectory.push_back(merged);
    if (track_placements) {
      if (trial.trajectory[i].best > best_placement_obj) {
        best_placement = trial.best_placements[i];
        best_placement_obj = trial.trajectory[i].best;
      }
      acc.best_placements.push_back(best_placement);
    }
  }
  if (acc.trials == 0 || trial.best_objective > acc.best_objective) {
    acc.best = trial.best;
    acc.best_objective = trial.best_objective;
  }
  acc.evaluations = saturating_add(acc.evaluations, trial.evaluations);
  acc.seconds += trial.seconds;
  acc.trials += 1;
  acc.counters.merge(trial.counters);
}

std::vector<std::uint64_t> trial_seeds(std::uint64_t seed, int trials) {
  std::vector<std::uint64_t> seeds(static_cast<std::size_t>(trials));
  Rng seeder(seed);
  for (auto& s : seeds) s = seeder();
  return seeds;
}

SaResult anneal_trials(const EdgeSystem& system, const Placement& initial,
                       PlacementEvaluator& evaluator, const SaConfig& config,
                       int trials) {
  if (trials <= 0) throw std::invalid_argument("anneal_trials: trials <= 0");
  SaResult acc;
  const auto seeds = trial_seeds(config.seed, trials);
  for (int t = 0; t < trials; ++t) {
    SaConfig trial_config = config;
    trial_config.seed = seeds[static_cast<std::size_t>(t)];
    merge_trial(acc, anneal(system, initial, evaluator, trial_config));
  }
  acc.wall_seconds = acc.seconds;
  return acc;
}

SaResult anneal_for(const EdgeSystem& system, const Placement& initial,
                    PlacementEvaluator& evaluator, const SaConfig& config,
                    double budget_seconds) {
  SaResult acc;
  Rng seeder(config.seed);
  // Always run at least one trial so a result exists even when the budget
  // is smaller than a single trial's duration.
  do {
    SaConfig trial_config = config;
    trial_config.seed = seeder();
    merge_trial(acc, anneal(system, initial, evaluator, trial_config));
  } while (acc.seconds < budget_seconds);
  acc.wall_seconds = acc.seconds;
  return acc;
}

SaResult anneal_trials_parallel(const EdgeSystem& system,
                                const Placement& initial,
                                runtime::EvalService& service,
                                const SaConfig& config, int trials) {
  if (trials <= 0) {
    throw std::invalid_argument("anneal_trials_parallel: trials <= 0");
  }
  if (service.pool().worker_index_here() >= 0) {
    // Called from inside the pool: waiting on sibling tasks would deadlock
    // a 1-thread pool, so run serially on this worker's evaluator.
    return anneal_trials(system, initial, service.evaluator_here(), config,
                         trials);
  }
  initial.validate(system);
  // LINT:nondet(start stamp feeds the time budget and report seconds; a
  // budget only truncates the loop, every step is seed-deterministic)
  const auto start = Clock::now();
  const auto seeds = trial_seeds(config.seed, trials);
  std::vector<std::future<SaResult>> futures;
  futures.reserve(static_cast<std::size_t>(trials));
  for (int t = 0; t < trials; ++t) {
    SaConfig trial_config = config;
    trial_config.seed = seeds[static_cast<std::size_t>(t)];
    futures.push_back(
        service.pool().submit([&system, &initial, &service, trial_config] {
          return anneal(system, initial, service.evaluator_here(),
                        trial_config);
        }));
  }
  // Merge in submission order — identical to the serial driver — and drain
  // every future before rethrowing any trial's failure.
  SaResult acc;
  std::exception_ptr first_error;
  for (auto& future : futures) {
    try {
      merge_trial(acc, future.get());
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
  acc.wall_seconds = seconds_since(start);
  return acc;
}

SaResult anneal_batched(const EdgeSystem& system, const Placement& initial,
                        runtime::EvalService& service, const SaConfig& config,
                        int pool_size) {
  if (pool_size <= 0) {
    throw std::invalid_argument("anneal_batched: pool_size <= 0");
  }
  initial.validate(system);
  // LINT:nondet(start stamp feeds the time budget and report seconds; a
  // budget only truncates the loop, every step is seed-deterministic)
  const auto start = Clock::now();
  const std::uint64_t eval_start = service.oracle_evaluations();

  Rng rng(config.seed);
  double temperature = config.initial_temperature > 0.0
                           ? config.initial_temperature
                           : auto_temperature(system);

  Placement current = initial;
  double current_obj = service.evaluate(system, current);
  SaResult result;
  result.best = current;
  result.best_objective = current_obj;
  result.trajectory.push_back({0, seconds_since(start), current_obj,
                               current_obj,
                               service.oracle_evaluations() - eval_start});
  if (config.record_best_placements) result.best_placements.push_back(current);

  std::vector<Placement> candidates;
  for (int step = 1; step <= config.max_steps; ++step) {
    candidates.clear();
    candidates.reserve(static_cast<std::size_t>(pool_size));
    for (int k = 0; k < pool_size; ++k) {
      Placement candidate;
      if (propose_move(system, current, rng, config, candidate)) {
        candidates.push_back(std::move(candidate));
      } else {
        result.counters.proposal_failures += 1;
      }
    }
    result.counters.proposals += candidates.size();
    if (!candidates.empty()) {
      const auto objectives = service.evaluate_batch(system, candidates);
      std::size_t best_k = 0;
      for (std::size_t k = 1; k < objectives.size(); ++k) {
        if (objectives[k] > objectives[best_k]) best_k = k;
      }
      const double delta = objectives[best_k] - current_obj;
      const bool accept =
          delta > 0.0 ||
          rng.uniform01() < std::exp(delta / std::max(temperature, 1e-12));
      if (accept) {
        result.counters.accepts += 1;
        current = std::move(candidates[best_k]);
        current_obj = objectives[best_k];
        if (current_obj > result.best_objective) {
          result.best = current;
          result.best_objective = current_obj;
        }
      }
    }
    temperature *= config.cooling_rate;
    result.trajectory.push_back({step, seconds_since(start), current_obj,
                                 result.best_objective,
                                 service.oracle_evaluations() - eval_start});
    if (config.record_best_placements) {
      result.best_placements.push_back(result.best);
    }
  }

  result.evaluations = service.oracle_evaluations() - eval_start;
  result.seconds = seconds_since(start);
  result.wall_seconds = result.seconds;
  result.trials = 1;
  return result;
}

}  // namespace chainnet::optim
