#include "optim/initial.h"

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace chainnet::optim {

using edge::EdgeSystem;
using edge::Placement;

Placement initial_placement(const EdgeSystem& system) {
  system.validate();
  const int num_devices = system.num_devices();
  for (const auto& chain : system.chains) {
    if (chain.length() > num_devices) {
      throw std::invalid_argument(
          "initial_placement: chain '" + chain.name +
          "' has more fragments than there are devices");
    }
  }

  std::vector<double> remaining(static_cast<std::size_t>(num_devices));
  std::vector<bool> used(static_cast<std::size_t>(num_devices), false);
  for (int k = 0; k < num_devices; ++k) {
    remaining[static_cast<std::size_t>(k)] =
        system.devices[k].memory_capacity;
  }

  Placement placement(system);
  for (int i = 0; i < system.num_chains(); ++i) {
    for (int j = 0; j < system.chains[i].length(); ++j) {
      // Rank: unused first, then larger remaining memory; device index
      // breaks ties deterministically.
      int best = -1;
      for (int k = 0; k < num_devices; ++k) {
        // Skip devices already executing a fragment of this chain.
        bool same_chain = false;
        for (int jj = 0; jj < j; ++jj) {
          if (placement.device_of(i, jj) == k) {
            same_chain = true;
            break;
          }
        }
        if (same_chain) continue;
        if (best < 0) {
          best = k;
          continue;
        }
        const auto ku = static_cast<std::size_t>(k);
        const auto bu = static_cast<std::size_t>(best);
        const bool k_better =
            (!used[ku] && used[bu]) ||
            (used[ku] == used[bu] && remaining[ku] > remaining[bu]);
        if (k_better) best = k;
      }
      if (best < 0) {
        throw std::logic_error("initial_placement: no eligible device");
      }
      placement.assign(i, j, best);
      const auto bu = static_cast<std::size_t>(best);
      used[bu] = true;
      remaining[bu] -= system.chains[i].fragments[j].memory_demand;
    }
  }
  return placement;
}

}  // namespace chainnet::optim
