// Ranking-score initial placement (§VIII-C2): devices are ranked with
// unused devices strictly above used ones and, within each group, by
// remaining memory capacity; each fragment in turn takes the best-ranked
// device that its chain does not already occupy; scores are updated and
// devices re-ranked after every assignment. The result is the "vanilla
// deployment that pursues a lower loss rate" every search trial starts
// from (and p_0 of eq. 19).
#pragma once

#include "edge/model.h"
#include "edge/placement.h"

namespace chainnet::optim {

/// Builds the initial placement. Throws std::invalid_argument when a chain
/// is longer than the device count (no distinct-device placement exists).
edge::Placement initial_placement(const edge::EdgeSystem& system);

}  // namespace chainnet::optim
