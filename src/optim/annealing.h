// Simulated-annealing placement search (§VII): the neighborhood move
// (fragment relocation with optional swap-back of displaced fragments),
// Metropolis acceptance on total throughput, geometric cooling, and the
// multi-trial driver used in §VIII-C (each trial restarts from the same
// initial placement with a fresh random stream — Fig. 14a).
#pragma once

#include <cstdint>
#include <vector>

#include "edge/model.h"
#include "edge/placement.h"
#include "optim/evaluator.h"
#include "runtime/eval_service.h"
#include "support/rng.h"

namespace chainnet::optim {

struct SaConfig {
  int max_steps = 100;           ///< search steps per trial (§VIII-C2)
  double initial_temperature = 0.0;  ///< tau_0; 0 = auto (see annealing.cpp)
  double cooling_rate = 0.9;     ///< gamma (§VIII-C2)
  std::uint64_t seed = 1;
  /// Candidate placements must satisfy the memory constraint of eq. (2);
  /// the move generator redraws up to this many times per step.
  int max_move_attempts = 50;
  /// When set, SaResult::best_placements records the best decision at every
  /// trajectory point (used to post-simulate the Fig. 14c-d curves).
  bool record_best_placements = false;
};

/// One recorded point of a search trajectory (drives Fig. 14-15 curves).
struct TrajectoryPoint {
  int step = 0;                ///< cumulative step index across trials
  double seconds = 0.0;        ///< wall-clock since the search began
  double current = 0.0;        ///< objective of the current decision
  double best = 0.0;           ///< best objective seen so far
  /// Cumulative oracle evaluations when this point was recorded (the
  /// placements-to-quality axis of the bench_search harness).
  std::uint64_t evals = 0;
};

/// Diagnostic counters every search driver fills in, so algorithm
/// comparisons (bench_search, the CLI) can explain *why* a run scored the
/// way it did — a PT run with a frozen exchange rate or an SA run with a
/// near-zero late acceptance rate is diagnosable from these alone.
/// Population-only counters (exchanges, resamples) stay zero for plain SA.
struct SearchCounters {
  std::uint64_t proposals = 0;         ///< successfully generated neighbors
  std::uint64_t proposal_failures = 0; ///< steps/slots with no feasible move
  std::uint64_t accepts = 0;           ///< Metropolis acceptances
  std::uint64_t exchange_attempts = 0; ///< PT replica-exchange attempts
  std::uint64_t exchange_accepts = 0;  ///< PT replica-exchange swaps
  std::uint64_t resample_events = 0;   ///< population-annealing resamples
  std::uint64_t resampled_replicas = 0;///< replicas replaced by resampling

  /// Fraction of generated proposals that were accepted.
  double acceptance_rate() const noexcept {
    return proposals == 0
               ? 0.0
               : static_cast<double>(accepts) / static_cast<double>(proposals);
  }
  /// Fraction of attempted replica exchanges that swapped.
  double exchange_rate() const noexcept {
    return exchange_attempts == 0
               ? 0.0
               : static_cast<double>(exchange_accepts) /
                     static_cast<double>(exchange_attempts);
  }
  /// Saturating element-wise accumulation (multi-trial merges).
  void merge(const SearchCounters& other) noexcept;
};

struct SaResult {
  edge::Placement best;
  double best_objective = 0.0;
  std::vector<TrajectoryPoint> trajectory;
  /// Parallel to trajectory when SaConfig::record_best_placements is set.
  std::vector<edge::Placement> best_placements;
  std::uint64_t evaluations = 0;
  /// Sum of per-trial durations (the serial-equivalent time axis; the
  /// trajectory's `seconds` fields share this axis across every driver so
  /// parallel and serial runs stay directly comparable).
  double seconds = 0.0;
  /// Actual elapsed wall-clock of the driver call. Equals `seconds` for the
  /// serial drivers; smaller under parallel execution.
  double wall_seconds = 0.0;
  int trials = 0;
  /// Acceptance/exchange/resample accounting (summed across trials).
  SearchCounters counters;
};

/// Merges `trial` into `acc`, offsetting the step/time/eval axes so the
/// combined trajectory is monotone in all three; the best-so-far series is
/// recomputed across trials and counters are summed. Shared by
/// anneal_trials/anneal_for here and the algorithm-agnostic multi-trial
/// drivers in src/search/.
void merge_trial(SaResult& acc, const SaResult& trial);

/// The per-trial seed sequence every multi-trial driver draws from
/// `seed` (trial t gets the t-th output of a fresh Rng(seed)), exposed so
/// serial, parallel, and search-subsystem drivers stay bit-compatible.
std::vector<std::uint64_t> trial_seeds(std::uint64_t seed, int trials);

/// The tau_0 used when SaConfig::initial_temperature is 0: a fraction of
/// the total offered load, so the initial acceptance probability of
/// moderately worse moves is meaningful across problems of very different
/// throughput scales. Shared with the src/search/ optimizers so every
/// algorithm anneals on the identical schedule.
double auto_initial_temperature(const edge::EdgeSystem& system);

/// Generates one candidate neighbor of `current` per the paper's move:
/// pick a random (chain, fragment), move it to a random other device not
/// already hosting that chain, and swap back a random subset of the
/// displaced device's foreign fragments. Returns false if no feasible move
/// was found within config.max_move_attempts.
bool propose_move(const edge::EdgeSystem& system,
                  const edge::Placement& current, support::Rng& rng,
                  const SaConfig& config, edge::Placement& out);

/// Runs one SA trial from `initial`.
SaResult anneal(const edge::EdgeSystem& system, const edge::Placement& initial,
                PlacementEvaluator& evaluator, const SaConfig& config);

/// Multi-trial driver: runs `trials` independent trials (seed varied),
/// each restarting from `initial`; trajectories are concatenated with
/// cumulative step/time axes and the best decision over all trials is
/// returned.
SaResult anneal_trials(const edge::EdgeSystem& system,
                       const edge::Placement& initial,
                       PlacementEvaluator& evaluator, const SaConfig& config,
                       int trials);

/// Time-budget driver (fixed-time comparison, §VIII-C4a): keeps starting
/// new trials until `budget_seconds` of wall-clock time is exhausted.
SaResult anneal_for(const edge::EdgeSystem& system,
                    const edge::Placement& initial,
                    PlacementEvaluator& evaluator, const SaConfig& config,
                    double budget_seconds);

/// Parallel multi-trial driver: same per-trial seeds (drawn from one seeder
/// on config.seed) and same merge order as anneal_trials, with the trials
/// fanned out across service.pool(); each trial runs entirely on one worker
/// against that worker's private evaluator. With a 1-thread pool and a
/// value-deterministic oracle this reproduces anneal_trials bit-for-bit
/// (same best placement, objective, and evaluation count). Must be called
/// from outside the pool; on a pool worker it degrades to the serial driver
/// on that worker's evaluator rather than deadlocking.
SaResult anneal_trials_parallel(const edge::EdgeSystem& system,
                                const edge::Placement& initial,
                                runtime::EvalService& service,
                                const SaConfig& config, int trials);

/// Batch-evaluated neighbor-pool variant: each step proposes up to
/// `pool_size` independent moves from the current decision, scores them as
/// one batch through the service (all workers), and Metropolis-accepts the
/// best-scoring candidate. Reproducible across thread counts when the
/// oracle's value depends only on the placement (fixed-seed simulation,
/// approximation, surrogate); trajectory/evaluation semantics match
/// anneal() with pool_size evaluations per step.
///
/// Plan-cache behavior: when the service's evaluators replay compiled
/// execution plans (surrogate oracles), the first step of a run compiles at
/// most two plans — width pool_size and width 1 — through the service's
/// shared gnn::PlanCache; every subsequent step of this run, and every
/// other run over the same system topology, replays them. Placement
/// mutations never recompile (plans are keyed on topology + model shape +
/// batch width, not on where fragments sit).
SaResult anneal_batched(const edge::EdgeSystem& system,
                        const edge::Placement& initial,
                        runtime::EvalService& service, const SaConfig& config,
                        int pool_size);

}  // namespace chainnet::optim
