#include "search/population_annealing.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>
#include <vector>

#include "search/population.h"

namespace chainnet::search {

using edge::EdgeSystem;
using edge::Placement;

PopulationAnnealing::PopulationAnnealing(runtime::EvalService& service,
                                         const SearchConfig& config)
    : service_(service), config_(config) {
  if (config_.population <= 0) {
    throw std::invalid_argument("PopulationAnnealing: population <= 0");
  }
}

optim::SaResult PopulationAnnealing::run(const EdgeSystem& system,
                                         const Placement& initial,
                                         std::uint64_t seed) {
  initial.validate(system);
  // LINT:nondet(start stamp feeds the time budget and report seconds; a
  // budget only truncates the loop, every step is seed-deterministic)
  const auto start = detail::Clock::now();
  const std::uint64_t eval_start = service_.oracle_evaluations();
  const int replicas = config_.population;

  auto population =
      detail::make_population(system, initial, service_, seed, replicas);
  support::Rng resample_rng =
      detail::auxiliary_stream(seed, detail::kResampleSalt);

  double tau = config_.sa.initial_temperature > 0.0
                   ? config_.sa.initial_temperature
                   : optim::auto_initial_temperature(system);

  optim::SaResult result;
  result.best = population.members[0];
  result.best_objective = population.objectives[0];
  result.trajectory.push_back(
      {0, detail::seconds_since(start), result.best_objective,
       result.best_objective, service_.oracle_evaluations() - eval_start});
  if (config_.sa.record_best_placements) {
    result.best_placements.push_back(result.best);
  }

  std::vector<double> temperatures;
  for (int step = 1; step <= config_.sa.max_steps; ++step) {
    temperatures.assign(static_cast<std::size_t>(replicas), tau);
    detail::metropolis_step(system, population, service_, config_.sa,
                            temperatures, result);

    const double tau_next = tau * config_.sa.cooling_rate;
    if (replicas >= 2 && config_.resample_interval > 0 &&
        step % config_.resample_interval == 0) {
      const auto n = static_cast<std::size_t>(replicas);
      const double dbeta = 1.0 / std::max(tau_next, 1e-12) -
                           1.0 / std::max(tau, 1e-12);
      const double x_max = *std::max_element(population.objectives.begin(),
                                             population.objectives.end());
      // Weights relative to the best replica so the exponentials stay in
      // (0, 1] and never overflow however aggressive the cooling.
      std::vector<double> weights(n);
      double total = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        weights[i] = std::exp(dbeta * (population.objectives[i] - x_max));
        total += weights[i];
      }
      // Systematic resampling: one uniform, N evenly spaced pointers.
      const double u = resample_rng.uniform01();
      std::vector<std::size_t> source(n);
      std::size_t i = 0;
      double cumulative = weights[0];
      for (std::size_t j = 0; j < n; ++j) {
        const double pointer =
            (static_cast<double>(j) + u) / static_cast<double>(n) * total;
        while (cumulative < pointer && i + 1 < n) {
          ++i;
          cumulative += weights[i];
        }
        source[j] = i;
      }
      std::vector<Placement> members(n);
      std::vector<double> objectives(n);
      std::uint64_t replaced = 0;
      for (std::size_t j = 0; j < n; ++j) {
        members[j] = population.members[source[j]];
        objectives[j] = population.objectives[source[j]];
        if (source[j] != j) ++replaced;
      }
      population.members = std::move(members);
      population.objectives = std::move(objectives);
      result.counters.resample_events += 1;
      result.counters.resampled_replicas += replaced;
    }

    tau = tau_next;
    const auto leader =
        static_cast<std::size_t>(population.best_member());
    result.trajectory.push_back(
        {step, detail::seconds_since(start), population.objectives[leader],
         result.best_objective, service_.oracle_evaluations() - eval_start});
    if (config_.sa.record_best_placements) {
      result.best_placements.push_back(result.best);
    }
  }

  result.evaluations = service_.oracle_evaluations() - eval_start;
  result.seconds = detail::seconds_since(start);
  result.wall_seconds = result.seconds;
  result.trials = 1;
  return result;
}

}  // namespace chainnet::search
