// Wide-neighborhood best-of-B search on the batch engine: a single chain
// that, each step, generates B stratified candidate moves (cycling
// relocate / swap / double-relocate across slots — search/moves.h), scores
// all B as one batch, and Metropolis-accepts the best-scoring candidate.
// The neighborhood is B-wide per unit of schedule, so the chain descends
// the objective landscape far faster per step than serial SA at near-equal
// wall-clock per step (the batch engine amortizes the B evaluations).
//
// Slot 0 always draws the paper's relocate move, so B = 1 replays serial
// optim::anneal bit-for-bit (same stream, same proposals, same acceptance
// draws, same evaluation counts). Slots whose move generator found no
// feasible candidate are padded with the current placement to keep the
// batch width constant at B; a step where every slot failed skips its
// batch entirely, matching serial SA's failure path.
#pragma once

#include "search/optimizer.h"

namespace chainnet::search {

class BestOfB final : public Optimizer {
 public:
  BestOfB(runtime::EvalService& service, const SearchConfig& config);

  std::string_view name() const noexcept override { return "bestofb"; }
  optim::SaResult run(const edge::EdgeSystem& system,
                      const edge::Placement& initial,
                      std::uint64_t seed) override;

 private:
  runtime::EvalService& service_;
  SearchConfig config_;
};

}  // namespace chainnet::search
