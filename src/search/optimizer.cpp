#include "search/optimizer.h"

#include <stdexcept>

#include "search/best_of_b.h"
#include "search/parallel_tempering.h"
#include "search/population.h"
#include "search/population_annealing.h"

namespace chainnet::search {

using edge::EdgeSystem;
using edge::Placement;

namespace {

/// Serial SA behind the Optimizer interface: the baseline every population
/// algorithm is compared against. Runs optim::anneal on the service's
/// owning-thread evaluator, so its oracle values match the batched
/// optimizers' exactly (same evaluator construction, same plan cache).
class SaOptimizer final : public Optimizer {
 public:
  SaOptimizer(runtime::EvalService& service, const SearchConfig& config)
      : service_(service), config_(config) {}

  std::string_view name() const noexcept override { return "sa"; }

  optim::SaResult run(const EdgeSystem& system, const Placement& initial,
                      std::uint64_t seed) override {
    optim::SaConfig sa = config_.sa;
    sa.seed = seed;
    return optim::anneal(system, initial, service_.evaluator_here(), sa);
  }

 private:
  runtime::EvalService& service_;
  SearchConfig config_;
};

}  // namespace

std::string_view algo_name(Algo algo) noexcept {
  switch (algo) {
    case Algo::kSa:
      return "sa";
    case Algo::kPt:
      return "pt";
    case Algo::kPopAnneal:
      return "popanneal";
    case Algo::kBestOfB:
      return "bestofb";
  }
  return "unknown";
}

bool parse_algo(std::string_view text, Algo& out) noexcept {
  if (text == "sa") {
    out = Algo::kSa;
  } else if (text == "pt") {
    out = Algo::kPt;
  } else if (text == "popanneal") {
    out = Algo::kPopAnneal;
  } else if (text == "bestofb") {
    out = Algo::kBestOfB;
  } else {
    return false;
  }
  return true;
}

std::unique_ptr<Optimizer> make_optimizer(Algo algo,
                                          runtime::EvalService& service,
                                          const SearchConfig& config) {
  switch (algo) {
    case Algo::kSa:
      return std::make_unique<SaOptimizer>(service, config);
    case Algo::kPt:
      return std::make_unique<ParallelTempering>(service, config);
    case Algo::kPopAnneal:
      return std::make_unique<PopulationAnnealing>(service, config);
    case Algo::kBestOfB:
      return std::make_unique<BestOfB>(service, config);
  }
  throw std::invalid_argument("make_optimizer: unknown algorithm");
}

optim::SaResult run_trials(Optimizer& optimizer, const EdgeSystem& system,
                           const Placement& initial, std::uint64_t seed,
                           int trials) {
  if (trials <= 0) throw std::invalid_argument("run_trials: trials <= 0");
  optim::SaResult acc;
  const auto seeds = optim::trial_seeds(seed, trials);
  for (const std::uint64_t trial_seed : seeds) {
    optim::merge_trial(acc, optimizer.run(system, initial, trial_seed));
  }
  acc.wall_seconds = acc.seconds;
  return acc;
}

optim::SaResult run_for(Optimizer& optimizer, const EdgeSystem& system,
                        const Placement& initial, std::uint64_t seed,
                        double budget_seconds) {
  optim::SaResult acc;
  support::Rng seeder(seed);
  // Always run at least one trial so a result exists even when the budget
  // is smaller than a single trial's duration (mirrors optim::anneal_for).
  do {
    optim::merge_trial(acc, optimizer.run(system, initial, seeder()));
  } while (acc.seconds < budget_seconds);
  acc.wall_seconds = acc.seconds;
  return acc;
}

}  // namespace chainnet::search
