// Batch-native population search on the compiled batch engine.
//
// Every optimizer here shares one contract:
//  - batched by construction: all oracle traffic goes through
//    runtime::EvalService::evaluate_batch at a constant width, so the
//    surrogate's plan cache compiles at most two plans for a whole run and
//    the batch engine amortizes every forward;
//  - reproducible: a fixed seed yields bit-for-bit identical trajectories
//    regardless of the service's thread count (all RNG draws happen on the
//    driver thread; the oracle is used purely as a placement -> value map);
//  - SA-anchored: a population of 1 replays serial optim::anneal's random
//    stream exactly, so every algorithm degenerates to the paper's SA
//    bit-for-bit and comparisons isolate the population mechanism itself.
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>

#include "edge/model.h"
#include "edge/placement.h"
#include "optim/annealing.h"
#include "runtime/eval_service.h"

namespace chainnet::search {

/// Knobs of the search subsystem. `sa` carries the schedule every
/// algorithm anneals on (steps, cooling rate, initial temperature, move
/// attempts); the rest parameterize the population mechanisms.
struct SearchConfig {
  optim::SaConfig sa;
  /// Population width: tempering chains (pt), replicas (popanneal), or the
  /// neighbor-pool size B (bestofb). 1 reduces every optimizer to serial
  /// SA bit-for-bit.
  int population = 16;
  /// pt: hottest/coldest temperature ratio of the geometric ladder. Chain
  /// 0 runs the SA schedule tau(step); chain k runs
  /// tau(step) * ladder_ratio^(k/(K-1)).
  double ladder_ratio = 24.0;
  /// pt: steps between replica-exchange sweeps (deterministic even/odd
  /// pairing, alternating each sweep). <= 0 disables exchanges.
  int exchange_interval = 1;
  /// popanneal: steps between resampling events (systematic resampling on
  /// the annealing weights). <= 0 disables resampling.
  int resample_interval = 5;
};

/// Common interface: one trial from `initial` under `seed`. Results reuse
/// optim::SaResult wholesale — trajectory (step/seconds/evals axes), best
/// placement, and the acceptance/exchange/resample counters — so the
/// fig14/fig15 analysis and the CLI treat every algorithm uniformly.
class Optimizer {
 public:
  virtual ~Optimizer() = default;
  /// Stable algorithm tag ("sa", "pt", "popanneal", "bestofb").
  virtual std::string_view name() const noexcept = 0;
  /// Runs one trial from `initial`; `seed` overrides the config's seed so
  /// multi-trial drivers can restart with fresh streams.
  virtual optim::SaResult run(const edge::EdgeSystem& system,
                              const edge::Placement& initial,
                              std::uint64_t seed) = 0;
};

enum class Algo { kSa, kPt, kPopAnneal, kBestOfB };

std::string_view algo_name(Algo algo) noexcept;

/// Parses the CLI spelling ("sa" | "pt" | "popanneal" | "bestofb").
/// Returns false (out untouched) on anything else.
bool parse_algo(std::string_view text, Algo& out) noexcept;

/// Builds the named optimizer on `service`. The service must outlive the
/// optimizer. Throws std::invalid_argument on nonsensical configs
/// (population <= 0, ladder_ratio < 1).
std::unique_ptr<Optimizer> make_optimizer(Algo algo,
                                          runtime::EvalService& service,
                                          const SearchConfig& config);

/// Multi-trial driver: bit-compatible with optim::anneal_trials (same
/// per-trial seeds via optim::trial_seeds, same merge order/semantics via
/// optim::merge_trial) but algorithm-agnostic.
optim::SaResult run_trials(Optimizer& optimizer,
                           const edge::EdgeSystem& system,
                           const edge::Placement& initial, std::uint64_t seed,
                           int trials);

/// Time-budget driver mirroring optim::anneal_for: keeps starting fresh
/// trials until `budget_seconds` of accumulated trial time is exhausted
/// (always runs at least one).
optim::SaResult run_for(Optimizer& optimizer, const edge::EdgeSystem& system,
                        const edge::Placement& initial, std::uint64_t seed,
                        double budget_seconds);

}  // namespace chainnet::search
