// Population annealing on the batch engine: N replicas follow the SA
// schedule in lockstep (each sweep's N candidates scored as one batch),
// and at periodic temperature drops the population is resampled toward
// the replicas the colder Boltzmann distribution favors — low performers
// are culled and high performers cloned, keeping the whole population
// near equilibrium as it cools.
//
// Resampling is systematic (low variance): replica weights
//   w_i = exp(dbeta * (X_i - X_max)),  dbeta = 1/T_next - 1/T_current,
// one uniform from a dedicated stream places N evenly spaced pointers on
// the cumulative weights. Clones inherit placement and objective but keep
// the slot's RNG stream, so N = 1 — where resampling is skipped outright —
// replays serial SA bit-for-bit.
#pragma once

#include "search/optimizer.h"

namespace chainnet::search {

class PopulationAnnealing final : public Optimizer {
 public:
  PopulationAnnealing(runtime::EvalService& service,
                      const SearchConfig& config);

  std::string_view name() const noexcept override { return "popanneal"; }
  optim::SaResult run(const edge::EdgeSystem& system,
                      const edge::Placement& initial,
                      std::uint64_t seed) override;

 private:
  runtime::EvalService& service_;
  SearchConfig config_;
};

}  // namespace chainnet::search
