// Parallel tempering (replica exchange) on the batch engine: K chains run
// the paper's SA move at temperatures spread across a geometric ladder,
// stepped in lockstep so each sweep's K candidate evaluations form one
// batch. Hot chains escape basins; exchanges hand their discoveries down
// the ladder to the cold chain, which follows the serial SA schedule
// exactly (so K = 1 is serial SA bit-for-bit).
//
// The ladder *cools*: chain k's temperature at step s is
//   T_k(s) = tau(s) * ladder_ratio^(k/(K-1)),
// with tau(s) the SA geometric schedule. Exchange sweeps are
// deterministic even/odd pairings — sweep t attempts pairs (k, k+1) for
// k = t mod 2, 2 + t mod 2, ... — with acceptance drawn from a dedicated
// stream so exchange decisions never perturb any chain's trajectory.
#pragma once

#include "search/optimizer.h"

namespace chainnet::search {

class ParallelTempering final : public Optimizer {
 public:
  ParallelTempering(runtime::EvalService& service, const SearchConfig& config);

  std::string_view name() const noexcept override { return "pt"; }
  optim::SaResult run(const edge::EdgeSystem& system,
                      const edge::Placement& initial,
                      std::uint64_t seed) override;

 private:
  runtime::EvalService& service_;
  SearchConfig config_;
};

}  // namespace chainnet::search
