#include "search/moves.h"

#include <cstdint>
#include <utility>

namespace chainnet::search {

using edge::EdgeSystem;
using edge::Placement;
using support::Rng;

namespace {

/// True when chain `chain` of `p` has any fragment on `device`.
bool chain_on_device(const Placement& p, int chain, int device) {
  for (int j = 0; j < p.chain_length(chain); ++j) {
    if (p.device_of(chain, j) == device) return true;
  }
  return false;
}

bool propose_swap(const EdgeSystem& system, const Placement& current,
                  Rng& rng, const optim::SaConfig& config, Placement& out) {
  for (int attempt = 0; attempt < config.max_move_attempts; ++attempt) {
    const int ci =
        static_cast<int>(rng.uniform_int(0, system.num_chains() - 1));
    const int fi = static_cast<int>(
        rng.uniform_int(0, system.chains[ci].length() - 1));
    const int cj =
        static_cast<int>(rng.uniform_int(0, system.num_chains() - 1));
    const int fj = static_cast<int>(
        rng.uniform_int(0, system.chains[cj].length() - 1));
    if (ci == cj && fi == fj) continue;
    const int da = current.device_of(ci, fi);
    const int db = current.device_of(cj, fj);
    if (da == db) continue;
    if (ci != cj) {
      // Each chain gains the other's device; the distinct-device invariant
      // holds only if neither chain already sits there.
      if (chain_on_device(current, ci, db)) continue;
      if (chain_on_device(current, cj, da)) continue;
    }
    // Same chain: its device *set* is unchanged, so distinctness holds.
    Placement candidate = current;
    candidate.assign(ci, fi, db);
    candidate.assign(cj, fj, da);
    if (!candidate.memory_feasible(system)) continue;
    out = std::move(candidate);
    return true;
  }
  return false;
}

bool propose_double(const EdgeSystem& system, const Placement& current,
                    Rng& rng, const optim::SaConfig& config, Placement& out) {
  Placement first;
  if (!optim::propose_move(system, current, rng, config, first)) return false;
  Placement second;
  if (optim::propose_move(system, first, rng, config, second)) {
    out = std::move(second);
  } else {
    out = std::move(first);  // a single hop is still a valid neighbor
  }
  return true;
}

}  // namespace

bool propose_kind(MoveKind kind, const EdgeSystem& system,
                  const Placement& current, Rng& rng,
                  const optim::SaConfig& config, Placement& out) {
  switch (kind) {
    case MoveKind::kRelocate:
      return optim::propose_move(system, current, rng, config, out);
    case MoveKind::kSwap:
      return propose_swap(system, current, rng, config, out);
    case MoveKind::kDoubleRelocate:
      return propose_double(system, current, rng, config, out);
  }
  return false;
}

}  // namespace chainnet::search
