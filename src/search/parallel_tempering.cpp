#include "search/parallel_tempering.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>
#include <vector>

#include "search/population.h"

namespace chainnet::search {

using edge::EdgeSystem;
using edge::Placement;

ParallelTempering::ParallelTempering(runtime::EvalService& service,
                                     const SearchConfig& config)
    : service_(service), config_(config) {
  if (config_.population <= 0) {
    throw std::invalid_argument("ParallelTempering: population <= 0");
  }
  if (config_.ladder_ratio < 1.0) {
    throw std::invalid_argument("ParallelTempering: ladder_ratio < 1");
  }
}

optim::SaResult ParallelTempering::run(const EdgeSystem& system,
                                       const Placement& initial,
                                       std::uint64_t seed) {
  initial.validate(system);
  // LINT:nondet(start stamp feeds the time budget and report seconds; a
  // budget only truncates the loop, every step is seed-deterministic)
  const auto start = detail::Clock::now();
  const std::uint64_t eval_start = service_.oracle_evaluations();
  const int chains = config_.population;

  auto population =
      detail::make_population(system, initial, service_, seed, chains);
  support::Rng exchange_rng =
      detail::auxiliary_stream(seed, detail::kExchangeSalt);

  double tau = config_.sa.initial_temperature > 0.0
                   ? config_.sa.initial_temperature
                   : optim::auto_initial_temperature(system);

  optim::SaResult result;
  result.best = population.members[0];
  result.best_objective = population.objectives[0];
  result.trajectory.push_back(
      {0, detail::seconds_since(start), result.best_objective,
       result.best_objective, service_.oracle_evaluations() - eval_start});
  if (config_.sa.record_best_placements) {
    result.best_placements.push_back(result.best);
  }

  std::vector<double> temperatures(static_cast<std::size_t>(chains));
  for (int step = 1; step <= config_.sa.max_steps; ++step) {
    for (int k = 0; k < chains; ++k) {
      const double exponent =
          chains == 1 ? 0.0
                      : static_cast<double>(k) /
                            static_cast<double>(chains - 1);
      temperatures[static_cast<std::size_t>(k)] =
          tau * std::pow(config_.ladder_ratio, exponent);
    }
    detail::metropolis_step(system, population, service_, config_.sa,
                            temperatures, result);

    if (chains >= 2 && config_.exchange_interval > 0 &&
        step % config_.exchange_interval == 0) {
      // Even/odd alternation covers every adjacent pair over two sweeps
      // while keeping each sweep's pairs disjoint (a swap cannot cascade
      // within one sweep), so the schedule is deterministic by step index.
      const int parity = (step / config_.exchange_interval) % 2;
      for (int k = parity; k + 1 < chains; k += 2) {
        const auto lo = static_cast<std::size_t>(k);
        const auto hi = lo + 1;
        result.counters.exchange_attempts += 1;
        const double arg =
            (1.0 / std::max(temperatures[lo], 1e-12) -
             1.0 / std::max(temperatures[hi], 1e-12)) *
            (population.objectives[hi] - population.objectives[lo]);
        const bool swap_replicas =
            arg > 0.0 || exchange_rng.uniform01() < std::exp(arg);
        if (swap_replicas) {
          result.counters.exchange_accepts += 1;
          // Streams stay with the temperature slot: only the content moves.
          std::swap(population.members[lo], population.members[hi]);
          std::swap(population.objectives[lo], population.objectives[hi]);
        }
      }
    }

    tau *= config_.sa.cooling_rate;
    const auto leader =
        static_cast<std::size_t>(population.best_member());
    result.trajectory.push_back(
        {step, detail::seconds_since(start), population.objectives[leader],
         result.best_objective, service_.oracle_evaluations() - eval_start});
    if (config_.sa.record_best_placements) {
      result.best_placements.push_back(result.best);
    }
  }

  result.evaluations = service_.oracle_evaluations() - eval_start;
  result.seconds = detail::seconds_since(start);
  result.wall_seconds = result.seconds;
  result.trials = 1;
  return result;
}

}  // namespace chainnet::search
