// Shared machinery of the population optimizers: per-chain RNG streams,
// the population state (members + objectives + streams stepped in
// lockstep), and the batched Metropolis sweep every population algorithm
// is built from.
//
// Reproducibility contract (see DESIGN.md §14): every random draw happens
// on the driver thread, chain k draws only from its own stream, and the
// batch engine is used purely as a value oracle — so a fixed seed yields
// bit-for-bit identical trajectories regardless of the service's thread
// count, and a population of 1 replays serial SA's stream exactly.
#pragma once

#include <chrono>
#include <cstdint>
#include <span>
#include <vector>

#include "edge/model.h"
#include "edge/placement.h"
#include "optim/annealing.h"
#include "runtime/eval_service.h"
#include "support/rng.h"

namespace chainnet::search::detail {

using Clock = std::chrono::steady_clock;

inline double seconds_since(Clock::time_point start) {
  // LINT:nondet(elapsed-seconds helper feeds time budgets and reports; a
  // budget only truncates the loop, every step is seed-deterministic)
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Stream salts of the auxiliary draws that must not perturb any chain's
/// trajectory (ASCII "EXCHANGE" / "RESAMPLE").
inline constexpr std::uint64_t kExchangeSalt = 0x45584348414e4745ull;
inline constexpr std::uint64_t kResampleSalt = 0x524553414d504c45ull;

/// Chain k's private stream. Chain 0 gets the parent stream Rng(seed) —
/// exactly the stream serial optim::anneal draws from, which is what makes
/// a population of 1 reduce to SA bit-for-bit — and chains k >= 1 get the
/// decorrelated splits Rng(seed).split(k).
support::Rng chain_stream(std::uint64_t seed, int chain);

/// A dedicated stream for exchange/resampling decisions, decorrelated from
/// every chain stream by a large salt.
support::Rng auxiliary_stream(std::uint64_t seed, std::uint64_t salt);

/// K chains stepped in lockstep. members[k], objectives[k], and streams[k]
/// always describe the same chain; replica exchange and resampling permute
/// members/objectives but never streams (streams belong to the *slot*, so
/// the draw sequence of a slot is independent of what content it holds).
struct Population {
  std::vector<edge::Placement> members;
  std::vector<double> objectives;
  std::vector<support::Rng> streams;

  int size() const noexcept { return static_cast<int>(members.size()); }
  /// Slot with the highest current objective (lowest index on ties).
  int best_member() const noexcept;
};

/// Builds a population of `size` copies of `initial`, scored as one
/// width-`size` batch (the run's only batch width, so the plan cache
/// compiles at most the chunked widths of `size`).
Population make_population(const edge::EdgeSystem& system,
                           const edge::Placement& initial,
                           runtime::EvalService& service, std::uint64_t seed,
                           int size);

/// One lockstep Metropolis sweep: every chain proposes a relocate move
/// (the paper's §VII neighborhood) on its own stream; all proposals are
/// scored as ONE width-size() batch with failed slots padded by the
/// chain's current placement (constant batch width keeps the plan cache at
/// <= 2 compiled widths); each proposing chain then Metropolis-accepts at
/// temperatures[k] on its own stream. Chains whose proposal failed consume
/// no acceptance draw, mirroring serial SA's failure path. Updates
/// result's best placement/objective and proposal/accept counters. Skips
/// the batch entirely when no chain found a feasible move.
void metropolis_step(const edge::EdgeSystem& system, Population& population,
                     runtime::EvalService& service,
                     const optim::SaConfig& config,
                     std::span<const double> temperatures,
                     optim::SaResult& result);

}  // namespace chainnet::search::detail
