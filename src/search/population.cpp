#include "search/population.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace chainnet::search::detail {

using edge::EdgeSystem;
using edge::Placement;
using support::Rng;

Rng chain_stream(std::uint64_t seed, int chain) {
  if (chain == 0) return Rng(seed);
  return Rng(seed).split(static_cast<std::uint64_t>(chain));
}

Rng auxiliary_stream(std::uint64_t seed, std::uint64_t salt) {
  return Rng(seed).split(salt);
}

int Population::best_member() const noexcept {
  int best = 0;
  for (int k = 1; k < size(); ++k) {
    if (objectives[static_cast<std::size_t>(k)] >
        objectives[static_cast<std::size_t>(best)]) {
      best = k;
    }
  }
  return best;
}

Population make_population(const EdgeSystem& system, const Placement& initial,
                           runtime::EvalService& service, std::uint64_t seed,
                           int size) {
  if (size <= 0) throw std::invalid_argument("make_population: size <= 0");
  Population population;
  population.members.assign(static_cast<std::size_t>(size), initial);
  population.streams.reserve(static_cast<std::size_t>(size));
  for (int k = 0; k < size; ++k) {
    population.streams.push_back(chain_stream(seed, k));
  }
  population.objectives =
      service.evaluate_batch(system, population.members);
  return population;
}

void metropolis_step(const EdgeSystem& system, Population& population,
                     runtime::EvalService& service,
                     const optim::SaConfig& config,
                     std::span<const double> temperatures,
                     optim::SaResult& result) {
  const int n = population.size();
  std::vector<Placement> batch(static_cast<std::size_t>(n));
  std::vector<char> real(static_cast<std::size_t>(n), 0);
  int real_count = 0;
  for (int k = 0; k < n; ++k) {
    const auto slot = static_cast<std::size_t>(k);
    if (optim::propose_move(system, population.members[slot],
                            population.streams[slot], config, batch[slot])) {
      real[slot] = 1;
      ++real_count;
    } else {
      result.counters.proposal_failures += 1;
      batch[slot] = population.members[slot];  // pad: keep batch width fixed
    }
  }
  result.counters.proposals += static_cast<std::uint64_t>(real_count);
  if (real_count == 0) return;

  const auto objectives = service.evaluate_batch(system, batch);
  for (int k = 0; k < n; ++k) {
    const auto slot = static_cast<std::size_t>(k);
    if (!real[slot]) continue;
    const double delta = objectives[slot] - population.objectives[slot];
    const bool accept =
        delta > 0.0 ||
        population.streams[slot].uniform01() <
            std::exp(delta / std::max(temperatures[slot], 1e-12));
    if (!accept) continue;
    result.counters.accepts += 1;
    population.members[slot] = std::move(batch[slot]);
    population.objectives[slot] = objectives[slot];
    if (objectives[slot] > result.best_objective) {
      result.best = population.members[slot];
      result.best_objective = objectives[slot];
    }
  }
}

}  // namespace chainnet::search::detail
