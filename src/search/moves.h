// Wide-neighborhood move kinds for the population search subsystem. The
// paper's SA explores one neighborhood: relocate a fragment (with swap-back
// of displaced foreign fragments, optim::propose_move). Best-of-B pools are
// wasted on B near-identical relocations, so the pool is *stratified*: slot
// j of a pool draws kind j % kNumMoveKinds, mixing the paper's relocation
// with fragment swaps and composed double-relocations. Slot 0 is always the
// paper's move, so a B=1 pool degenerates to serial SA bit-for-bit.
#pragma once

#include "edge/model.h"
#include "edge/placement.h"
#include "optim/annealing.h"
#include "support/rng.h"

namespace chainnet::search {

enum class MoveKind {
  /// The paper's §VII move: optim::propose_move (relocate + swap-back).
  kRelocate = 0,
  /// Swap the devices of two fragments (possibly of different chains),
  /// preserving the distinct-device invariant and memory feasibility.
  kSwap = 1,
  /// Two relocations composed: a diameter-2 jump through the relocate
  /// neighborhood (falls back to a single relocation when the second
  /// draw finds no feasible follow-up).
  kDoubleRelocate = 2,
};

inline constexpr int kNumMoveKinds = 3;

/// The move kind proposal slot `slot` of a stratified pool draws.
constexpr MoveKind move_kind_for_slot(int slot) noexcept {
  return static_cast<MoveKind>(slot % kNumMoveKinds);
}

/// Generates one candidate neighbor of `current` with the given move kind,
/// redrawing up to config.max_move_attempts times. Returns false when no
/// feasible move was found. kRelocate consumes draws exactly like
/// optim::propose_move (it *is* optim::propose_move).
bool propose_kind(MoveKind kind, const edge::EdgeSystem& system,
                  const edge::Placement& current, support::Rng& rng,
                  const optim::SaConfig& config, edge::Placement& out);

}  // namespace chainnet::search
