#include "search/best_of_b.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>
#include <vector>

#include "search/moves.h"
#include "search/population.h"

namespace chainnet::search {

using edge::EdgeSystem;
using edge::Placement;

BestOfB::BestOfB(runtime::EvalService& service, const SearchConfig& config)
    : service_(service), config_(config) {
  if (config_.population <= 0) {
    throw std::invalid_argument("BestOfB: population <= 0");
  }
}

optim::SaResult BestOfB::run(const EdgeSystem& system,
                             const Placement& initial, std::uint64_t seed) {
  initial.validate(system);
  // LINT:nondet(start stamp feeds the time budget and report seconds; a
  // budget only truncates the loop, every step is seed-deterministic)
  const auto start = detail::Clock::now();
  const std::uint64_t eval_start = service_.oracle_evaluations();
  const int pool = config_.population;
  const auto width = static_cast<std::size_t>(pool);

  // Chain stream 0 == Rng(seed), serial SA's stream (the B = 1 anchor).
  support::Rng rng = detail::chain_stream(seed, 0);
  double temperature = config_.sa.initial_temperature > 0.0
                           ? config_.sa.initial_temperature
                           : optim::auto_initial_temperature(system);

  // Score the initial placement as a width-B batch so the whole run uses
  // one batch width (plan discipline); slot 0 carries the value.
  Placement current = initial;
  std::vector<Placement> batch(width, initial);
  double current_obj = service_.evaluate_batch(system, batch).front();

  optim::SaResult result;
  result.best = current;
  result.best_objective = current_obj;
  result.trajectory.push_back(
      {0, detail::seconds_since(start), current_obj, current_obj,
       service_.oracle_evaluations() - eval_start});
  if (config_.sa.record_best_placements) {
    result.best_placements.push_back(current);
  }

  std::vector<char> real(width);
  for (int step = 1; step <= config_.sa.max_steps; ++step) {
    int real_count = 0;
    for (int j = 0; j < pool; ++j) {
      const auto slot = static_cast<std::size_t>(j);
      if (propose_kind(move_kind_for_slot(j), system, current, rng,
                       config_.sa, batch[slot])) {
        real[slot] = 1;
        ++real_count;
      } else {
        real[slot] = 0;
        result.counters.proposal_failures += 1;
        batch[slot] = current;  // pad: keep the batch width fixed at B
      }
    }
    result.counters.proposals += static_cast<std::uint64_t>(real_count);
    if (real_count > 0) {
      const auto objectives = service_.evaluate_batch(system, batch);
      int best_j = -1;
      for (int j = 0; j < pool; ++j) {
        const auto slot = static_cast<std::size_t>(j);
        if (!real[slot]) continue;
        if (best_j < 0 ||
            objectives[slot] > objectives[static_cast<std::size_t>(best_j)]) {
          best_j = j;
        }
      }
      const auto best_slot = static_cast<std::size_t>(best_j);
      const double delta = objectives[best_slot] - current_obj;
      const bool accept =
          delta > 0.0 ||
          rng.uniform01() < std::exp(delta / std::max(temperature, 1e-12));
      if (accept) {
        result.counters.accepts += 1;
        current = std::move(batch[best_slot]);
        current_obj = objectives[best_slot];
        if (current_obj > result.best_objective) {
          result.best = current;
          result.best_objective = current_obj;
        }
      }
    }
    temperature *= config_.sa.cooling_rate;
    result.trajectory.push_back(
        {step, detail::seconds_since(start), current_obj,
         result.best_objective, service_.oracle_evaluations() - eval_start});
    if (config_.sa.record_best_placements) {
      result.best_placements.push_back(result.best);
    }
  }

  result.evaluations = service_.oracle_evaluations() - eval_start;
  result.seconds = detail::seconds_since(start);
  result.wall_seconds = result.seconds;
  result.trials = 1;
  return result;
}

}  // namespace chainnet::search
