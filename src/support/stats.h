// Streaming and batch statistics used throughout the simulator, the GNN
// metrics (APE/MAPE distributions, Table V / Fig. 11-12), and the search
// experiment reports (Fig. 14-15).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace chainnet::support {

/// Welford online accumulator for mean and variance; numerically stable for
/// long simulation runs.
class RunningStats {
 public:
  void add(double x) noexcept;
  void merge(const RunningStats& other) noexcept;

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Unbiased sample variance (0 for fewer than two observations).
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }
  /// Sum of all observations.
  double sum() const noexcept { return mean_ * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Time-weighted average of a piecewise-constant process (e.g. queue length
/// or memory occupancy over simulated time).
class TimeWeightedStats {
 public:
  /// Records that the process held `value` since the previous update time.
  void update(double now, double value) noexcept;
  /// Closes the window at `now` and returns the time average.
  double average(double now) const noexcept;

 private:
  double last_time_ = 0.0;
  double last_value_ = 0.0;
  double area_ = 0.0;
  bool started_ = false;
};

/// Linear-interpolation percentile (the "exclusive" R-6/NIST flavor used by
/// most plotting tools). `q` in [0, 1]. Sorts a copy of the input.
double percentile(std::span<const double> values, double q);

/// Percentile on data the caller has already sorted ascending.
double percentile_sorted(std::span<const double> sorted, double q);

/// Five-number summary for box plots (Fig. 12): min, Q1, median, Q3, max.
struct BoxSummary {
  double min = 0.0;
  double q1 = 0.0;
  double median = 0.0;
  double q3 = 0.0;
  double max = 0.0;
  std::size_t count = 0;
};

BoxSummary box_summary(std::span<const double> values);

/// Mean of a span (0 for empty).
double mean_of(std::span<const double> values);

}  // namespace chainnet::support
