#include "support/stats.h"

#include <algorithm>
#include <cmath>

namespace chainnet::support {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double RunningStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

void TimeWeightedStats::update(double now, double value) noexcept {
  if (started_) area_ += last_value_ * (now - last_time_);
  last_time_ = now;
  last_value_ = value;
  started_ = true;
}

double TimeWeightedStats::average(double now) const noexcept {
  if (!started_ || now <= 0.0) return 0.0;
  const double total_area = area_ + last_value_ * (now - last_time_);
  return total_area / now;
}

double percentile_sorted(std::span<const double> sorted, double q) {
  if (sorted.empty()) return 0.0;
  if (sorted.size() == 1) return sorted[0];
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double percentile(std::span<const double> values, double q) {
  std::vector<double> copy(values.begin(), values.end());
  std::sort(copy.begin(), copy.end());
  return percentile_sorted(copy, q);
}

BoxSummary box_summary(std::span<const double> values) {
  BoxSummary b;
  if (values.empty()) return b;
  std::vector<double> copy(values.begin(), values.end());
  std::sort(copy.begin(), copy.end());
  b.count = copy.size();
  b.min = copy.front();
  b.max = copy.back();
  b.q1 = percentile_sorted(copy, 0.25);
  b.median = percentile_sorted(copy, 0.5);
  b.q3 = percentile_sorted(copy, 0.75);
  return b;
}

double mean_of(std::span<const double> values) {
  if (values.empty()) return 0.0;
  double s = 0.0;
  for (double v : values) s += v;
  return s / static_cast<double>(values.size());
}

}  // namespace chainnet::support
