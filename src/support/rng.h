// Deterministic, fast pseudo-random number generation for simulation and
// training. xoshiro256++ (Blackman & Vigna) seeded through splitmix64 so a
// single 64-bit seed yields a well-mixed full state. Streams can be forked
// with jump() semantics via child(), giving independent sub-streams for
// parallel replications without sharing state.
#pragma once

#include <cstdint>
#include <limits>

namespace chainnet::support {

/// xoshiro256++ generator. Satisfies std::uniform_random_bit_generator so it
/// can be plugged into <random> distributions, though the library ships its
/// own distribution objects (see distributions.h) for reproducibility across
/// standard library implementations.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from one 64-bit seed via splitmix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  /// Next 64 uniformly distributed bits.
  result_type operator()() noexcept;

  /// Uniform double in [0, 1) with 53 random bits.
  double uniform01() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Exponentially distributed variate with the given mean (> 0).
  double exponential(double mean) noexcept;

  /// Standard normal variate (Marsaglia polar method).
  double normal() noexcept;

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p) noexcept;

  /// Derives an independent child stream: equivalent to seeding a fresh
  /// generator from this stream's next output mixed with `salt`.
  Rng child(std::uint64_t salt) noexcept;

  /// Derives a decorrelated child stream keyed by `stream_id` WITHOUT
  /// advancing this generator (splitmix-style mixing of the full state with
  /// the id). Calling split(i) repeatedly on the same parent state returns
  /// the same stream, so parallel workers / trials indexed 0..N-1 get
  /// reproducible independent seeds regardless of creation order.
  Rng split(std::uint64_t stream_id) const noexcept;

 private:
  std::uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

/// splitmix64 step: used for seeding and hashing small integer tuples into
/// stream salts.
std::uint64_t splitmix64(std::uint64_t& state) noexcept;

}  // namespace chainnet::support
