// Random-variate distributions used by the network generators (Table III /
// Table VII of the paper) and by the queueing simulator's service and
// inter-arrival processes.
//
// The notable member of this family is the Acyclic Phase-Type distribution
// APH(mean, scv) used by the paper's Type II generator: it is fitted from a
// target mean and squared coefficient of variation (SCV = Var / mean^2)
// through classic two-moment matching:
//   * SCV >= 1: two-phase hyper-exponential with balanced means,
//   * SCV  < 1: Erlang-k with a perturbed first phase (generalized Erlang),
//     where k = ceil(1 / SCV).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "support/rng.h"

namespace chainnet::support {

/// Abstract positive-valued distribution. Implementations are immutable and
/// cheap to copy through clone(); sampling draws from a caller-owned Rng so
/// the same distribution object can serve many independent streams.
class Distribution {
 public:
  virtual ~Distribution() = default;

  /// Draws one variate.
  virtual double sample(Rng& rng) const = 0;

  /// Analytic mean of the distribution.
  virtual double mean() const = 0;

  /// Analytic variance of the distribution.
  virtual double variance() const = 0;

  /// Short human-readable description, e.g. "Exp(0.5)".
  virtual std::string describe() const = 0;

  virtual std::unique_ptr<Distribution> clone() const = 0;

  /// Squared coefficient of variation Var / mean^2.
  double scv() const;
};

/// Degenerate distribution: always returns `value`.
class Deterministic final : public Distribution {
 public:
  explicit Deterministic(double value);
  double sample(Rng&) const override { return value_; }
  double mean() const override { return value_; }
  double variance() const override { return 0.0; }
  std::string describe() const override;
  std::unique_ptr<Distribution> clone() const override;

 private:
  double value_;
};

/// Exponential distribution parameterized by its mean (not rate).
class Exponential final : public Distribution {
 public:
  explicit Exponential(double mean);
  double sample(Rng& rng) const override { return rng.exponential(mean_); }
  double mean() const override { return mean_; }
  double variance() const override { return mean_ * mean_; }
  std::string describe() const override;
  std::unique_ptr<Distribution> clone() const override;

 private:
  double mean_;
};

/// Continuous uniform on [lo, hi).
class Uniform final : public Distribution {
 public:
  Uniform(double lo, double hi);
  double sample(Rng& rng) const override { return rng.uniform(lo_, hi_); }
  double mean() const override { return 0.5 * (lo_ + hi_); }
  double variance() const override;
  std::string describe() const override;
  std::unique_ptr<Distribution> clone() const override;

  double lo() const { return lo_; }
  double hi() const { return hi_; }

 private:
  double lo_, hi_;
};

/// Acyclic phase-type distribution fitted to a target (mean, SCV) pair.
///
/// Internally a sequence of exponential phases traversed left to right,
/// with an optional probabilistic split for the hyper-exponential branch:
///   * hyper-exponential (SCV >= 1): with probability p take the fast phase,
///     otherwise the slow phase (both single-phase branches);
///   * generalized Erlang (SCV < 1): k serial phases, the first with a rate
///     different from the remaining k-1 identical phases.
class AcyclicPhaseType final : public Distribution {
 public:
  /// Fits the distribution to the requested mean (> 0) and SCV (> 0).
  /// Throws std::invalid_argument for non-positive parameters.
  AcyclicPhaseType(double mean, double scv);

  double sample(Rng& rng) const override;
  double mean() const override { return mean_; }
  double variance() const override { return scv_ * mean_ * mean_; }
  std::string describe() const override;
  std::unique_ptr<Distribution> clone() const override;

  /// Number of exponential phases in the fitted representation.
  int phases() const { return num_phases_; }

 private:
  double mean_;
  double scv_;
  int num_phases_;
  // Hyper-exponential branch (SCV >= 1).
  bool hyper_ = false;
  double p_fast_ = 0.0;
  double mean_fast_ = 0.0;
  double mean_slow_ = 0.0;
  // Generalized Erlang branch (SCV < 1).
  double mean_first_ = 0.0;
  double mean_rest_ = 0.0;
};

/// A distribution truncated below at `floor`: samples below the floor are
/// clamped up to it. Used by the paper's generators, which impose lower
/// bounds on Type II interarrival times and processing times (Table III).
class LowerBounded final : public Distribution {
 public:
  LowerBounded(std::unique_ptr<Distribution> inner, double floor);
  double sample(Rng& rng) const override;
  /// Mean/variance are estimated analytically only for the clamp-free case;
  /// for clamped distributions they report the inner moments (documented
  /// approximation — the generators only need sampling).
  double mean() const override { return inner_->mean(); }
  double variance() const override { return inner_->variance(); }
  std::string describe() const override;
  std::unique_ptr<Distribution> clone() const override;

 private:
  std::unique_ptr<Distribution> inner_;
  double floor_;
};

}  // namespace chainnet::support
