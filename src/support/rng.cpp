#include "support/rng.h"

#include <cmath>

namespace chainnet::support {

namespace {

inline std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
  // Guard against the (astronomically unlikely) all-zero state, which is a
  // fixed point of xoshiro.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform01() noexcept {
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform01();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  // Lemire-style rejection-free multiply-shift is fine here; the bias for
  // span << 2^64 is negligible for simulation purposes, but we still apply
  // rejection to keep the generator exactly uniform.
  std::uint64_t x, r;
  do {
    x = (*this)();
    r = x % span;
  } while (x - r > std::uint64_t(-span));
  return lo + static_cast<std::int64_t>(r);
}

double Rng::exponential(double mean) noexcept {
  // Inverse transform; 1 - u in (0,1] avoids log(0).
  return -mean * std::log1p(-uniform01());
}

double Rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_normal_ = v * factor;
  has_cached_normal_ = true;
  return u * factor;
}

bool Rng::bernoulli(double p) noexcept { return uniform01() < p; }

Rng Rng::child(std::uint64_t salt) noexcept {
  std::uint64_t mix = (*this)() ^ (salt * 0x9e3779b97f4a7c15ULL);
  return Rng(splitmix64(mix));
}

Rng Rng::split(std::uint64_t stream_id) const noexcept {
  // Fold the full 256-bit state and the stream id through four splitmix64
  // steps. Unlike child(), the parent state is read, not advanced, so the
  // mapping (parent state, stream_id) -> child stream is a pure function.
  std::uint64_t sm = s_[0] ^ (stream_id + 0x9e3779b97f4a7c15ULL);
  std::uint64_t seed = splitmix64(sm);
  sm ^= rotl(s_[1], 13) + stream_id * 0xbf58476d1ce4e5b9ULL;
  seed ^= splitmix64(sm);
  sm ^= rotl(s_[2], 29) ^ (stream_id * 0x94d049bb133111ebULL);
  seed ^= splitmix64(sm);
  sm ^= s_[3] + stream_id;
  seed ^= splitmix64(sm);
  return Rng(seed);
}

}  // namespace chainnet::support
