#include "support/distributions.h"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace chainnet::support {

double Distribution::scv() const {
  const double m = mean();
  if (m == 0.0) return 0.0;
  return variance() / (m * m);
}

// ---------------------------------------------------------------- fixed

Deterministic::Deterministic(double value) : value_(value) {
  if (value < 0.0) throw std::invalid_argument("Deterministic: negative value");
}

std::string Deterministic::describe() const {
  std::ostringstream os;
  os << "Det(" << value_ << ")";
  return os.str();
}

std::unique_ptr<Distribution> Deterministic::clone() const {
  return std::make_unique<Deterministic>(*this);
}

// ---------------------------------------------------------------- exp

Exponential::Exponential(double mean) : mean_(mean) {
  if (mean <= 0.0) throw std::invalid_argument("Exponential: mean must be > 0");
}

std::string Exponential::describe() const {
  std::ostringstream os;
  os << "Exp(" << mean_ << ")";
  return os.str();
}

std::unique_ptr<Distribution> Exponential::clone() const {
  return std::make_unique<Exponential>(*this);
}

// ---------------------------------------------------------------- uniform

Uniform::Uniform(double lo, double hi) : lo_(lo), hi_(hi) {
  if (hi < lo) throw std::invalid_argument("Uniform: hi < lo");
}

double Uniform::variance() const {
  const double w = hi_ - lo_;
  return w * w / 12.0;
}

std::string Uniform::describe() const {
  std::ostringstream os;
  os << "U(" << lo_ << "," << hi_ << ")";
  return os.str();
}

std::unique_ptr<Distribution> Uniform::clone() const {
  return std::make_unique<Uniform>(*this);
}

// ---------------------------------------------------------------- APH

AcyclicPhaseType::AcyclicPhaseType(double mean, double scv)
    : mean_(mean), scv_(scv) {
  if (mean <= 0.0) throw std::invalid_argument("APH: mean must be > 0");
  if (scv <= 0.0) throw std::invalid_argument("APH: scv must be > 0");

  if (scv >= 1.0) {
    // Two-phase hyper-exponential with balanced means: each branch
    // contributes half of the total mean, i.e. p * m_fast = (1-p) * m_slow.
    // Matching the first two moments gives
    //   p = (1 + sqrt((scv - 1) / (scv + 1))) / 2,
    //   m_fast = mean / (2 p), m_slow = mean / (2 (1 - p)).
    // The degenerate case scv == 1 collapses to a single exponential.
    hyper_ = true;
    num_phases_ = 2;
    const double root = std::sqrt((scv - 1.0) / (scv + 1.0));
    p_fast_ = 0.5 * (1.0 + root);
    mean_fast_ = mean / (2.0 * p_fast_);
    mean_slow_ = mean / (2.0 * (1.0 - p_fast_));
  } else {
    // Generalized Erlang: k = ceil(1/scv) phases. k-1 identical phases plus
    // one distinct first phase. With X = X1 + Erlang(k-1, rate), solve the
    // two-moment system for the first-phase mean m1 and the common phase
    // mean m. Using the standard parameterization (e.g. Tijms 2003): mix of
    // Erlang(k-1) and Erlang(k) with common rate mu:
    //   with prob q use k-1 phases, else k phases,
    //   q = (k * scv - sqrt(k (1 + scv) - k^2 scv)) / (scv + 1)  in [0, 1],
    //   mu = (k - q) / mean.
    // We realize this as a serial chain where the final phase is skipped
    // with probability q; this remains acyclic phase-type.
    hyper_ = false;
    const int k = static_cast<int>(std::ceil(1.0 / scv));
    num_phases_ = k;
    const double kd = static_cast<double>(k);
    const double disc = kd * (1.0 + scv) - kd * kd * scv;
    const double q =
        (kd * scv - std::sqrt(std::max(0.0, disc))) / (scv + 1.0);
    const double mu = (kd - q) / mean;  // rate of every phase
    // Store as: first phase taken with prob (1-q) — implemented in sample().
    mean_first_ = q;        // reuse slot: probability of skipping one phase
    mean_rest_ = 1.0 / mu;  // per-phase mean
  }
}

double AcyclicPhaseType::sample(Rng& rng) const {
  if (hyper_) {
    const double branch_mean =
        rng.bernoulli(p_fast_) ? mean_fast_ : mean_slow_;
    return rng.exponential(branch_mean);
  }
  // Mixed Erlang: k-1 phases with probability q, else k phases.
  const double q = mean_first_;
  int phases = num_phases_;
  if (phases > 1 && rng.bernoulli(q)) phases -= 1;
  double total = 0.0;
  for (int i = 0; i < phases; ++i) total += rng.exponential(mean_rest_);
  return total;
}

std::string AcyclicPhaseType::describe() const {
  std::ostringstream os;
  os << "APH(" << mean_ << "," << scv_ << ")";
  return os.str();
}

std::unique_ptr<Distribution> AcyclicPhaseType::clone() const {
  return std::make_unique<AcyclicPhaseType>(*this);
}

// ---------------------------------------------------------------- bounded

LowerBounded::LowerBounded(std::unique_ptr<Distribution> inner, double floor)
    : inner_(std::move(inner)), floor_(floor) {
  if (!inner_) throw std::invalid_argument("LowerBounded: null inner");
}

double LowerBounded::sample(Rng& rng) const {
  return std::max(floor_, inner_->sample(rng));
}

std::string LowerBounded::describe() const {
  std::ostringstream os;
  os << "max(" << floor_ << "," << inner_->describe() << ")";
  return os.str();
}

std::unique_ptr<Distribution> LowerBounded::clone() const {
  return std::make_unique<LowerBounded>(inner_->clone(), floor_);
}

}  // namespace chainnet::support
