#include "support/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace chainnet::support {

bool Json::as_bool() const {
  if (!is_bool()) throw JsonError("not a bool", 0);
  return bool_;
}

double Json::as_number() const {
  if (!is_number()) throw JsonError("not a number", 0);
  return number_;
}

const std::string& Json::as_string() const {
  if (!is_string()) throw JsonError("not a string", 0);
  return string_;
}

const Json::Array& Json::as_array() const {
  if (!is_array()) throw JsonError("not an array", 0);
  return array_;
}

const Json::Object& Json::as_object() const {
  if (!is_object()) throw JsonError("not an object", 0);
  return object_;
}

Json::Array& Json::as_array() {
  if (!is_array()) throw JsonError("not an array", 0);
  return array_;
}

Json::Object& Json::as_object() {
  if (!is_object()) throw JsonError("not an object", 0);
  return object_;
}

const Json& Json::at(const std::string& key) const {
  const auto& obj = as_object();
  auto it = obj.find(key);
  if (it == obj.end()) throw JsonError("missing key '" + key + "'", 0);
  return it->second;
}

bool Json::has(const std::string& key) const {
  return is_object() && object_.count(key) > 0;
}

double Json::get_number(const std::string& key, double fallback) const {
  return has(key) ? at(key).as_number() : fallback;
}

std::string Json::get_string(const std::string& key,
                             const std::string& fallback) const {
  return has(key) ? at(key).as_string() : fallback;
}

Json& Json::operator[](const std::string& key) {
  if (is_null()) {
    type_ = Type::kObject;
  }
  if (!is_object()) throw JsonError("not an object", 0);
  return object_[key];
}

void Json::push_back(Json value) {
  if (is_null()) {
    type_ = Type::kArray;
  }
  if (!is_array()) throw JsonError("not an array", 0);
  array_.push_back(std::move(value));
}

bool Json::operator==(const Json& other) const {
  if (type_ != other.type_) return false;
  switch (type_) {
    case Type::kNull:
      return true;
    case Type::kBool:
      return bool_ == other.bool_;
    case Type::kNumber:
      return number_ == other.number_;
    case Type::kString:
      return string_ == other.string_;
    case Type::kArray:
      return array_ == other.array_;
    case Type::kObject:
      return object_ == other.object_;
  }
  return false;
}

// ------------------------------------------------------------------ parse

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json parse_document() {
    Json value = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) {
      throw JsonError("trailing characters after document", pos_);
    }
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& message) {
    throw JsonError(message, pos_);
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  char take() {
    const char c = peek();
    ++pos_;
    return c;
  }

  void expect(char c) {
    if (take() != c) {
      --pos_;
      fail(std::string("expected '") + c + "'");
    }
  }

  void skip_whitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) == literal) {
      pos_ += literal.size();
      return true;
    }
    return false;
  }

  Json parse_value() {
    skip_whitespace();
    const char c = peek();
    switch (c) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return Json(parse_string());
      case 't':
        if (consume_literal("true")) return Json(true);
        fail("invalid literal");
      case 'f':
        if (consume_literal("false")) return Json(false);
        fail("invalid literal");
      case 'n':
        if (consume_literal("null")) return Json(nullptr);
        fail("invalid literal");
      default:
        return parse_number();
    }
  }

  /// Bounds container recursion: entered once per '{' / '['.
  struct DepthGuard {
    explicit DepthGuard(Parser& parser) : parser_(parser) {
      if (++parser_.depth_ > Json::kMaxParseDepth) {
        parser_.fail("nesting too deep");
      }
    }
    ~DepthGuard() { --parser_.depth_; }
    Parser& parser_;
  };

  Json parse_object() {
    const DepthGuard guard(*this);
    expect('{');
    Json::Object obj;
    skip_whitespace();
    if (peek() == '}') {
      ++pos_;
      return Json(std::move(obj));
    }
    while (true) {
      skip_whitespace();
      std::string key = parse_string();
      skip_whitespace();
      expect(':');
      obj.emplace(std::move(key), parse_value());
      skip_whitespace();
      const char c = take();
      if (c == '}') break;
      if (c != ',') {
        --pos_;
        fail("expected ',' or '}'");
      }
    }
    return Json(std::move(obj));
  }

  Json parse_array() {
    const DepthGuard guard(*this);
    expect('[');
    Json::Array arr;
    skip_whitespace();
    if (peek() == ']') {
      ++pos_;
      return Json(std::move(arr));
    }
    while (true) {
      arr.push_back(parse_value());
      skip_whitespace();
      const char c = take();
      if (c == ']') break;
      if (c != ',') {
        --pos_;
        fail("expected ',' or ']'");
      }
    }
    return Json(std::move(arr));
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      const char c = take();
      if (c == '"') break;
      if (c == '\\') {
        const char esc = take();
        switch (esc) {
          case '"':
            out += '"';
            break;
          case '\\':
            out += '\\';
            break;
          case '/':
            out += '/';
            break;
          case 'b':
            out += '\b';
            break;
          case 'f':
            out += '\f';
            break;
          case 'n':
            out += '\n';
            break;
          case 'r':
            out += '\r';
            break;
          case 't':
            out += '\t';
            break;
          case 'u': {
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = take();
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code += static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code += static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code += static_cast<unsigned>(h - 'A' + 10);
              } else {
                --pos_;
                fail("invalid \\u escape");
              }
            }
            // UTF-8 encode (BMP only; surrogate pairs unsupported).
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            --pos_;
            fail("invalid escape");
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        --pos_;
        fail("unescaped control character in string");
      } else {
        out += c;
      }
    }
    return out;
  }

  Json parse_number() {
    // Strict JSON grammar: the integer part, a fraction, and an exponent
    // each require at least one digit, so hostile fragments like ".5",
    // "5.", "-", or "1e+" are rejected instead of leniently coerced.
    const std::size_t start = pos_;
    const auto digits = [this] {
      std::size_t n = 0;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
        ++n;
      }
      return n;
    };
    if (peek() == '-') ++pos_;
    if (digits() == 0) fail("invalid number");
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (digits() == 0) fail("invalid number");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (digits() == 0) fail("invalid number");
    }
    const std::string token(text_.substr(start, pos_ - start));
    try {
      return Json(std::stod(token));
    } catch (const std::exception&) {
      pos_ = start;
      fail("invalid number");
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

void dump_string(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void dump_number(std::string& out, double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::abs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    out += buf;
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

}  // namespace

Json Json::parse(std::string_view text) {
  return Parser(text).parse_document();
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

void Json::dump_to(std::string& out, int indent, int depth) const {
  const auto newline = [&](int d) {
    if (indent > 0) {
      out += '\n';
      out.append(static_cast<std::size_t>(indent * d), ' ');
    }
  };
  switch (type_) {
    case Type::kNull:
      out += "null";
      break;
    case Type::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Type::kNumber:
      dump_number(out, number_);
      break;
    case Type::kString:
      dump_string(out, string_);
      break;
    case Type::kArray: {
      out += '[';
      bool first = true;
      for (const auto& v : array_) {
        if (!first) out += ',';
        first = false;
        newline(depth + 1);
        v.dump_to(out, indent, depth + 1);
      }
      if (!array_.empty()) newline(depth);
      out += ']';
      break;
    }
    case Type::kObject: {
      out += '{';
      bool first = true;
      for (const auto& [key, v] : object_) {
        if (!first) out += ',';
        first = false;
        newline(depth + 1);
        dump_string(out, key);
        out += indent > 0 ? ": " : ":";
        v.dump_to(out, indent, depth + 1);
      }
      if (!object_.empty()) newline(depth);
      out += '}';
      break;
    }
  }
}

}  // namespace chainnet::support
