// Minimal JSON value type with parsing and serialization — just enough for
// the CLI tooling to read system/problem description files and write result
// reports, without pulling an external dependency into the build.
//
// Supported: null, bool, number (double), string (with \" \\ \/ \b \f \n
// \r \t and \uXXXX for the BMP), array, object. Parse errors throw
// JsonError with a character offset. Numbers are doubles (adequate for the
// domain: rates, capacities, probabilities).
//
// The parser is safe on untrusted input (the serving layer feeds it bytes
// straight off the wire): malformed, truncated, or hostile documents throw
// JsonError — never crash — and container nesting is capped at
// kMaxParseDepth so a stream of '[' cannot overflow the stack.
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace chainnet::support {

class JsonError : public std::runtime_error {
 public:
  JsonError(const std::string& message, std::size_t offset)
      : std::runtime_error(message + " at offset " + std::to_string(offset)),
        offset_(offset) {}
  std::size_t offset() const { return offset_; }

 private:
  std::size_t offset_;
};

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  using Array = std::vector<Json>;
  using Object = std::map<std::string, Json>;

  Json() : type_(Type::kNull) {}
  Json(std::nullptr_t) : type_(Type::kNull) {}
  Json(bool b) : type_(Type::kBool), bool_(b) {}
  Json(double n) : type_(Type::kNumber), number_(n) {}
  Json(int n) : type_(Type::kNumber), number_(n) {}
  Json(const char* s) : type_(Type::kString), string_(s) {}
  Json(std::string s) : type_(Type::kString), string_(std::move(s)) {}
  Json(Array a) : type_(Type::kArray), array_(std::move(a)) {}
  Json(Object o) : type_(Type::kObject), object_(std::move(o)) {}

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Checked accessors; throw JsonError(offset 0) on type mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const Array& as_array() const;
  const Object& as_object() const;
  Array& as_array();
  Object& as_object();

  /// Object field access. at() throws when missing; get() returns the
  /// fallback; has() tests presence.
  const Json& at(const std::string& key) const;
  bool has(const std::string& key) const;
  double get_number(const std::string& key, double fallback) const;
  std::string get_string(const std::string& key,
                         const std::string& fallback) const;

  /// Object/array builders.
  Json& operator[](const std::string& key);
  void push_back(Json value);

  /// Maximum container nesting parse() accepts; deeper input throws
  /// JsonError("nesting too deep"). Far above any legitimate document in
  /// this domain, far below stack-overflow territory.
  static constexpr int kMaxParseDepth = 128;

  /// Parses a complete JSON document (trailing garbage is an error).
  static Json parse(std::string_view text);

  /// Serializes; indent > 0 pretty-prints with that many spaces per level.
  std::string dump(int indent = 0) const;

  bool operator==(const Json& other) const;

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

}  // namespace chainnet::support
