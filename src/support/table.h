// Minimal fixed-width ASCII table printer used by the bench drivers to emit
// the paper's tables (Table V, Table VI, ...) and figure series in a form
// that is easy to diff against EXPERIMENTS.md.
#pragma once

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

namespace chainnet::support {

class Table {
 public:
  /// Creates a table with the given column headers.
  explicit Table(std::vector<std::string> headers);

  /// Appends one row; the row is padded/truncated to the header width.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string num(double v, int precision = 3);

  /// Renders with column alignment, a header rule, and an optional title.
  void print(std::ostream& os, const std::string& title = "") const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Writes rows of (x, series...) values as CSV — one file per figure so the
/// plots can be regenerated externally.
class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row. Throws on failure.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);
  ~CsvWriter();
  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  void row(const std::vector<double>& values);
  void row(const std::vector<std::string>& values);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace chainnet::support
