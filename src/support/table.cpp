#include "support/table.h"

#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace chainnet::support {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

void Table::print(std::ostream& os, const std::string& title) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) widths[c] = std::max(widths[c], row[c].size());
  }
  if (!title.empty()) os << "== " << title << " ==\n";
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c]) + 2) << cells[c];
    }
    os << '\n';
  };
  emit(headers_);
  std::size_t total = 0;
  for (auto w : widths) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  os.flush();
}

struct CsvWriter::Impl {
  std::ofstream out;
};

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : impl_(std::make_unique<Impl>()) {
  impl_->out.open(path);
  if (!impl_->out) throw std::runtime_error("CsvWriter: cannot open " + path);
  row(header);
}

CsvWriter::~CsvWriter() = default;

void CsvWriter::row(const std::vector<double>& values) {
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i) impl_->out << ',';
    impl_->out << values[i];
  }
  impl_->out << '\n';
}

void CsvWriter::row(const std::vector<std::string>& values) {
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i) impl_->out << ',';
    impl_->out << values[i];
  }
  impl_->out << '\n';
}

}  // namespace chainnet::support
