// LINT:counters — the dispatch-shape counters below are monotone stats
// with no ordering relationship to the evaluations they count.
#include "runtime/eval_service.h"

#include <algorithm>
#include <exception>
#include <stdexcept>
#include <utility>

#include "gnn/plan.h"
#include "tensor/tape.h"

namespace chainnet::runtime {

EvalService::EvalService(ThreadPool& pool, EvaluatorFactory factory,
                         std::uint64_t base_seed)
    : pool_(pool),
      factory_(std::move(factory)),
      plan_cache_(std::make_shared<gnn::PlanCache>()) {
  if (!factory_) throw std::invalid_argument("EvalService: null factory");
  const int slots = pool_.size() + 1;  // workers + the owning thread
  evaluators_.reserve(static_cast<std::size_t>(slots));
  for (int w = 0; w < slots; ++w) {
    auto evaluator = factory_(worker_stream(base_seed, w));
    if (!evaluator) {
      throw std::invalid_argument("EvalService: factory returned null");
    }
    // All workers resolve compiled plans through one shared cache; the
    // injection is a no-op for oracles without a plan-replaying model.
    evaluator->set_plan_cache(plan_cache_);
    evaluators_.push_back(std::move(evaluator));
  }
}

std::vector<double> EvalService::evaluate_batch(
    const edge::EdgeSystem& system, std::span<const edge::Placement> batch) {
  std::vector<double> out(batch.size());
  if (batch.empty()) return out;

  if (batch.size() >= 2) {
    batch_calls_.fetch_add(1, std::memory_order_relaxed);
    batched_placements_.fetch_add(batch.size(), std::memory_order_relaxed);
  } else {
    single_placements_.fetch_add(1, std::memory_order_relaxed);
  }

  const int here = pool_.worker_index_here();
  if (here >= 0) {
    // Already on a pool worker: evaluate inline to avoid self-deadlock.
    // The frame rewinds this worker's thread-local tape after the batch, so
    // evaluators that build autodiff graphs cannot grow it across batches.
    const tensor::Tape::Frame frame(tensor::Tape::current());
    auto& evaluator = *evaluators_[static_cast<std::size_t>(here)];
    evaluator.total_throughput_batch(system, batch, out);
    return out;
  }

  // Fan out in contiguous chunks — one task per worker rather than one per
  // placement — so each worker hands its whole sub-batch to the oracle's
  // total_throughput_batch (the surrogate lock-steps it through one batched
  // GNN forward). Chunks write disjoint out subspans, so no result locking.
  const std::size_t n = batch.size();
  const std::size_t chunks = std::max<std::size_t>(
      1, std::min<std::size_t>(static_cast<std::size_t>(pool_.size()), n));
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  std::span<double> out_span(out);
  std::size_t begin = 0;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t len = n / chunks + (c < n % chunks ? 1 : 0);
    const auto sub = batch.subspan(begin, len);
    const auto sub_out = out_span.subspan(begin, len);
    begin += len;
    futures.push_back(pool_.submit([this, &system, sub, sub_out] {
      const int w = pool_.worker_index_here();
      // Each worker owns its thread-local tape; frame the evaluation so the
      // worker's tape is rewound once the scores are extracted.
      const tensor::Tape::Frame frame(tensor::Tape::current());
      auto& evaluator = *evaluators_[static_cast<std::size_t>(w)];
      evaluator.total_throughput_batch(system, sub, sub_out);
    }));
  }
  // Drain everything before rethrowing so no task can outlive the batch's
  // referents even when an oracle throws.
  std::exception_ptr first_error;
  for (auto& future : futures) {
    try {
      future.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
  return out;
}

double EvalService::evaluate(const edge::EdgeSystem& system,
                             const edge::Placement& placement) {
  return evaluate_batch(system, {&placement, 1}).front();
}

std::uint64_t EvalService::oracle_evaluations() const {
  std::uint64_t total = 0;
  for (const auto& evaluator : evaluators_) {
    total = optim::saturating_add(total, evaluator->evaluations());
  }
  return total;
}

EvalService::Stats EvalService::stats() const noexcept {
  Stats stats;
  stats.batch_calls = batch_calls_.load(std::memory_order_relaxed);
  stats.batched_placements =
      batched_placements_.load(std::memory_order_relaxed);
  stats.single_placements =
      single_placements_.load(std::memory_order_relaxed);
  return stats;
}

optim::PlacementEvaluator& EvalService::evaluator_here() {
  const int here = pool_.worker_index_here();
  const std::size_t slot =
      here >= 0 ? static_cast<std::size_t>(here) : evaluators_.size() - 1;
  return *evaluators_[slot];
}

}  // namespace chainnet::runtime
