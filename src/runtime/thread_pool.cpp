#include "runtime/thread_pool.h"

#include <algorithm>
#include <stdexcept>

namespace chainnet::runtime {

namespace {

// Which pool (if any) the current thread belongs to, and at which index.
// Per-thread, so nested/multiple pools cannot alias each other's workers.
thread_local const ThreadPool* tl_pool = nullptr;
thread_local int tl_worker_index = -1;

}  // namespace

ThreadPool::ThreadPool(int threads) {
  if (threads <= 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) return;
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

int ThreadPool::worker_index_here() const noexcept {
  return tl_pool == this ? tl_worker_index : -1;
}

std::size_t ThreadPool::queue_depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

void ThreadPool::enqueue(std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) {
      throw std::runtime_error("ThreadPool: submit after shutdown");
    }
    queue_.push_back(std::move(job));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop(int index) {
  tl_pool = this;
  tl_worker_index = index;
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) break;  // stopping_ and drained
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    job();  // packaged_task: exceptions land in the future
  }
}

}  // namespace chainnet::runtime
