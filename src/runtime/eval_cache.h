// Memoization for placement evaluations: a sharded, mutex-per-shard LRU
// cache keyed by edge::Placement::canonical_hash() (with full equality
// confirmation, so hash collisions cannot alias values), plus the
// CachedEvaluator decorator that drops it in front of any
// optim::PlacementEvaluator. SA search revisits placements constantly —
// rejected moves re-propose earlier states — so memoizing the oracle saves
// exactly the paper's expensive resource: simulator calls.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "edge/placement.h"
#include "optim/evaluator.h"

namespace chainnet::runtime {

struct EvalCacheConfig {
  std::size_t capacity = 1 << 16;  ///< max entries across all shards
  /// Shard count (rounded up to a power of two; clamped to 1 when the
  /// capacity is smaller than the shard count). More shards = less lock
  /// contention under concurrent lookups.
  std::size_t shards = 8;
  /// Key hash; defaults to Placement::canonical_hash. Override only in
  /// tests (e.g. a constant hash to force collision handling).
  std::function<std::uint64_t(const edge::Placement&)> hash;
};

/// Thread-safe sharded LRU map: placement -> objective value.
class EvalCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t insertions = 0;
    std::size_t entries = 0;
  };

  explicit EvalCache(EvalCacheConfig config = {});

  /// Returns the cached value and refreshes the entry's recency, or nullopt
  /// (counted as a miss).
  std::optional<double> lookup(const edge::Placement& key);

  /// Inserts (or refreshes) key -> value, evicting the shard's least
  /// recently used entry when the shard is full.
  void insert(const edge::Placement& key, double value);

  /// Counters aggregated over all shards.
  Stats stats() const;

  void clear();

  std::size_t capacity() const noexcept {
    return per_shard_capacity_ * shards_.size();
  }
  std::size_t shard_count() const noexcept { return shards_.size(); }

 private:
  struct Entry {
    edge::Placement key;
    std::uint64_t hash = 0;
    double value = 0.0;
  };
  struct Shard {
    mutable std::mutex mutex;
    std::list<Entry> lru;  // GUARDED_BY(mutex) front = most recently used
    std::unordered_multimap<std::uint64_t, std::list<Entry>::iterator>
        index;                     // GUARDED_BY(mutex)
    std::uint64_t hit_count = 0;        // GUARDED_BY(mutex)
    std::uint64_t miss_count = 0;       // GUARDED_BY(mutex)
    std::uint64_t eviction_count = 0;   // GUARDED_BY(mutex)
    std::uint64_t insertion_count = 0;  // GUARDED_BY(mutex)
  };

  Shard& shard_for(std::uint64_t hash) noexcept {
    // Upper bits pick the shard; the multimap re-hashes the full value, so
    // shard selection and bucket placement stay decorrelated.
    return *shards_[(hash >> 48) & shard_mask_];
  }

  std::function<std::uint64_t(const edge::Placement&)> hash_;
  std::size_t per_shard_capacity_;
  std::size_t shard_mask_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

/// Decorator memoizing any PlacementEvaluator through a (shareable)
/// EvalCache. Cache hits do NOT count as oracle evaluations: evaluations()
/// reports forwarded oracle calls only, cache_hits() reports the rest, so
/// throughput accounting stays honest (satellite: report both).
class CachedEvaluator final : public optim::PlacementEvaluator {
 public:
  CachedEvaluator(std::unique_ptr<optim::PlacementEvaluator> inner,
                  std::shared_ptr<EvalCache> cache);

  double total_throughput(const edge::EdgeSystem& system,
                          const edge::Placement& placement) override;

  /// Looks up every placement first, then forwards only the misses to the
  /// inner oracle in one (sub-)batch so a surrogate oracle still gets its
  /// lock-stepped batched forward over the uncached remainder.
  void total_throughput_batch(const edge::EdgeSystem& system,
                              std::span<const edge::Placement> placements,
                              std::span<double> out) override;

  /// Decorator passthrough: the plan cache belongs to the inner oracle's
  /// model, not to the score cache.
  void set_plan_cache(std::shared_ptr<gnn::PlanCache> cache) override {
    inner_->set_plan_cache(std::move(cache));
  }

  std::uint64_t cache_hits() const noexcept { return hits_; }
  optim::PlacementEvaluator& inner() noexcept { return *inner_; }
  const std::shared_ptr<EvalCache>& cache() const noexcept { return cache_; }

 private:
  std::unique_ptr<optim::PlacementEvaluator> inner_;
  std::shared_ptr<EvalCache> cache_;
  std::uint64_t hits_ = 0;
};

}  // namespace chainnet::runtime
