// Fixed-size worker pool with future-returning task submission and clean
// shutdown — the execution substrate of the concurrent evaluation runtime.
// Tasks are plain callables; exceptions thrown inside a task are captured
// and rethrown from the corresponding future. Workers know their own index
// (worker_index_here), which EvalService uses to route work to per-worker
// evaluator instances without locking.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace chainnet::runtime {

class ThreadPool {
 public:
  /// Starts `threads` workers; 0 means hardware_concurrency (at least 1).
  explicit ThreadPool(int threads = 0);
  /// Drains pending tasks, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const noexcept { return static_cast<int>(workers_.size()); }

  /// Schedules `fn` and returns a future for its result. Exceptions inside
  /// `fn` surface from future::get(). Throws std::runtime_error after
  /// shutdown().
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    enqueue([task] { (*task)(); });
    return future;
  }

  /// Stops accepting work, finishes everything already queued, joins the
  /// workers. Idempotent; also called by the destructor.
  void shutdown();

  /// Index of the calling thread within THIS pool's workers, or -1 when the
  /// caller is not one of them. Stable for the lifetime of the pool.
  int worker_index_here() const noexcept;

  /// Tasks queued but not yet picked up by a worker — a live backlog gauge
  /// (instantaneous; the value may be stale by the time it is read).
  std::size_t queue_depth() const;

 private:
  void enqueue(std::function<void()> job);
  void worker_loop(int index);

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;  // GUARDED_BY(mutex_)
  std::vector<std::thread> workers_;  // written by ctor only; joined unlocked
  bool stopping_ = false;  // GUARDED_BY(mutex_)
};

}  // namespace chainnet::runtime
