#include "runtime/eval_cache.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace chainnet::runtime {

namespace {

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

EvalCache::EvalCache(EvalCacheConfig config) : hash_(std::move(config.hash)) {
  if (!hash_) {
    hash_ = [](const edge::Placement& p) { return p.canonical_hash(); };
  }
  const std::size_t capacity = std::max<std::size_t>(1, config.capacity);
  std::size_t shards = round_up_pow2(std::max<std::size_t>(1, config.shards));
  if (capacity < shards) shards = 1;
  per_shard_capacity_ = capacity / shards;
  shard_mask_ = shards - 1;
  shards_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

std::optional<double> EvalCache::lookup(const edge::Placement& key) {
  const std::uint64_t h = hash_(key);
  Shard& shard = shard_for(h);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto [it, end] = shard.index.equal_range(h);
  for (; it != end; ++it) {
    if (it->second->key == key) {  // confirm equality on hash match
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      ++shard.hit_count;
      return it->second->value;
    }
  }
  ++shard.miss_count;
  return std::nullopt;
}

void EvalCache::insert(const edge::Placement& key, double value) {
  const std::uint64_t h = hash_(key);
  Shard& shard = shard_for(h);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto [it, end] = shard.index.equal_range(h);
  for (; it != end; ++it) {
    if (it->second->key == key) {  // refresh, don't duplicate
      it->second->value = value;
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      return;
    }
  }
  shard.lru.push_front(Entry{key, h, value});
  shard.index.emplace(h, shard.lru.begin());
  ++shard.insertion_count;
  if (shard.lru.size() > per_shard_capacity_) {
    const auto victim = std::prev(shard.lru.end());
    auto [vit, vend] = shard.index.equal_range(victim->hash);
    for (; vit != vend; ++vit) {
      if (vit->second == victim) {
        shard.index.erase(vit);
        break;
      }
    }
    shard.lru.pop_back();
    ++shard.eviction_count;
  }
}

EvalCache::Stats EvalCache::stats() const {
  Stats total;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    total.hits = optim::saturating_add(total.hits, shard->hit_count);
    total.misses = optim::saturating_add(total.misses, shard->miss_count);
    total.evictions =
        optim::saturating_add(total.evictions, shard->eviction_count);
    total.insertions =
        optim::saturating_add(total.insertions, shard->insertion_count);
    total.entries += shard->lru.size();
  }
  return total;
}

void EvalCache::clear() {
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    shard->lru.clear();
    shard->index.clear();
  }
}

CachedEvaluator::CachedEvaluator(
    std::unique_ptr<optim::PlacementEvaluator> inner,
    std::shared_ptr<EvalCache> cache)
    : inner_(std::move(inner)), cache_(std::move(cache)) {
  if (!inner_) throw std::invalid_argument("CachedEvaluator: null inner");
  if (!cache_) throw std::invalid_argument("CachedEvaluator: null cache");
}

double CachedEvaluator::total_throughput(const edge::EdgeSystem& system,
                                         const edge::Placement& placement) {
  if (const auto cached = cache_->lookup(placement)) {
    hits_ = optim::saturating_add(hits_, 1);
    return *cached;
  }
  const double value = inner_->total_throughput(system, placement);
  record_evaluation();  // misses are the only oracle work
  cache_->insert(placement, value);
  return value;
}

void CachedEvaluator::total_throughput_batch(
    const edge::EdgeSystem& system,
    std::span<const edge::Placement> placements, std::span<double> out) {
  std::vector<std::size_t> miss_indices;
  for (std::size_t i = 0; i < placements.size(); ++i) {
    if (const auto cached = cache_->lookup(placements[i])) {
      hits_ = optim::saturating_add(hits_, 1);
      out[i] = *cached;
    } else {
      miss_indices.push_back(i);
    }
  }
  if (miss_indices.empty()) return;
  // Gather the misses into a dense sub-batch so the inner oracle still sees
  // one contiguous span (and a surrogate gets one batched forward pass).
  std::vector<edge::Placement> miss_batch;
  miss_batch.reserve(miss_indices.size());
  for (const std::size_t i : miss_indices) miss_batch.push_back(placements[i]);
  std::vector<double> miss_values(miss_indices.size());
  inner_->total_throughput_batch(system, miss_batch, miss_values);
  for (std::size_t m = 0; m < miss_indices.size(); ++m) {
    record_evaluation();  // misses are the only oracle work
    cache_->insert(placements[miss_indices[m]], miss_values[m]);
    out[miss_indices[m]] = miss_values[m];
  }
}

}  // namespace chainnet::runtime
