// Thread-safe batched placement evaluation on top of a ThreadPool.
//
// EvalService owns one private PlacementEvaluator per pool worker (plus one
// for the owning thread), built eagerly by a caller-supplied factory. Each
// instance receives a decorrelated support::Rng stream split from a base
// seed (worker w gets Rng(base_seed).split(w)), so simulator / approximation
// / surrogate oracles keep fully independent state and never share a data
// structure across threads — the whole design needs no locks on the hot
// path. Batches fan out one task per placement; exceptions from any
// evaluation are rethrown after the batch has fully drained.
//
// Per-worker-tape contract: the autodiff substrate keeps one thread_local
// tensor::Tape per thread (tensor/tape.h), so each pool worker — and the
// owning thread on the inline path — records onto its own arena with no
// locking. EvalService frames every batch/task, rewinding the worker's tape
// after each evaluation; steady-state evaluation therefore performs no tape
// allocations regardless of how many placements a worker scores. Evaluators
// must not hand tape nodes created on one worker to ops recorded on another
// (sharing leaf parameters across threads is fine — they are read-only
// during inference).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "edge/model.h"
#include "edge/placement.h"
#include "optim/evaluator.h"
#include "runtime/thread_pool.h"
#include "support/rng.h"

namespace chainnet::gnn {
class PlanCache;
}  // namespace chainnet::gnn

namespace chainnet::runtime {

class EvalService {
 public:
  /// Builds one evaluator for a worker; `stream` is that worker's private,
  /// reproducible RNG stream (use it to seed simulator configs or internal
  /// state; ignore it for stateless oracles).
  using EvaluatorFactory =
      std::function<std::unique_ptr<optim::PlacementEvaluator>(
          support::Rng stream)>;

  /// The pool must outlive the service. Evaluators are constructed eagerly
  /// on the calling thread, in worker order, so construction is
  /// deterministic for a fixed (factory, base_seed, pool size).
  EvalService(ThreadPool& pool, EvaluatorFactory factory,
              std::uint64_t base_seed = 1);

  /// The stream handed to worker `worker` for a given base seed — exposed
  /// so serial code can construct a bit-identical evaluator to worker 0.
  static support::Rng worker_stream(std::uint64_t base_seed, int worker) {
    return support::Rng(base_seed).split(static_cast<std::uint64_t>(worker));
  }

  /// Scores every placement of the batch; out[i] corresponds to batch[i].
  /// Thread-safe. When called from one of the pool's own workers the batch
  /// is evaluated inline on that worker's evaluator (no re-submission, so
  /// nested use cannot deadlock the pool).
  std::vector<double> evaluate_batch(const edge::EdgeSystem& system,
                                     std::span<const edge::Placement> batch);

  /// Single-placement convenience (a batch of one).
  double evaluate(const edge::EdgeSystem& system,
                  const edge::Placement& placement);

  /// Oracle evaluations summed over all per-worker evaluators (saturating).
  /// Quiescent counters only: call with no batch in flight.
  std::uint64_t oracle_evaluations() const;

  /// How placements arrive at this service: through genuinely batched
  /// calls (width >= 2, the path the SIMD engine and the plan replayer
  /// amortize) or one at a time. The src/search/ tests assert their
  /// optimizers are batch-fed through these counters.
  struct Stats {
    std::uint64_t batch_calls = 0;  ///< evaluate_batch calls with width >= 2
    std::uint64_t batched_placements = 0;  ///< placements in those calls
    std::uint64_t single_placements = 0;   ///< width-1 calls (incl. evaluate)
    /// Fraction of all placements that arrived through width->=2 batches.
    double batched_fraction() const noexcept {
      const std::uint64_t total = batched_placements + single_placements;
      return total == 0 ? 0.0
                        : static_cast<double>(batched_placements) /
                              static_cast<double>(total);
    }
  };
  Stats stats() const noexcept;

  /// The calling thread's private evaluator: its worker's instance on pool
  /// threads, the owning-thread instance otherwise. Used by the parallel SA
  /// drivers to run whole trials worker-locally.
  optim::PlacementEvaluator& evaluator_here();

  ThreadPool& pool() noexcept { return pool_; }
  int worker_count() const noexcept { return pool_.size(); }

  /// The compiled-plan cache shared by every evaluator of this service:
  /// worker k's first forward on a new system compiles the plan once, and
  /// every other worker replays it (plans are immutable after compile, so
  /// the sharing is read-only — no hot-path locks beyond the cache's own
  /// shard mutex on lookup misses).
  const std::shared_ptr<gnn::PlanCache>& plan_cache() const noexcept {
    return plan_cache_;
  }

 private:
  ThreadPool& pool_;
  EvaluatorFactory factory_;  // kept alive: factories may own shared state
  /// Index 0..size-1: pool workers; index size: the owning thread.
  std::vector<std::unique_ptr<optim::PlacementEvaluator>> evaluators_;
  std::shared_ptr<gnn::PlanCache> plan_cache_;
  /// Monotone dispatch counters (relaxed: no ordering is implied between
  /// them and the evaluations they describe; read them quiescent).
  std::atomic<std::uint64_t> batch_calls_{0};
  std::atomic<std::uint64_t> batched_placements_{0};
  std::atomic<std::uint64_t> single_placements_{0};
};

}  // namespace chainnet::runtime
