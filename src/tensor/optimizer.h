// First-order optimizers over Module parameters. The paper trains with Adam
// (Table IV: lr = 0.001, decayed by 10% every 10 epochs); the decay is
// modeled by LrSchedule.
#pragma once

#include <cstddef>
#include <vector>

#include "tensor/nn.h"

namespace chainnet::tensor {

/// Step-decay learning-rate schedule: lr(epoch) = base * factor^(epoch/every).
class LrSchedule {
 public:
  LrSchedule(double base_lr, double decay_factor = 0.9,
             std::size_t decay_every_epochs = 10);
  double lr_at(std::size_t epoch) const;

 private:
  double base_;
  double factor_;
  std::size_t every_;
};

class Optimizer {
 public:
  virtual ~Optimizer() = default;
  /// Applies one update using the gradients currently stored on the
  /// parameters, then the caller typically zero-grads the module.
  virtual void step() = 0;
  virtual void set_lr(double lr) = 0;
};

/// Plain stochastic gradient descent (used in tests as a reference).
class Sgd final : public Optimizer {
 public:
  Sgd(std::vector<Parameter*> params, double lr);
  void step() override;
  void set_lr(double lr) override { lr_ = lr; }

 private:
  std::vector<Parameter*> params_;
  double lr_;
};

/// Adam (Kingma & Ba 2014) with bias correction.
class Adam final : public Optimizer {
 public:
  Adam(std::vector<Parameter*> params, double lr, double beta1 = 0.9,
       double beta2 = 0.999, double eps = 1e-8);
  void step() override;
  void set_lr(double lr) override { lr_ = lr; }

 private:
  std::vector<Parameter*> params_;
  double lr_, beta1_, beta2_, eps_;
  std::size_t t_ = 0;
  std::vector<std::vector<double>> m_, v_;
};

}  // namespace chainnet::tensor
