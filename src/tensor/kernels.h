// Dense inference kernels for the surrogate hot path: a row-blocked
// multi-accumulator GEMV and a batch-column GEMM.
//
// All kernels make one guarantee the rest of the inference engine is built
// on: **per-output-element accumulation order is fixed** — each output
// starts from its bias (or 0) and adds the products in ascending input
// order, exactly like the naive reference loop. Row blocking only runs
// several such chains in parallel (one accumulator per row, for ILP) and
// the GEMM only vectorizes across independent batch columns, so neither
// reassociates a single element's sum. That is what keeps the fused GRU
// path, the batched multi-placement path, and the pre-fusion reference
// bit-for-bit identical (pinned by kernels_test and chainnet_batch_test).
//
// ISA dispatch: the implementation picks, once per process, the widest
// variant the host supports — baseline x86-64 (SSE2, no FMA), AVX2+FMA, or
// AVX-512+FMA. The FMA variants fuse every multiply-add (one rounding)
// uniformly across gemv, gemv_naive, and every gemm tile width, so all
// inference paths still agree bit-for-bit on any one host; absolute values
// differ between hosts of different ISA tiers (fused vs separate rounding),
// which the parity tests never compare. CHAINNET_KERNEL_ISA=baseline|
// avx2|avx512 forces a (supported) tier, e.g. to cross-check tiers; any
// other spelling is rejected at first kernel use (validate_isa_name).
//
// Every kernel has an f32 overload — the reduced-precision tier
// (tensor/dtype.h). The f32 variants keep the exact same structure and the
// same per-element-accumulation-order guarantee at twice the lane width
// (16 floats per zmm vs 8 doubles), so within one ISA tier the f32 blocked
// gemv, naive gemv, and every gemm tile width agree bit-for-bit with each
// other — the f32 tier's internal parity oracle. f32 results are NOT
// comparable bitwise to f64 results; that boundary is gated on ranking
// fidelity instead (DESIGN.md §15).
#pragma once

#include <cstddef>

namespace chainnet::tensor::kernels {

/// y[r] = (bias ? bias[r] : 0) + sum_c w[r*cols + c] * x[c].
/// Row-blocked: kRowBlock independent accumulator chains run in parallel;
/// each row's own chain stays sequential in c.
void gemv(const double* w, const double* bias, const double* x, double* y,
          std::size_t rows, std::size_t cols);

/// Single-accumulator reference GEMV — the pre-fusion kernel, kept as the
/// bit-parity oracle and the bench_infer baseline. Same accumulation order
/// as gemv(), so the two agree bit-for-bit.
void gemv_naive(const double* w, const double* bias, const double* x,
                double* y, std::size_t rows, std::size_t cols);

/// Batched GEMV with n batch columns (row-major panels):
///   y[r*n + j] = (bias ? bias[r] : 0) + sum_c w[r*cols + c] * x[c*n + j].
/// Column j's accumulation chain is identical to gemv() on column j, so a
/// batched pass is bit-identical to n single-stream passes. The column tile
/// is the outer loop (a tile of x stays cache-resident across all output
/// rows); lanes run across columns, never within one column's sum.
/// `y` must not alias `x`.
void gemm(const double* w, const double* bias, const double* x, double* y,
          std::size_t rows, std::size_t cols, std::size_t n);

/// f32 tier: same contracts as the double overloads, one lane-width up.
void gemv(const float* w, const float* bias, const float* x, float* y,
          std::size_t rows, std::size_t cols);
void gemv_naive(const float* w, const float* bias, const float* x, float* y,
                std::size_t rows, std::size_t cols);
void gemm(const float* w, const float* bias, const float* x, float* y,
          std::size_t rows, std::size_t cols, std::size_t n);

/// Name of the dispatched variant: "baseline", "avx2", or "avx512".
const char* isa();

/// Throws std::invalid_argument unless `name` is one of the accepted
/// CHAINNET_KERNEL_ISA spellings (baseline, avx2, avx512). The dispatcher
/// calls this on a forced tier, so a typo fails loudly at first kernel use
/// instead of silently auto-detecting; a *known* tier the host cannot run
/// still falls back to auto-detection (documented, so cross-host scripts
/// may pin the widest tier they hope for).
void validate_isa_name(const char* name);

}  // namespace chainnet::tensor::kernels
