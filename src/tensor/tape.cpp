// LINT:counters — the global backward() reachability stamp is a pure
// uniqueness counter; threads never order memory around it.
// LINT:allocator — this file IS the arena substrate R6 routes everyone
// else through.
#include "tensor/tape.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <sstream>

namespace chainnet::tensor {

std::string Shape::str() const {
  std::ostringstream os;
  os << "[" << rows << "," << cols << "]";
  return os.str();
}

namespace {

// Chunk sizes (in elements) sized so one training batch of the paper-scale
// models fits in a handful of chunks.
constexpr std::size_t kNodeChunk = 4096;           // ~440 KiB of records
constexpr std::size_t kDoubleChunk = std::size_t{1} << 16;  // 512 KiB
constexpr std::size_t kLinkChunk = std::size_t{1} << 13;

/// Reachability stamps for backward(). Global (not per-tape) so a graph
/// whose leaves live on another thread's tape can never collide with a
/// stale stamp written by that tape's own sweeps.
std::atomic<std::uint64_t> g_stamp{0};

std::uint64_t next_stamp() noexcept {
  return g_stamp.fetch_add(1, std::memory_order_relaxed) + 1;
}

/// Scatters `n`'s gradient into its parents — the op dispatch that replaces
/// the per-node backward closures. The arithmetic (expression and loop
/// order) is a verbatim port of those closures, so gradients are
/// bit-identical to the closure-based tape.
void scatter(const Node& n) {
  const double* g = n.grad_buf;
  const std::size_t sz = n.shape.size();
  switch (n.op) {
    case Op::kLeaf:
      return;
    case Op::kAdd: {
      for (std::uint32_t pi = 0; pi < 2; ++pi) {
        Node* p = n.parents[pi];
        if (!p->requires_grad) continue;
        for (std::size_t i = 0; i < sz; ++i) p->grad_buf[i] += g[i];
      }
      return;
    }
    case Op::kSub: {
      Node* a = n.parents[0];
      Node* b = n.parents[1];
      if (a->requires_grad) {
        for (std::size_t i = 0; i < sz; ++i) a->grad_buf[i] += g[i];
      }
      if (b->requires_grad) {
        for (std::size_t i = 0; i < sz; ++i) b->grad_buf[i] -= g[i];
      }
      return;
    }
    case Op::kMul: {
      Node* a = n.parents[0];
      Node* b = n.parents[1];
      if (a->requires_grad) {
        for (std::size_t i = 0; i < sz; ++i) {
          a->grad_buf[i] += g[i] * b->val[i];
        }
      }
      if (b->requires_grad) {
        for (std::size_t i = 0; i < sz; ++i) {
          b->grad_buf[i] += g[i] * a->val[i];
        }
      }
      return;
    }
    case Op::kScale: {
      Node* a = n.parents[0];
      if (!a->requires_grad) return;
      for (std::size_t i = 0; i < sz; ++i) a->grad_buf[i] += g[i] * n.aux;
      return;
    }
    case Op::kAddScalar: {
      Node* a = n.parents[0];
      if (!a->requires_grad) return;
      for (std::size_t i = 0; i < sz; ++i) a->grad_buf[i] += g[i] * 1.0;
      return;
    }
    case Op::kMatVec: {
      Node* w = n.parents[0];
      Node* x = n.parents[1];
      const std::size_t m = n.shape.rows;
      const std::size_t k = w->shape.cols;
      if (w->requires_grad) {
        for (std::size_t r = 0; r < m; ++r) {
          const double gr = g[r];
          double* wrow = w->grad_buf + r * k;
          for (std::size_t c = 0; c < k; ++c) wrow[c] += gr * x->val[c];
        }
      }
      if (x->requires_grad) {
        for (std::size_t r = 0; r < m; ++r) {
          const double gr = g[r];
          const double* wrow = w->val + r * k;
          for (std::size_t c = 0; c < k; ++c) x->grad_buf[c] += gr * wrow[c];
        }
      }
      return;
    }
    case Op::kMatMul: {
      Node* a = n.parents[0];
      Node* b = n.parents[1];
      const std::size_t m = a->shape.rows;
      const std::size_t k = a->shape.cols;
      const std::size_t p = b->shape.cols;
      if (a->requires_grad) {
        for (std::size_t r = 0; r < m; ++r) {
          for (std::size_t t = 0; t < k; ++t) {
            double acc = 0.0;
            for (std::size_t c = 0; c < p; ++c) {
              acc += g[r * p + c] * b->val[t * p + c];
            }
            a->grad_buf[r * k + t] += acc;
          }
        }
      }
      if (b->requires_grad) {
        for (std::size_t t = 0; t < k; ++t) {
          for (std::size_t c = 0; c < p; ++c) {
            double acc = 0.0;
            for (std::size_t r = 0; r < m; ++r) {
              acc += a->val[r * k + t] * g[r * p + c];
            }
            b->grad_buf[t * p + c] += acc;
          }
        }
      }
      return;
    }
    case Op::kDot: {
      Node* a = n.parents[0];
      Node* b = n.parents[1];
      const double g0 = g[0];
      const std::size_t len = a->shape.size();
      if (a->requires_grad) {
        for (std::size_t i = 0; i < len; ++i) {
          a->grad_buf[i] += g0 * b->val[i];
        }
      }
      if (b->requires_grad) {
        for (std::size_t i = 0; i < len; ++i) {
          b->grad_buf[i] += g0 * a->val[i];
        }
      }
      return;
    }
    case Op::kConcat: {
      std::size_t off = 0;
      for (std::uint32_t pi = 0; pi < n.num_parents; ++pi) {
        Node* p = n.parents[pi];
        const std::size_t psz = p->shape.size();
        if (p->requires_grad) {
          for (std::size_t i = 0; i < psz; ++i) {
            p->grad_buf[i] += g[off + i];
          }
        }
        off += psz;
      }
      return;
    }
    case Op::kScalarMul: {
      Node* w = n.parents[0];
      Node* v = n.parents[1];
      if (w->requires_grad) {
        double acc = 0.0;
        for (std::size_t j = 0; j < sz; ++j) acc += g[j] * v->val[j];
        w->grad_buf[0] += acc;
      }
      if (v->requires_grad) {
        const double wv = w->val[0];
        for (std::size_t j = 0; j < sz; ++j) v->grad_buf[j] += g[j] * wv;
      }
      return;
    }
    case Op::kSigmoid: {
      Node* a = n.parents[0];
      if (!a->requires_grad) return;
      for (std::size_t i = 0; i < sz; ++i) {
        const double y = n.val[i];
        a->grad_buf[i] += g[i] * (y * (1.0 - y));
      }
      return;
    }
    case Op::kTanh: {
      Node* a = n.parents[0];
      if (!a->requires_grad) return;
      for (std::size_t i = 0; i < sz; ++i) {
        const double y = n.val[i];
        a->grad_buf[i] += g[i] * (1.0 - y * y);
      }
      return;
    }
    case Op::kRelu: {
      Node* a = n.parents[0];
      if (!a->requires_grad) return;
      for (std::size_t i = 0; i < sz; ++i) {
        a->grad_buf[i] += g[i] * (a->val[i] > 0.0 ? 1.0 : 0.0);
      }
      return;
    }
    case Op::kLeakyRelu: {
      Node* a = n.parents[0];
      if (!a->requires_grad) return;
      for (std::size_t i = 0; i < sz; ++i) {
        a->grad_buf[i] += g[i] * (a->val[i] > 0.0 ? 1.0 : n.aux);
      }
      return;
    }
    case Op::kSoftplus: {
      Node* a = n.parents[0];
      if (!a->requires_grad) return;
      for (std::size_t i = 0; i < sz; ++i) {
        a->grad_buf[i] += g[i] * (1.0 / (1.0 + std::exp(-a->val[i])));
      }
      return;
    }
    case Op::kExp: {
      Node* a = n.parents[0];
      if (!a->requires_grad) return;
      for (std::size_t i = 0; i < sz; ++i) {
        a->grad_buf[i] += g[i] * n.val[i];
      }
      return;
    }
    case Op::kLog: {
      Node* a = n.parents[0];
      if (!a->requires_grad) return;
      for (std::size_t i = 0; i < sz; ++i) {
        a->grad_buf[i] += g[i] * (1.0 / a->val[i]);
      }
      return;
    }
    case Op::kSoftmax: {
      Node* a = n.parents[0];
      if (!a->requires_grad) return;
      double dot_gy = 0.0;
      for (std::size_t i = 0; i < sz; ++i) dot_gy += g[i] * n.val[i];
      for (std::size_t i = 0; i < sz; ++i) {
        a->grad_buf[i] += n.val[i] * (g[i] - dot_gy);
      }
      return;
    }
    case Op::kSum: {
      Node* a = n.parents[0];
      if (!a->requires_grad) return;
      const double g0 = g[0];
      const std::size_t len = a->shape.size();
      for (std::size_t i = 0; i < len; ++i) a->grad_buf[i] += g0;
      return;
    }
    case Op::kSumOf: {
      for (std::uint32_t pi = 0; pi < n.num_parents; ++pi) {
        Node* p = n.parents[pi];
        if (!p->requires_grad) continue;
        for (std::size_t i = 0; i < sz; ++i) p->grad_buf[i] += g[i];
      }
      return;
    }
  }
}

}  // namespace

Tape::Tape()
    : records_(kNodeChunk), doubles_(kDoubleChunk), links_(kLinkChunk) {}

Tape& Tape::current() noexcept {
  thread_local Tape tape;
  return tape;
}

double* Tape::alloc_zeroed(std::size_t n) {
  double* p = doubles_.allocate(n);
  std::fill_n(p, n, 0.0);
  return p;
}

Node* Tape::leaf(Shape shape, std::span<const double> values,
                 bool requires_grad) {
  Node* n = records_.allocate(1);
  *n = Node{};
  n->shape = shape;
  n->tape = this;
  n->requires_grad = requires_grad;
  n->val = doubles_.allocate(shape.size());
  std::copy(values.begin(), values.end(), n->val);
  if (requires_grad) n->grad_buf = alloc_zeroed(shape.size());
  n->index = index_.size();
  index_.push_back(n);
  return n;
}

Node* Tape::op_node(Op op, Shape shape, std::span<Node* const> parents,
                    double aux) {
  Node* n = records_.allocate(1);
  *n = Node{};
  n->shape = shape;
  n->tape = this;
  n->op = op;
  n->aux = aux;
  n->num_parents = static_cast<std::uint32_t>(parents.size());
  if (!parents.empty()) {
    n->parents = links_.allocate(parents.size());
    for (std::size_t i = 0; i < parents.size(); ++i) {
      n->parents[i] = parents[i];
      if (parents[i]->requires_grad) n->requires_grad = true;
    }
  }
  // Values start zeroed: accumulation ops (sum_of) rely on it, and arena
  // reuse would otherwise expose stale data.
  n->val = alloc_zeroed(shape.size());
  if (n->requires_grad) n->grad_buf = alloc_zeroed(shape.size());
  n->index = index_.size();
  index_.push_back(n);
  return n;
}

void Tape::backward(Node* root) {
  if (!root->requires_grad) {
    // Frozen graph: no ancestor wants gradients. Seed the root anyway so
    // the observable behavior matches the closure-based tape, which always
    // materialized the root's gradient.
    if (!root->grad_buf) root->grad_buf = alloc_zeroed(root->shape.size());
    root->grad_buf[0] += 1.0;
    return;
  }
  // Mark every requires_grad ancestor with a fresh stamp. Restricting the
  // sweep to marked nodes is what keeps gradients of *other* graphs on this
  // tape (earlier batches, finished backward calls) from being
  // re-propagated.
  const std::uint64_t stamp = next_stamp();
  std::size_t lo = root->index;
  stack_.clear();
  root->stamp = stamp;
  stack_.push_back(root);
  while (!stack_.empty()) {
    Node* n = stack_.back();
    stack_.pop_back();
    if (n->tape == this && n->index < lo) lo = n->index;
    for (std::uint32_t i = 0; i < n->num_parents; ++i) {
      Node* p = n->parents[i];
      if (p->requires_grad && p->stamp != stamp) {
        p->stamp = stamp;
        stack_.push_back(p);
      }
    }
  }
  // Descending creation index is a valid reverse topological order: every
  // parent precedes its children on the tape. Foreign-tape nodes (shared
  // parameter leaves) are not in index_ and need no scatter.
  root->grad_buf[0] += 1.0;
  for (std::size_t idx = root->index + 1; idx-- > lo;) {
    const Node* n = index_[idx];
    if (n->stamp == stamp) scatter(*n);
  }
}

Tape::Mark Tape::mark() const noexcept {
  return {records_.mark(), doubles_.mark(), links_.mark(), index_.size()};
}

void Tape::release(const Mark& m) noexcept {
  records_.release(m.records);
  doubles_.release(m.doubles);
  links_.release(m.links);
  index_.resize(m.nodes);
}

void Tape::reset() noexcept {
  records_.reset();
  doubles_.reset();
  links_.reset();
  index_.clear();
}

std::size_t Tape::capacity_bytes() const noexcept {
  return records_.capacity() * sizeof(Node) +
         doubles_.capacity() * sizeof(double) +
         links_.capacity() * sizeof(Node*) +
         index_.capacity() * sizeof(Node*) + stack_.capacity() * sizeof(Node*);
}

std::size_t Tape::used_bytes() const noexcept {
  return records_.used() * sizeof(Node) + doubles_.used() * sizeof(double) +
         links_.used() * sizeof(Node*) + index_.size() * sizeof(Node*);
}

}  // namespace chainnet::tensor
