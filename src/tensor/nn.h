// Neural-network modules built on the autodiff Vars: Linear, MLP, GRUCell,
// plus Glorot (Xavier) initialization as prescribed by the paper (§V-E).
// Modules expose their parameters through a registry so optimizers and the
// serializer can traverse any composed model uniformly.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "support/rng.h"
#include "tensor/variable.h"

namespace chainnet::tensor {

/// A named trainable tensor. The underlying tape node is a leaf created at
/// module construction, outside any tape frame, so it persists across
/// forward passes; only intermediates are rebuilt (and frame-released)
/// each pass.
struct Parameter {
  std::string name;
  Var var;
};

/// Base for anything that owns parameters. Submodules register their
/// parameters into the parent's registry with a dotted name prefix.
class Module {
 public:
  virtual ~Module() = default;

  /// All parameters of this module and its registered submodules.
  std::vector<Parameter*> parameters();
  std::vector<const Parameter*> parameters() const;

  /// Zeroes every parameter gradient.
  void zero_grad();

  /// Total number of scalar weights.
  std::size_t parameter_count() const;

 protected:
  /// Creates and registers a parameter of the given shape, Glorot-uniform
  /// initialized with fan_in/fan_out taken from the shape (cols/rows).
  Var register_glorot(const std::string& name, Shape shape,
                      chainnet::support::Rng& rng);
  /// Creates and registers a zero-initialized parameter (biases).
  Var register_zeros(const std::string& name, Shape shape);
  /// Registers a submodule so its parameters appear under `prefix.`.
  void register_module(const std::string& prefix, Module* child);

 private:
  std::vector<std::unique_ptr<Parameter>> params_;
  std::vector<std::pair<std::string, Module*>> children_;
  void collect(std::vector<Parameter*>& out);
};

/// Glorot-uniform initialization: U(-a, a) with a = sqrt(6/(fan_in+fan_out)).
void glorot_uniform(std::span<double> weights, std::size_t fan_in,
                    std::size_t fan_out, chainnet::support::Rng& rng);

/// y = W x + b, with W: [out, in].
class Linear : public Module {
 public:
  Linear(std::size_t in, std::size_t out, chainnet::support::Rng& rng,
         const std::string& name = "linear");
  Var forward(const Var& x) const;

  /// Inference-only evaluation into a caller buffer (out = W x + b); no
  /// autodiff graph is built. `out` must have out_features() elements.
  void forward_values(std::span<const double> x,
                      std::span<double> out) const;

  std::size_t in_features() const { return in_; }
  std::size_t out_features() const { return out_; }

 private:
  std::size_t in_, out_;
  Var w_, b_;
};

/// Supported hidden/output nonlinearities for MLP.
enum class Activation { kNone, kRelu, kTanh, kSigmoid, kLeakyRelu, kSoftplus };

Var apply_activation(const Var& x, Activation act);

/// Multi-layer perceptron: Linear -> act -> ... -> Linear -> out_act.
/// The paper's MLP_tput / MLP_latency heads (eq. 12) are instances with a
/// sigmoid output when learning the (0,1)-ratio targets of Table II.
class Mlp : public Module {
 public:
  Mlp(const std::vector<std::size_t>& layer_sizes, Activation hidden,
      Activation output, chainnet::support::Rng& rng,
      const std::string& name = "mlp");
  Var forward(Var x) const;

  /// Reusable buffers for forward_values; hold one per call site that loops
  /// (the SA hot path) so steady-state inference performs no allocations.
  struct Scratch {
    std::vector<double> a, b;
  };

  /// Inference-only evaluation; `out` must have output-layer width.
  void forward_values(std::span<const double> x, std::span<double> out) const;
  void forward_values(std::span<const double> x, std::span<double> out,
                      Scratch& scratch) const;

 private:
  std::vector<std::unique_ptr<Linear>> layers_;
  Activation hidden_, output_;
};

/// Applies an activation elementwise to a raw buffer (inference path).
void apply_activation_values(std::span<double> x, Activation act);

/// Gated recurrent unit cell (Cho et al. 2014), used for the paper's three
/// update functions phi_C, phi_F, phi_D (§V-D4):
///   r = sigmoid(W_ir x + b_ir + W_hr h + b_hr)
///   z = sigmoid(W_iz x + b_iz + W_hz h + b_hz)
///   n = tanh  (W_in x + b_in + r * (W_hn h + b_hn))
///   h' = (1 - z) * n + z * h
class GruCell : public Module {
 public:
  GruCell(std::size_t input, std::size_t hidden, chainnet::support::Rng& rng,
          const std::string& name = "gru");
  /// Returns the next hidden state h'. `h` has size hidden, `x` size input.
  Var forward(const Var& h, const Var& x) const;

  /// Reusable gate buffers for forward_values (see Mlp::Scratch).
  struct Scratch {
    std::vector<double> r, z, ni, nh, tmp;
  };

  /// Inference-only evaluation into `h_out` (size hidden); no graph built.
  /// `h_out` may not alias `h`.
  void forward_values(std::span<const double> h, std::span<const double> x,
                      std::span<double> h_out) const;
  void forward_values(std::span<const double> h, std::span<const double> x,
                      std::span<double> h_out, Scratch& scratch) const;

  std::size_t input_size() const { return input_; }
  std::size_t hidden_size() const { return hidden_; }

 private:
  std::size_t input_, hidden_;
  Var w_ir_, w_iz_, w_in_;
  Var w_hr_, w_hz_, w_hn_;
  Var b_ir_, b_iz_, b_in_;
  Var b_hr_, b_hz_, b_hn_;
};

}  // namespace chainnet::tensor
