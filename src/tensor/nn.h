// Neural-network modules built on the autodiff Vars: Linear, MLP, GRUCell,
// plus Glorot (Xavier) initialization as prescribed by the paper (§V-E).
// Modules expose their parameters through a registry so optimizers and the
// serializer can traverse any composed model uniformly.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "support/rng.h"
#include "tensor/dtype.h"
#include "tensor/variable.h"

namespace chainnet::tensor {

/// A named trainable tensor. The underlying tape node is a leaf created at
/// module construction, outside any tape frame, so it persists across
/// forward passes; only intermediates are rebuilt (and frame-released)
/// each pass.
struct Parameter {
  std::string name;
  Var var;
};

/// Base for anything that owns parameters. Submodules register their
/// parameters into the parent's registry with a dotted name prefix.
class Module {
 public:
  virtual ~Module() = default;

  /// All parameters of this module and its registered submodules.
  std::vector<Parameter*> parameters();
  std::vector<const Parameter*> parameters() const;

  /// Zeroes every parameter gradient.
  void zero_grad();

  /// Total number of scalar weights.
  std::size_t parameter_count() const;

 protected:
  /// Creates and registers a parameter of the given shape, Glorot-uniform
  /// initialized with fan_in/fan_out taken from the shape (cols/rows).
  Var register_glorot(const std::string& name, Shape shape,
                      chainnet::support::Rng& rng);
  /// Creates and registers a zero-initialized parameter (biases).
  Var register_zeros(const std::string& name, Shape shape);
  /// Registers a submodule so its parameters appear under `prefix.`.
  void register_module(const std::string& prefix, Module* child);

 private:
  std::vector<std::unique_ptr<Parameter>> params_;
  std::vector<std::pair<std::string, Module*>> children_;
  void collect(std::vector<Parameter*>& out);
};

/// Glorot-uniform initialization: U(-a, a) with a = sqrt(6/(fan_in+fan_out)).
void glorot_uniform(std::span<double> weights, std::size_t fan_in,
                    std::size_t fan_out, chainnet::support::Rng& rng);

/// y = W x + b, with W: [out, in].
class Linear : public Module {
 public:
  Linear(std::size_t in, std::size_t out, chainnet::support::Rng& rng,
         const std::string& name = "linear");
  Var forward(const Var& x) const;

  /// Inference-only evaluation into a caller buffer (out = W x + b); no
  /// autodiff graph is built. `out` must have out_features() elements.
  void forward_values(std::span<const double> x,
                      std::span<double> out) const;

  /// Batched inference over n batch columns: `x` is a row-major
  /// [in_features x n] panel, `out` a [out_features x n] panel. Column j is
  /// bit-identical to forward_values on column j (see kernels.h).
  void forward_values_batch(const double* x, double* out,
                            std::size_t n) const;

  /// Reduced-precision tier: same contracts on float panels, using a
  /// lazily cached f32 copy of W/b (bf16-rounded when `storage` is kBf16 —
  /// weights only; activations stay plain f32). The cache re-converts when
  /// a parameter's node version moves, like GruCell's packed blocks.
  void forward_values(std::span<const float> x, std::span<float> out,
                      DType storage) const;
  void forward_values_batch(const float* x, float* out, std::size_t n,
                            DType storage) const;

  std::size_t in_features() const { return in_; }
  std::size_t out_features() const { return out_; }

 private:
  /// Re-converts the f32 weight cache when stale (version or storage mode).
  void ensure_f32(DType storage) const;

  std::size_t in_, out_;
  Var w_, b_;
  mutable std::vector<float> w_f32_, b_f32_;
  mutable std::array<std::uint64_t, 2> f32_versions_{};
  mutable DType f32_storage_ = DType::kF32;
  mutable bool f32_ready_ = false;
};

/// Supported hidden/output nonlinearities for MLP.
enum class Activation { kNone, kRelu, kTanh, kSigmoid, kLeakyRelu, kSoftplus };

Var apply_activation(const Var& x, Activation act);

/// Multi-layer perceptron: Linear -> act -> ... -> Linear -> out_act.
/// The paper's MLP_tput / MLP_latency heads (eq. 12) are instances with a
/// sigmoid output when learning the (0,1)-ratio targets of Table II.
class Mlp : public Module {
 public:
  Mlp(const std::vector<std::size_t>& layer_sizes, Activation hidden,
      Activation output, chainnet::support::Rng& rng,
      const std::string& name = "mlp");
  Var forward(Var x) const;

  /// Reusable buffers for forward_values; hold one per call site that loops
  /// (the SA hot path) so steady-state inference performs no allocations.
  struct Scratch {
    std::vector<double> a, b;
    std::vector<float> a_f, b_f;  // reduced-precision tier
  };

  /// Cold-path-only convenience overload: constructs a fresh Scratch (two
  /// heap allocations) per call. Warm paths must hold a persistent Scratch
  /// and use the overload below.
  void forward_values(std::span<const double> x, std::span<double> out) const;
  /// Inference-only evaluation; `out` must have output-layer width.
  void forward_values(std::span<const double> x, std::span<double> out,
                      Scratch& scratch) const;

  /// Batched inference over n batch columns: `x` is a row-major
  /// [input x n] panel, `out` a [output x n] panel. Column j is
  /// bit-identical to forward_values on column j.
  void forward_values_batch(const double* x, double* out, std::size_t n,
                            Scratch& scratch) const;

  /// Reduced-precision tier (see Linear): float panels through the f32
  /// kernel table and the per-layer f32 weight caches.
  void forward_values(std::span<const float> x, std::span<float> out,
                      Scratch& scratch, DType storage) const;
  void forward_values_batch(const float* x, float* out, std::size_t n,
                            Scratch& scratch, DType storage) const;

 private:
  std::vector<std::unique_ptr<Linear>> layers_;
  Activation hidden_, output_;
};

/// Applies an activation elementwise to a raw buffer (inference path).
void apply_activation_values(std::span<double> x, Activation act);

/// Float flavor for the reduced-precision tier: same shapes, evaluated in
/// f32 arithmetic (expf/tanhf and friends via the float overloads).
void apply_activation_values(std::span<float> x, Activation act);

/// Gated recurrent unit cell (Cho et al. 2014), used for the paper's three
/// update functions phi_C, phi_F, phi_D (§V-D4):
///   r = sigmoid(W_ir x + b_ir + W_hr h + b_hr)
///   z = sigmoid(W_iz x + b_iz + W_hz h + b_hz)
///   n = tanh  (W_in x + b_in + r * (W_hn h + b_hn))
///   h' = (1 - z) * n + z * h
class GruCell : public Module {
 public:
  GruCell(std::size_t input, std::size_t hidden, chainnet::support::Rng& rng,
          const std::string& name = "gru");
  /// Returns the next hidden state h'. `h` has size hidden, `x` size input.
  Var forward(const Var& h, const Var& x) const;

  /// Reusable gate buffers for forward_values (see Mlp::Scratch). The
  /// fused path uses gi/gh (stacked [3H] gate pre-activations); the
  /// reference path uses the per-gate vectors.
  struct Scratch {
    std::vector<double> r, z, ni, nh, tmp;  // reference (unfused) path
    std::vector<double> gi, gh;             // fused path
    std::vector<float> gi_f, gh_f;          // reduced-precision tier
  };

  /// Cold-path-only convenience overload: constructs a fresh Scratch per
  /// call. Warm paths must hold a persistent Scratch and use the overload
  /// below.
  void forward_values(std::span<const double> h, std::span<const double> x,
                      std::span<double> h_out) const;
  /// Inference-only evaluation into `h_out` (size hidden); no graph built.
  /// `h_out` may not alias `h`. Dispatches the packed [3Hxin]/[3HxH]
  /// weight blocks through the blocked kernels — bit-identical to
  /// forward_values_reference (pinned by chainnet_batch_test).
  void forward_values(std::span<const double> h, std::span<const double> x,
                      std::span<double> h_out, Scratch& scratch) const;

  /// Pre-fusion evaluation path: six independent naive GEMVs, kept as the
  /// bit-parity oracle and the bench_infer baseline.
  void forward_values_reference(std::span<const double> h,
                                std::span<const double> x,
                                std::span<double> h_out,
                                Scratch& scratch) const;

  /// Batched step over n batch columns. `h` and `h_out` are row-major
  /// [hidden x n] panels, `x` a [input x n] panel; column j is
  /// bit-identical to forward_values on column j. `h_out` must not alias
  /// `h` or `x`.
  void forward_values_batch(const double* h, const double* x, double* h_out,
                            std::size_t n, Scratch& scratch) const;

  /// Reduced-precision tier: the fused step on float panels, with the
  /// packed gate blocks lazily converted to f32 (bf16-rounded when
  /// `storage` is kBf16) and version-checked like the f64 packs. Gates run
  /// in f32 arithmetic.
  void forward_values(std::span<const float> h, std::span<const float> x,
                      std::span<float> h_out, Scratch& scratch,
                      DType storage) const;
  void forward_values_batch(const float* h, const float* x, float* h_out,
                            std::size_t n, Scratch& scratch,
                            DType storage) const;

  std::size_t input_size() const { return input_; }
  std::size_t hidden_size() const { return hidden_; }

 private:
  /// Re-packs wi/wh/bi/bh from the twelve parameters when any parameter
  /// version changed (optimizer step, deserialization, gradcheck nudges).
  void ensure_packed() const;
  /// Converts the packed blocks to the f32 tier (own staleness tracking:
  /// a process may run both tiers against one cell).
  void ensure_packed_f32(DType storage) const;

  std::size_t input_, hidden_;
  Var w_ir_, w_iz_, w_in_;
  Var w_hr_, w_hz_, w_hn_;
  Var b_ir_, b_iz_, b_in_;
  Var b_hr_, b_hz_, b_hn_;

  // Stacked inference blocks in gate order [r; z; n]: wi_pack_ is
  // [3H x input], wh_pack_ [3H x hidden], bi_pack_/bh_pack_ [3H]. Packed
  // lazily on first fused call and re-packed when a parameter's node
  // version moves (Var::mutable_value is the only mutation funnel).
  mutable std::vector<double> wi_pack_, wh_pack_, bi_pack_, bh_pack_;
  mutable std::array<std::uint64_t, 12> pack_versions_{};
  mutable bool packed_ = false;

  // f32 tier of the same packs (bf16-rounded when requested).
  mutable std::vector<float> wi_pack_f32_, wh_pack_f32_;
  mutable std::vector<float> bi_pack_f32_, bh_pack_f32_;
  mutable std::array<std::uint64_t, 12> pack_versions_f32_{};
  mutable DType f32_storage_ = DType::kF32;
  mutable bool packed_f32_ = false;
};

}  // namespace chainnet::tensor
