#include "tensor/serialize.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <stdexcept>

namespace chainnet::tensor {

namespace {

constexpr char kMagic[4] = {'C', 'N', 'W', 'T'};
constexpr std::uint32_t kVersion = 1;

template <typename T>
void write_pod(std::ofstream& out, T v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T read_pod(std::ifstream& in) {
  T v{};
  in.read(reinterpret_cast<char*>(&v), sizeof(T));
  if (!in) throw std::runtime_error("parameter file truncated");
  return v;
}

}  // namespace

void save_parameters(const Module& module, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("save_parameters: cannot open " + path);
  out.write(kMagic, sizeof(kMagic));
  write_pod(out, kVersion);
  const auto params = module.parameters();
  write_pod(out, static_cast<std::uint64_t>(params.size()));
  for (const Parameter* p : params) {
    write_pod(out, static_cast<std::uint64_t>(p->name.size()));
    out.write(p->name.data(), static_cast<std::streamsize>(p->name.size()));
    write_pod(out, static_cast<std::uint64_t>(p->var.shape().rows));
    write_pod(out, static_cast<std::uint64_t>(p->var.shape().cols));
    const auto vals = p->var.value();
    out.write(reinterpret_cast<const char*>(vals.data()),
              static_cast<std::streamsize>(vals.size() * sizeof(double)));
  }
  if (!out) throw std::runtime_error("save_parameters: write failed " + path);
}

void load_parameters(Module& module, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("load_parameters: cannot open " + path);
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("load_parameters: bad magic in " + path);
  }
  const auto version = read_pod<std::uint32_t>(in);
  if (version != kVersion) {
    throw std::runtime_error("load_parameters: unsupported version");
  }
  const auto count = read_pod<std::uint64_t>(in);
  auto params = module.parameters();
  if (count != params.size()) {
    throw std::runtime_error("load_parameters: parameter count mismatch");
  }
  for (Parameter* p : params) {
    const auto name_len = read_pod<std::uint64_t>(in);
    std::string name(name_len, '\0');
    in.read(name.data(), static_cast<std::streamsize>(name_len));
    const auto rows = read_pod<std::uint64_t>(in);
    const auto cols = read_pod<std::uint64_t>(in);
    if (name != p->name || rows != p->var.shape().rows ||
        cols != p->var.shape().cols) {
      throw std::runtime_error("load_parameters: mismatch at parameter '" +
                               p->name + "' in " + path);
    }
    auto vals = p->var.mutable_value();
    in.read(reinterpret_cast<char*>(vals.data()),
            static_cast<std::streamsize>(vals.size() * sizeof(double)));
    if (!in) throw std::runtime_error("load_parameters: truncated " + path);
  }
}

bool is_parameter_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  char magic[4];
  in.read(magic, sizeof(magic));
  return in && std::memcmp(magic, kMagic, sizeof(kMagic)) == 0;
}

}  // namespace chainnet::tensor
