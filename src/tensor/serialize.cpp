#include "tensor/serialize.h"

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <vector>

#include "support/json.h"

namespace chainnet::tensor {

namespace {

constexpr char kMagic[4] = {'C', 'N', 'W', 'T'};
constexpr std::uint32_t kVersion = 1;
constexpr std::string_view kManifestFormat = "chainnet-weights-manifest";
constexpr std::string_view kChecksumPrefix = "fnv1a:";

template <typename T>
void write_pod(std::ofstream& out, T v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T read_pod(std::ifstream& in) {
  T v{};
  in.read(reinterpret_cast<char*>(&v), sizeof(T));
  if (!in) {
    throw SerializeError(SerializeErrc::kTruncated, "parameter file truncated");
  }
  return v;
}

}  // namespace

std::string_view serialize_errc_name(SerializeErrc code) noexcept {
  switch (code) {
    case SerializeErrc::kIo: return "io_error";
    case SerializeErrc::kBadMagic: return "bad_magic";
    case SerializeErrc::kBadVersion: return "bad_version";
    case SerializeErrc::kTruncated: return "truncated";
    case SerializeErrc::kMismatch: return "parameter_mismatch";
    case SerializeErrc::kBadManifest: return "bad_manifest";
    case SerializeErrc::kChecksumMismatch: return "checksum_mismatch";
  }
  return "serialize_error";
}

void save_parameters(const Module& module, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw SerializeError(SerializeErrc::kIo,
                         "save_parameters: cannot open " + path);
  }
  out.write(kMagic, sizeof(kMagic));
  write_pod(out, kVersion);
  const auto params = module.parameters();
  write_pod(out, static_cast<std::uint64_t>(params.size()));
  for (const Parameter* p : params) {
    write_pod(out, static_cast<std::uint64_t>(p->name.size()));
    out.write(p->name.data(), static_cast<std::streamsize>(p->name.size()));
    write_pod(out, static_cast<std::uint64_t>(p->var.shape().rows));
    write_pod(out, static_cast<std::uint64_t>(p->var.shape().cols));
    const auto vals = p->var.value();
    out.write(reinterpret_cast<const char*>(vals.data()),
              static_cast<std::streamsize>(vals.size() * sizeof(double)));
  }
  if (!out) {
    throw SerializeError(SerializeErrc::kIo,
                         "save_parameters: write failed " + path);
  }
}

void load_parameters(Module& module, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw SerializeError(SerializeErrc::kIo,
                         "load_parameters: cannot open " + path);
  }
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw SerializeError(SerializeErrc::kBadMagic,
                         "load_parameters: bad magic in " + path);
  }
  const auto version = read_pod<std::uint32_t>(in);
  if (version != kVersion) {
    throw SerializeError(SerializeErrc::kBadVersion,
                         "load_parameters: unsupported version " +
                             std::to_string(version) + " in " + path);
  }
  const auto count = read_pod<std::uint64_t>(in);
  auto params = module.parameters();
  if (count != params.size()) {
    throw SerializeError(SerializeErrc::kMismatch,
                         "load_parameters: parameter count mismatch in " +
                             path);
  }
  for (Parameter* p : params) {
    const auto name_len = read_pod<std::uint64_t>(in);
    // An absurd length is corruption, not a parameter name; reject before
    // the resize can balloon memory on a hostile file.
    if (name_len > (1u << 20)) {
      throw SerializeError(SerializeErrc::kTruncated,
                           "load_parameters: corrupt name length in " + path);
    }
    std::string name(name_len, '\0');
    in.read(name.data(), static_cast<std::streamsize>(name_len));
    if (!in) {
      throw SerializeError(SerializeErrc::kTruncated,
                           "load_parameters: truncated " + path);
    }
    const auto rows = read_pod<std::uint64_t>(in);
    const auto cols = read_pod<std::uint64_t>(in);
    if (name != p->name || rows != p->var.shape().rows ||
        cols != p->var.shape().cols) {
      throw SerializeError(SerializeErrc::kMismatch,
                           "load_parameters: mismatch at parameter '" +
                               p->name + "' in " + path);
    }
    auto vals = p->var.mutable_value();
    in.read(reinterpret_cast<char*>(vals.data()),
            static_cast<std::streamsize>(vals.size() * sizeof(double)));
    if (!in) {
      throw SerializeError(SerializeErrc::kTruncated,
                           "load_parameters: truncated " + path);
    }
  }
}

bool is_parameter_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  char magic[4];
  in.read(magic, sizeof(magic));
  return in && std::memcmp(magic, kMagic, sizeof(kMagic)) == 0;
}

std::uint64_t file_checksum(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw SerializeError(SerializeErrc::kIo,
                         "file_checksum: cannot open " + path);
  }
  std::uint64_t hash = 14695981039346656037ull;  // FNV offset basis
  std::vector<char> buffer(1 << 16);
  while (in) {
    in.read(buffer.data(), static_cast<std::streamsize>(buffer.size()));
    const std::streamsize got = in.gcount();
    for (std::streamsize i = 0; i < got; ++i) {
      hash ^= static_cast<unsigned char>(buffer[static_cast<std::size_t>(i)]);
      hash *= 1099511628211ull;  // FNV prime
    }
  }
  return hash;
}

std::string checksum_to_string(std::uint64_t checksum) {
  static const char* digits = "0123456789abcdef";
  std::string out(kChecksumPrefix);
  for (int shift = 60; shift >= 0; shift -= 4) {
    out.push_back(digits[(checksum >> shift) & 0xf]);
  }
  return out;
}

namespace {

std::uint64_t checksum_from_string(const std::string& text,
                                   const std::string& path) {
  if (text.size() != kChecksumPrefix.size() + 16 ||
      text.compare(0, kChecksumPrefix.size(), kChecksumPrefix) != 0) {
    throw SerializeError(SerializeErrc::kBadManifest,
                         "manifest checksum must be 'fnv1a:<16 hex>' in " +
                             path);
  }
  std::uint64_t value = 0;
  for (std::size_t i = kChecksumPrefix.size(); i < text.size(); ++i) {
    const char c = text[i];
    value <<= 4;
    if (c >= '0' && c <= '9') {
      value |= static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      value |= static_cast<std::uint64_t>(c - 'a' + 10);
    } else {
      throw SerializeError(SerializeErrc::kBadManifest,
                           "manifest checksum has a non-hex digit in " + path);
    }
  }
  return value;
}

}  // namespace

void save_manifest(const WeightsManifest& manifest, const std::string& path) {
  support::Json doc;
  doc["format"] = support::Json(std::string(kManifestFormat));
  doc["version"] = support::Json(static_cast<double>(manifest.version));
  doc["params"] = support::Json(manifest.params_path);
  doc["checksum"] = support::Json(checksum_to_string(manifest.checksum));
  support::Json model;
  model["hidden"] = support::Json(manifest.hidden);
  model["iterations"] = support::Json(manifest.iterations);
  if (!manifest.dtype.empty()) {
    model["dtype"] = support::Json(manifest.dtype);
  }
  doc["model"] = std::move(model);
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    throw SerializeError(SerializeErrc::kIo,
                         "save_manifest: cannot open " + path);
  }
  out << doc.dump(2) << "\n";
  if (!out) {
    throw SerializeError(SerializeErrc::kIo,
                         "save_manifest: write failed " + path);
  }
}

WeightsManifest load_manifest(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw SerializeError(SerializeErrc::kIo,
                         "load_manifest: cannot open " + path);
  }
  const std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  WeightsManifest manifest;
  try {
    const support::Json doc = support::Json::parse(text);
    if (doc.get_string("format", "") != kManifestFormat) {
      throw SerializeError(SerializeErrc::kBadManifest,
                           "not a chainnet weights manifest: " + path);
    }
    const double version = doc.at("version").as_number();
    if (version < 0 || version > 4294967295.0 ||
        version != static_cast<double>(
                       static_cast<std::uint32_t>(version))) {
      throw SerializeError(SerializeErrc::kBadManifest,
                           "manifest version must be a u32 in " + path);
    }
    manifest.version = static_cast<std::uint32_t>(version);
    manifest.params_path = doc.at("params").as_string();
    manifest.checksum =
        checksum_from_string(doc.at("checksum").as_string(), path);
    if (doc.has("model")) {
      const auto& model = doc.at("model");
      manifest.hidden = static_cast<int>(model.get_number("hidden", 0.0));
      manifest.iterations =
          static_cast<int>(model.get_number("iterations", 0.0));
      manifest.dtype = model.get_string("dtype", "");
    }
  } catch (const SerializeError&) {
    throw;
  } catch (const std::exception& e) {
    throw SerializeError(SerializeErrc::kBadManifest,
                         "load_manifest: " + std::string(e.what()) + " in " +
                             path);
  }
  // Relative weight paths travel with the manifest: resolve against its
  // directory so the (manifest, weights) pair can be moved as a unit.
  const std::filesystem::path params(manifest.params_path);
  if (params.is_relative()) {
    manifest.params_path =
        (std::filesystem::path(path).parent_path() / params).string();
  }
  return manifest;
}

}  // namespace chainnet::tensor
