// Reverse-mode automatic differentiation over small dense tensors.
//
// This is the ML substrate for the whole library: ChainNet, the GAT/GIN
// baselines, and their training loops are built exclusively on the ops in
// this header. The design is a dynamic tape ("define-by-run"): every op
// records a node — value buffer, optional gradient buffer, parent links and
// a typed Op — onto the calling thread's arena-backed Tape (see tape.h).
// backward() runs a marking pass plus a reverse sweep over the tape,
// dispatching each node's gradient scatter on its Op.
//
// Vars are non-owning handles into the tape. Intermediates are reclaimed in
// bulk by Tape::Frame scopes (the trainer frames each batch, the inference
// adapter frames each call); parameters are leaves created outside any
// frame and persist for the model's lifetime.
//
// Tensors are rank-1 (vectors) or rank-2 (row-major matrices), which covers
// all models in the paper (embeddings are H-vectors, weights are matrices).
// Values are double precision so finite-difference gradient checks in the
// test suite can be tight.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "tensor/tape.h"

namespace chainnet::tensor {

/// Value-semantics handle to a tape node. Copying a Var aliases the same
/// node (like torch tensors); ops record new nodes. Vars do not own their
/// node: it lives until the enclosing Tape frame is released.
class Var {
 public:
  Var() = default;
  explicit Var(Node* node) : node_(node) {}

  /// Creates a leaf holding `values` with the given shape.
  static Var leaf(Shape shape, std::vector<double> values,
                  bool requires_grad = false);
  /// Creates a leaf vector.
  static Var vector(std::vector<double> values, bool requires_grad = false);
  /// Creates a scalar leaf.
  static Var scalar(double value, bool requires_grad = false);
  /// Creates a zero-filled leaf.
  static Var zeros(Shape shape, bool requires_grad = false);

  bool defined() const noexcept { return node_ != nullptr; }
  const Shape& shape() const { return node_->shape; }
  std::size_t size() const { return node_->shape.size(); }

  std::span<const double> value() const { return node_->value(); }
  /// Mutable access bumps the node's version so caches of derived data
  /// (e.g. GruCell's packed weight blocks) detect the change and rebuild.
  std::span<double> mutable_value() {
    ++node_->version;
    return node_->value();
  }
  /// Empty until gradient storage exists (non-requires-grad leaves).
  std::span<const double> grad() const { return node_->grad(); }
  /// Mutable gradient access for optimizer-side updates (clipping, steps).
  std::span<double> mutable_grad() { return node_->grad(); }
  /// Zero-fills this node's gradient buffer, if it has one.
  void zero_grad() noexcept;
  double item() const;

  Node& node() { return *node_; }
  const Node& node() const { return *node_; }
  Node* ptr() const noexcept { return node_; }

  /// Runs reverse-mode AD from this (scalar) node. Seeds d(this)/d(this)=1
  /// and accumulates gradients into every reachable node with
  /// requires_grad. Gradients accumulate across calls until zeroed.
  void backward() const;

 private:
  Node* node_ = nullptr;
};

// ----------------------------------------------------------------- ops
// All ops validate shapes and throw std::invalid_argument on mismatch.

Var add(const Var& a, const Var& b);          // elementwise, same shape
Var sub(const Var& a, const Var& b);          // elementwise, same shape
Var mul(const Var& a, const Var& b);          // elementwise, same shape
Var scale(const Var& a, double s);            // a * s
Var add_scalar(const Var& a, double s);       // a + s
Var neg(const Var& a);

/// Matrix-vector product: [m,n] x [n] -> [m].
Var matvec(const Var& w, const Var& x);
/// Matrix-matrix product: [m,k] x [k,n] -> [m,n].
Var matmul(const Var& a, const Var& b);
/// Inner product of two equal-length vectors -> scalar.
Var dot(const Var& a, const Var& b);

/// Concatenation of vectors into one vector (in argument order).
Var concat(const std::vector<Var>& parts);

/// Elementwise activations.
Var sigmoid(const Var& a);
Var tanh_(const Var& a);
Var relu(const Var& a);
Var leaky_relu(const Var& a, double slope = 0.01);
Var softplus(const Var& a);
Var exp_(const Var& a);
Var log_(const Var& a);  // natural log; input must be positive

/// Softmax over a vector -> vector of the same length.
Var softmax(const Var& a);

/// Reductions to scalar.
Var sum(const Var& a);
Var mean(const Var& a);

/// Elementwise mean of equally-shaped vectors: (1/n) * sum_i parts[i].
Var mean_of(const std::vector<Var>& parts);
/// Elementwise sum of equally-shaped vectors.
Var sum_of(const std::vector<Var>& parts);

/// Scalar-weighted sum: sum_i weights[i] * vectors[i], weights are scalar
/// Vars (used for attention aggregation, eq. 16 of the paper).
Var weighted_sum(const std::vector<Var>& weights,
                 const std::vector<Var>& vectors);

/// (a - b)^2 reduced to the scalar mean — the building block of eq. (13).
Var mse(const Var& a, const Var& b);

}  // namespace chainnet::tensor
