// Binary (de)serialization of module parameters plus the weights-manifest
// helpers the serving registry is built on. Used by the bench cache so each
// model is trained once and reused across the table/figure drivers, and by
// serve::ModelRegistry for zero-downtime hot swap.
//
// Format (little-endian):
//   magic "CNWT" | u32 version | u64 param-count |
//   per parameter: u64 name-len | name bytes | u64 rows | u64 cols |
//                  rows*cols f64 values
// Loading matches parameters by name and shape; a mismatch throws, so stale
// caches fail loudly rather than silently corrupting a model. All failures
// carry a typed SerializeErrc so callers (the registry's reload path, the
// serving CLI) can reject hostile or stale weight files with a precise
// error instead of a string match.
//
// A manifest is a small JSON document describing one model version:
//   {"format":"chainnet-weights-manifest","version":3,
//    "params":"weights_v3.bin","checksum":"fnv1a:deadbeefcafef00d",
//    "model":{"hidden":32,"iterations":4}}
// `params` is resolved relative to the manifest's directory when not
// absolute, so a manifest and its weights can move as a unit. The checksum
// is FNV-1a over the raw bytes of the params file.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "tensor/nn.h"

namespace chainnet::tensor {

/// What exactly went wrong while (de)serializing weights or manifests.
enum class SerializeErrc {
  kIo,                ///< cannot open / write failure
  kBadMagic,          ///< file does not start with "CNWT"
  kBadVersion,        ///< unsupported format version
  kTruncated,         ///< EOF inside a record
  kMismatch,          ///< parameter name/shape/count differs from the module
  kBadManifest,       ///< manifest JSON malformed or missing fields
  kChecksumMismatch,  ///< params file bytes do not match the manifest
};

std::string_view serialize_errc_name(SerializeErrc code) noexcept;

/// Typed serialization failure. Derives from std::runtime_error so existing
/// callers that catch the base keep working.
class SerializeError : public std::runtime_error {
 public:
  SerializeError(SerializeErrc code, const std::string& message)
      : std::runtime_error(std::string(serialize_errc_name(code)) + ": " +
                           message),
        code_(code) {}
  SerializeErrc code() const noexcept { return code_; }

 private:
  SerializeErrc code_;
};

/// Writes all parameters of `module` to `path`. Throws SerializeError on
/// I/O failure.
void save_parameters(const Module& module, const std::string& path);

/// Loads parameters saved by save_parameters into `module`. Throws
/// SerializeError on I/O failure, corruption, or any name/shape mismatch.
void load_parameters(Module& module, const std::string& path);

/// True if `path` exists and starts with the serializer magic.
bool is_parameter_file(const std::string& path);

/// Streaming FNV-1a over the raw bytes of `path`. The registry pins every
/// weight file to the checksum recorded in its manifest, so a truncated
/// copy or a partially-written file is rejected before any parameter is
/// parsed. Throws SerializeError(kIo) when the file cannot be read.
std::uint64_t file_checksum(const std::string& path);

/// "fnv1a:" + 16 lowercase hex digits — the wire/manifest spelling of a
/// checksum (JSON numbers are doubles and cannot hold a u64 exactly).
std::string checksum_to_string(std::uint64_t checksum);

/// One deployable model version: where its weights live, what they hash
/// to, and the model shape needed to instantiate them.
struct WeightsManifest {
  std::uint32_t version = 0;  ///< monotonically increasing release number
  std::string params_path;    ///< absolute after load_manifest resolution
  std::uint64_t checksum = 0; ///< file_checksum(params_path)
  int hidden = 0;             ///< 0: use the server's configured default
  int iterations = 0;         ///< 0: use the server's configured default
  /// Numeric inference tier ("f64" / "f32" / "bf16"); empty: the server's
  /// configured default. Validated by the registry at load, so a manifest
  /// typo fails the reload instead of silently serving the wrong tier.
  std::string dtype;
};

/// Writes the manifest as JSON. The params path is stored as given.
void save_manifest(const WeightsManifest& manifest, const std::string& path);

/// Parses a manifest; throws SerializeError(kBadManifest) on malformed
/// documents and resolves a relative params path against the manifest's
/// directory. Does NOT touch the params file — pair with file_checksum to
/// verify.
WeightsManifest load_manifest(const std::string& path);

}  // namespace chainnet::tensor
