// Binary (de)serialization of module parameters. Used by the bench cache so
// each model is trained once and reused across the table/figure drivers.
//
// Format (little-endian):
//   magic "CNWT" | u32 version | u64 param-count |
//   per parameter: u64 name-len | name bytes | u64 rows | u64 cols |
//                  rows*cols f64 values
// Loading matches parameters by name and shape; a mismatch throws, so stale
// caches fail loudly rather than silently corrupting a model.
#pragma once

#include <string>

#include "tensor/nn.h"

namespace chainnet::tensor {

/// Writes all parameters of `module` to `path`. Throws std::runtime_error on
/// I/O failure.
void save_parameters(const Module& module, const std::string& path);

/// Loads parameters saved by save_parameters into `module`. Throws
/// std::runtime_error on I/O failure or on any name/shape mismatch.
void load_parameters(Module& module, const std::string& path);

/// True if `path` exists and starts with the serializer magic.
bool is_parameter_file(const std::string& path);

}  // namespace chainnet::tensor
