// Arena-backed autodiff tape: the allocation substrate of the tensor layer.
//
// The previous substrate heap-allocated one shared_ptr<Node>, three vectors
// and a std::function backward closure per op, per forward pass. The Tape
// replaces all of that with three bump arenas — node records, double
// buffers (values and gradients), and parent-link arrays — whose chunks are
// stable in memory once allocated and are never freed, only rewound. A
// mark/release pair (or the Frame RAII helper) rolls the tape back to a
// saved position while keeping capacity, so a steady-state training loop or
// the optimizer's inference hot path performs zero tape allocations after
// its first pass (pinned by tape_test's capacity probes). backward()
// dispatches on a typed Op enum instead of per-node closures.
//
// Threading contract: Tape::current() is thread_local, so every thread — in
// particular every runtime::EvalService worker — records onto its own
// private tape and the hot path needs no locks. A graph may reference
// *leaf* nodes that live on another thread's tape (shared model
// parameters); every op node of a graph must live on the tape of the thread
// that calls backward().
//
// Lifetime contract: Vars are non-owning handles. Releasing a frame
// invalidates every node recorded after its mark was taken; callers must
// extract plain values (item(), spans copied out) before the frame ends.
// Leaves created before a frame — model parameters — survive it.
//
// LINT:allocator — the arenas here are the sanctioned allocation substrate;
// R6 (allocation hygiene) exempts this file so the bump allocators may own
// raw storage.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

namespace chainnet::tensor {

/// Tensor shape: rows x cols. Vectors are represented as {n, 1}.
struct Shape {
  std::size_t rows = 0;
  std::size_t cols = 1;

  std::size_t size() const noexcept { return rows * cols; }
  bool operator==(const Shape&) const = default;
  bool is_vector() const noexcept { return cols == 1; }
  bool is_scalar() const noexcept { return rows == 1 && cols == 1; }
  std::string str() const;
};

/// Typed operation of a tape node; backward() dispatches on this instead of
/// a per-node closure. Composite ops (neg, mean, mse, ...) are built from
/// these primitives and never appear on the tape themselves.
enum class Op : std::uint8_t {
  kLeaf,
  kAdd,
  kSub,
  kMul,
  kScale,      // aux = scalar factor
  kAddScalar,  // aux = scalar addend (gradient is a pass-through)
  kMatVec,
  kMatMul,
  kDot,
  kConcat,
  kScalarMul,  // parents = {scalar weight, vector}; weighted_sum's element
  kSigmoid,
  kTanh,
  kRelu,
  kLeakyRelu,  // aux = negative-side slope
  kSoftplus,
  kExp,
  kLog,
  kSoftmax,
  kSum,
  kSumOf,
};

class Tape;

/// One record in the tape arena. Users interact through Var; the struct is
/// exposed for the in-layer optimizer/serialization code. Gradient storage
/// is tape-owned: it exists from creation for requires_grad nodes and there
/// is no public way to attach it later.
struct Node {
  Shape shape;
  Tape* tape = nullptr;
  double* val = nullptr;
  double* grad_buf = nullptr;  ///< null iff the node carries no gradient
  Node** parents = nullptr;
  std::size_t index = 0;       ///< creation index on `tape`
  std::uint64_t stamp = 0;     ///< backward() reachability mark
  std::uint64_t version = 0;   ///< bumped on mutable access; see ensure_packed
  std::uint32_t num_parents = 0;
  Op op = Op::kLeaf;
  bool requires_grad = false;
  double aux = 0.0;            ///< per-op payload (scale factor, slope, ...)

  std::span<double> value() noexcept { return {val, shape.size()}; }
  std::span<const double> value() const noexcept {
    return {val, shape.size()};
  }
  std::span<double> grad() noexcept {
    return grad_buf ? std::span<double>{grad_buf, shape.size()}
                    : std::span<double>{};
  }
  std::span<const double> grad() const noexcept {
    return grad_buf ? std::span<const double>{grad_buf, shape.size()}
                    : std::span<const double>{};
  }
};

namespace detail {

/// Chunked bump allocator. Chunks never move or shrink once allocated, so
/// pointers into the arena stay valid until a release() rewinds past them;
/// release() only moves the cursor, keeping capacity for reuse.
template <typename T>
class Arena {
 public:
  explicit Arena(std::size_t min_chunk) : min_chunk_(min_chunk) {}

  T* allocate(std::size_t n) {
    if (n == 0) return nullptr;
    while (true) {
      if (chunk_ < chunks_.size()) {
        if (used_ + n <= sizes_[chunk_]) {
          T* out = chunks_[chunk_].get() + used_;
          used_ += n;
          return out;
        }
        // The active chunk cannot fit n; skip ahead (its tail is reclaimed
        // by the next release that rewinds past it).
        ++chunk_;
        used_ = 0;
        continue;
      }
      chunks_.push_back(std::make_unique<T[]>(std::max(min_chunk_, n)));
      sizes_.push_back(std::max(min_chunk_, n));
    }
  }

  struct Mark {
    std::size_t chunk = 0;
    std::size_t used = 0;
  };
  Mark mark() const noexcept { return {chunk_, used_}; }
  void release(const Mark& m) noexcept {
    chunk_ = m.chunk;
    used_ = m.used;
  }
  void reset() noexcept {
    chunk_ = 0;
    used_ = 0;
  }

  std::size_t capacity() const noexcept {
    std::size_t total = 0;
    for (std::size_t s : sizes_) total += s;
    return total;
  }
  std::size_t used() const noexcept {
    std::size_t total = used_;
    for (std::size_t c = 0; c < chunk_ && c < sizes_.size(); ++c) {
      total += sizes_[c];
    }
    return total;
  }

 private:
  std::size_t min_chunk_;
  std::vector<std::unique_ptr<T[]>> chunks_;
  std::vector<std::size_t> sizes_;
  std::size_t chunk_ = 0;  ///< chunk currently bump-allocating
  std::size_t used_ = 0;   ///< elements consumed in chunks_[chunk_]
};

}  // namespace detail

class Tape {
 public:
  /// A saved tape position. release() restores it; marks must be released
  /// in LIFO order (use Frame to get that automatically).
  struct Mark {
    detail::Arena<Node>::Mark records;
    detail::Arena<double>::Mark doubles;
    detail::Arena<Node*>::Mark links;
    std::size_t nodes = 0;
  };

  /// Releases its mark on scope exit, rewinding every node/buffer recorded
  /// inside the scope while keeping arena capacity.
  class Frame {
   public:
    explicit Frame(Tape& tape) : tape_(&tape), mark_(tape.mark()) {}
    Frame(const Frame&) = delete;
    Frame& operator=(const Frame&) = delete;
    ~Frame() { tape_->release(mark_); }

   private:
    Tape* tape_;
    Mark mark_;
  };

  Tape();
  Tape(const Tape&) = delete;
  Tape& operator=(const Tape&) = delete;

  /// The calling thread's tape. All Var factories and ops record here.
  static Tape& current() noexcept;

  Node* leaf(Shape shape, std::span<const double> values, bool requires_grad);
  Node* op_node(Op op, Shape shape, std::span<Node* const> parents,
                double aux = 0.0);

  /// Reverse-mode sweep from a scalar root: seeds d(root)/d(root) = 1, then
  /// scatters gradients to every reachable requires_grad ancestor. Leaf
  /// gradients accumulate across calls until zeroed.
  void backward(Node* root);

  Mark mark() const noexcept;
  void release(const Mark& m) noexcept;
  /// Rewinds to empty, keeping capacity. Drops every node including leaves;
  /// only safe when no parameters live on this tape.
  void reset() noexcept;

  /// Bytes the tape has ever grown to (arenas + node index). Stable across
  /// steady-state passes — the probe behind the allocation-free claim.
  std::size_t capacity_bytes() const noexcept;
  /// Bytes currently in use up to the cursor.
  std::size_t used_bytes() const noexcept;
  std::size_t node_count() const noexcept { return index_.size(); }

 private:
  double* alloc_zeroed(std::size_t n);

  detail::Arena<Node> records_;
  detail::Arena<double> doubles_;
  detail::Arena<Node*> links_;
  std::vector<Node*> index_;  ///< creation order; backward sweeps a suffix
  std::vector<Node*> stack_;  ///< DFS scratch, reused across backward calls
};

}  // namespace chainnet::tensor
