#include "tensor/kernels.h"

#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>

#include "tensor/kernels_dispatch.h"

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

namespace chainnet::tensor::kernels {

namespace detail {
std::vector<double>& tile_scratch() {
  thread_local std::vector<double> scratch;
  return scratch;
}

std::vector<float>& tile_scratch_f32() {
  thread_local std::vector<float> scratch;
  return scratch;
}
}  // namespace detail

namespace {

constexpr std::size_t kRowBlock = 4;

// ---- Baseline variant: portable x86-64 (SSE2 across columns, no FMA). ----
namespace baseline {

void gemv_naive(const double* w, const double* bias, const double* x,
                double* y, std::size_t rows, std::size_t cols) {
  for (std::size_t r = 0; r < rows; ++r) {
    const double* row = w + r * cols;
    double acc = bias ? bias[r] : 0.0;
    for (std::size_t c = 0; c < cols; ++c) acc += row[c] * x[c];
    y[r] = acc;
  }
}

void gemv(const double* w, const double* bias, const double* x, double* y,
          std::size_t rows, std::size_t cols) {
  std::size_t r = 0;
  for (; r + kRowBlock <= rows; r += kRowBlock) {
    const double* row0 = w + (r + 0) * cols;
    const double* row1 = w + (r + 1) * cols;
    const double* row2 = w + (r + 2) * cols;
    const double* row3 = w + (r + 3) * cols;
    double acc0 = bias ? bias[r + 0] : 0.0;
    double acc1 = bias ? bias[r + 1] : 0.0;
    double acc2 = bias ? bias[r + 2] : 0.0;
    double acc3 = bias ? bias[r + 3] : 0.0;
    for (std::size_t c = 0; c < cols; ++c) {
      const double xc = x[c];
      acc0 += row0[c] * xc;
      acc1 += row1[c] * xc;
      acc2 += row2[c] * xc;
      acc3 += row3[c] * xc;
    }
    y[r + 0] = acc0;
    y[r + 1] = acc1;
    y[r + 2] = acc2;
    y[r + 3] = acc3;
  }
  for (; r < rows; ++r) {
    const double* row = w + r * cols;
    double acc = bias ? bias[r] : 0.0;
    for (std::size_t c = 0; c < cols; ++c) acc += row[c] * x[c];
    y[r] = acc;
  }
}

/// One row x one column-tile of the GEMM: W columns of the output row are
/// accumulated in registers (bias first, then ascending c — the exact
/// per-column order of gemv), then stored once. Register accumulators
/// break the store-to-load dependency a memory-resident `out[j] +=`
/// inner loop would serialize on. SIMD runs lane-parallel across
/// *columns*, so no column's own sum is ever reassociated. `x` points at
/// the tile's first column (already offset by j) and `xstride` is the
/// panel width — or the tile width when the caller packed the tile.
#if defined(__SSE2__)
template <std::size_t W>
void gemm_row_tile(const double* row, double b, const double* x, double* out,
                   std::size_t cols, std::size_t xstride, std::size_t j) {
  static_assert(W % 2 == 0);
  constexpr std::size_t kLanes = W / 2;
  __m128d acc[kLanes];
  const __m128d bv = _mm_set1_pd(b);
  for (std::size_t k = 0; k < kLanes; ++k) acc[k] = bv;
  const double* xc = x;
  for (std::size_t c = 0; c < cols; ++c, xc += xstride) {
    const __m128d wc = _mm_set1_pd(row[c]);
    for (std::size_t k = 0; k < kLanes; ++k) {
      acc[k] = _mm_add_pd(acc[k],
                          _mm_mul_pd(wc, _mm_loadu_pd(xc + 2 * k)));
    }
  }
  for (std::size_t k = 0; k < kLanes; ++k) {
    _mm_storeu_pd(out + j + 2 * k, acc[k]);
  }
}
#else
template <std::size_t W>
void gemm_row_tile(const double* row, double b, const double* x, double* out,
                   std::size_t cols, std::size_t xstride, std::size_t j) {
  double acc[W];
  for (std::size_t k = 0; k < W; ++k) acc[k] = b;
  const double* xc = x;
  for (std::size_t c = 0; c < cols; ++c, xc += xstride) {
    const double wc = row[c];
    for (std::size_t k = 0; k < W; ++k) acc[k] += wc * xc[k];
  }
  for (std::size_t k = 0; k < W; ++k) out[j + k] = acc[k];
}
#endif

/// Scalar single-column tile (odd remainders).
void gemm_row_col(const double* row, double b, const double* x, double* out,
                  std::size_t cols, std::size_t n, std::size_t j) {
  double acc = b;
  const double* xc = x + j;
  for (std::size_t c = 0; c < cols; ++c, xc += n) acc += row[c] * *xc;
  out[j] = acc;
}

void gemm(const double* w, const double* bias, const double* x, double* y,
          std::size_t rows, std::size_t cols, std::size_t n) {
  if (n == 1) {
    gemv(w, bias, x, y, rows, cols);
    return;
  }
  // Column tile is the OUTER loop: an 8-wide tile of x spans cols cache
  // lines (~8 KB at cols=128) and stays L1-resident while every output row
  // consumes it; iterating rows outermost instead would re-stream the whole
  // x panel per row once it outgrows L1 (it does at useful batch widths).
  //
  // For panel inputs (n > 8) each tile is first gathered into a contiguous
  // per-thread buffer: the natural tile access strides n doubles per c
  // iteration, which touches a fresh page per iteration once n is a panel
  // width and thrashes the TLB. Packing copies values without reordering
  // any accumulation chain, so results are bit-identical.
  std::size_t j = 0;
  const bool pack_tiles = n > 8;
  if (pack_tiles) detail::tile_scratch().resize(cols * 8);
  for (; j + 8 <= n; j += 8) {
    const double* xt = x + j;
    std::size_t xstride = n;
    if (pack_tiles) {
      double* pack = detail::tile_scratch().data();
      const double* src = x + j;
      for (std::size_t c = 0; c < cols; ++c, src += n) {
        for (std::size_t q = 0; q < 8; ++q) pack[c * 8 + q] = src[q];
      }
      xt = pack;
      xstride = 8;
    }
    for (std::size_t r = 0; r < rows; ++r) {
      gemm_row_tile<8>(w + r * cols, bias ? bias[r] : 0.0, xt, y + r * n,
                       cols, xstride, j);
    }
  }
  if (j + 4 <= n) {
    for (std::size_t r = 0; r < rows; ++r) {
      gemm_row_tile<4>(w + r * cols, bias ? bias[r] : 0.0, x + j, y + r * n,
                       cols, n, j);
    }
    j += 4;
  }
  if (j + 2 <= n) {
    for (std::size_t r = 0; r < rows; ++r) {
      gemm_row_tile<2>(w + r * cols, bias ? bias[r] : 0.0, x + j, y + r * n,
                       cols, n, j);
    }
    j += 2;
  }
  if (j < n) {
    for (std::size_t r = 0; r < rows; ++r) {
      gemm_row_col(w + r * cols, bias ? bias[r] : 0.0, x, y + r * n, cols, n,
                   j);
    }
  }
}

// ---- f32 tier, baseline regime (separate multiply and add, no FMA). ----
//
// Plain scalar-array tiles: this TU is compiled without -mfma, so the
// compiler cannot contract the mul+add pairs, and auto-vectorization only
// runs lanes across the independent per-column accumulators — no column's
// own chain is ever reassociated. The baseline f32 tier is the portability
// reference, not the perf target; the AVX TUs carry the fast variants.

void gemv_naive(const float* w, const float* bias, const float* x, float* y,
                std::size_t rows, std::size_t cols) {
  for (std::size_t r = 0; r < rows; ++r) {
    const float* row = w + r * cols;
    float acc = bias ? bias[r] : 0.0f;
    for (std::size_t c = 0; c < cols; ++c) acc += row[c] * x[c];
    y[r] = acc;
  }
}

void gemv(const float* w, const float* bias, const float* x, float* y,
          std::size_t rows, std::size_t cols) {
  std::size_t r = 0;
  for (; r + kRowBlock <= rows; r += kRowBlock) {
    const float* row0 = w + (r + 0) * cols;
    const float* row1 = w + (r + 1) * cols;
    const float* row2 = w + (r + 2) * cols;
    const float* row3 = w + (r + 3) * cols;
    float acc0 = bias ? bias[r + 0] : 0.0f;
    float acc1 = bias ? bias[r + 1] : 0.0f;
    float acc2 = bias ? bias[r + 2] : 0.0f;
    float acc3 = bias ? bias[r + 3] : 0.0f;
    for (std::size_t c = 0; c < cols; ++c) {
      const float xc = x[c];
      acc0 += row0[c] * xc;
      acc1 += row1[c] * xc;
      acc2 += row2[c] * xc;
      acc3 += row3[c] * xc;
    }
    y[r + 0] = acc0;
    y[r + 1] = acc1;
    y[r + 2] = acc2;
    y[r + 3] = acc3;
  }
  for (; r < rows; ++r) {
    const float* row = w + r * cols;
    float acc = bias ? bias[r] : 0.0f;
    for (std::size_t c = 0; c < cols; ++c) acc += row[c] * x[c];
    y[r] = acc;
  }
}

/// One row x one W-column tile, float flavor of gemm_row_tile: register
/// accumulators seeded from the bias, products added in ascending c.
template <std::size_t W>
void gemm_row_tile_f32(const float* row, float b, const float* x, float* out,
                       std::size_t cols, std::size_t xstride, std::size_t j) {
  float acc[W];
  for (std::size_t k = 0; k < W; ++k) acc[k] = b;
  const float* xc = x;
  for (std::size_t c = 0; c < cols; ++c, xc += xstride) {
    const float wc = row[c];
    for (std::size_t k = 0; k < W; ++k) acc[k] += wc * xc[k];
  }
  for (std::size_t k = 0; k < W; ++k) out[j + k] = acc[k];
}

void gemm(const float* w, const float* bias, const float* x, float* y,
          std::size_t rows, std::size_t cols, std::size_t n) {
  if (n == 1) {
    gemv(w, bias, x, y, rows, cols);
    return;
  }
  // Same ladder shape as the double gemm, one lane-width up (top tile 16
  // columns), including the panel-tile packing once n outgrows the tile.
  std::size_t j = 0;
  const bool pack_tiles = n > 16;
  if (pack_tiles) detail::tile_scratch_f32().resize(cols * 16);
  for (; j + 16 <= n; j += 16) {
    const float* xt = x + j;
    std::size_t xstride = n;
    if (pack_tiles) {
      float* pack = detail::tile_scratch_f32().data();
      const float* src = x + j;
      for (std::size_t c = 0; c < cols; ++c, src += n) {
        for (std::size_t q = 0; q < 16; ++q) pack[c * 16 + q] = src[q];
      }
      xt = pack;
      xstride = 16;
    }
    for (std::size_t r = 0; r < rows; ++r) {
      gemm_row_tile_f32<16>(w + r * cols, bias ? bias[r] : 0.0f, xt,
                            y + r * n, cols, xstride, j);
    }
  }
  if (j + 8 <= n) {
    for (std::size_t r = 0; r < rows; ++r) {
      gemm_row_tile_f32<8>(w + r * cols, bias ? bias[r] : 0.0f, x + j,
                           y + r * n, cols, n, j);
    }
    j += 8;
  }
  if (j + 4 <= n) {
    for (std::size_t r = 0; r < rows; ++r) {
      gemm_row_tile_f32<4>(w + r * cols, bias ? bias[r] : 0.0f, x + j,
                           y + r * n, cols, n, j);
    }
    j += 4;
  }
  for (; j < n; ++j) {
    for (std::size_t r = 0; r < rows; ++r) {
      const float* row = w + r * cols;
      float acc = bias ? bias[r] : 0.0f;
      const float* xc = x + j;
      for (std::size_t c = 0; c < cols; ++c, xc += n) acc += row[c] * *xc;
      y[r * n + j] = acc;
    }
  }
}

}  // namespace baseline

const detail::KernelTable kBaseline{
    baseline::gemv,       baseline::gemv_naive, baseline::gemm,
    baseline::gemv,       baseline::gemv_naive, baseline::gemm,
    "baseline"};

#if defined(__x86_64__) || defined(_M_X64)
const detail::KernelTable kAvx2{
    detail::avx2::gemv, detail::avx2::gemv_naive, detail::avx2::gemm,
    detail::avx2::gemv, detail::avx2::gemv_naive, detail::avx2::gemm,
    "avx2"};
const detail::KernelTable kAvx512{
    detail::avx512::gemv, detail::avx512::gemv_naive, detail::avx512::gemm,
    detail::avx512::gemv, detail::avx512::gemv_naive, detail::avx512::gemm,
    "avx512"};

const detail::KernelTable& resolve() {
  const char* forced = std::getenv("CHAINNET_KERNEL_ISA");
  const bool fma = __builtin_cpu_supports("fma");
  const bool avx2 = fma && __builtin_cpu_supports("avx2");
  const bool avx512 = avx2 && __builtin_cpu_supports("avx512f") &&
                      __builtin_cpu_supports("avx512dq");
  if (forced) {
    validate_isa_name(forced);  // typo -> loud error, not auto-detection
    if (std::strcmp(forced, "baseline") == 0) return kBaseline;
    if (std::strcmp(forced, "avx2") == 0 && avx2) return kAvx2;
    if (std::strcmp(forced, "avx512") == 0 && avx512) return kAvx512;
    // Known tier the host cannot run: fall through to auto-detection.
  }
  if (avx512) return kAvx512;
  if (avx2) return kAvx2;
  return kBaseline;
}
#else
const detail::KernelTable& resolve() {
  const char* forced = std::getenv("CHAINNET_KERNEL_ISA");
  if (forced) validate_isa_name(forced);
  return kBaseline;
}
#endif

const detail::KernelTable& active() {
  static const detail::KernelTable& table = resolve();
  return table;
}

}  // namespace

void gemv(const double* w, const double* bias, const double* x, double* y,
          std::size_t rows, std::size_t cols) {
  active().gemv(w, bias, x, y, rows, cols);
}

void gemv_naive(const double* w, const double* bias, const double* x,
                double* y, std::size_t rows, std::size_t cols) {
  active().gemv_naive(w, bias, x, y, rows, cols);
}

void gemm(const double* w, const double* bias, const double* x, double* y,
          std::size_t rows, std::size_t cols, std::size_t n) {
  active().gemm(w, bias, x, y, rows, cols, n);
}

void gemv(const float* w, const float* bias, const float* x, float* y,
          std::size_t rows, std::size_t cols) {
  active().gemv_f32(w, bias, x, y, rows, cols);
}

void gemv_naive(const float* w, const float* bias, const float* x, float* y,
                std::size_t rows, std::size_t cols) {
  active().gemv_naive_f32(w, bias, x, y, rows, cols);
}

void gemm(const float* w, const float* bias, const float* x, float* y,
          std::size_t rows, std::size_t cols, std::size_t n) {
  active().gemm_f32(w, bias, x, y, rows, cols, n);
}

const char* isa() { return active().isa; }

void validate_isa_name(const char* name) {
  if (name && (std::strcmp(name, "baseline") == 0 ||
               std::strcmp(name, "avx2") == 0 ||
               std::strcmp(name, "avx512") == 0)) {
    return;
  }
  throw std::invalid_argument(
      "CHAINNET_KERNEL_ISA=\"" + std::string(name ? name : "") +
      "\" is not a known kernel ISA (accepted: baseline, avx2, avx512)");
}

}  // namespace chainnet::tensor::kernels
