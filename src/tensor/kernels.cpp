#include "tensor/kernels.h"

#include <cstdlib>
#include <cstring>

#include "tensor/kernels_dispatch.h"

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

namespace chainnet::tensor::kernels {

namespace detail {
std::vector<double>& tile_scratch() {
  thread_local std::vector<double> scratch;
  return scratch;
}
}  // namespace detail

namespace {

constexpr std::size_t kRowBlock = 4;

// ---- Baseline variant: portable x86-64 (SSE2 across columns, no FMA). ----
namespace baseline {

void gemv_naive(const double* w, const double* bias, const double* x,
                double* y, std::size_t rows, std::size_t cols) {
  for (std::size_t r = 0; r < rows; ++r) {
    const double* row = w + r * cols;
    double acc = bias ? bias[r] : 0.0;
    for (std::size_t c = 0; c < cols; ++c) acc += row[c] * x[c];
    y[r] = acc;
  }
}

void gemv(const double* w, const double* bias, const double* x, double* y,
          std::size_t rows, std::size_t cols) {
  std::size_t r = 0;
  for (; r + kRowBlock <= rows; r += kRowBlock) {
    const double* row0 = w + (r + 0) * cols;
    const double* row1 = w + (r + 1) * cols;
    const double* row2 = w + (r + 2) * cols;
    const double* row3 = w + (r + 3) * cols;
    double acc0 = bias ? bias[r + 0] : 0.0;
    double acc1 = bias ? bias[r + 1] : 0.0;
    double acc2 = bias ? bias[r + 2] : 0.0;
    double acc3 = bias ? bias[r + 3] : 0.0;
    for (std::size_t c = 0; c < cols; ++c) {
      const double xc = x[c];
      acc0 += row0[c] * xc;
      acc1 += row1[c] * xc;
      acc2 += row2[c] * xc;
      acc3 += row3[c] * xc;
    }
    y[r + 0] = acc0;
    y[r + 1] = acc1;
    y[r + 2] = acc2;
    y[r + 3] = acc3;
  }
  for (; r < rows; ++r) {
    const double* row = w + r * cols;
    double acc = bias ? bias[r] : 0.0;
    for (std::size_t c = 0; c < cols; ++c) acc += row[c] * x[c];
    y[r] = acc;
  }
}

/// One row x one column-tile of the GEMM: W columns of the output row are
/// accumulated in registers (bias first, then ascending c — the exact
/// per-column order of gemv), then stored once. Register accumulators
/// break the store-to-load dependency a memory-resident `out[j] +=`
/// inner loop would serialize on. SIMD runs lane-parallel across
/// *columns*, so no column's own sum is ever reassociated. `x` points at
/// the tile's first column (already offset by j) and `xstride` is the
/// panel width — or the tile width when the caller packed the tile.
#if defined(__SSE2__)
template <std::size_t W>
void gemm_row_tile(const double* row, double b, const double* x, double* out,
                   std::size_t cols, std::size_t xstride, std::size_t j) {
  static_assert(W % 2 == 0);
  constexpr std::size_t kLanes = W / 2;
  __m128d acc[kLanes];
  const __m128d bv = _mm_set1_pd(b);
  for (std::size_t k = 0; k < kLanes; ++k) acc[k] = bv;
  const double* xc = x;
  for (std::size_t c = 0; c < cols; ++c, xc += xstride) {
    const __m128d wc = _mm_set1_pd(row[c]);
    for (std::size_t k = 0; k < kLanes; ++k) {
      acc[k] = _mm_add_pd(acc[k],
                          _mm_mul_pd(wc, _mm_loadu_pd(xc + 2 * k)));
    }
  }
  for (std::size_t k = 0; k < kLanes; ++k) {
    _mm_storeu_pd(out + j + 2 * k, acc[k]);
  }
}
#else
template <std::size_t W>
void gemm_row_tile(const double* row, double b, const double* x, double* out,
                   std::size_t cols, std::size_t xstride, std::size_t j) {
  double acc[W];
  for (std::size_t k = 0; k < W; ++k) acc[k] = b;
  const double* xc = x;
  for (std::size_t c = 0; c < cols; ++c, xc += xstride) {
    const double wc = row[c];
    for (std::size_t k = 0; k < W; ++k) acc[k] += wc * xc[k];
  }
  for (std::size_t k = 0; k < W; ++k) out[j + k] = acc[k];
}
#endif

/// Scalar single-column tile (odd remainders).
void gemm_row_col(const double* row, double b, const double* x, double* out,
                  std::size_t cols, std::size_t n, std::size_t j) {
  double acc = b;
  const double* xc = x + j;
  for (std::size_t c = 0; c < cols; ++c, xc += n) acc += row[c] * *xc;
  out[j] = acc;
}

void gemm(const double* w, const double* bias, const double* x, double* y,
          std::size_t rows, std::size_t cols, std::size_t n) {
  if (n == 1) {
    gemv(w, bias, x, y, rows, cols);
    return;
  }
  // Column tile is the OUTER loop: an 8-wide tile of x spans cols cache
  // lines (~8 KB at cols=128) and stays L1-resident while every output row
  // consumes it; iterating rows outermost instead would re-stream the whole
  // x panel per row once it outgrows L1 (it does at useful batch widths).
  //
  // For panel inputs (n > 8) each tile is first gathered into a contiguous
  // per-thread buffer: the natural tile access strides n doubles per c
  // iteration, which touches a fresh page per iteration once n is a panel
  // width and thrashes the TLB. Packing copies values without reordering
  // any accumulation chain, so results are bit-identical.
  std::size_t j = 0;
  const bool pack_tiles = n > 8;
  if (pack_tiles) detail::tile_scratch().resize(cols * 8);
  for (; j + 8 <= n; j += 8) {
    const double* xt = x + j;
    std::size_t xstride = n;
    if (pack_tiles) {
      double* pack = detail::tile_scratch().data();
      const double* src = x + j;
      for (std::size_t c = 0; c < cols; ++c, src += n) {
        for (std::size_t q = 0; q < 8; ++q) pack[c * 8 + q] = src[q];
      }
      xt = pack;
      xstride = 8;
    }
    for (std::size_t r = 0; r < rows; ++r) {
      gemm_row_tile<8>(w + r * cols, bias ? bias[r] : 0.0, xt, y + r * n,
                       cols, xstride, j);
    }
  }
  if (j + 4 <= n) {
    for (std::size_t r = 0; r < rows; ++r) {
      gemm_row_tile<4>(w + r * cols, bias ? bias[r] : 0.0, x + j, y + r * n,
                       cols, n, j);
    }
    j += 4;
  }
  if (j + 2 <= n) {
    for (std::size_t r = 0; r < rows; ++r) {
      gemm_row_tile<2>(w + r * cols, bias ? bias[r] : 0.0, x + j, y + r * n,
                       cols, n, j);
    }
    j += 2;
  }
  if (j < n) {
    for (std::size_t r = 0; r < rows; ++r) {
      gemm_row_col(w + r * cols, bias ? bias[r] : 0.0, x, y + r * n, cols, n,
                   j);
    }
  }
}

}  // namespace baseline

const detail::KernelTable kBaseline{baseline::gemv, baseline::gemv_naive,
                                    baseline::gemm, "baseline"};

#if defined(__x86_64__) || defined(_M_X64)
const detail::KernelTable kAvx2{detail::avx2::gemv, detail::avx2::gemv_naive,
                                detail::avx2::gemm, "avx2"};
const detail::KernelTable kAvx512{detail::avx512::gemv,
                                  detail::avx512::gemv_naive,
                                  detail::avx512::gemm, "avx512"};

const detail::KernelTable& resolve() {
  const char* forced = std::getenv("CHAINNET_KERNEL_ISA");
  const bool fma = __builtin_cpu_supports("fma");
  const bool avx2 = fma && __builtin_cpu_supports("avx2");
  const bool avx512 = avx2 && __builtin_cpu_supports("avx512f") &&
                      __builtin_cpu_supports("avx512dq");
  if (forced) {
    if (std::strcmp(forced, "baseline") == 0) return kBaseline;
    if (std::strcmp(forced, "avx2") == 0 && avx2) return kAvx2;
    if (std::strcmp(forced, "avx512") == 0 && avx512) return kAvx512;
    // Unsupported request: fall through to auto-detection.
  }
  if (avx512) return kAvx512;
  if (avx2) return kAvx2;
  return kBaseline;
}
#else
const detail::KernelTable& resolve() { return kBaseline; }
#endif

const detail::KernelTable& active() {
  static const detail::KernelTable& table = resolve();
  return table;
}

}  // namespace

void gemv(const double* w, const double* bias, const double* x, double* y,
          std::size_t rows, std::size_t cols) {
  active().gemv(w, bias, x, y, rows, cols);
}

void gemv_naive(const double* w, const double* bias, const double* x,
                double* y, std::size_t rows, std::size_t cols) {
  active().gemv_naive(w, bias, x, y, rows, cols);
}

void gemm(const double* w, const double* bias, const double* x, double* y,
          std::size_t rows, std::size_t cols, std::size_t n) {
  active().gemm(w, bias, x, y, rows, cols, n);
}

const char* isa() { return active().isa; }

}  // namespace chainnet::tensor::kernels
