#include "tensor/optimizer.h"

#include <cmath>
#include <stdexcept>

namespace chainnet::tensor {

LrSchedule::LrSchedule(double base_lr, double decay_factor,
                       std::size_t decay_every_epochs)
    : base_(base_lr), factor_(decay_factor), every_(decay_every_epochs) {
  if (base_lr <= 0.0 || decay_factor <= 0.0 || decay_every_epochs == 0) {
    throw std::invalid_argument("LrSchedule: invalid parameters");
  }
}

double LrSchedule::lr_at(std::size_t epoch) const {
  return base_ * std::pow(factor_, static_cast<double>(epoch / every_));
}

Sgd::Sgd(std::vector<Parameter*> params, double lr)
    : params_(std::move(params)), lr_(lr) {}

void Sgd::step() {
  for (Parameter* p : params_) {
    const auto g = p->var.grad();
    if (g.empty()) continue;  // no gradient storage -> nothing to apply
    auto v = p->var.mutable_value();
    for (std::size_t i = 0; i < v.size(); ++i) {
      v[i] -= lr_ * g[i];
    }
  }
}

Adam::Adam(std::vector<Parameter*> params, double lr, double beta1,
           double beta2, double eps)
    : params_(std::move(params)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (Parameter* p : params_) {
    m_.emplace_back(p->var.size(), 0.0);
    v_.emplace_back(p->var.size(), 0.0);
  }
}

void Adam::step() {
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (std::size_t pi = 0; pi < params_.size(); ++pi) {
    const auto grads = params_[pi]->var.grad();
    if (grads.empty()) continue;  // no gradient storage -> nothing to apply
    auto value = params_[pi]->var.mutable_value();
    auto& m = m_[pi];
    auto& v = v_[pi];
    for (std::size_t i = 0; i < value.size(); ++i) {
      const double g = grads[i];
      m[i] = beta1_ * m[i] + (1.0 - beta1_) * g;
      v[i] = beta2_ * v[i] + (1.0 - beta2_) * g * g;
      const double mhat = m[i] / bc1;
      const double vhat = v[i] / bc2;
      value[i] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
  }
}

}  // namespace chainnet::tensor
