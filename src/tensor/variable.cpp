#include "tensor/variable.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>
#include <unordered_set>

namespace chainnet::tensor {

std::string Shape::str() const {
  std::ostringstream os;
  os << "[" << rows << "," << cols << "]";
  return os.str();
}

void Node::ensure_grad() {
  if (grad.size() != value.size()) grad.assign(value.size(), 0.0);
}

void Node::zero_grad() noexcept {
  std::fill(grad.begin(), grad.end(), 0.0);
}

namespace {

[[noreturn]] void shape_error(const char* op, const Shape& a, const Shape& b) {
  throw std::invalid_argument(std::string(op) + ": shape mismatch " + a.str() +
                              " vs " + b.str());
}

std::shared_ptr<Node> make_node(Shape shape, std::vector<Var> parents) {
  auto n = std::make_shared<Node>();
  n->shape = shape;
  n->value.resize(shape.size());
  for (auto& p : parents) {
    if (p.node().requires_grad) n->requires_grad = true;
    n->parents.push_back(p.ptr());
  }
  return n;
}

/// Whether gradient bookkeeping is needed for a result with these parents.
bool any_grad(const std::shared_ptr<Node>& n) { return n->requires_grad; }

}  // namespace

Var Var::leaf(Shape shape, std::vector<double> values, bool requires_grad) {
  if (values.size() != shape.size()) {
    throw std::invalid_argument("Var::leaf: value count " +
                                std::to_string(values.size()) +
                                " does not match shape " + shape.str());
  }
  auto n = std::make_shared<Node>();
  n->shape = shape;
  n->value = std::move(values);
  n->requires_grad = requires_grad;
  if (requires_grad) n->ensure_grad();
  return Var(std::move(n));
}

Var Var::vector(std::vector<double> values, bool requires_grad) {
  const Shape s{values.size(), 1};
  return leaf(s, std::move(values), requires_grad);
}

Var Var::scalar(double value, bool requires_grad) {
  return leaf(Shape{1, 1}, {value}, requires_grad);
}

Var Var::zeros(Shape shape, bool requires_grad) {
  return leaf(shape, std::vector<double>(shape.size(), 0.0), requires_grad);
}

double Var::item() const {
  if (!node_->shape.is_scalar()) {
    throw std::invalid_argument("Var::item: tensor is not scalar, shape " +
                                node_->shape.str());
  }
  return node_->value[0];
}

void Var::backward() const {
  if (!node_) throw std::invalid_argument("backward on undefined Var");
  if (!node_->shape.is_scalar()) {
    throw std::invalid_argument("backward requires a scalar output");
  }
  // Topological order by iterative post-order DFS.
  std::vector<Node*> order;
  std::unordered_set<Node*> visited;
  std::vector<std::pair<Node*, std::size_t>> stack;
  stack.emplace_back(node_.get(), 0);
  visited.insert(node_.get());
  while (!stack.empty()) {
    auto& [n, idx] = stack.back();
    if (idx < n->parents.size()) {
      Node* p = n->parents[idx++].get();
      if (p->requires_grad && visited.insert(p).second) {
        stack.emplace_back(p, 0);
      }
    } else {
      order.push_back(n);
      stack.pop_back();
    }
  }
  // Seed and sweep in reverse topological order.
  for (Node* n : order) n->ensure_grad();
  node_->grad[0] += 1.0;
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    Node* n = *it;
    if (n->backward_fn) n->backward_fn(*n);
  }
}

// --------------------------------------------------------------- helpers

namespace {

using BackFn = std::function<void(Node&)>;

Var unary_ew(const Var& a, const char* /*name*/,
             const std::function<double(double)>& f,
             const std::function<double(double, double)>& dfdx_from_x_y) {
  auto n = make_node(a.shape(), {a});
  const auto& av = a.node().value;
  for (std::size_t i = 0; i < av.size(); ++i) n->value[i] = f(av[i]);
  if (any_grad(n)) {
    auto ap = a.ptr();
    auto nn = n.get();
    n->backward_fn = [ap, nn, dfdx_from_x_y](Node& self) {
      if (!ap->requires_grad) return;
      ap->ensure_grad();
      for (std::size_t i = 0; i < self.grad.size(); ++i) {
        ap->grad[i] += self.grad[i] * dfdx_from_x_y(ap->value[i], nn->value[i]);
      }
    };
  }
  return Var(n);
}

}  // namespace

// ------------------------------------------------------------ arithmetic

Var add(const Var& a, const Var& b) {
  if (!(a.shape() == b.shape())) shape_error("add", a.shape(), b.shape());
  auto n = make_node(a.shape(), {a, b});
  for (std::size_t i = 0; i < n->value.size(); ++i) {
    n->value[i] = a.node().value[i] + b.node().value[i];
  }
  if (any_grad(n)) {
    auto ap = a.ptr(), bp = b.ptr();
    n->backward_fn = [ap, bp](Node& self) {
      for (auto* p : {ap.get(), bp.get()}) {
        if (!p->requires_grad) continue;
        p->ensure_grad();
        for (std::size_t i = 0; i < self.grad.size(); ++i) {
          p->grad[i] += self.grad[i];
        }
      }
    };
  }
  return Var(n);
}

Var sub(const Var& a, const Var& b) {
  if (!(a.shape() == b.shape())) shape_error("sub", a.shape(), b.shape());
  auto n = make_node(a.shape(), {a, b});
  for (std::size_t i = 0; i < n->value.size(); ++i) {
    n->value[i] = a.node().value[i] - b.node().value[i];
  }
  if (any_grad(n)) {
    auto ap = a.ptr(), bp = b.ptr();
    n->backward_fn = [ap, bp](Node& self) {
      if (ap->requires_grad) {
        ap->ensure_grad();
        for (std::size_t i = 0; i < self.grad.size(); ++i) {
          ap->grad[i] += self.grad[i];
        }
      }
      if (bp->requires_grad) {
        bp->ensure_grad();
        for (std::size_t i = 0; i < self.grad.size(); ++i) {
          bp->grad[i] -= self.grad[i];
        }
      }
    };
  }
  return Var(n);
}

Var mul(const Var& a, const Var& b) {
  if (!(a.shape() == b.shape())) shape_error("mul", a.shape(), b.shape());
  auto n = make_node(a.shape(), {a, b});
  for (std::size_t i = 0; i < n->value.size(); ++i) {
    n->value[i] = a.node().value[i] * b.node().value[i];
  }
  if (any_grad(n)) {
    auto ap = a.ptr(), bp = b.ptr();
    n->backward_fn = [ap, bp](Node& self) {
      if (ap->requires_grad) {
        ap->ensure_grad();
        for (std::size_t i = 0; i < self.grad.size(); ++i) {
          ap->grad[i] += self.grad[i] * bp->value[i];
        }
      }
      if (bp->requires_grad) {
        bp->ensure_grad();
        for (std::size_t i = 0; i < self.grad.size(); ++i) {
          bp->grad[i] += self.grad[i] * ap->value[i];
        }
      }
    };
  }
  return Var(n);
}

Var scale(const Var& a, double s) {
  return unary_ew(
      a, "scale", [s](double x) { return x * s; },
      [s](double, double) { return s; });
}

Var add_scalar(const Var& a, double s) {
  return unary_ew(
      a, "add_scalar", [s](double x) { return x + s; },
      [](double, double) { return 1.0; });
}

Var neg(const Var& a) { return scale(a, -1.0); }

// ---------------------------------------------------------------- linalg

Var matvec(const Var& w, const Var& x) {
  if (!x.shape().is_vector() || w.shape().cols != x.shape().rows) {
    shape_error("matvec", w.shape(), x.shape());
  }
  const std::size_t m = w.shape().rows, k = w.shape().cols;
  auto n = make_node(Shape{m, 1}, {w, x});
  const double* wv = w.node().value.data();
  const double* xv = x.node().value.data();
  for (std::size_t r = 0; r < m; ++r) {
    double acc = 0.0;
    const double* row = wv + r * k;
    for (std::size_t c = 0; c < k; ++c) acc += row[c] * xv[c];
    n->value[r] = acc;
  }
  if (any_grad(n)) {
    auto wp = w.ptr(), xp = x.ptr();
    n->backward_fn = [wp, xp, m, k](Node& self) {
      if (wp->requires_grad) {
        wp->ensure_grad();
        for (std::size_t r = 0; r < m; ++r) {
          const double g = self.grad[r];
          double* wrow = wp->grad.data() + r * k;
          for (std::size_t c = 0; c < k; ++c) wrow[c] += g * xp->value[c];
        }
      }
      if (xp->requires_grad) {
        xp->ensure_grad();
        for (std::size_t r = 0; r < m; ++r) {
          const double g = self.grad[r];
          const double* wrow = wp->value.data() + r * k;
          for (std::size_t c = 0; c < k; ++c) xp->grad[c] += g * wrow[c];
        }
      }
    };
  }
  return Var(n);
}

Var matmul(const Var& a, const Var& b) {
  if (a.shape().cols != b.shape().rows) {
    shape_error("matmul", a.shape(), b.shape());
  }
  const std::size_t m = a.shape().rows, k = a.shape().cols,
                    p = b.shape().cols;
  auto n = make_node(Shape{m, p}, {a, b});
  const double* av = a.node().value.data();
  const double* bv = b.node().value.data();
  for (std::size_t r = 0; r < m; ++r) {
    for (std::size_t c = 0; c < p; ++c) {
      double acc = 0.0;
      for (std::size_t t = 0; t < k; ++t) acc += av[r * k + t] * bv[t * p + c];
      n->value[r * p + c] = acc;
    }
  }
  if (any_grad(n)) {
    auto ap = a.ptr(), bp = b.ptr();
    n->backward_fn = [ap, bp, m, k, p](Node& self) {
      if (ap->requires_grad) {
        ap->ensure_grad();
        for (std::size_t r = 0; r < m; ++r) {
          for (std::size_t t = 0; t < k; ++t) {
            double acc = 0.0;
            for (std::size_t c = 0; c < p; ++c) {
              acc += self.grad[r * p + c] * bp->value[t * p + c];
            }
            ap->grad[r * k + t] += acc;
          }
        }
      }
      if (bp->requires_grad) {
        bp->ensure_grad();
        for (std::size_t t = 0; t < k; ++t) {
          for (std::size_t c = 0; c < p; ++c) {
            double acc = 0.0;
            for (std::size_t r = 0; r < m; ++r) {
              acc += ap->value[r * k + t] * self.grad[r * p + c];
            }
            bp->grad[t * p + c] += acc;
          }
        }
      }
    };
  }
  return Var(n);
}

Var dot(const Var& a, const Var& b) {
  if (!(a.shape() == b.shape()) || !a.shape().is_vector()) {
    shape_error("dot", a.shape(), b.shape());
  }
  auto n = make_node(Shape{1, 1}, {a, b});
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc += a.node().value[i] * b.node().value[i];
  }
  n->value[0] = acc;
  if (any_grad(n)) {
    auto ap = a.ptr(), bp = b.ptr();
    n->backward_fn = [ap, bp](Node& self) {
      const double g = self.grad[0];
      if (ap->requires_grad) {
        ap->ensure_grad();
        for (std::size_t i = 0; i < ap->value.size(); ++i) {
          ap->grad[i] += g * bp->value[i];
        }
      }
      if (bp->requires_grad) {
        bp->ensure_grad();
        for (std::size_t i = 0; i < bp->value.size(); ++i) {
          bp->grad[i] += g * ap->value[i];
        }
      }
    };
  }
  return Var(n);
}

Var concat(const std::vector<Var>& parts) {
  if (parts.empty()) throw std::invalid_argument("concat: empty input");
  std::size_t total = 0;
  for (const auto& p : parts) {
    if (!p.shape().is_vector()) {
      throw std::invalid_argument("concat: all parts must be vectors");
    }
    total += p.size();
  }
  auto n = make_node(Shape{total, 1}, parts);
  std::size_t off = 0;
  for (const auto& p : parts) {
    std::copy(p.node().value.begin(), p.node().value.end(),
              n->value.begin() + static_cast<std::ptrdiff_t>(off));
    off += p.size();
  }
  if (any_grad(n)) {
    std::vector<std::shared_ptr<Node>> ps;
    ps.reserve(parts.size());
    for (const auto& p : parts) ps.push_back(p.ptr());
    n->backward_fn = [ps](Node& self) {
      std::size_t off = 0;
      for (const auto& p : ps) {
        if (p->requires_grad) {
          p->ensure_grad();
          for (std::size_t i = 0; i < p->value.size(); ++i) {
            p->grad[i] += self.grad[off + i];
          }
        }
        off += p->value.size();
      }
    };
  }
  return Var(n);
}

// ----------------------------------------------------------- activations

Var sigmoid(const Var& a) {
  return unary_ew(
      a, "sigmoid",
      [](double x) { return 1.0 / (1.0 + std::exp(-x)); },
      [](double, double y) { return y * (1.0 - y); });
}

Var tanh_(const Var& a) {
  return unary_ew(
      a, "tanh", [](double x) { return std::tanh(x); },
      [](double, double y) { return 1.0 - y * y; });
}

Var relu(const Var& a) {
  return unary_ew(
      a, "relu", [](double x) { return x > 0.0 ? x : 0.0; },
      [](double x, double) { return x > 0.0 ? 1.0 : 0.0; });
}

Var leaky_relu(const Var& a, double slope) {
  return unary_ew(
      a, "leaky_relu",
      [slope](double x) { return x > 0.0 ? x : slope * x; },
      [slope](double x, double) { return x > 0.0 ? 1.0 : slope; });
}

Var softplus(const Var& a) {
  return unary_ew(
      a, "softplus",
      [](double x) {
        // Numerically stable: log(1 + e^x) = max(x,0) + log1p(e^-|x|).
        return std::max(x, 0.0) + std::log1p(std::exp(-std::abs(x)));
      },
      [](double x, double) { return 1.0 / (1.0 + std::exp(-x)); });
}

Var exp_(const Var& a) {
  return unary_ew(
      a, "exp", [](double x) { return std::exp(x); },
      [](double, double y) { return y; });
}

Var log_(const Var& a) {
  return unary_ew(
      a, "log",
      [](double x) {
        if (x <= 0.0) throw std::domain_error("log: non-positive input");
        return std::log(x);
      },
      [](double x, double) { return 1.0 / x; });
}

Var softmax(const Var& a) {
  if (!a.shape().is_vector()) {
    throw std::invalid_argument("softmax: input must be a vector");
  }
  auto n = make_node(a.shape(), {a});
  const auto& av = a.node().value;
  const double mx = *std::max_element(av.begin(), av.end());
  double z = 0.0;
  for (std::size_t i = 0; i < av.size(); ++i) {
    n->value[i] = std::exp(av[i] - mx);
    z += n->value[i];
  }
  for (auto& v : n->value) v /= z;
  if (any_grad(n)) {
    auto ap = a.ptr();
    auto nn = n.get();
    n->backward_fn = [ap, nn](Node& self) {
      if (!ap->requires_grad) return;
      ap->ensure_grad();
      double dot_gy = 0.0;
      for (std::size_t i = 0; i < self.grad.size(); ++i) {
        dot_gy += self.grad[i] * nn->value[i];
      }
      for (std::size_t i = 0; i < self.grad.size(); ++i) {
        ap->grad[i] += nn->value[i] * (self.grad[i] - dot_gy);
      }
    };
  }
  return Var(n);
}

// ------------------------------------------------------------ reductions

Var sum(const Var& a) {
  auto n = make_node(Shape{1, 1}, {a});
  double acc = 0.0;
  for (double v : a.node().value) acc += v;
  n->value[0] = acc;
  if (any_grad(n)) {
    auto ap = a.ptr();
    n->backward_fn = [ap](Node& self) {
      if (!ap->requires_grad) return;
      ap->ensure_grad();
      for (auto& g : ap->grad) g += self.grad[0];
    };
  }
  return Var(n);
}

Var mean(const Var& a) {
  return scale(sum(a), 1.0 / static_cast<double>(a.size()));
}

Var sum_of(const std::vector<Var>& parts) {
  if (parts.empty()) throw std::invalid_argument("sum_of: empty input");
  const Shape s = parts.front().shape();
  for (const auto& p : parts) {
    if (!(p.shape() == s)) shape_error("sum_of", s, p.shape());
  }
  auto n = make_node(s, parts);
  for (const auto& p : parts) {
    for (std::size_t i = 0; i < n->value.size(); ++i) {
      n->value[i] += p.node().value[i];
    }
  }
  if (any_grad(n)) {
    std::vector<std::shared_ptr<Node>> ps;
    for (const auto& p : parts) ps.push_back(p.ptr());
    n->backward_fn = [ps](Node& self) {
      for (const auto& p : ps) {
        if (!p->requires_grad) continue;
        p->ensure_grad();
        for (std::size_t i = 0; i < self.grad.size(); ++i) {
          p->grad[i] += self.grad[i];
        }
      }
    };
  }
  return Var(n);
}

Var mean_of(const std::vector<Var>& parts) {
  return scale(sum_of(parts), 1.0 / static_cast<double>(parts.size()));
}

Var weighted_sum(const std::vector<Var>& weights,
                 const std::vector<Var>& vectors) {
  if (weights.size() != vectors.size() || weights.empty()) {
    throw std::invalid_argument("weighted_sum: size mismatch or empty");
  }
  std::vector<Var> scaled;
  scaled.reserve(vectors.size());
  for (std::size_t i = 0; i < vectors.size(); ++i) {
    if (!weights[i].shape().is_scalar()) {
      throw std::invalid_argument("weighted_sum: weights must be scalars");
    }
    // Broadcast the scalar weight over the vector via mul with an expanded
    // node would add a broadcast op; instead multiply through dedicated
    // closure below.
    const Var& w = weights[i];
    const Var& v = vectors[i];
    auto n = make_node(v.shape(), {w, v});
    const double wv = w.node().value[0];
    for (std::size_t j = 0; j < v.size(); ++j) {
      n->value[j] = wv * v.node().value[j];
    }
    if (any_grad(n)) {
      auto wp = w.ptr(), vp = v.ptr();
      n->backward_fn = [wp, vp](Node& self) {
        if (wp->requires_grad) {
          wp->ensure_grad();
          double acc = 0.0;
          for (std::size_t j = 0; j < self.grad.size(); ++j) {
            acc += self.grad[j] * vp->value[j];
          }
          wp->grad[0] += acc;
        }
        if (vp->requires_grad) {
          vp->ensure_grad();
          const double wv = wp->value[0];
          for (std::size_t j = 0; j < self.grad.size(); ++j) {
            vp->grad[j] += self.grad[j] * wv;
          }
        }
      };
    }
    scaled.emplace_back(n);
  }
  return scaled.size() == 1 ? scaled.front() : sum_of(scaled);
}

Var mse(const Var& a, const Var& b) {
  Var d = sub(a, b);
  return mean(mul(d, d));
}

}  // namespace chainnet::tensor
