#include "tensor/variable.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "tensor/kernels.h"

namespace chainnet::tensor {

Var Var::leaf(Shape shape, std::vector<double> values, bool requires_grad) {
  if (values.size() != shape.size()) {
    throw std::invalid_argument("Var::leaf: value count " +
                                std::to_string(values.size()) +
                                " does not match shape " + shape.str());
  }
  return Var(Tape::current().leaf(shape, values, requires_grad));
}

Var Var::vector(std::vector<double> values, bool requires_grad) {
  const Shape s{values.size(), 1};
  return leaf(s, std::move(values), requires_grad);
}

Var Var::scalar(double value, bool requires_grad) {
  return leaf(Shape{1, 1}, {value}, requires_grad);
}

Var Var::zeros(Shape shape, bool requires_grad) {
  return leaf(shape, std::vector<double>(shape.size(), 0.0), requires_grad);
}

double Var::item() const {
  if (!node_->shape.is_scalar()) {
    throw std::invalid_argument("Var::item: tensor is not scalar, shape " +
                                node_->shape.str());
  }
  return node_->val[0];
}

void Var::zero_grad() noexcept {
  if (node_ == nullptr) return;
  auto g = node_->grad();
  std::fill(g.begin(), g.end(), 0.0);
}

void Var::backward() const {
  if (!node_) throw std::invalid_argument("backward on undefined Var");
  if (!node_->shape.is_scalar()) {
    throw std::invalid_argument("backward requires a scalar output");
  }
  node_->tape->backward(node_);
}

// --------------------------------------------------------------- helpers

namespace {

[[noreturn]] void shape_error(const char* op, const Shape& a, const Shape& b) {
  throw std::invalid_argument(std::string(op) + ": shape mismatch " + a.str() +
                              " vs " + b.str());
}

Node* make1(Op op, Shape shape, const Var& a, double aux = 0.0) {
  Node* parents[1] = {a.ptr()};
  return Tape::current().op_node(op, shape, parents, aux);
}

Node* make2(Op op, Shape shape, const Var& a, const Var& b,
            double aux = 0.0) {
  Node* parents[2] = {a.ptr(), b.ptr()};
  return Tape::current().op_node(op, shape, parents, aux);
}

Node* make_n(Op op, Shape shape, const std::vector<Var>& parts,
             double aux = 0.0) {
  // Reused scratch keeps the steady-state op path free of heap traffic.
  thread_local std::vector<Node*> parents;
  parents.clear();
  parents.reserve(parts.size());
  for (const auto& p : parts) parents.push_back(p.ptr());
  return Tape::current().op_node(op, shape, parents, aux);
}

template <typename F>
Var unary_ew(const Var& a, Op op, double aux, F&& f) {
  Node* n = make1(op, a.shape(), a, aux);
  const double* av = a.node().val;
  for (std::size_t i = 0; i < a.size(); ++i) n->val[i] = f(av[i]);
  return Var(n);
}

}  // namespace

// ------------------------------------------------------------ arithmetic

Var add(const Var& a, const Var& b) {
  if (!(a.shape() == b.shape())) shape_error("add", a.shape(), b.shape());
  Node* n = make2(Op::kAdd, a.shape(), a, b);
  const double* av = a.node().val;
  const double* bv = b.node().val;
  for (std::size_t i = 0; i < a.size(); ++i) n->val[i] = av[i] + bv[i];
  return Var(n);
}

Var sub(const Var& a, const Var& b) {
  if (!(a.shape() == b.shape())) shape_error("sub", a.shape(), b.shape());
  Node* n = make2(Op::kSub, a.shape(), a, b);
  const double* av = a.node().val;
  const double* bv = b.node().val;
  for (std::size_t i = 0; i < a.size(); ++i) n->val[i] = av[i] - bv[i];
  return Var(n);
}

Var mul(const Var& a, const Var& b) {
  if (!(a.shape() == b.shape())) shape_error("mul", a.shape(), b.shape());
  Node* n = make2(Op::kMul, a.shape(), a, b);
  const double* av = a.node().val;
  const double* bv = b.node().val;
  for (std::size_t i = 0; i < a.size(); ++i) n->val[i] = av[i] * bv[i];
  return Var(n);
}

Var scale(const Var& a, double s) {
  return unary_ew(a, Op::kScale, s, [s](double x) { return x * s; });
}

Var add_scalar(const Var& a, double s) {
  return unary_ew(a, Op::kAddScalar, s, [s](double x) { return x + s; });
}

Var neg(const Var& a) { return scale(a, -1.0); }

// ---------------------------------------------------------------- linalg

Var matvec(const Var& w, const Var& x) {
  if (!x.shape().is_vector() || w.shape().cols != x.shape().rows) {
    shape_error("matvec", w.shape(), x.shape());
  }
  const std::size_t m = w.shape().rows, k = w.shape().cols;
  Node* n = make2(Op::kMatVec, Shape{m, 1}, w, x);
  // Forward value via the kernel layer so the autodiff path shares the
  // dispatched ISA tier's rounding regime (FMA tiers fuse multiply-adds)
  // with the inference-only paths; backward is unaffected.
  kernels::gemv_naive(w.node().val, nullptr, x.node().val, n->val, m, k);
  return Var(n);
}

Var matmul(const Var& a, const Var& b) {
  if (a.shape().cols != b.shape().rows) {
    shape_error("matmul", a.shape(), b.shape());
  }
  const std::size_t m = a.shape().rows, k = a.shape().cols,
                    p = b.shape().cols;
  Node* n = make2(Op::kMatMul, Shape{m, p}, a, b);
  const double* av = a.node().val;
  const double* bv = b.node().val;
  for (std::size_t r = 0; r < m; ++r) {
    for (std::size_t c = 0; c < p; ++c) {
      double acc = 0.0;
      for (std::size_t t = 0; t < k; ++t) acc += av[r * k + t] * bv[t * p + c];
      n->val[r * p + c] = acc;
    }
  }
  return Var(n);
}

Var dot(const Var& a, const Var& b) {
  if (!(a.shape() == b.shape()) || !a.shape().is_vector()) {
    shape_error("dot", a.shape(), b.shape());
  }
  Node* n = make2(Op::kDot, Shape{1, 1}, a, b);
  const double* av = a.node().val;
  const double* bv = b.node().val;
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += av[i] * bv[i];
  n->val[0] = acc;
  return Var(n);
}

Var concat(const std::vector<Var>& parts) {
  if (parts.empty()) throw std::invalid_argument("concat: empty input");
  std::size_t total = 0;
  for (const auto& p : parts) {
    if (!p.shape().is_vector()) {
      throw std::invalid_argument("concat: all parts must be vectors");
    }
    total += p.size();
  }
  Node* n = make_n(Op::kConcat, Shape{total, 1}, parts);
  std::size_t off = 0;
  for (const auto& p : parts) {
    const auto pv = p.value();
    std::copy(pv.begin(), pv.end(), n->val + off);
    off += p.size();
  }
  return Var(n);
}

// ----------------------------------------------------------- activations

Var sigmoid(const Var& a) {
  return unary_ew(a, Op::kSigmoid, 0.0,
                  [](double x) { return 1.0 / (1.0 + std::exp(-x)); });
}

Var tanh_(const Var& a) {
  return unary_ew(a, Op::kTanh, 0.0, [](double x) { return std::tanh(x); });
}

Var relu(const Var& a) {
  return unary_ew(a, Op::kRelu, 0.0,
                  [](double x) { return x > 0.0 ? x : 0.0; });
}

Var leaky_relu(const Var& a, double slope) {
  return unary_ew(a, Op::kLeakyRelu, slope,
                  [slope](double x) { return x > 0.0 ? x : slope * x; });
}

Var softplus(const Var& a) {
  return unary_ew(a, Op::kSoftplus, 0.0, [](double x) {
    // Numerically stable: log(1 + e^x) = max(x,0) + log1p(e^-|x|).
    return std::max(x, 0.0) + std::log1p(std::exp(-std::abs(x)));
  });
}

Var exp_(const Var& a) {
  return unary_ew(a, Op::kExp, 0.0, [](double x) { return std::exp(x); });
}

Var log_(const Var& a) {
  return unary_ew(a, Op::kLog, 0.0, [](double x) {
    if (x <= 0.0) throw std::domain_error("log: non-positive input");
    return std::log(x);
  });
}

Var softmax(const Var& a) {
  if (!a.shape().is_vector()) {
    throw std::invalid_argument("softmax: input must be a vector");
  }
  Node* n = make1(Op::kSoftmax, a.shape(), a);
  const auto av = a.value();
  const double mx = *std::max_element(av.begin(), av.end());
  double z = 0.0;
  for (std::size_t i = 0; i < av.size(); ++i) {
    n->val[i] = std::exp(av[i] - mx);
    z += n->val[i];
  }
  for (auto& v : n->value()) v /= z;
  return Var(n);
}

// ------------------------------------------------------------ reductions

Var sum(const Var& a) {
  Node* n = make1(Op::kSum, Shape{1, 1}, a);
  double acc = 0.0;
  for (double v : a.value()) acc += v;
  n->val[0] = acc;
  return Var(n);
}

Var mean(const Var& a) {
  return scale(sum(a), 1.0 / static_cast<double>(a.size()));
}

Var sum_of(const std::vector<Var>& parts) {
  if (parts.empty()) throw std::invalid_argument("sum_of: empty input");
  const Shape s = parts.front().shape();
  for (const auto& p : parts) {
    if (!(p.shape() == s)) shape_error("sum_of", s, p.shape());
  }
  Node* n = make_n(Op::kSumOf, s, parts);
  for (const auto& p : parts) {
    const double* pv = p.node().val;
    for (std::size_t i = 0; i < s.size(); ++i) n->val[i] += pv[i];
  }
  return Var(n);
}

Var mean_of(const std::vector<Var>& parts) {
  return scale(sum_of(parts), 1.0 / static_cast<double>(parts.size()));
}

Var weighted_sum(const std::vector<Var>& weights,
                 const std::vector<Var>& vectors) {
  if (weights.size() != vectors.size() || weights.empty()) {
    throw std::invalid_argument("weighted_sum: size mismatch or empty");
  }
  std::vector<Var> scaled;
  scaled.reserve(vectors.size());
  for (std::size_t i = 0; i < vectors.size(); ++i) {
    if (!weights[i].shape().is_scalar()) {
      throw std::invalid_argument("weighted_sum: weights must be scalars");
    }
    // Broadcast the scalar weight over the vector with a dedicated op
    // instead of materializing an expanded tensor.
    const Var& w = weights[i];
    const Var& v = vectors[i];
    Node* n = make2(Op::kScalarMul, v.shape(), w, v);
    const double wv = w.node().val[0];
    const double* vv = v.node().val;
    for (std::size_t j = 0; j < v.size(); ++j) n->val[j] = wv * vv[j];
    scaled.emplace_back(n);
  }
  return scaled.size() == 1 ? scaled.front() : sum_of(scaled);
}

Var mse(const Var& a, const Var& b) {
  Var d = sub(a, b);
  return mean(mul(d, d));
}

}  // namespace chainnet::tensor
