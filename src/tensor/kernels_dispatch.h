// Internal: per-ISA kernel variant tables (see kernels.h for the dispatch
// contract). Each variant is a self-consistent rounding regime — the
// baseline separates multiply and add, the FMA tiers fuse them everywhere —
// so whichever table is active, gemv / gemv_naive / gemm stay bit-for-bit
// interchangeable per output element.
#pragma once

#include <cstddef>
#include <vector>

namespace chainnet::tensor::kernels::detail {

/// Per-thread scratch for gemm column-tile packing: panel-strided x loads
/// touch one page per c iteration, so each tile is gathered once into this
/// contiguous buffer and the hot loop runs on sequential loads. Grow-only.
std::vector<double>& tile_scratch();

/// f32-tier counterpart of tile_scratch() (separate buffer: a thread may
/// interleave f64 and f32 gemms, e.g. the rank-fidelity gate).
std::vector<float>& tile_scratch_f32();

struct KernelTable {
  void (*gemv)(const double*, const double*, const double*, double*,
               std::size_t, std::size_t);
  void (*gemv_naive)(const double*, const double*, const double*, double*,
                     std::size_t, std::size_t);
  void (*gemm)(const double*, const double*, const double*, double*,
               std::size_t, std::size_t, std::size_t);
  void (*gemv_f32)(const float*, const float*, const float*, float*,
                   std::size_t, std::size_t);
  void (*gemv_naive_f32)(const float*, const float*, const float*, float*,
                         std::size_t, std::size_t);
  void (*gemm_f32)(const float*, const float*, const float*, float*,
                   std::size_t, std::size_t, std::size_t);
  const char* isa;
};

#if defined(__x86_64__) || defined(_M_X64)
namespace avx2 {
void gemv(const double* w, const double* bias, const double* x, double* y,
          std::size_t rows, std::size_t cols);
void gemv_naive(const double* w, const double* bias, const double* x,
                double* y, std::size_t rows, std::size_t cols);
void gemm(const double* w, const double* bias, const double* x, double* y,
          std::size_t rows, std::size_t cols, std::size_t n);
void gemv(const float* w, const float* bias, const float* x, float* y,
          std::size_t rows, std::size_t cols);
void gemv_naive(const float* w, const float* bias, const float* x, float* y,
                std::size_t rows, std::size_t cols);
void gemm(const float* w, const float* bias, const float* x, float* y,
          std::size_t rows, std::size_t cols, std::size_t n);
}  // namespace avx2

namespace avx512 {
void gemv(const double* w, const double* bias, const double* x, double* y,
          std::size_t rows, std::size_t cols);
void gemv_naive(const double* w, const double* bias, const double* x,
                double* y, std::size_t rows, std::size_t cols);
void gemm(const double* w, const double* bias, const double* x, double* y,
          std::size_t rows, std::size_t cols, std::size_t n);
void gemv(const float* w, const float* bias, const float* x, float* y,
          std::size_t rows, std::size_t cols);
void gemv_naive(const float* w, const float* bias, const float* x, float* y,
                std::size_t rows, std::size_t cols);
void gemm(const float* w, const float* bias, const float* x, float* y,
          std::size_t rows, std::size_t cols, std::size_t n);
}  // namespace avx512
#endif

}  // namespace chainnet::tensor::kernels::detail
