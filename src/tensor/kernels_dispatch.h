// Internal: per-ISA kernel variant tables (see kernels.h for the dispatch
// contract). Each variant is a self-consistent rounding regime — the
// baseline separates multiply and add, the FMA tiers fuse them everywhere —
// so whichever table is active, gemv / gemv_naive / gemm stay bit-for-bit
// interchangeable per output element.
#pragma once

#include <cstddef>
#include <vector>

namespace chainnet::tensor::kernels::detail {

/// Per-thread scratch for gemm column-tile packing: panel-strided x loads
/// touch one page per c iteration, so each tile is gathered once into this
/// contiguous buffer and the hot loop runs on sequential loads. Grow-only.
std::vector<double>& tile_scratch();

struct KernelTable {
  void (*gemv)(const double*, const double*, const double*, double*,
               std::size_t, std::size_t);
  void (*gemv_naive)(const double*, const double*, const double*, double*,
                     std::size_t, std::size_t);
  void (*gemm)(const double*, const double*, const double*, double*,
               std::size_t, std::size_t, std::size_t);
  const char* isa;
};

#if defined(__x86_64__) || defined(_M_X64)
namespace avx2 {
void gemv(const double* w, const double* bias, const double* x, double* y,
          std::size_t rows, std::size_t cols);
void gemv_naive(const double* w, const double* bias, const double* x,
                double* y, std::size_t rows, std::size_t cols);
void gemm(const double* w, const double* bias, const double* x, double* y,
          std::size_t rows, std::size_t cols, std::size_t n);
}  // namespace avx2

namespace avx512 {
void gemv(const double* w, const double* bias, const double* x, double* y,
          std::size_t rows, std::size_t cols);
void gemv_naive(const double* w, const double* bias, const double* x,
                double* y, std::size_t rows, std::size_t cols);
void gemm(const double* w, const double* bias, const double* x, double* y,
          std::size_t rows, std::size_t cols, std::size_t n);
}  // namespace avx512
#endif

}  // namespace chainnet::tensor::kernels::detail
