// Numeric tier selection for the inference engine.
//
// The surrogate keeps one set of master weights in f64 (training, autodiff,
// and the bit-for-bit reference paths all run on them). Inference may run on
// a reduced-precision tier instead: kF32 converts weights once into cached
// f32 buffers and replays compiled plans through the f32 kernel table;
// kBf16 is an *emulated storage* mode — weights are rounded to bfloat16
// precision (round-to-nearest-even) at pack time but stored and computed in
// f32, so it probes bf16 accuracy without bf16 arithmetic. The f64 tier is
// the default and is bit-identical to the pre-tier engine.
//
// Correctness bar per tier: f64 is gated on bit-parity (kernels_test,
// plan_test); the reduced tiers are gated on *ranking fidelity* — the
// search loops that consume the surrogate only need neighboring placements
// ordered correctly — measured by gnn::pairwise_rank_agreement in
// bench_infer (DESIGN.md §15).
#pragma once

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>

namespace chainnet::tensor {

enum class DType : std::uint8_t {
  kF64 = 0,  ///< master weights, reference arithmetic (default)
  kF32 = 1,  ///< f32 weights + f32 kernels (the fast tier)
  kBf16 = 2,  ///< bf16-rounded weights stored/computed in f32 (emulated)
};

inline const char* dtype_name(DType d) {
  switch (d) {
    case DType::kF64:
      return "f64";
    case DType::kF32:
      return "f32";
    case DType::kBf16:
      return "bf16";
  }
  return "?";
}

/// Bytes per stored weight/activation element on the tier. bf16 is emulated
/// in f32 storage, so it reports 4 (it saves accuracy bits, not bytes).
inline std::size_t dtype_element_bytes(DType d) {
  return d == DType::kF64 ? sizeof(double) : sizeof(float);
}

/// Parses "f64" | "f32" | "bf16". Returns false on anything else.
inline bool parse_dtype(const std::string& s, DType& out) {
  if (s == "f64") {
    out = DType::kF64;
  } else if (s == "f32") {
    out = DType::kF32;
  } else if (s == "bf16") {
    out = DType::kBf16;
  } else {
    return false;
  }
  return true;
}

/// Parses a dtype string or throws std::invalid_argument naming the
/// accepted values — the CLI/serve/bench entry points share this so an
/// unknown tier never silently selects a default.
inline DType parse_dtype_or_throw(const std::string& s) {
  DType d;
  if (!parse_dtype(s, d)) {
    throw std::invalid_argument("unknown dtype \"" + s +
                                "\" (accepted: f64, f32, bf16)");
  }
  return d;
}

/// Reads CHAINNET_DTYPE; unset returns `fallback`, an unknown value throws
/// (listing the accepted spellings) rather than falling through silently.
DType dtype_from_env(DType fallback);

/// Rounds an f32 value to bfloat16 precision (round-to-nearest-even on the
/// 16 dropped mantissa bits) and widens it back to f32. NaNs pass through
/// quietened-as-is; overflow to infinity follows IEEE rounding.
inline float bf16_round(float v) {
  std::uint32_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  if ((bits & 0x7f800000u) == 0x7f800000u) {
    // Inf/NaN: truncate only (keeps NaNs NaN; rounding could carry a NaN
    // payload into the exponent and manufacture an infinity).
    bits &= 0xffff0000u;
    if ((v != v) && (bits & 0x007f0000u) == 0) bits |= 0x00400000u;
  } else {
    const std::uint32_t lsb = (bits >> 16) & 1u;
    bits += 0x7fffu + lsb;
    bits &= 0xffff0000u;
  }
  float out;
  std::memcpy(&out, &bits, sizeof(out));
  return out;
}

}  // namespace chainnet::tensor
