#include "tensor/nn.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "tensor/kernels.h"

namespace chainnet::tensor {

using chainnet::support::Rng;

std::vector<Parameter*> Module::parameters() {
  std::vector<Parameter*> out;
  collect(out);
  return out;
}

std::vector<const Parameter*> Module::parameters() const {
  std::vector<Parameter*> out;
  const_cast<Module*>(this)->collect(out);
  return {out.begin(), out.end()};
}

void Module::collect(std::vector<Parameter*>& out) {
  for (auto& p : params_) out.push_back(p.get());
  for (auto& [prefix, child] : children_) child->collect(out);
}

void Module::zero_grad() {
  for (Parameter* p : parameters()) p->var.zero_grad();
}

std::size_t Module::parameter_count() const {
  std::size_t total = 0;
  for (const Parameter* p : parameters()) total += p->var.size();
  return total;
}

Var Module::register_glorot(const std::string& name, Shape shape, Rng& rng) {
  std::vector<double> w(shape.size());
  glorot_uniform(w, shape.cols, shape.rows, rng);
  auto p = std::make_unique<Parameter>();
  p->name = name;
  p->var = Var::leaf(shape, std::move(w), /*requires_grad=*/true);
  Var v = p->var;
  params_.push_back(std::move(p));
  return v;
}

Var Module::register_zeros(const std::string& name, Shape shape) {
  auto p = std::make_unique<Parameter>();
  p->name = name;
  p->var = Var::leaf(shape, std::vector<double>(shape.size(), 0.0),
                     /*requires_grad=*/true);
  Var v = p->var;
  params_.push_back(std::move(p));
  return v;
}

void Module::register_module(const std::string& prefix, Module* child) {
  children_.emplace_back(prefix, child);
}

void glorot_uniform(std::span<double> weights, std::size_t fan_in,
                    std::size_t fan_out, Rng& rng) {
  const double a =
      std::sqrt(6.0 / static_cast<double>(fan_in + fan_out));
  for (auto& w : weights) w = rng.uniform(-a, a);
}

// ---------------------------------------------------------------- Linear

Linear::Linear(std::size_t in, std::size_t out, Rng& rng,
               const std::string& name)
    : in_(in), out_(out) {
  if (in == 0 || out == 0) throw std::invalid_argument("Linear: zero size");
  w_ = register_glorot(name + ".w", Shape{out, in}, rng);
  b_ = register_zeros(name + ".b", Shape{out, 1});
}

Var Linear::forward(const Var& x) const { return add(matvec(w_, x), b_); }

namespace {

/// out = W x + b over raw buffers (W row-major [rows x cols]). Dispatches
/// to the blocked kernel; bit-identical to the former single-accumulator
/// loop (same per-row accumulation order).
void raw_affine(std::span<const double> w, std::span<const double> b,
                std::span<const double> x, std::span<double> out,
                std::size_t rows, std::size_t cols) {
  kernels::gemv(w.data(), b.empty() ? nullptr : b.data(), x.data(),
                out.data(), rows, cols);
}

/// The pre-fusion affine loop, kept verbatim for forward_values_reference.
void raw_affine_naive(std::span<const double> w, std::span<const double> b,
                      std::span<const double> x, std::span<double> out,
                      std::size_t rows, std::size_t cols) {
  kernels::gemv_naive(w.data(), b.empty() ? nullptr : b.data(), x.data(),
                      out.data(), rows, cols);
}

inline double sigmoid_value(double x) { return 1.0 / (1.0 + std::exp(-x)); }

inline float sigmoid_value(float x) { return 1.0f / (1.0f + std::exp(-x)); }

/// Converts a double parameter buffer to the f32 tier in place of `dst`
/// (bf16-rounded when requested). Plain narrowing cast for kF32: the
/// round-to-nearest double->float conversion is the tier's pack step.
void convert_to_f32(std::span<const double> src, std::vector<float>& dst,
                    DType storage) {
  dst.resize(src.size());
  if (storage == DType::kBf16) {
    for (std::size_t i = 0; i < src.size(); ++i) {
      dst[i] = bf16_round(static_cast<float>(src[i]));
    }
  } else {
    for (std::size_t i = 0; i < src.size(); ++i) {
      dst[i] = static_cast<float>(src[i]);
    }
  }
}

}  // namespace

void Linear::forward_values(std::span<const double> x,
                            std::span<double> out) const {
  if (x.size() != in_ || out.size() != out_) {
    throw std::invalid_argument("Linear::forward_values: size mismatch");
  }
  raw_affine(w_.value(), b_.value(), x, out, out_, in_);
}

void Linear::forward_values_batch(const double* x, double* out,
                                  std::size_t n) const {
  kernels::gemm(w_.value().data(), b_.value().data(), x, out, out_, in_, n);
}

void Linear::ensure_f32(DType storage) const {
  const std::uint64_t wv = w_.node().version;
  const std::uint64_t bv = b_.node().version;
  if (f32_ready_ && f32_storage_ == storage && f32_versions_[0] == wv &&
      f32_versions_[1] == bv) {
    return;
  }
  convert_to_f32(w_.value(), w_f32_, storage);
  convert_to_f32(b_.value(), b_f32_, storage);
  f32_versions_ = {wv, bv};
  f32_storage_ = storage;
  f32_ready_ = true;
}

void Linear::forward_values(std::span<const float> x, std::span<float> out,
                            DType storage) const {
  if (x.size() != in_ || out.size() != out_) {
    throw std::invalid_argument("Linear::forward_values: size mismatch");
  }
  ensure_f32(storage);
  kernels::gemv(w_f32_.data(), b_f32_.data(), x.data(), out.data(), out_,
                in_);
}

void Linear::forward_values_batch(const float* x, float* out, std::size_t n,
                                  DType storage) const {
  ensure_f32(storage);
  kernels::gemm(w_f32_.data(), b_f32_.data(), x, out, out_, in_, n);
}

void apply_activation_values(std::span<double> x, Activation act) {
  switch (act) {
    case Activation::kNone:
      return;
    case Activation::kRelu:
      for (auto& v : x) v = v > 0.0 ? v : 0.0;
      return;
    case Activation::kTanh:
      for (auto& v : x) v = std::tanh(v);
      return;
    case Activation::kSigmoid:
      for (auto& v : x) v = sigmoid_value(v);
      return;
    case Activation::kLeakyRelu:
      for (auto& v : x) v = v > 0.0 ? v : 0.01 * v;
      return;
    case Activation::kSoftplus:
      for (auto& v : x) {
        v = std::max(v, 0.0) + std::log1p(std::exp(-std::abs(v)));
      }
      return;
  }
  throw std::logic_error("apply_activation_values: unknown activation");
}

void apply_activation_values(std::span<float> x, Activation act) {
  switch (act) {
    case Activation::kNone:
      return;
    case Activation::kRelu:
      for (auto& v : x) v = v > 0.0f ? v : 0.0f;
      return;
    case Activation::kTanh:
      for (auto& v : x) v = std::tanh(v);
      return;
    case Activation::kSigmoid:
      for (auto& v : x) v = sigmoid_value(v);
      return;
    case Activation::kLeakyRelu:
      for (auto& v : x) v = v > 0.0f ? v : 0.01f * v;
      return;
    case Activation::kSoftplus:
      for (auto& v : x) {
        v = std::max(v, 0.0f) + std::log1p(std::exp(-std::abs(v)));
      }
      return;
  }
  throw std::logic_error("apply_activation_values: unknown activation");
}

// ------------------------------------------------------------------ Mlp

Var apply_activation(const Var& x, Activation act) {
  switch (act) {
    case Activation::kNone:
      return x;
    case Activation::kRelu:
      return relu(x);
    case Activation::kTanh:
      return tanh_(x);
    case Activation::kSigmoid:
      return sigmoid(x);
    case Activation::kLeakyRelu:
      return leaky_relu(x);
    case Activation::kSoftplus:
      return softplus(x);
  }
  throw std::logic_error("apply_activation: unknown activation");
}

Mlp::Mlp(const std::vector<std::size_t>& layer_sizes, Activation hidden,
         Activation output, Rng& rng, const std::string& name)
    : hidden_(hidden), output_(output) {
  if (layer_sizes.size() < 2) {
    throw std::invalid_argument("Mlp: need at least input and output sizes");
  }
  for (std::size_t l = 0; l + 1 < layer_sizes.size(); ++l) {
    layers_.push_back(std::make_unique<Linear>(
        layer_sizes[l], layer_sizes[l + 1], rng,
        name + ".fc" + std::to_string(l)));
    register_module(name + ".fc" + std::to_string(l), layers_.back().get());
  }
}

Var Mlp::forward(Var x) const {
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    x = layers_[l]->forward(x);
    x = apply_activation(x, l + 1 == layers_.size() ? output_ : hidden_);
  }
  return x;
}

void Mlp::forward_values(std::span<const double> x,
                         std::span<double> out) const {
  Scratch scratch;
  forward_values(x, out, scratch);
}

void Mlp::forward_values(std::span<const double> x, std::span<double> out,
                         Scratch& s) const {
  s.a.assign(x.begin(), x.end());
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    s.b.resize(layers_[l]->out_features());
    layers_[l]->forward_values(s.a, s.b);
    apply_activation_values(
        s.b, l + 1 == layers_.size() ? output_ : hidden_);
    s.a.swap(s.b);
  }
  if (out.size() != s.a.size()) {
    throw std::invalid_argument("Mlp::forward_values: bad output size");
  }
  std::copy(s.a.begin(), s.a.end(), out.begin());
}

void Mlp::forward_values_batch(const double* x, double* out, std::size_t n,
                               Scratch& s) const {
  s.a.assign(x, x + layers_.front()->in_features() * n);
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    s.b.resize(layers_[l]->out_features() * n);
    layers_[l]->forward_values_batch(s.a.data(), s.b.data(), n);
    apply_activation_values(s.b, l + 1 == layers_.size() ? output_ : hidden_);
    s.a.swap(s.b);
  }
  std::copy(s.a.begin(), s.a.end(), out);
}

void Mlp::forward_values(std::span<const float> x, std::span<float> out,
                         Scratch& s, DType storage) const {
  s.a_f.assign(x.begin(), x.end());
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    s.b_f.resize(layers_[l]->out_features());
    layers_[l]->forward_values(s.a_f, s.b_f, storage);
    apply_activation_values(
        std::span<float>(s.b_f),
        l + 1 == layers_.size() ? output_ : hidden_);
    s.a_f.swap(s.b_f);
  }
  if (out.size() != s.a_f.size()) {
    throw std::invalid_argument("Mlp::forward_values: bad output size");
  }
  std::copy(s.a_f.begin(), s.a_f.end(), out.begin());
}

void Mlp::forward_values_batch(const float* x, float* out, std::size_t n,
                               Scratch& s, DType storage) const {
  s.a_f.assign(x, x + layers_.front()->in_features() * n);
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    s.b_f.resize(layers_[l]->out_features() * n);
    layers_[l]->forward_values_batch(s.a_f.data(), s.b_f.data(), n, storage);
    apply_activation_values(std::span<float>(s.b_f),
                            l + 1 == layers_.size() ? output_ : hidden_);
    s.a_f.swap(s.b_f);
  }
  std::copy(s.a_f.begin(), s.a_f.end(), out);
}

// -------------------------------------------------------------- GruCell

GruCell::GruCell(std::size_t input, std::size_t hidden, Rng& rng,
                 const std::string& name)
    : input_(input), hidden_(hidden) {
  if (input == 0 || hidden == 0) throw std::invalid_argument("GruCell: zero");
  const Shape wi{hidden, input};
  const Shape wh{hidden, hidden};
  const Shape bs{hidden, 1};
  w_ir_ = register_glorot(name + ".w_ir", wi, rng);
  w_iz_ = register_glorot(name + ".w_iz", wi, rng);
  w_in_ = register_glorot(name + ".w_in", wi, rng);
  w_hr_ = register_glorot(name + ".w_hr", wh, rng);
  w_hz_ = register_glorot(name + ".w_hz", wh, rng);
  w_hn_ = register_glorot(name + ".w_hn", wh, rng);
  b_ir_ = register_zeros(name + ".b_ir", bs);
  b_iz_ = register_zeros(name + ".b_iz", bs);
  b_in_ = register_zeros(name + ".b_in", bs);
  b_hr_ = register_zeros(name + ".b_hr", bs);
  b_hz_ = register_zeros(name + ".b_hz", bs);
  b_hn_ = register_zeros(name + ".b_hn", bs);
}

Var GruCell::forward(const Var& h, const Var& x) const {
  if (h.size() != hidden_ || x.size() != input_) {
    throw std::invalid_argument("GruCell::forward: size mismatch");
  }
  Var r = sigmoid(add(add(matvec(w_ir_, x), b_ir_),
                      add(matvec(w_hr_, h), b_hr_)));
  Var z = sigmoid(add(add(matvec(w_iz_, x), b_iz_),
                      add(matvec(w_hz_, h), b_hz_)));
  Var n = tanh_(add(add(matvec(w_in_, x), b_in_),
                    mul(r, add(matvec(w_hn_, h), b_hn_))));
  // h' = (1 - z) * n + z * h  ==  n - z*n + z*h
  return add(sub(n, mul(z, n)), mul(z, h));
}

void GruCell::forward_values(std::span<const double> h,
                             std::span<const double> x,
                             std::span<double> h_out) const {
  Scratch scratch;
  forward_values(h, x, h_out, scratch);
}

void GruCell::ensure_packed() const {
  const Var* params[12] = {&w_ir_, &w_iz_, &w_in_, &w_hr_, &w_hz_, &w_hn_,
                           &b_ir_, &b_iz_, &b_in_, &b_hr_, &b_hz_, &b_hn_};
  if (packed_) {
    bool stale = false;
    for (std::size_t i = 0; i < 12; ++i) {
      stale |= params[i]->node().version != pack_versions_[i];
    }
    if (!stale) return;
  }
  const std::size_t H = hidden_;
  wi_pack_.resize(3 * H * input_);
  wh_pack_.resize(3 * H * H);
  bi_pack_.resize(3 * H);
  bh_pack_.resize(3 * H);
  const Var* wi[3] = {&w_ir_, &w_iz_, &w_in_};
  const Var* wh[3] = {&w_hr_, &w_hz_, &w_hn_};
  const Var* bi[3] = {&b_ir_, &b_iz_, &b_in_};
  const Var* bh[3] = {&b_hr_, &b_hz_, &b_hn_};
  for (std::size_t g = 0; g < 3; ++g) {
    std::ranges::copy(wi[g]->value(), wi_pack_.begin() + g * H * input_);
    std::ranges::copy(wh[g]->value(), wh_pack_.begin() + g * H * H);
    std::ranges::copy(bi[g]->value(), bi_pack_.begin() + g * H);
    std::ranges::copy(bh[g]->value(), bh_pack_.begin() + g * H);
  }
  for (std::size_t i = 0; i < 12; ++i) {
    pack_versions_[i] = params[i]->node().version;
  }
  packed_ = true;
}

void GruCell::ensure_packed_f32(DType storage) const {
  const Var* params[12] = {&w_ir_, &w_iz_, &w_in_, &w_hr_, &w_hz_, &w_hn_,
                           &b_ir_, &b_iz_, &b_in_, &b_hr_, &b_hz_, &b_hn_};
  if (packed_f32_ && f32_storage_ == storage) {
    bool stale = false;
    for (std::size_t i = 0; i < 12; ++i) {
      stale |= params[i]->node().version != pack_versions_f32_[i];
    }
    if (!stale) return;
  }
  // Build (or refresh) the f64 packs first, then convert: one conversion
  // per weight regardless of which tier ran first.
  ensure_packed();
  convert_to_f32(wi_pack_, wi_pack_f32_, storage);
  convert_to_f32(wh_pack_, wh_pack_f32_, storage);
  convert_to_f32(bi_pack_, bi_pack_f32_, storage);
  convert_to_f32(bh_pack_, bh_pack_f32_, storage);
  for (std::size_t i = 0; i < 12; ++i) {
    pack_versions_f32_[i] = params[i]->node().version;
  }
  f32_storage_ = storage;
  packed_f32_ = true;
}

void GruCell::forward_values(std::span<const double> h,
                             std::span<const double> x,
                             std::span<double> h_out, Scratch& s) const {
  if (h.size() != hidden_ || x.size() != input_ || h_out.size() != hidden_) {
    throw std::invalid_argument("GruCell::forward_values: size mismatch");
  }
  ensure_packed();
  const std::size_t H = hidden_;
  // Stacked gate pre-activations: gi = Wi x + bi, gh = Wh h + bh, rows in
  // gate order [r; z; n]. Every element is fully overwritten, so resize
  // (keeping capacity) suffices.
  s.gi.resize(3 * H);
  s.gh.resize(3 * H);
  kernels::gemv(wi_pack_.data(), bi_pack_.data(), x.data(), s.gi.data(),
                3 * H, input_);
  kernels::gemv(wh_pack_.data(), bh_pack_.data(), h.data(), s.gh.data(),
                3 * H, hidden_);
  for (std::size_t i = 0; i < H; ++i) {
    const double r = sigmoid_value(s.gi[i] + s.gh[i]);
    const double z = sigmoid_value(s.gi[H + i] + s.gh[H + i]);
    const double n = std::tanh(s.gi[2 * H + i] + r * s.gh[2 * H + i]);
    h_out[i] = (1.0 - z) * n + z * h[i];
  }
}

void GruCell::forward_values_reference(std::span<const double> h,
                                       std::span<const double> x,
                                       std::span<double> h_out,
                                       Scratch& s) const {
  if (h.size() != hidden_ || x.size() != input_ || h_out.size() != hidden_) {
    throw std::invalid_argument("GruCell::forward_values: size mismatch");
  }
  s.r.resize(hidden_);
  s.z.resize(hidden_);
  s.ni.resize(hidden_);
  s.nh.resize(hidden_);
  s.tmp.resize(hidden_);
  raw_affine_naive(w_ir_.value(), b_ir_.value(), x, s.r, hidden_, input_);
  raw_affine_naive(w_iz_.value(), b_iz_.value(), x, s.z, hidden_, input_);
  raw_affine_naive(w_in_.value(), b_in_.value(), x, s.ni, hidden_, input_);
  raw_affine_naive(w_hr_.value(), b_hr_.value(), h, s.tmp, hidden_, hidden_);
  for (std::size_t i = 0; i < hidden_; ++i) {
    s.r[i] = sigmoid_value(s.r[i] + s.tmp[i]);
  }
  raw_affine_naive(w_hz_.value(), b_hz_.value(), h, s.tmp, hidden_, hidden_);
  for (std::size_t i = 0; i < hidden_; ++i) {
    s.z[i] = sigmoid_value(s.z[i] + s.tmp[i]);
  }
  raw_affine_naive(w_hn_.value(), b_hn_.value(), h, s.nh, hidden_, hidden_);
  for (std::size_t i = 0; i < hidden_; ++i) {
    const double n = std::tanh(s.ni[i] + s.r[i] * s.nh[i]);
    h_out[i] = (1.0 - s.z[i]) * n + s.z[i] * h[i];
  }
}

void GruCell::forward_values_batch(const double* h, const double* x,
                                   double* h_out, std::size_t n,
                                   Scratch& s) const {
  ensure_packed();
  const std::size_t H = hidden_;
  s.gi.resize(3 * H * n);
  s.gh.resize(3 * H * n);
  kernels::gemm(wi_pack_.data(), bi_pack_.data(), x, s.gi.data(), 3 * H,
                input_, n);
  kernels::gemm(wh_pack_.data(), bh_pack_.data(), h, s.gh.data(), 3 * H,
                hidden_, n);
  for (std::size_t i = 0; i < H; ++i) {
    const double* gir = s.gi.data() + i * n;
    const double* giz = s.gi.data() + (H + i) * n;
    const double* gin = s.gi.data() + (2 * H + i) * n;
    const double* ghr = s.gh.data() + i * n;
    const double* ghz = s.gh.data() + (H + i) * n;
    const double* ghn = s.gh.data() + (2 * H + i) * n;
    const double* hrow = h + i * n;
    double* out = h_out + i * n;
    for (std::size_t j = 0; j < n; ++j) {
      const double r = sigmoid_value(gir[j] + ghr[j]);
      const double z = sigmoid_value(giz[j] + ghz[j]);
      const double nn = std::tanh(gin[j] + r * ghn[j]);
      out[j] = (1.0 - z) * nn + z * hrow[j];
    }
  }
}

void GruCell::forward_values(std::span<const float> h,
                             std::span<const float> x,
                             std::span<float> h_out, Scratch& s,
                             DType storage) const {
  if (h.size() != hidden_ || x.size() != input_ || h_out.size() != hidden_) {
    throw std::invalid_argument("GruCell::forward_values: size mismatch");
  }
  ensure_packed_f32(storage);
  const std::size_t H = hidden_;
  s.gi_f.resize(3 * H);
  s.gh_f.resize(3 * H);
  kernels::gemv(wi_pack_f32_.data(), bi_pack_f32_.data(), x.data(),
                s.gi_f.data(), 3 * H, input_);
  kernels::gemv(wh_pack_f32_.data(), bh_pack_f32_.data(), h.data(),
                s.gh_f.data(), 3 * H, hidden_);
  for (std::size_t i = 0; i < H; ++i) {
    const float r = sigmoid_value(s.gi_f[i] + s.gh_f[i]);
    const float z = sigmoid_value(s.gi_f[H + i] + s.gh_f[H + i]);
    const float n = std::tanh(s.gi_f[2 * H + i] + r * s.gh_f[2 * H + i]);
    h_out[i] = (1.0f - z) * n + z * h[i];
  }
}

void GruCell::forward_values_batch(const float* h, const float* x,
                                   float* h_out, std::size_t n, Scratch& s,
                                   DType storage) const {
  ensure_packed_f32(storage);
  const std::size_t H = hidden_;
  s.gi_f.resize(3 * H * n);
  s.gh_f.resize(3 * H * n);
  kernels::gemm(wi_pack_f32_.data(), bi_pack_f32_.data(), x, s.gi_f.data(),
                3 * H, input_, n);
  kernels::gemm(wh_pack_f32_.data(), bh_pack_f32_.data(), h, s.gh_f.data(),
                3 * H, hidden_, n);
  for (std::size_t i = 0; i < H; ++i) {
    const float* gir = s.gi_f.data() + i * n;
    const float* giz = s.gi_f.data() + (H + i) * n;
    const float* gin = s.gi_f.data() + (2 * H + i) * n;
    const float* ghr = s.gh_f.data() + i * n;
    const float* ghz = s.gh_f.data() + (H + i) * n;
    const float* ghn = s.gh_f.data() + (2 * H + i) * n;
    const float* hrow = h + i * n;
    float* out = h_out + i * n;
    for (std::size_t j = 0; j < n; ++j) {
      const float r = sigmoid_value(gir[j] + ghr[j]);
      const float z = sigmoid_value(giz[j] + ghz[j]);
      const float nn = std::tanh(gin[j] + r * ghn[j]);
      out[j] = (1.0f - z) * nn + z * hrow[j];
    }
  }
}

}  // namespace chainnet::tensor
