#include "tensor/dtype.h"

#include <cstdlib>

namespace chainnet::tensor {

DType dtype_from_env(DType fallback) {
  const char* env = std::getenv("CHAINNET_DTYPE");
  if (!env || *env == '\0') return fallback;
  DType d;
  if (!parse_dtype(env, d)) {
    throw std::invalid_argument("CHAINNET_DTYPE=\"" + std::string(env) +
                                "\" is not a known dtype (accepted: f64, "
                                "f32, bf16)");
  }
  return d;
}

}  // namespace chainnet::tensor
