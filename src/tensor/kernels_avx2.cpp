// AVX2+FMA kernel variants. This TU is compiled with -mavx2 -mfma; it is
// only ever *called* after the dispatcher confirms host support.
#include <cmath>
#include <immintrin.h>

#include "tensor/kernels_dispatch.h"

#if defined(__x86_64__) || defined(_M_X64)

namespace chainnet::tensor::kernels::detail::avx2 {

#include "tensor/kernels_simd.inc"
#include "tensor/kernels_simd_f32.inc"

}  // namespace chainnet::tensor::kernels::detail::avx2

#endif
