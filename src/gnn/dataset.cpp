#include "gnn/dataset.h"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "edge/qn_mapping.h"
#include "support/rng.h"

namespace chainnet::gnn {

using edge::EdgeSystem;
using edge::FeatureMode;
using edge::Placement;

void Sample::build_graphs() {
  graph_modified = edge::build_graph(system, placement, FeatureMode::kModified);
  graph_original = edge::build_graph(system, placement, FeatureMode::kOriginal);
}

std::size_t Dataset::total_chains() const {
  std::size_t total = 0;
  for (const auto& s : samples) total += s.system.chains.size();
  return total;
}

Sample label_sample(EdgeSystem system, Placement placement,
                    const LabelingConfig& config) {
  Sample sample;
  sample.system = std::move(system);
  sample.placement = std::move(placement);

  double max_interarrival = 0.0;
  for (const auto& chain : sample.system.chains) {
    max_interarrival = std::max(max_interarrival, 1.0 / chain.arrival_rate);
  }
  queueing::SimConfig sim;
  sim.horizon = config.arrivals_per_chain * max_interarrival /
                (1.0 - config.warmup_fraction);
  sim.warmup_fraction = config.warmup_fraction;
  sim.seed = config.seed;

  const auto qn = edge::build_qn(sample.system, sample.placement);
  const auto result = queueing::simulate(qn, sim);

  const auto num_chains = sample.system.chains.size();
  sample.throughput.resize(num_chains);
  sample.latency.resize(num_chains);
  sample.has_latency.resize(num_chains);
  for (std::size_t i = 0; i < num_chains; ++i) {
    sample.throughput[i] = result.chains[i].throughput;
    sample.latency[i] = result.chains[i].mean_latency;
    sample.has_latency[i] =
        result.chains[i].completions >= config.min_completions_for_latency;
  }
  sample.build_graphs();
  return sample;
}

Dataset generate_dataset(const edge::NetworkGenParams& params, int count,
                         const LabelingConfig& config, std::uint64_t seed) {
  Dataset ds;
  ds.samples.reserve(static_cast<std::size_t>(count));
  support::Rng rng(seed);
  for (int n = 0; n < count; ++n) {
    auto gen = edge::generate_network_sample(params, rng);
    LabelingConfig cfg = config;
    cfg.seed = rng();
    ds.samples.push_back(
        label_sample(std::move(gen.system), std::move(gen.placement), cfg));
  }
  return ds;
}

// ------------------------------------------------------------- binary IO

namespace {

constexpr char kMagic[4] = {'C', 'N', 'D', 'S'};
constexpr std::uint32_t kVersion = 1;

template <typename T>
void put(std::ofstream& out, T v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T get(std::ifstream& in) {
  T v{};
  in.read(reinterpret_cast<char*>(&v), sizeof(T));
  if (!in) throw std::runtime_error("dataset file truncated");
  return v;
}

void put_string(std::ofstream& out, const std::string& s) {
  put(out, static_cast<std::uint64_t>(s.size()));
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string get_string(std::ifstream& in) {
  const auto len = get<std::uint64_t>(in);
  std::string s(len, '\0');
  in.read(s.data(), static_cast<std::streamsize>(len));
  if (!in) throw std::runtime_error("dataset file truncated");
  return s;
}

}  // namespace

void save_dataset(const Dataset& dataset, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("save_dataset: cannot open " + path);
  out.write(kMagic, sizeof(kMagic));
  put(out, kVersion);
  put(out, static_cast<std::uint64_t>(dataset.samples.size()));
  for (const auto& s : dataset.samples) {
    put(out, static_cast<std::uint64_t>(s.system.devices.size()));
    for (const auto& d : s.system.devices) {
      put_string(out, d.name);
      put(out, d.memory_capacity);
      put(out, d.service_rate);
    }
    put(out, static_cast<std::uint64_t>(s.system.chains.size()));
    for (const auto& c : s.system.chains) {
      put_string(out, c.name);
      put(out, c.arrival_rate);
      put(out, static_cast<std::uint64_t>(c.fragments.size()));
      for (const auto& f : c.fragments) {
        put(out, f.memory_demand);
        put(out, f.compute_demand);
      }
    }
    for (std::size_t i = 0; i < s.system.chains.size(); ++i) {
      for (int j = 0; j < s.system.chains[i].length(); ++j) {
        put(out, static_cast<std::int32_t>(
                     s.placement.device_of(static_cast<int>(i), j)));
      }
    }
    for (std::size_t i = 0; i < s.system.chains.size(); ++i) {
      put(out, s.throughput[i]);
      put(out, s.latency[i]);
      put(out, s.has_latency[i]);
    }
  }
  if (!out) throw std::runtime_error("save_dataset: write failed " + path);
}

Dataset load_dataset(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("load_dataset: cannot open " + path);
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("load_dataset: bad magic in " + path);
  }
  if (get<std::uint32_t>(in) != kVersion) {
    throw std::runtime_error("load_dataset: unsupported version");
  }
  Dataset ds;
  const auto count = get<std::uint64_t>(in);
  ds.samples.resize(count);
  for (auto& s : ds.samples) {
    const auto num_devices = get<std::uint64_t>(in);
    s.system.devices.resize(num_devices);
    for (auto& d : s.system.devices) {
      d.name = get_string(in);
      d.memory_capacity = get<double>(in);
      d.service_rate = get<double>(in);
    }
    const auto num_chains = get<std::uint64_t>(in);
    s.system.chains.resize(num_chains);
    for (auto& c : s.system.chains) {
      c.name = get_string(in);
      c.arrival_rate = get<double>(in);
      c.fragments.resize(get<std::uint64_t>(in));
      for (auto& f : c.fragments) {
        f.memory_demand = get<double>(in);
        f.compute_demand = get<double>(in);
      }
    }
    s.placement = Placement(s.system);
    for (std::size_t i = 0; i < num_chains; ++i) {
      for (int j = 0; j < s.system.chains[i].length(); ++j) {
        s.placement.assign(static_cast<int>(i), j, get<std::int32_t>(in));
      }
    }
    s.throughput.resize(num_chains);
    s.latency.resize(num_chains);
    s.has_latency.resize(num_chains);
    for (std::size_t i = 0; i < num_chains; ++i) {
      s.throughput[i] = get<double>(in);
      s.latency[i] = get<double>(in);
      s.has_latency[i] = get<std::uint8_t>(in);
    }
    s.build_graphs();
  }
  return ds;
}

bool dataset_file_exists(const std::string& path) {
  return std::filesystem::exists(path);
}

}  // namespace chainnet::gnn
