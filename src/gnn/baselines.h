// Baseline GNN surrogates of §VIII-B2: graph attention networks (GAT,
// Velickovic et al.) and graph isomorphism networks (GIN, Xu et al.).
//
// Both operate on the homogeneous view of the placement graph: nodes are
// [services | fragments | devices] with type-one-hot + padded features, and
// messages flow along the Algorithm-1 edges in both directions (standard
// practice for directed inputs to neighborhood-aggregation GNNs). Per-chain
// readout concatenates the chain's service-node embedding with the mean of
// its fragment-node embeddings and feeds an MLP head.
//
// Matching the paper, a baseline instance predicts a single quantity
// (PredictionHead::kThroughput or kLatency); "starred" variants (GAT*/GIN*
// in Table V) are obtained by constructing with FeatureMode::kOriginal,
// which also switches the targets back to raw X_i / L_i.
#pragma once

#include <memory>

#include "gnn/model.h"
#include "support/rng.h"

namespace chainnet::gnn {

struct BaselineConfig {
  int hidden = 32;  ///< paper: 64
  int layers = 4;   ///< paper: 8 (GAT) / 12 (GIN)
  int heads = 2;    ///< attention heads (GAT, Table IV)
  edge::FeatureMode mode = edge::FeatureMode::kModified;
  PredictionHead head = PredictionHead::kThroughput;
};

/// Homogeneous input feature width: 3 type bits + 3 padded feature slots.
inline constexpr int kHomoFeatureDim = 6;

class Gat final : public GraphModel {
 public:
  Gat(const BaselineConfig& config, support::Rng& rng);
  ~Gat() override;

  std::vector<ChainOutput> forward(const edge::PlacementGraph& g) override;
  edge::FeatureMode feature_mode() const override;
  bool ratio_outputs() const override;
  std::string name() const override;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

class Gin final : public GraphModel {
 public:
  Gin(const BaselineConfig& config, support::Rng& rng);
  ~Gin() override;

  std::vector<ChainOutput> forward(const edge::PlacementGraph& g) override;
  edge::FeatureMode feature_mode() const override;
  bool ratio_outputs() const override;
  std::string name() const override;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Graph convolutional network (Kipf & Welling style mean aggregation) —
/// an extra baseline beyond the paper's two, useful as a sanity floor:
/// h'_v = act(W * mean(h_u : u in N(v) + self)).
class Gcn final : public GraphModel {
 public:
  Gcn(const BaselineConfig& config, support::Rng& rng);
  ~Gcn() override;

  std::vector<ChainOutput> forward(const edge::PlacementGraph& g) override;
  edge::FeatureMode feature_mode() const override;
  bool ratio_outputs() const override;
  std::string name() const override;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Assembles the homogeneous per-node input features for a graph under the
/// given mode (exposed for tests).
std::vector<std::vector<double>> homogeneous_features(
    const edge::PlacementGraph& g);

/// Bidirectional adjacency lists over homogeneous node ids (exposed for
/// tests): adj[v] lists every u with an edge u->v or v->u in Algorithm 1.
std::vector<std::vector<int>> bidirectional_adjacency(
    const edge::PlacementGraph& g);

}  // namespace chainnet::gnn
