// Common interface for all graph surrogate models (ChainNet and the GIN/GAT
// baselines), plus the target-space transforms of Table II.
//
// Models predict in *target space*: when ratio_outputs() is true the two
// outputs are X_i / lambda_i and (sum_j t_p_ij) / L_i — both in (0, 1) —
// otherwise raw X_i and L_i. The helpers below convert between target space
// and physical space so training and evaluation share one code path.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "edge/graph.h"
#include "tensor/nn.h"

namespace chainnet::gnn {

/// Which quantities a model predicts. ChainNet predicts both concurrently
/// (its headline design point); the paper's baselines are trained per
/// quantity ("the other models require separate training phases").
enum class PredictionHead { kThroughput, kLatency, kBoth };

/// Per-chain model output in target space. Undefined Vars mean the model
/// does not predict that quantity (see PredictionHead).
struct ChainOutput {
  tensor::Var throughput;
  tensor::Var latency;
};

/// Per-chain target-space values from an inference-only pass.
struct ChainValues {
  double throughput = 0.0;
  double latency = 0.0;
  bool has_throughput = false;
  bool has_latency = false;
};

/// Thrown when a batched forward receives placement graphs that do not
/// belong to the same system (different chain counts or execution
/// sequences): those cannot be lock-stepped through Algorithm 2.
class MixedBatchError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

class PlanCache;

class GraphModel : public tensor::Module {
 public:
  /// Runs the model on one placement graph; returns one output per chain.
  virtual std::vector<ChainOutput> forward(const edge::PlacementGraph& g) = 0;

  /// Inference-only pass returning target-space values without building an
  /// autodiff graph. The default adapter calls forward(); models on the
  /// optimizer's hot path (ChainNet) override it with an allocation-free
  /// implementation that must match forward() bit-for-bit in tests.
  virtual std::vector<ChainValues> forward_values(
      const edge::PlacementGraph& g);

  /// Batched inference over B placements of the *same* system (equal chain
  /// counts and execution sequences; throws MixedBatchError otherwise, or
  /// std::invalid_argument on a null graph). Returns one ChainValues
  /// vector per input graph, each bit-identical to forward_values on that
  /// graph alone. The default loops forward_values; ChainNet overrides
  /// with a lock-stepped batch-major engine whose per-step GRU updates are
  /// single GEMMs with B columns.
  virtual std::vector<std::vector<ChainValues>> forward_values_batch(
      std::span<const edge::PlacementGraph* const> graphs);

  /// Installs a shared compiled-plan cache (plan.h) so every model behind
  /// one evaluator fleet resolves execution plans through the same store.
  /// Plans are weight-independent, so sharing is safe across model
  /// instances and weight versions. Default: no-op — models without a
  /// compiled executor (the GIN/GAT baselines) ignore it.
  virtual void set_plan_cache(std::shared_ptr<PlanCache> cache) {
    (void)cache;
  }
  /// The cache this model resolves plans through; nullptr for models
  /// without a compiled executor.
  virtual std::shared_ptr<PlanCache> plan_cache() const { return nullptr; }

  /// Numeric tier the inference-only paths run on (tensor/dtype.h).
  /// Default kF64; ChainNet reports its configured tier so surrogates,
  /// EvalService owners, and the serve stats can expose it.
  virtual tensor::DType dtype() const { return tensor::DType::kF64; }

  /// Feature variant this model consumes (Table II "md" vs "ori").
  virtual edge::FeatureMode feature_mode() const = 0;
  /// Whether outputs are the (0,1) ratios of Table II.
  virtual bool ratio_outputs() const = 0;
  virtual std::string name() const = 0;
};

/// Physical ground truth / prediction for one chain. The has_* flags mirror
/// which heads the producing model defines (see PredictionHead).
struct ChainPerf {
  double throughput = 0.0;
  double latency = 0.0;
  bool has_throughput = false;
  bool has_latency = false;
};

/// Target-space encoding of a physical value for chain `i` of graph `g`.
/// Ratios are clamped into [0, 1] to absorb simulation noise.
double encode_throughput(const edge::PlacementGraph& g, int chain, double x,
                         bool ratio);
double encode_latency(const edge::PlacementGraph& g, int chain, double l,
                      bool ratio);

/// Inverse transforms (target space -> physical). Ratio predictions are
/// clamped to a small positive floor before inversion.
double decode_throughput(const edge::PlacementGraph& g, int chain, double t,
                         bool ratio);
double decode_latency(const edge::PlacementGraph& g, int chain, double t,
                      bool ratio);

/// Convenience: full physical prediction for every chain of a graph (runs
/// forward, detaches, decodes).
std::vector<ChainPerf> predict_physical(GraphModel& model,
                                        const edge::PlacementGraph& g);

/// Batched predict_physical over same-system placements (see
/// GraphModel::forward_values_batch for the batching contract).
std::vector<std::vector<ChainPerf>> predict_physical_batch(
    GraphModel& model, std::span<const edge::PlacementGraph* const> graphs);

/// Validates a batch for lock-stepped evaluation: non-empty, no null
/// graphs, and every graph shares graphs[0]'s chain count and execution
/// sequences. Throws MixedBatchError / std::invalid_argument.
void validate_same_system_batch(
    std::span<const edge::PlacementGraph* const> graphs);

}  // namespace chainnet::gnn
