#include "gnn/metrics.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace chainnet::gnn {

double ape(double predicted, double ground_truth, double eps) {
  return std::abs(predicted - ground_truth) /
         std::max(std::abs(ground_truth), eps);
}

std::vector<ChainError> evaluate(GraphModel& model, const Dataset& dataset) {
  std::vector<ChainError> errors;
  errors.reserve(dataset.total_chains());
  for (const auto& sample : dataset.samples) {
    const auto& g = sample.graph(model.feature_mode());
    const auto preds = predict_physical(model, g);
    for (std::size_t i = 0; i < preds.size(); ++i) {
      ChainError e;
      e.num_nodes = g.num_nodes();
      e.num_chains = g.num_chains;
      if (preds[i].has_throughput) {
        e.has_throughput = true;
        e.ape_throughput = ape(preds[i].throughput, sample.throughput[i]);
      }
      if (preds[i].has_latency && sample.has_latency[i]) {
        e.has_latency = true;
        e.ape_latency = ape(preds[i].latency, sample.latency[i]);
      }
      errors.push_back(e);
    }
  }
  return errors;
}

ApeSummary summarize(const std::vector<double>& apes) {
  ApeSummary s;
  s.count = apes.size();
  if (apes.empty()) return s;
  std::vector<double> sorted = apes;
  std::sort(sorted.begin(), sorted.end());
  s.mape = support::mean_of(sorted);
  s.p50 = support::percentile_sorted(sorted, 0.5);
  s.p75 = support::percentile_sorted(sorted, 0.75);
  s.p95 = support::percentile_sorted(sorted, 0.95);
  s.p99 = support::percentile_sorted(sorted, 0.99);
  return s;
}

std::vector<double> throughput_apes(const std::vector<ChainError>& errors) {
  std::vector<double> out;
  out.reserve(errors.size());
  for (const auto& e : errors) {
    if (e.has_throughput) out.push_back(e.ape_throughput);
  }
  return out;
}

std::vector<double> latency_apes(const std::vector<ChainError>& errors) {
  std::vector<double> out;
  out.reserve(errors.size());
  for (const auto& e : errors) {
    if (e.has_latency) out.push_back(e.ape_latency);
  }
  return out;
}

std::vector<GroupedBox> group_by(const std::vector<ChainError>& errors,
                                 GroupKey key, int buckets) {
  std::vector<GroupedBox> result;
  if (errors.empty() || buckets <= 0) return result;
  const auto key_of = [key](const ChainError& e) {
    return key == GroupKey::kNumNodes ? static_cast<double>(e.num_nodes)
                                      : static_cast<double>(e.num_chains);
  };
  double lo = key_of(errors.front()), hi = lo;
  for (const auto& e : errors) {
    lo = std::min(lo, key_of(e));
    hi = std::max(hi, key_of(e));
  }
  const double width = (hi - lo) / buckets;
  for (int b = 0; b < buckets; ++b) {
    const double blo = lo + b * width;
    const double bhi = b + 1 == buckets ? hi : lo + (b + 1) * width;
    std::vector<double> tput, lat;
    for (const auto& e : errors) {
      const double k = key_of(e);
      const bool in_bucket =
          (k >= blo && k < bhi) || (b + 1 == buckets && k == hi);
      if (!in_bucket) continue;
      if (e.has_throughput) tput.push_back(e.ape_throughput);
      if (e.has_latency) lat.push_back(e.ape_latency);
    }
    if (tput.empty() && lat.empty()) continue;
    GroupedBox box;
    box.key_lo = blo;
    box.key_hi = bhi;
    box.throughput = support::box_summary(tput);
    box.latency = support::box_summary(lat);
    result.push_back(box);
  }
  return result;
}

RankAgreement pairwise_rank_agreement(std::span<const double> reference,
                                      std::span<const double> candidate,
                                      double tie_eps) {
  if (reference.size() != candidate.size()) {
    throw std::invalid_argument(
        "pairwise_rank_agreement: reference has " +
        std::to_string(reference.size()) + " scores but candidate has " +
        std::to_string(candidate.size()));
  }
  RankAgreement out;
  for (std::size_t i = 0; i + 1 < reference.size(); ++i) {
    for (std::size_t j = i + 1; j < reference.size(); ++j) {
      const double rd = reference[i] - reference[j];
      const double scale =
          std::max(std::abs(reference[i]), std::abs(reference[j]));
      if (std::abs(rd) <= tie_eps * scale) {
        ++out.reference_ties;
        continue;
      }
      // Comparable: the reference strictly prefers one side. A candidate
      // tie counts as discordant — the tier collapsed a real distinction,
      // which is exactly the failure the search loops care about.
      const double cd = candidate[i] - candidate[j];
      if ((rd > 0.0 && cd > 0.0) || (rd < 0.0 && cd < 0.0)) {
        ++out.concordant;
      } else {
        ++out.discordant;
      }
    }
  }
  return out;
}

}  // namespace chainnet::gnn
