// Dataset machinery for surrogate training: a sample couples a generated
// (system, placement) pair with the simulator's ground-truth per-chain
// throughput and latency (paper §VIII-A1). Samples cache both feature
// variants of their graph so every model (modified vs original features)
// trains from the same underlying data, as in Table V.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "edge/graph.h"
#include "edge/problem.h"
#include "queueing/simulator.h"

namespace chainnet::gnn {

struct Sample {
  edge::EdgeSystem system;
  edge::Placement placement;
  /// Ground truth per chain (X_i^gt, L_i^gt).
  std::vector<double> throughput;
  std::vector<double> latency;
  /// False when the chain had too few completions for a latency estimate;
  /// such chains contribute no latency loss/metric.
  std::vector<std::uint8_t> has_latency;

  /// Feature graphs, built once (derived, not serialized).
  edge::PlacementGraph graph_modified;
  edge::PlacementGraph graph_original;

  const edge::PlacementGraph& graph(edge::FeatureMode mode) const {
    return mode == edge::FeatureMode::kModified ? graph_modified
                                                : graph_original;
  }
  void build_graphs();
};

struct Dataset {
  std::vector<Sample> samples;

  std::size_t size() const { return samples.size(); }
  /// Total number of service chains (the Q of eq. 13 across the set).
  std::size_t total_chains() const;
};

/// Controls ground-truth simulation effort. The horizon is chosen per
/// sample so the slowest chain receives at least `arrivals_per_chain`
/// arrivals; `min_completions_for_latency` gates has_latency.
struct LabelingConfig {
  double arrivals_per_chain = 1000.0;
  double warmup_fraction = 0.1;
  std::uint64_t min_completions_for_latency = 20;
  std::uint64_t seed = 7;
};

/// Simulates one (system, placement) pair and returns the labeled sample
/// (graphs built).
Sample label_sample(edge::EdgeSystem system, edge::Placement placement,
                    const LabelingConfig& config);

/// Generates `count` Table-III samples and labels each by simulation.
Dataset generate_dataset(const edge::NetworkGenParams& params, int count,
                         const LabelingConfig& config, std::uint64_t seed);

/// Binary cache (systems, placements, labels; graphs rebuilt on load).
void save_dataset(const Dataset& dataset, const std::string& path);
Dataset load_dataset(const std::string& path);
bool dataset_file_exists(const std::string& path);

}  // namespace chainnet::gnn
