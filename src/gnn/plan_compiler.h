// Topology-time compiler from a placement graph's system topology to a
// flat Plan op list with arena-planned scratch offsets (see plan.h). This
// file and the reference executor are the only places allowed to walk the
// graph structure interpretively (lint rule R7-plan-discipline).
#pragma once

#include <memory>

#include "edge/graph.h"
#include "gnn/plan.h"

namespace chainnet::gnn {

/// Materializes the cache key for (g's topology, shape, width).
PlanKey make_plan_key(const edge::PlacementGraph& g, const PlanShape& shape,
                      int width);

/// Compiles the full op list and arena layout for a key. width == 1 emits
/// the scalar flavor; width >= 2 the batched flavor.
std::shared_ptr<const Plan> compile_plan(const PlanKey& key);

/// Convenience: key + compile in one call.
std::shared_ptr<const Plan> compile_plan(const edge::PlacementGraph& g,
                                         const PlanShape& shape, int width);

}  // namespace chainnet::gnn
