#include "gnn/trainer.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <numeric>

#include "support/rng.h"
#include "tensor/optimizer.h"
#include "tensor/tape.h"

namespace chainnet::gnn {

using namespace chainnet::tensor;

namespace {

/// Squared-error terms of eq. (13) for one sample, in target space.
/// Returns the per-chain sum (X term + L term) and the number of chains
/// contributing (Q increment).
struct SampleLoss {
  Var loss;          ///< undefined if nothing contributed
  std::size_t count = 0;
};

SampleLoss sample_loss(GraphModel& model, const Sample& sample) {
  const auto& g = sample.graph(model.feature_mode());
  const bool ratio = model.ratio_outputs();
  const auto outputs = model.forward(g);
  std::vector<Var> terms;
  SampleLoss result;
  for (std::size_t i = 0; i < outputs.size(); ++i) {
    const int chain = static_cast<int>(i);
    bool contributed = false;
    if (outputs[i].throughput.defined()) {
      const double target =
          encode_throughput(g, chain, sample.throughput[i], ratio);
      Var d = add_scalar(outputs[i].throughput, -target);
      terms.push_back(mul(d, d));
      contributed = true;
    }
    if (outputs[i].latency.defined() && sample.has_latency[i]) {
      const double target =
          encode_latency(g, chain, sample.latency[i], ratio);
      Var d = add_scalar(outputs[i].latency, -target);
      terms.push_back(mul(d, d));
      contributed = true;
    }
    if (contributed) ++result.count;
  }
  if (!terms.empty()) {
    result.loss = terms.size() == 1 ? terms.front() : sum_of(terms);
  }
  return result;
}

/// Scales all gradients so their global L2 norm is at most `max_norm`.
void clip_gradients(GraphModel& model, double max_norm) {
  double sq = 0.0;
  const auto params = model.parameters();
  for (const auto* p : params) {
    for (double g : p->var.grad()) sq += g * g;
  }
  const double norm = std::sqrt(sq);
  if (norm <= max_norm || norm == 0.0) return;
  const double scale_factor = max_norm / norm;
  for (auto* p : params) {
    for (auto& g : p->var.mutable_grad()) g *= scale_factor;
  }
}

}  // namespace

double evaluate_loss(GraphModel& model, const Dataset& dataset) {
  double total = 0.0;
  std::size_t q = 0;
  for (const auto& sample : dataset.samples) {
    // One tape frame per sample: the loss graph is released as soon as its
    // scalar is read, so evaluation reuses the same arena for every sample.
    const Tape::Frame frame(Tape::current());
    const auto sl = sample_loss(model, sample);
    if (sl.loss.defined()) {
      total += sl.loss.item();
      q += sl.count;
    }
  }
  return q ? total / (2.0 * static_cast<double>(q)) : 0.0;
}

TrainReport train(GraphModel& model, const Dataset& training,
                  const Dataset* validation, const TrainConfig& config) {
  TrainReport report;
  // LINT:nondet(wall clock here only fills report.seconds; no trained
  // parameter or loss depends on it)
  const auto start = std::chrono::steady_clock::now();

  Adam adam(model.parameters(), config.learning_rate);
  LrSchedule schedule(config.learning_rate, config.lr_decay,
                      static_cast<std::size_t>(config.lr_decay_every));
  support::Rng rng(config.seed);

  std::vector<std::size_t> order(training.samples.size());
  std::iota(order.begin(), order.end(), 0);

  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    adam.set_lr(schedule.lr_at(static_cast<std::size_t>(epoch)));
    // Fisher-Yates shuffle with our deterministic RNG.
    for (std::size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[static_cast<std::size_t>(
                                  rng.uniform_int(0, static_cast<std::int64_t>(i) - 1))]);
    }

    double epoch_loss = 0.0;
    std::size_t epoch_q = 0;
    std::size_t pos = 0;
    while (pos < order.size()) {
      const std::size_t batch_end = std::min(
          order.size(), pos + static_cast<std::size_t>(config.batch_size));
      model.zero_grad();
      // One tape frame per batch: forward graphs of all batch samples live
      // until the optimizer step, then the whole region is rewound. After
      // the first batch the epoch loop performs no tape allocations
      // (pinned by tape_test).
      const Tape::Frame frame(Tape::current());
      std::vector<Var> batch_terms;
      std::size_t batch_q = 0;
      for (std::size_t b = pos; b < batch_end; ++b) {
        const auto sl = sample_loss(model, training.samples[order[b]]);
        if (sl.loss.defined()) {
          batch_terms.push_back(sl.loss);
          batch_q += sl.count;
        }
      }
      pos = batch_end;
      if (batch_terms.empty()) continue;
      Var total = batch_terms.size() == 1 ? batch_terms.front()
                                          : sum_of(batch_terms);
      // Eq. (13): L = (1 / 2Q) * sum of squared errors.
      Var loss = scale(total, 1.0 / (2.0 * static_cast<double>(batch_q)));
      loss.backward();
      if (config.clip_grad_norm > 0.0) {
        clip_gradients(model, config.clip_grad_norm);
      }
      adam.step();
      epoch_loss += total.item();
      epoch_q += batch_q;
    }
    const double train_loss =
        epoch_q ? epoch_loss / (2.0 * static_cast<double>(epoch_q)) : 0.0;
    report.train_loss.push_back(train_loss);
    double val_loss = std::numeric_limits<double>::quiet_NaN();
    if (validation != nullptr) {
      val_loss = evaluate_loss(model, *validation);
      report.val_loss.push_back(val_loss);
    }
    if (config.on_epoch) config.on_epoch(epoch, train_loss, val_loss);
  }

  report.seconds =
      // LINT:nondet(wall clock here only fills report.seconds; no trained
      // parameter or loss depends on it)
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return report;
}

}  // namespace chainnet::gnn
