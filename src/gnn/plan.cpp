#include "gnn/plan.h"

#include <utility>

#include "gnn/plan_compiler.h"

namespace chainnet::gnn {

const char* plan_op_name(PlanOpKind kind) {
  switch (kind) {
    case PlanOpKind::kEncodeService: return "EncodeService";
    case PlanOpKind::kEncodeFragment: return "EncodeFragment";
    case PlanOpKind::kEncodeDevices: return "EncodeDevices";
    case PlanOpKind::kGruChainStep: return "GruChainStep";
    case PlanOpKind::kDevicePass: return "DevicePass";
    case PlanOpKind::kReadout: return "Readout";
    case PlanOpKind::kBatchEncodeService: return "BatchEncodeService";
    case PlanOpKind::kBatchEncodeFragment: return "BatchEncodeFragment";
    case PlanOpKind::kBatchEncodeDevices: return "BatchEncodeDevices";
    case PlanOpKind::kBatchGruChainStep: return "BatchGruChainStep";
    case PlanOpKind::kBatchGatherMessages: return "BatchGatherMessages";
    case PlanOpKind::kBatchAggregateInit: return "BatchAggregateInit";
    case PlanOpKind::kBatchAttentionJoints: return "BatchAttentionJoints";
    case PlanOpKind::kBatchAttentionHead: return "BatchAttentionHead";
    case PlanOpKind::kBatchGruDevice: return "BatchGruDevice";
    case PlanOpKind::kBatchReadout: return "BatchReadout";
  }
  return "?";
}

std::string Plan::dump() const {
  std::string out;
  out += "plan width=" + std::to_string(meta.width);
  out += " chains=" + std::to_string(meta.chains);
  out += " steps=" + std::to_string(meta.steps);
  out += " hidden=" + std::to_string(meta.hidden);
  out += " iterations=" + std::to_string(meta.iterations);
  out += " heads=" + std::to_string(key.shape.attention_heads);
  out += key.shape.attention_aggregation ? " attention=on" : " attention=off";
  out += " dtype=";
  out += tensor::dtype_name(key.shape.dtype);
  out += "\nscratch: " + std::to_string(meta.scratch_elems) + " elems (" +
         std::to_string(meta.scratch_elems *
                        static_cast<std::int64_t>(
                            tensor::dtype_element_bytes(key.shape.dtype))) +
         " bytes), dev_cap=" + std::to_string(meta.dev_cap) +
         ", ops=" + std::to_string(ops.size());
  out += "\nfingerprint: " + std::to_string(fingerprint) + "\n";
  const auto field = [](const char* name, std::int32_t v) {
    return v < 0 ? std::string()
                 : (" " + std::string(name) + "=" + std::to_string(v));
  };
  for (std::size_t i = 0; i < ops.size(); ++i) {
    const PlanOp& op = ops[i];
    out += "[" + std::to_string(i) + "] " + plan_op_name(op.kind);
    out += field("a", op.a);
    out += field("in0", op.in0);
    out += field("in1", op.in1);
    out += field("out", op.out);
    out += field("aux", op.aux);
    out += "\n";
  }
  return out;
}

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

inline void fnv_mix(std::uint64_t& fp, std::uint64_t v) {
  // Byte-at-a-time FNV-1a over the 8 bytes of v.
  for (int i = 0; i < 8; ++i) {
    fp ^= (v >> (8 * i)) & 0xffULL;
    fp *= kFnvPrime;
  }
}

std::uint64_t fingerprint_of(int num_chains,
                             const std::vector<std::vector<int>>& sequences,
                             const PlanShape& shape, int width) {
  std::uint64_t fp = kFnvOffset;
  fnv_mix(fp, static_cast<std::uint64_t>(width));
  fnv_mix(fp, static_cast<std::uint64_t>(shape.hidden));
  fnv_mix(fp, static_cast<std::uint64_t>(shape.iterations));
  fnv_mix(fp, static_cast<std::uint64_t>(shape.attention_heads));
  fnv_mix(fp, (shape.modified_outputs ? 2ULL : 0ULL) |
                  (shape.attention_aggregation ? 1ULL : 0ULL) |
                  (static_cast<std::uint64_t>(shape.dtype) << 2));
  fnv_mix(fp, static_cast<std::uint64_t>(num_chains));
  for (const auto& seq : sequences) {
    fnv_mix(fp, static_cast<std::uint64_t>(seq.size()));
    for (int s : seq) fnv_mix(fp, static_cast<std::uint64_t>(s));
  }
  return fp;
}

}  // namespace

std::uint64_t plan_fingerprint(const edge::PlacementGraph& g,
                               const PlanShape& shape, int width) {
  return fingerprint_of(g.num_chains, g.sequences, shape, width);
}

std::uint64_t plan_fingerprint(const PlanKey& key) {
  return fingerprint_of(key.topology.num_chains, key.topology.sequences,
                        key.shape, key.width);
}

bool plan_key_matches(const PlanKey& key, const edge::PlacementGraph& g,
                      const PlanShape& shape, int width) {
  return key.width == width && key.shape == shape &&
         key.topology.num_chains == g.num_chains &&
         key.topology.sequences == g.sequences;
}

PlanCache::PlanCache(std::size_t max_entries_per_shard)
    : max_entries_per_shard_(max_entries_per_shard == 0
                                 ? 1
                                 : max_entries_per_shard) {}

std::shared_ptr<const Plan> PlanCache::lookup_or_compile(
    const edge::PlacementGraph& g, const PlanShape& shape, int width) {
  const std::uint64_t fp = plan_fingerprint(g, shape, width);
  Shard& shard = shards_[fp % kShards];
  std::lock_guard<std::mutex> lock(shard.mutex);
  for (const Entry& entry : shard.entries) {
    if (entry.fingerprint == fp &&
        plan_key_matches(entry.plan->key, g, shape, width)) {
      ++shard.hits;
      return entry.plan;
    }
  }
  // Compile under the shard lock: concurrent first lookups of one key must
  // produce exactly one compile (plan_test pins concurrent == serial).
  auto plan = compile_plan(g, shape, width);
  ++shard.compiles;
  if (shard.entries.size() >= max_entries_per_shard_) {
    shard.entries.erase(shard.entries.begin());
    ++shard.evictions;
  }
  shard.entries.push_back(Entry{fp, plan});
  return plan;
}

PlanCache::Stats PlanCache::stats() const {
  Stats stats;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    stats.hits += shard.hits;
    stats.compiles += shard.compiles;
    stats.evictions += shard.evictions;
    stats.entries += shard.entries.size();
  }
  return stats;
}

}  // namespace chainnet::gnn
