// Compiled execution plans for ChainNet inference.
//
// Algorithm 2's op order — which GRU fires on which buffer at which step —
// depends only on the *system* topology (chain count and execution
// sequences), never on the placement or the weights. A Plan captures that
// order once as a flat array of typed ops with pre-resolved offsets into a
// single arena-planned scratch buffer; `ChainNet::forward_values[_batch]`
// then replays the op list over the fused kernels instead of re-walking the
// heterogeneous graph per call. Placement-dependent geometry (which device
// column each step reads, the per-device message groups) is bound per
// replay from the graph — the same tables the interpreted batch path
// already rebuilt every call — so a plan is reusable across every
// placement, every weight version, and every model instance that shares
// its (topology, shape, width) key.
//
// Plans are weight-independent: a serving hot-swap that replaces model
// weights never invalidates a plan; only a topology change compiles a new
// one. The interpreted walk survives behind CHAINNET_INTERPRET=1 as the
// reference executor, and replay must match it bit for bit (plan_test,
// bench_infer parity gate).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "edge/graph.h"
#include "tensor/dtype.h"

namespace chainnet::gnn {

/// One executable op of a compiled plan. Offsets index the plan's arena
/// (in elements of the plan's dtype); -1 marks an unused field. Field
/// roles per kind are documented at the emission site in plan_compiler.cpp.
enum class PlanOpKind : std::uint8_t {
  // Scalar (width-1) executor.
  kEncodeService,    ///< a=chain, out=service row
  kEncodeFragment,   ///< a=step, out=fragment row
  kEncodeDevices,    ///< out=device panel base (runtime device count)
  kGruChainStep,     ///< a=step, in0=h_in, in1=frag_prev row, out=frag row,
                     ///< aux=device read-buffer base
  kDevicePass,       ///< in0=frag read base, in1=dev read base, out=dev write
  kReadout,          ///< a=chain, in0=final service row, in1=final frag base
  // Batched executor (width >= 2).
  kBatchEncodeService,   ///< a=chain, out=service panel
  kBatchEncodeFragment,  ///< a=step, out=fragment panel
  kBatchEncodeDevices,   ///< out=device panel base
  kBatchGruChainStep,    ///< a=step, in0=h_in, in1=frag_prev panel,
                         ///< out=frag panel, aux=device read base
  kBatchGatherMessages,  ///< in0=frag read base
  kBatchAggregateInit,   ///< per-group copy / mean / zero into m_d
  kBatchAttentionJoints, ///< in1=dev read base
  kBatchAttentionHead,   ///< a=head index
  kBatchGruDevice,       ///< in0=dev read base, out=dev write base
  kBatchReadout,         ///< in1=final frag base
};

/// Name of an op kind, for Plan::dump() and the CLI plan dumper.
const char* plan_op_name(PlanOpKind kind);

struct PlanOp {
  PlanOpKind kind;
  std::int32_t a = -1;    ///< entity index (chain / step / head)
  std::int32_t in0 = -1;  ///< primary input offset
  std::int32_t in1 = -1;  ///< secondary input offset
  std::int32_t out = -1;  ///< output offset
  std::int32_t aux = -1;  ///< extra offset (device read-buffer base)
};

/// The topology half of a plan key: exactly the fields
/// validate_same_system_batch compares, i.e. what must match for two
/// placements to be lock-stepped through one schedule.
struct PlanTopology {
  int num_chains = 0;
  std::vector<std::vector<int>> sequences;

  bool operator==(const PlanTopology& other) const = default;
};

/// The model-shape half of a plan key: every config field that changes the
/// op list or the arena layout. modified_inputs and fused_kernels are
/// deliberately absent — the former only selects graph features, the
/// latter only which kernel a replayed op dispatches to; neither changes
/// plan structure, so models differing only there share plans. dtype IS
/// part of the key even though the op list is dtype-invariant: the replay
/// executors size and type their arena by it (offsets are element-indexed,
/// elements are 8 or 4 bytes), so an f32 model must never replay through a
/// plan another model compiled as f64 — one compile per dtype, no
/// cross-dtype reuse (pinned by plan_test).
struct PlanShape {
  int hidden = 0;
  int iterations = 0;
  int attention_heads = 0;
  bool modified_outputs = true;
  bool attention_aggregation = true;
  tensor::DType dtype = tensor::DType::kF64;

  bool operator==(const PlanShape& other) const = default;
};

struct PlanKey {
  PlanTopology topology;
  PlanShape shape;
  int width = 1;  ///< batch width class (exact B; 1 = scalar executor)

  bool operator==(const PlanKey& other) const = default;
};

/// Arena region offsets (in doubles). Regions a plan flavor does not use
/// are -1. frag0/frag1 and dev0/dev1 are the double-buffered embedding
/// panels: each iteration's ops read one and write the other, which is
/// what lets the compiler delete the interpreted path's per-iteration
/// snapshot copies.
struct PlanLayout {
  std::int32_t service = -1;
  std::int32_t frag0 = -1, frag1 = -1;
  std::int32_t sas = -1;  ///< service-at-step rows (eq. 8 / eq. 10 inputs)
  std::int32_t dev0 = -1, dev1 = -1;
  std::int32_t hs = -1;      ///< chain-state staging row (phi_c h input)
  std::int32_t m_c = -1;     ///< chain-pass message panel
  std::int32_t m_d = -1;     ///< aggregated device-message panel
  std::int32_t dmsgs = -1;   ///< scalar: per-device message rows
  std::int32_t h_latency = -1, scalar_out = -1;  ///< scalar readout
  std::int32_t messages = -1, joints = -1, att_act = -1, scores = -1,
               transformed = -1;  ///< batch device-pass panels
  std::int32_t readout_in = -1, readout_out = -1;  ///< batch readout panels
  std::int32_t enc_in = -1;  ///< batch encoder input gather panel
};

struct PlanMeta {
  int width = 0;
  int hidden = 0;
  int iterations = 0;
  int chains = 0;
  int steps = 0;
  int dev_cap = 0;      ///< device-column capacity (runtime D <= dev_cap)
  int message_cap = 0;  ///< batch message columns M = steps * width
  /// Arena size in *elements* — doubles on the f64 tier, floats on the
  /// reduced tiers (the executor multiplies by the key's element width).
  std::int64_t scratch_elems = 0;
};

struct Plan {
  PlanKey key;
  std::uint64_t fingerprint = 0;
  PlanMeta meta;
  PlanLayout layout;
  std::vector<PlanOp> ops;
  /// Per-chain offset of the final service embedding (the row the
  /// throughput readout consumes): the chain's last sas row, or its
  /// encoded service row for an empty sequence.
  std::vector<std::int32_t> chain_final;

  /// Human-readable op listing (kind, offsets, scratch accounting) for the
  /// `chainnet plan --dump` subcommand and debugging.
  std::string dump() const;
};

/// FNV-1a fingerprint of (g's topology, shape, width). Allocation-free;
/// collisions are resolved by plan_key_matches.
std::uint64_t plan_fingerprint(const edge::PlacementGraph& g,
                               const PlanShape& shape, int width);
/// Same fingerprint from a materialized key (compiler side); equal to the
/// graph overload whenever plan_key_matches holds.
std::uint64_t plan_fingerprint(const PlanKey& key);

/// Exact key comparison against a graph's topology without materializing a
/// PlanKey (no allocation on the replay hot path).
bool plan_key_matches(const PlanKey& key, const edge::PlacementGraph& g,
                      const PlanShape& shape, int width);

/// Sharded cache of compiled plans, shared read-only across workers: one
/// EvalService (or one serve ModelRegistry) holds a single PlanCache and
/// every evaluator's model resolves plans through it. Lookups take one
/// shard lock; a miss compiles under that lock, so concurrent first
/// lookups of the same key produce exactly one compile and every caller
/// the same immutable Plan.
class PlanCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t compiles = 0;
    std::uint64_t evictions = 0;
    std::uint64_t entries = 0;
  };

  explicit PlanCache(std::size_t max_entries_per_shard = 64);

  /// Returns the cached plan for (g's topology, shape, width), compiling
  /// and inserting it on first use. The returned plan is immutable and
  /// safe to hold across cache evictions (shared ownership).
  std::shared_ptr<const Plan> lookup_or_compile(const edge::PlacementGraph& g,
                                                const PlanShape& shape,
                                                int width);

  Stats stats() const;

 private:
  static constexpr std::size_t kShards = 8;
  struct Entry {
    std::uint64_t fingerprint = 0;
    std::shared_ptr<const Plan> plan;
  };
  struct Shard {
    mutable std::mutex mutex;
    std::vector<Entry> entries;  ///< FIFO order, oldest first
    std::uint64_t hits = 0;
    std::uint64_t compiles = 0;
    std::uint64_t evictions = 0;
  };
  std::size_t max_entries_per_shard_;
  Shard shards_[kShards];
};

}  // namespace chainnet::gnn
