#include "gnn/plan_compiler.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace chainnet::gnn {

namespace {

/// Bump allocator over the plan arena; returns the region's offset in
/// doubles. Zero-sized regions are legal (a system with no steps).
struct ArenaPlanner {
  std::int64_t cursor = 0;
  std::int32_t region(std::int64_t doubles) {
    if (cursor + doubles > std::numeric_limits<std::int32_t>::max()) {
      throw std::invalid_argument("plan arena exceeds 2^31 doubles");
    }
    const auto off = static_cast<std::int32_t>(cursor);
    cursor += doubles;
    return off;
  }
};

int count_steps(const PlanTopology& topology) {
  std::int64_t steps = 0;
  for (const auto& seq : topology.sequences) {
    steps += static_cast<std::int64_t>(seq.size());
  }
  if (steps > std::numeric_limits<int>::max()) {
    throw std::invalid_argument("plan topology has too many steps");
  }
  return static_cast<int>(steps);
}

/// Emits the per-iteration body shared by both flavors: chain-pass GRU
/// steps (scalar and batch differ only in op kind and row stride) followed
/// by the flavor-specific device pass, with the fragment/device panels
/// double-buffered across iterations. `row` is the per-entity row width
/// (h for scalar, h*W for batch).
void emit_iterations(const PlanKey& key, const PlanLayout& layout,
                     std::int64_t row, std::int64_t dev_row, bool batch,
                     std::vector<PlanOp>& ops,
                     std::vector<std::int32_t>& chain_final) {
  const auto C = static_cast<std::size_t>(key.topology.num_chains);
  // The chain state carries ACROSS iterations (the interpreted walk writes
  // hs back into service[i] at the end of each chain pass): iteration 0
  // starts from the encoded service row, every later iteration from the
  // chain's last service-at-step row of the previous one. The executors
  // stage in0 through layout.hs before the GRU, so a single-step chain —
  // whose carried row IS its output row — never aliases h with h_out.
  chain_final.assign(C, -1);
  for (std::size_t i = 0; i < C; ++i) {
    chain_final[i] = layout.service + static_cast<std::int32_t>(i * row);
  }
  for (int n = 0; n < key.shape.iterations; ++n) {
    const bool odd = (n % 2) != 0;
    const std::int32_t fr = odd ? layout.frag1 : layout.frag0;
    const std::int32_t fw = odd ? layout.frag0 : layout.frag1;
    const std::int32_t dr = odd ? layout.dev1 : layout.dev0;
    const std::int32_t dw = odd ? layout.dev0 : layout.dev1;
    for (std::size_t i = 0; i < C; ++i) {
      for (int s : key.topology.sequences[i]) {
        PlanOp op;
        op.kind = batch ? PlanOpKind::kBatchGruChainStep
                        : PlanOpKind::kGruChainStep;
        op.a = s;
        op.in0 = chain_final[i];
        op.in1 = fr + static_cast<std::int32_t>(s * row);
        op.out = fw + static_cast<std::int32_t>(s * row);
        op.aux = dr;
        ops.push_back(op);
        chain_final[i] = layout.sas + static_cast<std::int32_t>(s * row);
      }
    }
    if (batch) {
      ops.push_back(
          PlanOp{PlanOpKind::kBatchGatherMessages, -1, fr, -1, -1, -1});
      ops.push_back(
          PlanOp{PlanOpKind::kBatchAggregateInit, -1, -1, -1, -1, -1});
      if (key.shape.attention_aggregation) {
        ops.push_back(
            PlanOp{PlanOpKind::kBatchAttentionJoints, -1, -1, dr, -1, -1});
        for (int a = 0; a < key.shape.attention_heads; ++a) {
          ops.push_back(
              PlanOp{PlanOpKind::kBatchAttentionHead, a, -1, -1, -1, -1});
        }
      }
      ops.push_back(
          PlanOp{PlanOpKind::kBatchGruDevice, -1, dr, -1, dw, -1});
    } else {
      ops.push_back(PlanOp{PlanOpKind::kDevicePass, -1, fr, dr, dw, -1});
    }
    (void)dev_row;
  }
}

}  // namespace

PlanKey make_plan_key(const edge::PlacementGraph& g, const PlanShape& shape,
                      int width) {
  PlanKey key;
  key.topology.num_chains = g.num_chains;
  key.topology.sequences = g.sequences;
  key.shape = shape;
  key.width = width;
  return key;
}

std::shared_ptr<const Plan> compile_plan(const PlanKey& key) {
  if (key.width < 1 || key.shape.hidden <= 0 || key.shape.iterations <= 0 ||
      key.shape.attention_heads <= 0) {
    throw std::invalid_argument("compile_plan: invalid key");
  }
  const auto h = static_cast<std::int64_t>(key.shape.hidden);
  const auto W = static_cast<std::int64_t>(key.width);
  const auto C = static_cast<std::int64_t>(key.topology.num_chains);
  const auto S = static_cast<std::int64_t>(count_steps(key.topology));
  const bool batch = key.width > 1;
  // Every used device hosts at least one of the S execution steps, so the
  // runtime device-column count D is bounded by S per placement.
  const std::int64_t dev_cap = batch ? S * W : S;
  const std::int64_t M = S * W;

  auto plan = std::make_shared<Plan>();
  plan->key = key;
  plan->meta.width = key.width;
  plan->meta.hidden = key.shape.hidden;
  plan->meta.iterations = key.shape.iterations;
  plan->meta.chains = static_cast<int>(C);
  plan->meta.steps = static_cast<int>(S);
  plan->meta.dev_cap = static_cast<int>(dev_cap);
  plan->meta.message_cap = batch ? static_cast<int>(M) : 0;

  ArenaPlanner arena;
  PlanLayout& L = plan->layout;
  const std::int64_t row = h * W;  // per-entity row width (h when W == 1)
  L.service = arena.region(C * row);
  L.frag0 = arena.region(S * row);
  L.frag1 = arena.region(S * row);
  L.sas = arena.region(S * row);
  L.dev0 = arena.region(h * dev_cap);
  L.dev1 = arena.region(h * dev_cap);
  L.hs = arena.region(row);
  L.m_c = arena.region(2 * row);
  L.m_d = arena.region(batch ? 2 * h * dev_cap : 2 * h);
  if (batch) {
    L.messages = arena.region(2 * h * M);
    if (key.shape.attention_aggregation) {
      L.joints = arena.region(3 * h * M);
      L.att_act = arena.region(h * M);
      L.scores = arena.region(M);
      L.transformed = arena.region(2 * h * M);
    }
    L.readout_in = arena.region(h * C * W);
    L.readout_out = arena.region(C * W);
    L.enc_in = arena.region(
        std::max({static_cast<std::int64_t>(edge::kServiceFeatureDim) * W,
                  static_cast<std::int64_t>(edge::kFragmentFeatureDim) * W,
                  static_cast<std::int64_t>(edge::kDeviceFeatureDim) *
                      dev_cap}));
  } else {
    L.dmsgs = arena.region(2 * h * std::max<std::int64_t>(S, 1));
    L.h_latency = arena.region(h);
    L.scalar_out = arena.region(1);
  }

  std::vector<PlanOp>& ops = plan->ops;
  for (std::int64_t i = 0; i < C; ++i) {
    PlanOp op;
    op.kind = batch ? PlanOpKind::kBatchEncodeService
                    : PlanOpKind::kEncodeService;
    op.a = static_cast<std::int32_t>(i);
    op.out = L.service + static_cast<std::int32_t>(i * row);
    ops.push_back(op);
  }
  for (std::int64_t s = 0; s < S; ++s) {
    PlanOp op;
    op.kind = batch ? PlanOpKind::kBatchEncodeFragment
                    : PlanOpKind::kEncodeFragment;
    op.a = static_cast<std::int32_t>(s);
    op.out = L.frag0 + static_cast<std::int32_t>(s * row);
    ops.push_back(op);
  }
  {
    PlanOp op;
    op.kind = batch ? PlanOpKind::kBatchEncodeDevices
                    : PlanOpKind::kEncodeDevices;
    op.out = L.dev0;
    ops.push_back(op);
  }

  emit_iterations(key, L, row, h, batch, ops, plan->chain_final);

  // After the last iteration the live fragment buffer is frag[N % 2].
  const std::int32_t frag_final =
      (key.shape.iterations % 2) != 0 ? L.frag1 : L.frag0;
  if (batch) {
    ops.push_back(
        PlanOp{PlanOpKind::kBatchReadout, -1, -1, frag_final, -1, -1});
  } else {
    for (std::int64_t i = 0; i < C; ++i) {
      PlanOp op;
      op.kind = PlanOpKind::kReadout;
      op.a = static_cast<std::int32_t>(i);
      op.in0 = plan->chain_final[static_cast<std::size_t>(i)];
      op.in1 = frag_final;
      ops.push_back(op);
    }
  }

  plan->meta.scratch_elems = arena.cursor;
  plan->fingerprint = plan_fingerprint(key);
  return plan;
}

std::shared_ptr<const Plan> compile_plan(const edge::PlacementGraph& g,
                                         const PlanShape& shape, int width) {
  return compile_plan(make_plan_key(g, shape, width));
}

}  // namespace chainnet::gnn
