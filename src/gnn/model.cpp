#include "gnn/model.h"

#include <algorithm>

#include "tensor/tape.h"

namespace chainnet::gnn {

namespace {
constexpr double kRatioFloor = 1e-4;
}

double encode_throughput(const edge::PlacementGraph& g, int chain, double x,
                         bool ratio) {
  if (!ratio) return x;
  const double lambda = g.arrival_rate[chain];
  return std::clamp(x / lambda, 0.0, 1.0);
}

double encode_latency(const edge::PlacementGraph& g, int chain, double l,
                      bool ratio) {
  if (!ratio) return l;
  if (l <= 0.0) return 1.0;
  return std::clamp(g.total_processing[chain] / l, 0.0, 1.0);
}

double decode_throughput(const edge::PlacementGraph& g, int chain, double t,
                         bool ratio) {
  if (!ratio) return t;
  return std::clamp(t, 0.0, 1.0) * g.arrival_rate[chain];
}

double decode_latency(const edge::PlacementGraph& g, int chain, double t,
                      bool ratio) {
  if (!ratio) return t;
  return g.total_processing[chain] / std::max(t, kRatioFloor);
}

std::vector<ChainValues> GraphModel::forward_values(
    const edge::PlacementGraph& g) {
  // The adapter frames the autodiff pass: the graph is released as soon as
  // the scalars are extracted, so repeated inference calls reuse the same
  // tape region instead of growing it.
  const tensor::Tape::Frame frame(tensor::Tape::current());
  const auto outputs = forward(g);
  std::vector<ChainValues> values(outputs.size());
  for (std::size_t i = 0; i < outputs.size(); ++i) {
    if (outputs[i].throughput.defined()) {
      values[i].has_throughput = true;
      values[i].throughput = outputs[i].throughput.item();
    }
    if (outputs[i].latency.defined()) {
      values[i].has_latency = true;
      values[i].latency = outputs[i].latency.item();
    }
  }
  return values;
}

void validate_same_system_batch(
    std::span<const edge::PlacementGraph* const> graphs) {
  if (graphs.empty()) {
    throw std::invalid_argument("forward_values_batch: empty batch");
  }
  for (const auto* g : graphs) {
    if (g == nullptr) {
      throw std::invalid_argument("forward_values_batch: null graph");
    }
  }
  const auto& first = *graphs.front();
  for (std::size_t b = 1; b < graphs.size(); ++b) {
    if (graphs[b]->num_chains != first.num_chains ||
        graphs[b]->sequences != first.sequences) {
      throw MixedBatchError(
          "forward_values_batch: graphs are not placements of the same "
          "system (chain counts or execution sequences differ)");
    }
  }
}

std::vector<std::vector<ChainValues>> GraphModel::forward_values_batch(
    std::span<const edge::PlacementGraph* const> graphs) {
  validate_same_system_batch(graphs);
  std::vector<std::vector<ChainValues>> out;
  out.reserve(graphs.size());
  for (const auto* g : graphs) out.push_back(forward_values(*g));
  return out;
}

std::vector<ChainPerf> predict_physical(GraphModel& model,
                                        const edge::PlacementGraph& g) {
  const auto values = model.forward_values(g);
  const bool ratio = model.ratio_outputs();
  std::vector<ChainPerf> result(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    const int chain = static_cast<int>(i);
    if (values[i].has_throughput) {
      result[i].has_throughput = true;
      result[i].throughput =
          decode_throughput(g, chain, values[i].throughput, ratio);
    }
    if (values[i].has_latency) {
      result[i].has_latency = true;
      result[i].latency = decode_latency(g, chain, values[i].latency, ratio);
    }
  }
  return result;
}

std::vector<std::vector<ChainPerf>> predict_physical_batch(
    GraphModel& model, std::span<const edge::PlacementGraph* const> graphs) {
  const auto values = model.forward_values_batch(graphs);
  const bool ratio = model.ratio_outputs();
  std::vector<std::vector<ChainPerf>> result(graphs.size());
  for (std::size_t b = 0; b < graphs.size(); ++b) {
    const auto& g = *graphs[b];
    result[b].resize(values[b].size());
    for (std::size_t i = 0; i < values[b].size(); ++i) {
      const int chain = static_cast<int>(i);
      if (values[b][i].has_throughput) {
        result[b][i].has_throughput = true;
        result[b][i].throughput =
            decode_throughput(g, chain, values[b][i].throughput, ratio);
      }
      if (values[b][i].has_latency) {
        result[b][i].has_latency = true;
        result[b][i].latency =
            decode_latency(g, chain, values[b][i].latency, ratio);
      }
    }
  }
  return result;
}

}  // namespace chainnet::gnn
