// Prediction-quality metrics of §VIII-B1: per-chain absolute percentage
// error (APE), its distribution percentiles (Table V), MAPE (Fig. 11,
// Table VI), and grouped box summaries (Fig. 12), plus the pairwise
// rank-agreement metric that gates the reduced-precision inference tiers
// (DESIGN.md §15).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "gnn/dataset.h"
#include "gnn/model.h"
#include "support/stats.h"

namespace chainnet::gnn {

/// APE |P - G| / |G| (as a fraction, not percent). Guards the G ~ 0 case by
/// returning |P - G| / max(|G|, eps).
double ape(double predicted, double ground_truth, double eps = 1e-9);

/// One evaluated chain: errors plus grouping keys for Fig. 12.
struct ChainError {
  double ape_throughput = 0.0;
  double ape_latency = 0.0;
  bool has_throughput = false;
  bool has_latency = false;
  int num_nodes = 0;   ///< graph size group key (Fig. 12a/b)
  int num_chains = 0;  ///< chain count group key (Fig. 12c/d)
};

/// Runs `model` over every sample and collects per-chain errors.
std::vector<ChainError> evaluate(GraphModel& model, const Dataset& dataset);

/// Aggregates of an APE list.
struct ApeSummary {
  double mape = 0.0;
  double p50 = 0.0;
  double p75 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  std::size_t count = 0;
};

ApeSummary summarize(const std::vector<double>& apes);

/// Extracts the throughput / latency APE vectors from evaluation results.
std::vector<double> throughput_apes(const std::vector<ChainError>& errors);
std::vector<double> latency_apes(const std::vector<ChainError>& errors);

/// Partitions errors into `buckets` groups by a key (e.g. num_nodes) using
/// equal-width ranges between the observed min and max key; returns one
/// box summary per non-empty bucket together with its key range.
struct GroupedBox {
  double key_lo = 0.0;
  double key_hi = 0.0;
  support::BoxSummary throughput;
  support::BoxSummary latency;
};

enum class GroupKey { kNumNodes, kNumChains };

std::vector<GroupedBox> group_by(const std::vector<ChainError>& errors,
                                 GroupKey key, int buckets);

/// Pairwise rank agreement between a reference scoring and a candidate
/// scoring of the same items (a Kendall-tau-style concordance fraction).
///
/// The search loops that consume the surrogate never use its absolute
/// values — SA/population moves only compare *neighboring placements* —
/// so the fidelity bar for a reduced-precision tier is that it orders
/// pairs the way the f64 reference does. A pair (i, j) is *comparable*
/// when the reference separates it by more than a relative tie tolerance;
/// comparable pairs where the candidate preserves the strict order count
/// as concordant, every other comparable pair (flipped OR collapsed to a
/// candidate tie) as discordant. Reference ties are skipped: the reference
/// itself expresses no preference there, so either order is acceptable.
struct RankAgreement {
  std::uint64_t concordant = 0;   ///< comparable pairs ordered identically
  std::uint64_t discordant = 0;   ///< comparable pairs flipped or collapsed
  std::uint64_t reference_ties = 0;  ///< pairs skipped (no strict ref order)

  std::uint64_t comparable() const { return concordant + discordant; }
  /// concordant / comparable; 1.0 when nothing is comparable (a reference
  /// with no strict preferences cannot be contradicted).
  double agreement() const {
    const std::uint64_t pairs = comparable();
    return pairs == 0 ? 1.0
                      : static_cast<double>(concordant) /
                            static_cast<double>(pairs);
  }
};

/// All-pairs rank agreement over two equal-length score lists. Two
/// reference scores tie when |r_i - r_j| <= tie_eps * max(|r_i|, |r_j|)
/// (relative, so the metric is scale-invariant; tie_eps = 0 makes every
/// non-identical pair comparable). Throws std::invalid_argument on length
/// mismatch. O(n^2) — intended for the bench-sized neighbor samples
/// (hundreds of placements), not datasets.
RankAgreement pairwise_rank_agreement(std::span<const double> reference,
                                      std::span<const double> candidate,
                                      double tie_eps = 1e-9);

}  // namespace chainnet::gnn
