// Prediction-quality metrics of §VIII-B1: per-chain absolute percentage
// error (APE), its distribution percentiles (Table V), MAPE (Fig. 11,
// Table VI), and grouped box summaries (Fig. 12).
#pragma once

#include <vector>

#include "gnn/dataset.h"
#include "gnn/model.h"
#include "support/stats.h"

namespace chainnet::gnn {

/// APE |P - G| / |G| (as a fraction, not percent). Guards the G ~ 0 case by
/// returning |P - G| / max(|G|, eps).
double ape(double predicted, double ground_truth, double eps = 1e-9);

/// One evaluated chain: errors plus grouping keys for Fig. 12.
struct ChainError {
  double ape_throughput = 0.0;
  double ape_latency = 0.0;
  bool has_throughput = false;
  bool has_latency = false;
  int num_nodes = 0;   ///< graph size group key (Fig. 12a/b)
  int num_chains = 0;  ///< chain count group key (Fig. 12c/d)
};

/// Runs `model` over every sample and collects per-chain errors.
std::vector<ChainError> evaluate(GraphModel& model, const Dataset& dataset);

/// Aggregates of an APE list.
struct ApeSummary {
  double mape = 0.0;
  double p50 = 0.0;
  double p75 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  std::size_t count = 0;
};

ApeSummary summarize(const std::vector<double>& apes);

/// Extracts the throughput / latency APE vectors from evaluation results.
std::vector<double> throughput_apes(const std::vector<ChainError>& errors);
std::vector<double> latency_apes(const std::vector<ChainError>& errors);

/// Partitions errors into `buckets` groups by a key (e.g. num_nodes) using
/// equal-width ranges between the observed min and max key; returns one
/// box summary per non-empty bucket together with its key range.
struct GroupedBox {
  double key_lo = 0.0;
  double key_hi = 0.0;
  support::BoxSummary throughput;
  support::BoxSummary latency;
};

enum class GroupKey { kNumNodes, kNumChains };

std::vector<GroupedBox> group_by(const std::vector<ChainError>& errors,
                                 GroupKey key, int buckets);

}  // namespace chainnet::gnn
