// Training loop shared by ChainNet and the baselines: Adam, the joint MSE
// objective of eq. (13) over whichever heads the model defines, step lr
// decay (Table IV), and per-epoch train/validation loss curves (Fig. 13).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "gnn/dataset.h"
#include "gnn/model.h"

namespace chainnet::gnn {

struct TrainConfig {
  int epochs = 30;          ///< paper: 200
  int batch_size = 32;      ///< paper: 128
  double learning_rate = 1e-3;
  double lr_decay = 0.9;    ///< "decay 10% per 10 epochs"
  int lr_decay_every = 10;
  /// Global gradient-norm clipping threshold (0 disables). Useful for the
  /// raw-output ablations whose unnormalized targets produce huge losses.
  double clip_grad_norm = 0.0;
  std::uint64_t seed = 99;
  /// Called after each epoch with (epoch, train_loss, val_loss or NaN).
  std::function<void(int, double, double)> on_epoch;
};

struct TrainReport {
  std::vector<double> train_loss;  ///< per epoch
  std::vector<double> val_loss;    ///< per epoch (empty without val set)
  double seconds = 0.0;
};

/// Trains in place. `validation` may be null. Returns the loss curves.
TrainReport train(GraphModel& model, const Dataset& training,
                  const Dataset* validation, const TrainConfig& config);

/// Mean eq.-(13) loss of the model over a dataset (no gradient step).
double evaluate_loss(GraphModel& model, const Dataset& dataset);

}  // namespace chainnet::gnn
