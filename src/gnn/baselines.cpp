#include "gnn/baselines.h"

#include <algorithm>
#include <stdexcept>

#include "tensor/variable.h"

namespace chainnet::gnn {

using edge::FeatureMode;
using edge::PlacementGraph;
using support::Rng;
using namespace chainnet::tensor;

std::vector<std::vector<double>> homogeneous_features(
    const PlacementGraph& g) {
  std::vector<std::vector<double>> feats;
  feats.reserve(static_cast<std::size_t>(g.num_nodes()));
  for (int i = 0; i < g.num_chains; ++i) {
    feats.push_back({1.0, 0.0, 0.0, g.service_features[i][0], 0.0, 0.0});
  }
  for (int s = 0; s < g.num_fragments(); ++s) {
    const auto& f = g.fragment_features[s];
    feats.push_back({0.0, 1.0, 0.0, f[0], f[1], f[2]});
  }
  for (int n = 0; n < g.num_devices(); ++n) {
    feats.push_back({0.0, 0.0, 1.0, g.device_features[n][0], 0.0, 0.0});
  }
  return feats;
}

std::vector<std::vector<int>> bidirectional_adjacency(
    const PlacementGraph& g) {
  std::vector<std::vector<int>> adj(static_cast<std::size_t>(g.num_nodes()));
  for (const auto& e : g.edges) {
    adj[static_cast<std::size_t>(e.dst)].push_back(e.src);
    adj[static_cast<std::size_t>(e.src)].push_back(e.dst);
  }
  return adj;
}

namespace {

/// Shared readout: per chain, concat(service embedding, mean fragment
/// embedding) -> one MLP per predicted quantity.
struct Readout {
  std::unique_ptr<Mlp> tput;
  std::unique_ptr<Mlp> latency;

  Readout(const BaselineConfig& cfg, Rng& rng, const std::string& name) {
    const std::size_t h = static_cast<std::size_t>(cfg.hidden);
    const Activation out_act = cfg.mode == FeatureMode::kModified
                                   ? Activation::kSigmoid
                                   : Activation::kNone;
    const auto make = [&](const std::string& head_name) {
      return std::make_unique<Mlp>(std::vector<std::size_t>{2 * h, h, 1},
                                   Activation::kRelu, out_act, rng,
                                   name + "." + head_name);
    };
    if (cfg.head == PredictionHead::kThroughput ||
        cfg.head == PredictionHead::kBoth) {
      tput = make("tput");
    }
    if (cfg.head == PredictionHead::kLatency ||
        cfg.head == PredictionHead::kBoth) {
      latency = make("latency");
    }
  }
};

std::vector<ChainOutput> apply_readout(const Readout& readout,
                                       const PlacementGraph& g,
                                       const std::vector<Var>& node_embed) {
  std::vector<ChainOutput> outputs(static_cast<std::size_t>(g.num_chains));
  for (int i = 0; i < g.num_chains; ++i) {
    std::vector<Var> frag_embeds;
    frag_embeds.reserve(g.sequences[i].size());
    for (int s : g.sequences[i]) {
      frag_embeds.push_back(
          node_embed[static_cast<std::size_t>(g.fragment_node_id(s))]);
    }
    const Var z = concat(
        {node_embed[static_cast<std::size_t>(g.service_node_id(i))],
         mean_of(frag_embeds)});
    auto& out = outputs[static_cast<std::size_t>(i)];
    if (readout.tput) out.throughput = readout.tput->forward(z);
    if (readout.latency) out.latency = readout.latency->forward(z);
  }
  return outputs;
}

std::vector<Var> input_embeddings(const PlacementGraph& g) {
  const auto feats = homogeneous_features(g);
  std::vector<Var> nodes;
  nodes.reserve(feats.size());
  for (const auto& f : feats) nodes.push_back(Var::vector(f));
  return nodes;
}

}  // namespace

// -------------------------------------------------------------------- GAT

struct Gat::Impl : Module {
  BaselineConfig config;
  // Per layer, per head: projection W and the split attention vectors
  // a_src, a_dst (standard GAT scoring e_uv = lrelu(a_src.Wh_u + a_dst.Wh_v)).
  struct Head {
    Var w;
    Var a_src;
    Var a_dst;
  };
  std::vector<std::vector<Head>> layers;
  std::unique_ptr<Readout> readout;

  Impl(const BaselineConfig& cfg, Rng& rng) : config(cfg) {
    const std::size_t h = static_cast<std::size_t>(cfg.hidden);
    for (int l = 0; l < cfg.layers; ++l) {
      const std::size_t in =
          l == 0 ? static_cast<std::size_t>(kHomoFeatureDim) : h;
      std::vector<Head> heads;
      for (int a = 0; a < cfg.heads; ++a) {
        const std::string base =
            "gat.l" + std::to_string(l) + ".h" + std::to_string(a);
        Head head;
        head.w = register_glorot(base + ".w", Shape{h, in}, rng);
        head.a_src = register_glorot(base + ".a_src", Shape{h, 1}, rng);
        head.a_dst = register_glorot(base + ".a_dst", Shape{h, 1}, rng);
        heads.push_back(head);
      }
      layers.push_back(std::move(heads));
    }
    readout = std::make_unique<Readout>(cfg, rng, "gat");
    if (readout->tput) register_module("gat.tput", readout->tput.get());
    if (readout->latency) {
      register_module("gat.latency", readout->latency.get());
    }
  }

  std::vector<Var> propagate(const PlacementGraph& g) {
    auto nodes = input_embeddings(g);
    const auto adj = bidirectional_adjacency(g);
    for (const auto& heads : layers) {
      std::vector<Var> next(nodes.size());
      // Precompute projections per head.
      std::vector<std::vector<Var>> proj(heads.size());
      std::vector<std::vector<Var>> src_score(heads.size());
      std::vector<std::vector<Var>> dst_score(heads.size());
      for (std::size_t a = 0; a < heads.size(); ++a) {
        proj[a].reserve(nodes.size());
        for (const auto& nv : nodes) {
          proj[a].push_back(matvec(heads[a].w, nv));
        }
        src_score[a].reserve(nodes.size());
        dst_score[a].reserve(nodes.size());
        for (const auto& p : proj[a]) {
          src_score[a].push_back(dot(heads[a].a_src, p));
          dst_score[a].push_back(dot(heads[a].a_dst, p));
        }
      }
      for (std::size_t v = 0; v < nodes.size(); ++v) {
        std::vector<Var> head_outputs;
        head_outputs.reserve(heads.size());
        for (std::size_t a = 0; a < heads.size(); ++a) {
          // Neighborhood including self-loop.
          std::vector<Var> scores;
          std::vector<Var> values;
          const auto attend = [&](std::size_t u) {
            scores.push_back(
                leaky_relu(add(src_score[a][u], dst_score[a][v]), 0.2));
            values.push_back(proj[a][u]);
          };
          attend(v);
          for (int u : adj[v]) attend(static_cast<std::size_t>(u));
          // Numerically stable softmax over the scalar scores: subtract the
          // (detached) maximum — a constant shift leaves both the softmax
          // value and its gradient unchanged.
          double max_score = scores.front().item();
          for (const auto& s : scores) {
            max_score = std::max(max_score, s.item());
          }
          std::vector<Var> exps;
          exps.reserve(scores.size());
          for (const auto& s : scores) {
            exps.push_back(exp_(add_scalar(s, -max_score)));
          }
          Var denom = exps.size() == 1 ? exps.front() : sum_of(exps);
          Var inv_denom = pow_neg1(denom);
          std::vector<Var> weights;
          weights.reserve(scores.size());
          for (const auto& e : exps) weights.push_back(mul(e, inv_denom));
          head_outputs.push_back(weighted_sum(weights, values));
        }
        next[v] = relu(mean_of(head_outputs));
      }
      nodes = std::move(next);
    }
    return nodes;
  }

  static Var pow_neg1(const Var& x) {
    // 1/x via exp(-log(x)); x > 0 because it is a sum of exponentials.
    return exp_(neg(log_(x)));
  }
};

Gat::Gat(const BaselineConfig& config, Rng& rng)
    : impl_(std::make_unique<Impl>(config, rng)) {
  register_module("gat", impl_.get());
}

Gat::~Gat() = default;

std::vector<ChainOutput> Gat::forward(const PlacementGraph& g) {
  const auto nodes = impl_->propagate(g);
  return apply_readout(*impl_->readout, g, nodes);
}

edge::FeatureMode Gat::feature_mode() const { return impl_->config.mode; }

bool Gat::ratio_outputs() const {
  return impl_->config.mode == FeatureMode::kModified;
}

std::string Gat::name() const {
  return impl_->config.mode == FeatureMode::kModified ? "GAT" : "GAT*";
}

// -------------------------------------------------------------------- GIN

struct Gin::Impl : Module {
  BaselineConfig config;
  struct Layer {
    Var epsilon;  ///< scalar (1 + eps) uses learnable eps
    std::unique_ptr<Mlp> mlp;
  };
  std::vector<Layer> layers;
  std::unique_ptr<Readout> readout;

  Impl(const BaselineConfig& cfg, Rng& rng) : config(cfg) {
    const std::size_t h = static_cast<std::size_t>(cfg.hidden);
    for (int l = 0; l < cfg.layers; ++l) {
      const std::size_t in =
          l == 0 ? static_cast<std::size_t>(kHomoFeatureDim) : h;
      Layer layer;
      layer.epsilon =
          register_zeros("gin.l" + std::to_string(l) + ".eps", Shape{1, 1});
      layer.mlp = std::make_unique<Mlp>(std::vector<std::size_t>{in, h, h},
                                        Activation::kRelu, Activation::kRelu,
                                        rng, "gin.l" + std::to_string(l));
      register_module("gin.l" + std::to_string(l), layer.mlp.get());
      layers.push_back(std::move(layer));
    }
    readout = std::make_unique<Readout>(cfg, rng, "gin");
    if (readout->tput) register_module("gin.tput", readout->tput.get());
    if (readout->latency) {
      register_module("gin.latency", readout->latency.get());
    }
  }

  std::vector<Var> propagate(const PlacementGraph& g) {
    auto nodes = input_embeddings(g);
    const auto adj = bidirectional_adjacency(g);
    for (const auto& layer : layers) {
      std::vector<Var> next(nodes.size());
      for (std::size_t v = 0; v < nodes.size(); ++v) {
        // (1 + eps) h_v + sum of neighbors.
        std::vector<Var> terms;
        terms.reserve(adj[v].size() + 2);
        terms.push_back(nodes[v]);
        terms.push_back(
            weighted_sum({layer.epsilon}, {nodes[v]}));  // eps * h_v
        for (int u : adj[v]) terms.push_back(nodes[static_cast<std::size_t>(u)]);
        next[v] = layer.mlp->forward(sum_of(terms));
      }
      nodes = std::move(next);
    }
    return nodes;
  }
};

Gin::Gin(const BaselineConfig& config, Rng& rng)
    : impl_(std::make_unique<Impl>(config, rng)) {
  register_module("gin", impl_.get());
}

Gin::~Gin() = default;

std::vector<ChainOutput> Gin::forward(const PlacementGraph& g) {
  const auto nodes = impl_->propagate(g);
  return apply_readout(*impl_->readout, g, nodes);
}

edge::FeatureMode Gin::feature_mode() const { return impl_->config.mode; }

bool Gin::ratio_outputs() const {
  return impl_->config.mode == FeatureMode::kModified;
}

std::string Gin::name() const {
  return impl_->config.mode == FeatureMode::kModified ? "GIN" : "GIN*";
}

// -------------------------------------------------------------------- GCN

struct Gcn::Impl : Module {
  BaselineConfig config;
  std::vector<Var> weights;  ///< per-layer projection
  std::unique_ptr<Readout> readout;

  Impl(const BaselineConfig& cfg, Rng& rng) : config(cfg) {
    const std::size_t h = static_cast<std::size_t>(cfg.hidden);
    for (int l = 0; l < cfg.layers; ++l) {
      const std::size_t in =
          l == 0 ? static_cast<std::size_t>(kHomoFeatureDim) : h;
      weights.push_back(register_glorot("gcn.l" + std::to_string(l) + ".w",
                                        Shape{h, in}, rng));
    }
    readout = std::make_unique<Readout>(cfg, rng, "gcn");
    if (readout->tput) register_module("gcn.tput", readout->tput.get());
    if (readout->latency) {
      register_module("gcn.latency", readout->latency.get());
    }
  }

  std::vector<Var> propagate(const PlacementGraph& g) {
    auto nodes = input_embeddings(g);
    const auto adj = bidirectional_adjacency(g);
    for (const auto& w : weights) {
      std::vector<Var> next(nodes.size());
      for (std::size_t v = 0; v < nodes.size(); ++v) {
        std::vector<Var> neighborhood;
        neighborhood.reserve(adj[v].size() + 1);
        neighborhood.push_back(nodes[v]);
        for (int u : adj[v]) {
          neighborhood.push_back(nodes[static_cast<std::size_t>(u)]);
        }
        next[v] = relu(matvec(w, mean_of(neighborhood)));
      }
      nodes = std::move(next);
    }
    return nodes;
  }
};

Gcn::Gcn(const BaselineConfig& config, Rng& rng)
    : impl_(std::make_unique<Impl>(config, rng)) {
  register_module("gcn", impl_.get());
}

Gcn::~Gcn() = default;

std::vector<ChainOutput> Gcn::forward(const PlacementGraph& g) {
  const auto nodes = impl_->propagate(g);
  return apply_readout(*impl_->readout, g, nodes);
}

edge::FeatureMode Gcn::feature_mode() const { return impl_->config.mode; }

bool Gcn::ratio_outputs() const {
  return impl_->config.mode == FeatureMode::kModified;
}

std::string Gcn::name() const {
  return impl_->config.mode == FeatureMode::kModified ? "GCN" : "GCN*";
}

}  // namespace chainnet::gnn
