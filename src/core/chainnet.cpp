#include "core/chainnet.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <span>
#include <stdexcept>

#include "gnn/plan.h"
#include "tensor/kernels.h"
#include "tensor/nn.h"
#include "tensor/variable.h"

namespace chainnet::core {

using edge::FeatureMode;
using edge::PlacementGraph;
using gnn::ChainOutput;
using support::Rng;
using namespace chainnet::tensor;

struct ChainNet::Impl : Module {
  ChainNetConfig config;

  // Per-type feature encoders (initial embeddings, Algorithm 2 line 1).
  std::unique_ptr<Linear> enc_service;
  std::unique_ptr<Linear> enc_fragment;
  std::unique_ptr<Linear> enc_device;

  // Update functions phi_C, phi_F, phi_D (GRU cells, §V-D4). Messages are
  // concatenations of two H-dim embeddings, so the GRU input width is 2H.
  std::unique_ptr<GruCell> phi_c;
  std::unique_ptr<GruCell> phi_f;
  std::unique_ptr<GruCell> phi_d;

  // Attention parameters of f_multi (eq. 15-16), per head: scoring matrix
  // W_att [H x 3H], scoring vector alpha [H], and the message transform
  // W_msg [2H x 2H] applied inside the weighted sum.
  struct AttentionHead {
    Var w_att;
    Var alpha;
    Var w_msg;
  };
  std::vector<AttentionHead> attention;

  // Output heads (eq. 12).
  std::unique_ptr<Mlp> mlp_tput;
  std::unique_ptr<Mlp> mlp_latency;

  Impl(const ChainNetConfig& cfg, Rng& rng) : config(cfg) {
    if (cfg.hidden <= 0 || cfg.iterations <= 0 || cfg.attention_heads <= 0) {
      throw std::invalid_argument("ChainNetConfig: non-positive sizes");
    }
    const auto h = static_cast<std::size_t>(cfg.hidden);
    enc_service = std::make_unique<Linear>(
        static_cast<std::size_t>(edge::kServiceFeatureDim), h, rng,
        "enc_service");
    enc_fragment = std::make_unique<Linear>(
        static_cast<std::size_t>(edge::kFragmentFeatureDim), h, rng,
        "enc_fragment");
    enc_device = std::make_unique<Linear>(
        static_cast<std::size_t>(edge::kDeviceFeatureDim), h, rng,
        "enc_device");
    register_module("enc_service", enc_service.get());
    register_module("enc_fragment", enc_fragment.get());
    register_module("enc_device", enc_device.get());

    phi_c = std::make_unique<GruCell>(2 * h, h, rng, "phi_c");
    phi_f = std::make_unique<GruCell>(2 * h, h, rng, "phi_f");
    phi_d = std::make_unique<GruCell>(2 * h, h, rng, "phi_d");
    register_module("phi_c", phi_c.get());
    register_module("phi_f", phi_f.get());
    register_module("phi_d", phi_d.get());

    for (int a = 0; a < cfg.attention_heads; ++a) {
      const std::string base = "attn.h" + std::to_string(a);
      AttentionHead head;
      head.w_att = register_glorot(base + ".w_att", Shape{h, 3 * h}, rng);
      head.alpha = register_glorot(base + ".alpha", Shape{h, 1}, rng);
      head.w_msg = register_glorot(base + ".w_msg", Shape{2 * h, 2 * h}, rng);
      attention.push_back(head);
    }

    const Activation out_act =
        cfg.modified_outputs ? Activation::kSigmoid : Activation::kNone;
    mlp_tput = std::make_unique<Mlp>(std::vector<std::size_t>{h, h, 1},
                                     Activation::kRelu, out_act, rng,
                                     "mlp_tput");
    mlp_latency = std::make_unique<Mlp>(std::vector<std::size_t>{h, h, 1},
                                        Activation::kRelu, out_act, rng,
                                        "mlp_latency");
    register_module("mlp_tput", mlp_tput.get());
    register_module("mlp_latency", mlp_latency.get());
  }

  /// f_multi (eq. 14-16): attention-weighted sum of the per-step device
  /// messages, given the device's previous-iteration embedding. Heads are
  /// averaged. With attention ablated, a plain mean of messages is used.
  Var aggregate_device_messages(const Var& device_prev,
                                const std::vector<Var>& messages) {
    if (messages.size() == 1) return messages.front();
    if (!config.attention_aggregation) return mean_of(messages);
    std::vector<Var> head_outputs;
    head_outputs.reserve(attention.size());
    for (const auto& head : attention) {
      // Scores e(h_k, m_t) = alpha^T LeakyReLU(W [h_k || m_t]) (eq. 15).
      std::vector<Var> scores;
      scores.reserve(messages.size());
      for (const auto& m : messages) {
        const Var joint = concat({device_prev, m});
        scores.push_back(
            dot(head.alpha, leaky_relu(matvec(head.w_att, joint), 0.2)));
      }
      // Stable softmax over scalar scores (eq. 16); shifting by the
      // detached max changes neither values nor gradients.
      double max_score = scores.front().item();
      for (const auto& s : scores) max_score = std::max(max_score, s.item());
      std::vector<Var> exps;
      exps.reserve(scores.size());
      for (const auto& s : scores) {
        exps.push_back(exp_(add_scalar(s, -max_score)));
      }
      const Var denom = sum_of(exps);
      const Var inv_denom = exp_(neg(log_(denom)));
      std::vector<Var> weights;
      weights.reserve(exps.size());
      for (const auto& e : exps) weights.push_back(mul(e, inv_denom));
      // f_multi = sum_t alpha_kt * W m_t.
      std::vector<Var> transformed;
      transformed.reserve(messages.size());
      for (const auto& m : messages) {
        transformed.push_back(matvec(head.w_msg, m));
      }
      head_outputs.push_back(weighted_sum(weights, transformed));
    }
    return head_outputs.size() == 1 ? head_outputs.front()
                                    : mean_of(head_outputs);
  }

  std::vector<ChainOutput> run(const PlacementGraph& g) {
    const int num_steps = g.num_fragments();
    const int num_devices = g.num_devices();

    // Initial embeddings (Algorithm 2 line 1).
    std::vector<Var> service(static_cast<std::size_t>(g.num_chains));
    for (int i = 0; i < g.num_chains; ++i) {
      service[static_cast<std::size_t>(i)] =
          tanh_(enc_service->forward(Var::vector(g.service_features[i])));
    }
    std::vector<Var> fragment(static_cast<std::size_t>(num_steps));
    for (int s = 0; s < num_steps; ++s) {
      fragment[static_cast<std::size_t>(s)] =
          tanh_(enc_fragment->forward(Var::vector(g.fragment_features[s])));
    }
    std::vector<Var> device(static_cast<std::size_t>(num_devices));
    for (int n = 0; n < num_devices; ++n) {
      device[static_cast<std::size_t>(n)] =
          tanh_(enc_device->forward(Var::vector(g.device_features[n])));
    }

    // Service embedding at each step of the current iteration, used by the
    // fragment (eq. 8) and device (eq. 10) messages.
    std::vector<Var> service_at_step(static_cast<std::size_t>(num_steps));

    for (int n = 0; n < config.iterations; ++n) {
      // Snapshots of iteration n-1 (messages read stale embeddings).
      const std::vector<Var> fragment_prev = fragment;
      const std::vector<Var> device_prev = device;

      // Chain pass (Algorithm 2 lines 3-11).
      for (int i = 0; i < g.num_chains; ++i) {
        Var h = service[static_cast<std::size_t>(i)];
        for (int s : g.sequences[i]) {
          const auto su = static_cast<std::size_t>(s);
          const auto dn = static_cast<std::size_t>(g.steps[s].device_node);
          // Eq. 6 then eq. 4.
          const Var m_c = concat({fragment_prev[su], device_prev[dn]});
          h = phi_c->forward(h, m_c);
          service_at_step[su] = h;
          // Eq. 8 then eq. 7.
          const Var m_f = concat({h, device_prev[dn]});
          fragment[su] = phi_f->forward(fragment_prev[su], m_f);
        }
        service[static_cast<std::size_t>(i)] = h;  // eq. 5
      }

      // Device pass (Algorithm 2 lines 12-15).
      for (int dn = 0; dn < num_devices; ++dn) {
        const auto dnu = static_cast<std::size_t>(dn);
        std::vector<Var> messages;
        messages.reserve(g.device_node_steps[dnu].size());
        for (int s : g.device_node_steps[dnu]) {
          const auto su = static_cast<std::size_t>(s);
          // Eq. 10: m_D = [h_i^(n),j || h_j^(n-1)].
          messages.push_back(
              concat({service_at_step[su], fragment_prev[su]}));
        }
        const Var m_d = aggregate_device_messages(device_prev[dnu], messages);
        device[dnu] = phi_d->forward(device_prev[dnu], m_d);
      }
    }

    // Readout (eq. 12, Fig. 7).
    std::vector<ChainOutput> outputs(static_cast<std::size_t>(g.num_chains));
    for (int i = 0; i < g.num_chains; ++i) {
      const auto iu = static_cast<std::size_t>(i);
      outputs[iu].throughput = mlp_tput->forward(service[iu]);
      std::vector<Var> frags;
      frags.reserve(g.sequences[i].size());
      for (int s : g.sequences[i]) {
        frags.push_back(fragment[static_cast<std::size_t>(s)]);
      }
      // §VI-B1 change (ii): mean readout generalizes to longer chains; the
      // raw-output ablations revert to the original sum.
      const Var h_latency =
          config.modified_outputs ? mean_of(frags) : sum_of(frags);
      outputs[iu].latency = mlp_latency->forward(h_latency);
    }
    return outputs;
  }

  // ------------------------------------------------------------------
  // Interpreted inference path: identical computation over raw buffers, no
  // autodiff graph. Kept structurally parallel to run() above; the
  // equivalence is pinned by ChainNetFastInference tests. Since PR 7 this
  // is the *reference executor*: production forwards replay a compiled
  // plan (replay_scalar / replay_batch below), and plan_test pins replay
  // bit-for-bit against this walk. Selected at runtime by
  // CHAINNET_INTERPRET=1 or explicitly via forward_values_interpreted.

  using Vec = std::vector<double>;

  /// Buffers reused across run_values calls so the optimizer's steady-state
  /// inference loop performs no allocations. Per-instance state: one model
  /// per thread, per the one-evaluator-per-worker contract of
  /// runtime::EvalService (chainnet_cli builds one ChainNet per worker).
  struct Workspace {
    std::vector<Vec> service, fragment, device;
    std::vector<Vec> fragment_prev, device_prev;
    std::vector<Vec> service_at_step;
    std::vector<Vec> messages;
    Vec hs, message, h_next, m_d, h_latency, scalar;
    Vec joint, act, att_weights, transformed;
    Mlp::Scratch mlp;
    GruCell::Scratch gru;
  };
  Workspace ws_;

  /// Grows `rows` to at least n rows of `width` elements each, keeping
  /// capacity. Row contents are unspecified; callers overwrite them.
  static void fit_rows(std::vector<Vec>& rows, std::size_t n,
                       std::size_t width) {
    if (rows.size() < n) rows.resize(n);
    for (std::size_t i = 0; i < n; ++i) rows[i].resize(width);
  }

  /// dst[0..n) = src[0..n), reusing dst's row capacity.
  static void copy_rows(const std::vector<Vec>& src, std::size_t n,
                        std::vector<Vec>& dst) {
    if (dst.size() < n) dst.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      dst[i].assign(src[i].begin(), src[i].end());
    }
  }

  static void raw_matvec(std::span<const double> w, std::span<const double> x,
                         std::span<double> out) {
    // Bias-free single-accumulator reference. Must go through the kernel
    // layer (not a hand-rolled loop) so it shares whatever rounding regime
    // the dispatched ISA tier uses — the FMA tiers fuse multiply-adds, and
    // a plain loop here would diverge from the fused path by one rounding
    // per product.
    kernels::gemv_naive(w.data(), nullptr, x.data(), out.data(), out.size(),
                        x.size());
  }

  /// Bias-free matvec through the blocked kernel, or the naive loop when
  /// fused kernels are ablated. Bit-identical either way (same per-row
  /// accumulation order).
  void matvec_values(std::span<const double> w, std::span<const double> x,
                     std::span<double> out) const {
    if (config.fused_kernels) {
      kernels::gemv(w.data(), nullptr, x.data(), out.data(), out.size(),
                    x.size());
    } else {
      raw_matvec(w, x, out);
    }
  }

  /// One GRU step through the packed/fused path, or the pre-fusion
  /// six-GEMV reference when fused kernels are ablated.
  void gru_values(const GruCell& cell, const Vec& h, const Vec& x,
                  Vec& out) {
    if (config.fused_kernels) {
      cell.forward_values(h, x, out, ws_.gru);
    } else {
      cell.forward_values_reference(h, x, out, ws_.gru);
    }
  }

  /// f_multi over raw buffers; `out` has size 2H. Scratch lives in ws_.
  void aggregate_device_messages_values(const Vec& device_prev,
                                        std::span<const Vec> messages,
                                        Vec& out) {
    const std::size_t two_h = messages.front().size();
    if (messages.size() == 1) {
      out.assign(messages.front().begin(), messages.front().end());
      return;
    }
    if (!config.attention_aggregation) {
      out.assign(two_h, 0.0);
      for (const auto& m : messages) {
        for (std::size_t j = 0; j < two_h; ++j) out[j] += m[j];
      }
      const double inv = 1.0 / static_cast<double>(messages.size());
      for (auto& v : out) v *= inv;
      return;
    }
    const std::size_t h = device_prev.size();
    out.assign(two_h, 0.0);
    Vec& joint = ws_.joint;
    Vec& act = ws_.act;
    Vec& weights = ws_.att_weights;
    Vec& transformed = ws_.transformed;
    joint.resize(3 * h);
    act.resize(h);
    weights.resize(messages.size());
    transformed.resize(two_h);
    std::copy(device_prev.begin(), device_prev.end(), joint.begin());
    for (const auto& head : attention) {
      // Scores (eq. 15).
      for (std::size_t t = 0; t < messages.size(); ++t) {
        std::copy(messages[t].begin(), messages[t].end(),
                  joint.begin() + static_cast<std::ptrdiff_t>(h));
        matvec_values(head.w_att.value(), joint, act);
        for (auto& v : act) v = v > 0.0 ? v : 0.2 * v;  // LeakyReLU(0.2)
        double score = 0.0;
        const auto alpha = head.alpha.value();
        for (std::size_t j = 0; j < h; ++j) score += alpha[j] * act[j];
        weights[t] = score;
      }
      // Stable softmax (eq. 16).
      double max_score = weights.front();
      for (double s : weights) max_score = std::max(max_score, s);
      double denom = 0.0;
      for (auto& s : weights) {
        s = std::exp(s - max_score);
        denom += s;
      }
      // Weighted sum of transformed messages, averaged over heads.
      const double head_scale = 1.0 / static_cast<double>(attention.size());
      for (std::size_t t = 0; t < messages.size(); ++t) {
        matvec_values(head.w_msg.value(), messages[t], transformed);
        const double wgt = head_scale * weights[t] / denom;
        for (std::size_t j = 0; j < two_h; ++j) {
          out[j] += wgt * transformed[j];
        }
      }
    }
  }

  std::vector<gnn::ChainValues> run_values_interpreted(
      const PlacementGraph& g) {
    const auto h = static_cast<std::size_t>(config.hidden);
    const auto num_steps = static_cast<std::size_t>(g.num_fragments());
    const auto num_devices = static_cast<std::size_t>(g.num_devices());
    const auto num_chains = static_cast<std::size_t>(g.num_chains);
    Workspace& ws = ws_;

    fit_rows(ws.service, num_chains, h);
    fit_rows(ws.fragment, num_steps, h);
    fit_rows(ws.device, num_devices, h);
    for (std::size_t i = 0; i < num_chains; ++i) {
      enc_service->forward_values(g.service_features[i], ws.service[i]);
      tensor::apply_activation_values(ws.service[i], Activation::kTanh);
    }
    for (std::size_t s = 0; s < num_steps; ++s) {
      enc_fragment->forward_values(g.fragment_features[s], ws.fragment[s]);
      tensor::apply_activation_values(ws.fragment[s], Activation::kTanh);
    }
    for (std::size_t n = 0; n < num_devices; ++n) {
      enc_device->forward_values(g.device_features[n], ws.device[n]);
      tensor::apply_activation_values(ws.device[n], Activation::kTanh);
    }

    fit_rows(ws.service_at_step, num_steps, h);
    ws.hs.resize(h);
    ws.message.resize(2 * h);
    ws.h_next.resize(h);
    ws.m_d.resize(2 * h);
    for (int n = 0; n < config.iterations; ++n) {
      copy_rows(ws.fragment, num_steps, ws.fragment_prev);
      copy_rows(ws.device, num_devices, ws.device_prev);
      for (std::size_t i = 0; i < num_chains; ++i) {
        ws.hs.assign(ws.service[i].begin(), ws.service[i].end());
        for (int s : g.sequences[static_cast<int>(i)]) {
          const auto su = static_cast<std::size_t>(s);
          const auto dn = static_cast<std::size_t>(g.steps[s].device_node);
          std::copy(ws.fragment_prev[su].begin(), ws.fragment_prev[su].end(),
                    ws.message.begin());
          std::copy(ws.device_prev[dn].begin(), ws.device_prev[dn].end(),
                    ws.message.begin() + static_cast<std::ptrdiff_t>(h));
          gru_values(*phi_c, ws.hs, ws.message, ws.h_next);
          ws.hs.swap(ws.h_next);
          ws.service_at_step[su].assign(ws.hs.begin(), ws.hs.end());
          std::copy(ws.hs.begin(), ws.hs.end(), ws.message.begin());
          std::copy(ws.device_prev[dn].begin(), ws.device_prev[dn].end(),
                    ws.message.begin() + static_cast<std::ptrdiff_t>(h));
          gru_values(*phi_f, ws.fragment_prev[su], ws.message,
                     ws.fragment[su]);
        }
        ws.service[i].assign(ws.hs.begin(), ws.hs.end());
      }
      for (std::size_t dn = 0; dn < num_devices; ++dn) {
        const auto& steps = g.device_node_steps[dn];
        if (ws.messages.size() < steps.size()) {
          ws.messages.resize(steps.size());
        }
        for (std::size_t t = 0; t < steps.size(); ++t) {
          const auto su = static_cast<std::size_t>(steps[t]);
          Vec& m = ws.messages[t];
          m.resize(2 * h);
          std::copy(ws.service_at_step[su].begin(),
                    ws.service_at_step[su].end(), m.begin());
          std::copy(ws.fragment_prev[su].begin(), ws.fragment_prev[su].end(),
                    m.begin() + static_cast<std::ptrdiff_t>(h));
        }
        aggregate_device_messages_values(
            ws.device_prev[dn],
            std::span<const Vec>(ws.messages.data(), steps.size()), ws.m_d);
        gru_values(*phi_d, ws.device_prev[dn], ws.m_d, ws.device[dn]);
      }
    }

    std::vector<gnn::ChainValues> outputs(num_chains);
    ws.h_latency.resize(h);
    ws.scalar.resize(1);
    for (std::size_t i = 0; i < num_chains; ++i) {
      mlp_tput->forward_values(ws.service[i], ws.scalar, ws.mlp);
      outputs[i].throughput = ws.scalar[0];
      outputs[i].has_throughput = true;
      ws.h_latency.assign(h, 0.0);
      const auto& seq = g.sequences[static_cast<int>(i)];
      for (int s : seq) {
        const auto& f = ws.fragment[static_cast<std::size_t>(s)];
        for (std::size_t j = 0; j < h; ++j) ws.h_latency[j] += f[j];
      }
      if (config.modified_outputs) {
        const double inv = 1.0 / static_cast<double>(seq.size());
        for (auto& v : ws.h_latency) v *= inv;
      }
      mlp_latency->forward_values(ws.h_latency, ws.scalar, ws.mlp);
      outputs[i].latency = ws.scalar[0];
      outputs[i].has_latency = true;
    }
    return outputs;
  }

  // ------------------------------------------------------------------
  // Batched inference: B placements of the same system lock-stepped
  // through Algorithm 2. Chain/fragment state is batch-major — entity e
  // keeps a row-major [H x B] panel with its B placements contiguous per
  // row — so each GRU update is one GEMM with B columns. Device state is a
  // single [H x D] panel, D = sum of per-placement used-device counts
  // (device sets differ across placements), addressed through
  // device_offset/device_col. Column b of every panel follows exactly the
  // scalar run_values op sequence for graphs[b]; with the kernels'
  // per-column accumulation-order guarantee that makes the batch
  // bit-identical to B scalar passes (pinned by chainnet_batch_test).

  struct BatchWorkspace {
    std::vector<Vec> service, fragment, fragment_prev;  // [entity] H x B
    std::vector<Vec> service_at_step;                   // [step]   H x B
    Vec device, device_prev;                            // H x D
    std::vector<int> device_offset;  ///< per-placement device-column base
    std::vector<int> device_col;     ///< (step, placement) -> device column
    std::vector<int> msg_step, msg_b, msg_col;  ///< message -> source
    struct Group {
      int start = 0;  ///< first message column of this (placement, device)
      int count = 0;
      int col = 0;    ///< device column the aggregate lands in
    };
    std::vector<Group> groups;
    Vec enc_in;                ///< gathered encoder input panel
    Vec hs, h_next, m_c;       ///< chain-pass panels
    Vec m_d;                   ///< 2H x D aggregated device messages
    Vec messages, joints;      ///< 2H x M, 3H x M (M = S*B)
    Vec att_act, transformed;  ///< H x M, 2H x M per head
    Vec scores;                ///< M attention scores per head
    Vec readout_in, readout_out;  ///< H x C*B and C*B readout panels
    Mlp::Scratch mlp;
    GruCell::Scratch gru;
  };
  BatchWorkspace bws_;

  std::vector<std::vector<gnn::ChainValues>> run_values_batch_interpreted(
      std::span<const PlacementGraph* const> graphs) {
    gnn::validate_same_system_batch(graphs);
    const std::size_t B = graphs.size();
    // Width 1 is exactly the scalar path; skip the panel bookkeeping.
    if (B == 1) return {run_values_interpreted(*graphs.front())};

    const PlacementGraph& g0 = *graphs.front();
    const auto h = static_cast<std::size_t>(config.hidden);
    const auto C = static_cast<std::size_t>(g0.num_chains);
    const auto S = static_cast<std::size_t>(g0.num_fragments());
    BatchWorkspace& ws = bws_;

    // Device-axis geometry.
    ws.device_offset.resize(B + 1);
    ws.device_offset[0] = 0;
    for (std::size_t b = 0; b < B; ++b) {
      ws.device_offset[b + 1] =
          ws.device_offset[b] + graphs[b]->num_devices();
    }
    const auto D = static_cast<std::size_t>(ws.device_offset[B]);
    ws.device_col.resize(S * B);
    for (std::size_t b = 0; b < B; ++b) {
      for (std::size_t s = 0; s < S; ++s) {
        ws.device_col[s * B + b] =
            ws.device_offset[b] + graphs[b]->steps[s].device_node;
      }
    }

    // Device-message enumeration: one message per execution step, grouped
    // by (placement, device node) in contiguous column ranges so each
    // group's softmax reads a contiguous score slice. Fixed across
    // iterations.
    const std::size_t M = S * B;
    ws.msg_step.resize(M);
    ws.msg_b.resize(M);
    ws.msg_col.resize(M);
    ws.groups.clear();
    bool any_multi = false;
    {
      int m = 0;
      for (std::size_t b = 0; b < B; ++b) {
        const auto& g = *graphs[b];
        for (int dn = 0; dn < g.num_devices(); ++dn) {
          const auto& steps = g.device_node_steps[dn];
          ws.groups.push_back(BatchWorkspace::Group{m, static_cast<int>(steps.size()),
                                    ws.device_offset[b] + dn});
          any_multi |= steps.size() > 1;
          for (int sid : steps) {
            ws.msg_step[m] = sid;
            ws.msg_b[m] = static_cast<int>(b);
            ws.msg_col[m] = ws.device_offset[b] + dn;
            ++m;
          }
        }
      }
    }

    // Initial embeddings: gather each entity's per-placement features into
    // a column panel, encode with one GEMM, tanh in place.
    fit_rows(ws.service, C, h * B);
    fit_rows(ws.fragment, S, h * B);
    ws.device.resize(h * D);
    ws.enc_in.resize(std::max({static_cast<std::size_t>(
                                   edge::kFragmentFeatureDim) * B,
                               static_cast<std::size_t>(
                                   edge::kDeviceFeatureDim) * D}));
    for (std::size_t i = 0; i < C; ++i) {
      const std::size_t dim = g0.service_features[i].size();
      for (std::size_t f = 0; f < dim; ++f) {
        for (std::size_t b = 0; b < B; ++b) {
          ws.enc_in[f * B + b] = graphs[b]->service_features[i][f];
        }
      }
      enc_service->forward_values_batch(ws.enc_in.data(),
                                        ws.service[i].data(), B);
      apply_activation_values(ws.service[i], Activation::kTanh);
    }
    for (std::size_t s = 0; s < S; ++s) {
      const std::size_t dim = g0.fragment_features[s].size();
      for (std::size_t f = 0; f < dim; ++f) {
        for (std::size_t b = 0; b < B; ++b) {
          ws.enc_in[f * B + b] = graphs[b]->fragment_features[s][f];
        }
      }
      enc_fragment->forward_values_batch(ws.enc_in.data(),
                                         ws.fragment[s].data(), B);
      apply_activation_values(ws.fragment[s], Activation::kTanh);
    }
    for (std::size_t b = 0; b < B; ++b) {
      const auto& g = *graphs[b];
      for (int dn = 0; dn < g.num_devices(); ++dn) {
        const std::size_t col =
            static_cast<std::size_t>(ws.device_offset[b] + dn);
        for (std::size_t f = 0; f < g.device_features[dn].size(); ++f) {
          ws.enc_in[f * D + col] = g.device_features[dn][f];
        }
      }
    }
    enc_device->forward_values_batch(ws.enc_in.data(), ws.device.data(), D);
    apply_activation_values(ws.device, Activation::kTanh);

    fit_rows(ws.fragment_prev, S, h * B);
    fit_rows(ws.service_at_step, S, h * B);
    ws.hs.resize(h * B);
    ws.h_next.resize(h * B);
    ws.m_c.resize(2 * h * B);
    ws.device_prev.resize(h * D);
    ws.m_d.resize(2 * h * D);
    ws.messages.resize(2 * h * M);
    const bool use_attention = config.attention_aggregation && any_multi;
    if (use_attention) {
      ws.joints.resize(3 * h * M);
      ws.att_act.resize(h * M);
      ws.transformed.resize(2 * h * M);
      ws.scores.resize(M);
    }

    const double head_scale = 1.0 / static_cast<double>(attention.size());
    for (int n = 0; n < config.iterations; ++n) {
      for (std::size_t s = 0; s < S; ++s) {
        ws.fragment_prev[s].assign(ws.fragment[s].begin(),
                                   ws.fragment[s].end());
      }
      ws.device_prev.assign(ws.device.begin(), ws.device.end());

      // Chain pass: one GEMM with B columns per execution step.
      for (std::size_t i = 0; i < C; ++i) {
        ws.hs.assign(ws.service[i].begin(), ws.service[i].end());
        for (int s : g0.sequences[static_cast<int>(i)]) {
          const auto su = static_cast<std::size_t>(s);
          // m_c = [fragment_prev || device_prev]: top block is a straight
          // panel copy, bottom block gathers each placement's device
          // column.
          std::copy(ws.fragment_prev[su].begin(), ws.fragment_prev[su].end(),
                    ws.m_c.begin());
          const int* cols = ws.device_col.data() + su * B;
          for (std::size_t r = 0; r < h; ++r) {
            const double* src = ws.device_prev.data() + r * D;
            double* dst = ws.m_c.data() + (h + r) * B;
            for (std::size_t b = 0; b < B; ++b) dst[b] = src[cols[b]];
          }
          phi_c->forward_values_batch(ws.hs.data(), ws.m_c.data(),
                                      ws.h_next.data(), B, ws.gru);
          ws.hs.swap(ws.h_next);
          ws.service_at_step[su].assign(ws.hs.begin(), ws.hs.end());
          // m_f = [h || device_prev]: the bottom block is unchanged.
          std::copy(ws.hs.begin(), ws.hs.end(), ws.m_c.begin());
          phi_f->forward_values_batch(ws.fragment_prev[su].data(),
                                      ws.m_c.data(), ws.fragment[su].data(),
                                      B, ws.gru);
        }
        ws.service[i].assign(ws.hs.begin(), ws.hs.end());
      }

      // Device pass. Gather every (placement, step) message into one
      // [2H x M] panel...
      for (std::size_t r = 0; r < h; ++r) {
        double* top = ws.messages.data() + r * M;
        double* bot = ws.messages.data() + (h + r) * M;
        for (std::size_t m = 0; m < M; ++m) {
          const std::size_t idx =
              r * B + static_cast<std::size_t>(ws.msg_b[m]);
          top[m] = ws.service_at_step[ws.msg_step[m]][idx];
          bot[m] = ws.fragment_prev[ws.msg_step[m]][idx];
        }
      }
      // ... aggregate per group into the m_d panel ...
      for (const BatchWorkspace::Group& grp : ws.groups) {
        double* dst = ws.m_d.data() + grp.col;
        if (grp.count == 1) {
          const double* src = ws.messages.data() + grp.start;
          for (std::size_t r = 0; r < 2 * h; ++r) dst[r * D] = src[r * M];
        } else if (!config.attention_aggregation) {
          const double inv = 1.0 / static_cast<double>(grp.count);
          for (std::size_t r = 0; r < 2 * h; ++r) {
            const double* src = ws.messages.data() + r * M + grp.start;
            double acc = 0.0;
            for (int t = 0; t < grp.count; ++t) acc += src[t];
            dst[r * D] = acc * inv;
          }
        } else {
          for (std::size_t r = 0; r < 2 * h; ++r) dst[r * D] = 0.0;
        }
      }
      if (use_attention) {
        // Joints [h_k || m_t] for eq. 15, batched over all M messages.
        for (std::size_t r = 0; r < h; ++r) {
          const double* src = ws.device_prev.data() + r * D;
          double* dst = ws.joints.data() + r * M;
          for (std::size_t m = 0; m < M; ++m) {
            dst[m] = src[ws.msg_col[m]];
          }
        }
        std::copy(ws.messages.begin(), ws.messages.end(),
                  ws.joints.begin() + static_cast<std::ptrdiff_t>(h * M));
        for (const auto& head : attention) {
          // Scores (eq. 15): one GEMM over all messages, LeakyReLU, then
          // a column-wise alpha dot (ascending j, matching the scalar
          // path's accumulation order).
          kernels::gemm(head.w_att.value().data(), nullptr,
                        ws.joints.data(), ws.att_act.data(), h, 3 * h, M);
          for (auto& v : ws.att_act) v = v > 0.0 ? v : 0.2 * v;
          std::fill(ws.scores.begin(), ws.scores.end(), 0.0);
          const auto alpha = head.alpha.value();
          for (std::size_t j = 0; j < h; ++j) {
            const double a = alpha[j];
            const double* row = ws.att_act.data() + j * M;
            for (std::size_t m = 0; m < M; ++m) ws.scores[m] += a * row[m];
          }
          kernels::gemm(head.w_msg.value().data(), nullptr,
                        ws.messages.data(), ws.transformed.data(), 2 * h,
                        2 * h, M);
          // Per-group stable softmax + weighted accumulation, in the
          // scalar path's exact (head, t) order per device column.
          for (const BatchWorkspace::Group& grp : ws.groups) {
            if (grp.count <= 1) continue;
            double* sc = ws.scores.data() + grp.start;
            double max_score = sc[0];
            for (int t = 0; t < grp.count; ++t) {
              max_score = std::max(max_score, sc[t]);
            }
            double denom = 0.0;
            for (int t = 0; t < grp.count; ++t) {
              sc[t] = std::exp(sc[t] - max_score);
              denom += sc[t];
            }
            double* dst = ws.m_d.data() + grp.col;
            for (int t = 0; t < grp.count; ++t) {
              const double wgt = head_scale * sc[t] / denom;
              const double* src =
                  ws.transformed.data() + grp.start + static_cast<std::size_t>(t);
              for (std::size_t r = 0; r < 2 * h; ++r) {
                dst[r * D] += wgt * src[r * M];
              }
            }
          }
        }
      }
      // ... and one GRU GEMM over all D device instances.
      phi_d->forward_values_batch(ws.device_prev.data(), ws.m_d.data(),
                                  ws.device.data(), D, ws.gru);
    }

    // Readout over C*B columns (eq. 12).
    const std::size_t CB = C * B;
    ws.readout_in.resize(h * CB);
    ws.readout_out.resize(CB);
    for (std::size_t i = 0; i < C; ++i) {
      for (std::size_t r = 0; r < h; ++r) {
        std::copy_n(ws.service[i].data() + r * B, B,
                    ws.readout_in.data() + r * CB + i * B);
      }
    }
    mlp_tput->forward_values_batch(ws.readout_in.data(),
                                   ws.readout_out.data(), CB, ws.mlp);
    std::vector<std::vector<gnn::ChainValues>> outputs(B);
    for (std::size_t b = 0; b < B; ++b) outputs[b].resize(C);
    for (std::size_t i = 0; i < C; ++i) {
      for (std::size_t b = 0; b < B; ++b) {
        outputs[b][i].throughput = ws.readout_out[i * B + b];
        outputs[b][i].has_throughput = true;
      }
    }
    for (std::size_t i = 0; i < C; ++i) {
      const auto& seq = g0.sequences[static_cast<int>(i)];
      for (std::size_t r = 0; r < h; ++r) {
        double* dst = ws.readout_in.data() + r * CB + i * B;
        std::fill_n(dst, B, 0.0);
        for (int s : seq) {
          const double* f =
              ws.fragment[static_cast<std::size_t>(s)].data() + r * B;
          for (std::size_t b = 0; b < B; ++b) dst[b] += f[b];
        }
        if (config.modified_outputs) {
          const double inv = 1.0 / static_cast<double>(seq.size());
          for (std::size_t b = 0; b < B; ++b) dst[b] *= inv;
        }
      }
    }
    mlp_latency->forward_values_batch(ws.readout_in.data(),
                                      ws.readout_out.data(), CB, ws.mlp);
    for (std::size_t i = 0; i < C; ++i) {
      for (std::size_t b = 0; b < B; ++b) {
        outputs[b][i].latency = ws.readout_out[i * B + b];
        outputs[b][i].has_latency = true;
      }
    }
    return outputs;
  }

  // ------------------------------------------------------------------
  // Plan executor (PR 7). The interpreted walks above re-derive the op
  // order per call; replay_scalar / replay_batch instead run a flat op
  // list compiled once per (topology, shape, width) — see gnn/plan.h —
  // over the same kernels, with every buffer an offset into one arena.
  // The fragment/device panels are double-buffered across iterations
  // (offsets baked per iteration by the compiler), which deletes the
  // interpreted path's per-iteration snapshot copies; everything else is
  // the identical kernel-call sequence, so replay is bit-for-bit equal to
  // the reference executor (plan_test, bench_infer parity gate).

  /// Plans resolve through this cache; EvalService / ModelRegistry inject
  /// a shared one so all workers reuse each other's compiles.
  std::shared_ptr<gnn::PlanCache> plan_cache_ =
      std::make_shared<gnn::PlanCache>();
  /// Tiny per-model memo in front of the cache: the hot loop re-evaluates
  /// one system at a handful of widths, and the memo answers those without
  /// taking the shard lock. FIFO, capacity kPlanMemoCap.
  static constexpr std::size_t kPlanMemoCap = 8;
  std::vector<std::shared_ptr<const gnn::Plan>> plan_memo_;

  /// Replay-time state: the plan arena plus the placement-dependent device
  /// geometry bound per batch replay (the same tables the interpreted
  /// batch path rebuilds every call).
  struct PlanExec {
    Vec arena;
    std::vector<int> device_offset, device_col;
    std::vector<int> msg_step, msg_b, msg_col;
    std::vector<BatchWorkspace::Group> groups;
    bool any_multi = false;
  };
  PlanExec px_;

  gnn::PlanShape plan_shape() const {
    gnn::PlanShape shape;
    shape.hidden = config.hidden;
    shape.iterations = config.iterations;
    shape.attention_heads = config.attention_heads;
    shape.modified_outputs = config.modified_outputs;
    shape.attention_aggregation = config.attention_aggregation;
    shape.dtype = config.dtype;
    return shape;
  }

  std::shared_ptr<const gnn::Plan> plan_for(const PlacementGraph& g,
                                            int width) {
    const gnn::PlanShape shape = plan_shape();
    for (auto it = plan_memo_.rbegin(); it != plan_memo_.rend(); ++it) {
      if (gnn::plan_key_matches((*it)->key, g, shape, width)) return *it;
    }
    auto plan = plan_cache_->lookup_or_compile(g, shape, width);
    if (plan_memo_.size() >= kPlanMemoCap) {
      plan_memo_.erase(plan_memo_.begin());
    }
    plan_memo_.push_back(plan);
    return plan;
  }

  /// GRU step over arena spans, dispatched like gru_values.
  void gru_span(const GruCell& cell, std::span<const double> h,
                std::span<const double> x, std::span<double> out) {
    if (config.fused_kernels) {
      cell.forward_values(h, x, out, ws_.gru);
    } else {
      cell.forward_values_reference(h, x, out, ws_.gru);
    }
  }

  /// f_multi over contiguous message rows (stride 2H); arithmetic mirrors
  /// aggregate_device_messages_values line for line so replay stays
  /// bit-identical to the reference executor.
  void aggregate_device_messages_flat(std::span<const double> device_prev,
                                      const double* msgs, std::size_t count,
                                      std::span<double> out) {
    const std::size_t two_h = out.size();
    if (count == 1) {
      std::copy_n(msgs, two_h, out.data());
      return;
    }
    if (!config.attention_aggregation) {
      std::fill(out.begin(), out.end(), 0.0);
      for (std::size_t t = 0; t < count; ++t) {
        const double* m = msgs + t * two_h;
        for (std::size_t j = 0; j < two_h; ++j) out[j] += m[j];
      }
      const double inv = 1.0 / static_cast<double>(count);
      for (auto& v : out) v *= inv;
      return;
    }
    const std::size_t h = device_prev.size();
    std::fill(out.begin(), out.end(), 0.0);
    Vec& joint = ws_.joint;
    Vec& act = ws_.act;
    Vec& weights = ws_.att_weights;
    Vec& transformed = ws_.transformed;
    joint.resize(3 * h);
    act.resize(h);
    weights.resize(count);
    transformed.resize(two_h);
    std::copy(device_prev.begin(), device_prev.end(), joint.begin());
    for (const auto& head : attention) {
      for (std::size_t t = 0; t < count; ++t) {
        const double* m = msgs + t * two_h;
        std::copy_n(m, two_h, joint.begin() + static_cast<std::ptrdiff_t>(h));
        matvec_values(head.w_att.value(), joint, act);
        for (auto& v : act) v = v > 0.0 ? v : 0.2 * v;  // LeakyReLU(0.2)
        double score = 0.0;
        const auto alpha = head.alpha.value();
        for (std::size_t j = 0; j < h; ++j) score += alpha[j] * act[j];
        weights[t] = score;
      }
      double max_score = weights.front();
      for (double s : weights) max_score = std::max(max_score, s);
      double denom = 0.0;
      for (auto& s : weights) {
        s = std::exp(s - max_score);
        denom += s;
      }
      const double head_scale = 1.0 / static_cast<double>(attention.size());
      for (std::size_t t = 0; t < count; ++t) {
        matvec_values(head.w_msg.value(),
                      std::span<const double>(msgs + t * two_h, two_h),
                      transformed);
        const double wgt = head_scale * weights[t] / denom;
        for (std::size_t j = 0; j < two_h; ++j) {
          out[j] += wgt * transformed[j];
        }
      }
    }
  }

  void fit_arena(std::int64_t elems) {
    // Grow-only: alternating widths through one model must not thrash.
    if (px_.arena.size() < static_cast<std::size_t>(elems)) {
      px_.arena.resize(static_cast<std::size_t>(elems));
    }
  }

  std::vector<gnn::ChainValues> replay_scalar(const PlacementGraph& g) {
    const auto plan = plan_for(g, 1);
    const gnn::Plan& p = *plan;
    const gnn::PlanLayout& L = p.layout;
    const auto h = static_cast<std::size_t>(config.hidden);
    fit_arena(p.meta.scratch_elems);
    double* A = px_.arena.data();
    const std::span<double> m_c(A + L.m_c, 2 * h);
    std::vector<gnn::ChainValues> outputs(
        static_cast<std::size_t>(g.num_chains));
    for (const gnn::PlanOp& op : p.ops) {
      switch (op.kind) {
        case gnn::PlanOpKind::kEncodeService: {
          const std::span<double> out(A + op.out, h);
          enc_service->forward_values(
              g.service_features[static_cast<std::size_t>(op.a)], out);
          apply_activation_values(out, Activation::kTanh);
          break;
        }
        case gnn::PlanOpKind::kEncodeFragment: {
          const std::span<double> out(A + op.out, h);
          enc_fragment->forward_values(
              g.fragment_features[static_cast<std::size_t>(op.a)], out);
          apply_activation_values(out, Activation::kTanh);
          break;
        }
        case gnn::PlanOpKind::kEncodeDevices: {
          const auto nd = static_cast<std::size_t>(g.num_devices());
          for (std::size_t dn = 0; dn < nd; ++dn) {
            const std::span<double> out(A + op.out + dn * h, h);
            enc_device->forward_values(g.device_features[dn], out);
            apply_activation_values(out, Activation::kTanh);
          }
          break;
        }
        case gnn::PlanOpKind::kGruChainStep: {
          // m_c = [fragment_prev || device_prev] (eq. 6), phi_c into the
          // step's sas row (eq. 4), then m_f reuses the bottom half and
          // phi_f writes the fragment row of the opposite buffer (eq. 7).
          const auto dn = static_cast<std::size_t>(
              g.steps[static_cast<std::size_t>(op.a)].device_node);
          std::copy_n(A + op.in1, h, m_c.data());
          std::copy_n(A + op.aux + dn * h, h, m_c.data() + h);
          double* sas_row =
              A + L.sas + static_cast<std::size_t>(op.a) * h;
          // Stage the carried chain state: for a single-step chain the
          // carried row IS this step's sas row, and the GRU forbids
          // h aliasing h_out.
          std::copy_n(A + op.in0, h, A + L.hs);
          gru_span(*phi_c, std::span<const double>(A + L.hs, h), m_c,
                   std::span<double>(sas_row, h));
          std::copy_n(sas_row, h, m_c.data());
          gru_span(*phi_f, std::span<const double>(A + op.in1, h), m_c,
                   std::span<double>(A + op.out, h));
          break;
        }
        case gnn::PlanOpKind::kDevicePass: {
          const auto nd = static_cast<std::size_t>(g.num_devices());
          const std::span<double> m_d(A + L.m_d, 2 * h);
          for (std::size_t dn = 0; dn < nd; ++dn) {
            const auto& steps = g.device_node_steps[dn];
            for (std::size_t t = 0; t < steps.size(); ++t) {
              const auto su = static_cast<std::size_t>(steps[t]);
              double* row = A + L.dmsgs + t * 2 * h;
              std::copy_n(A + L.sas + su * h, h, row);
              std::copy_n(A + op.in0 + su * h, h, row + h);
            }
            aggregate_device_messages_flat(
                std::span<const double>(A + op.in1 + dn * h, h),
                A + L.dmsgs, steps.size(), m_d);
            gru_span(*phi_d,
                     std::span<const double>(A + op.in1 + dn * h, h), m_d,
                     std::span<double>(A + op.out + dn * h, h));
          }
          break;
        }
        case gnn::PlanOpKind::kReadout: {
          const auto iu = static_cast<std::size_t>(op.a);
          const std::span<double> scalar(A + L.scalar_out, 1);
          mlp_tput->forward_values(std::span<const double>(A + op.in0, h),
                                   scalar, ws_.mlp);
          outputs[iu].throughput = scalar[0];
          outputs[iu].has_throughput = true;
          double* hl = A + L.h_latency;
          std::fill_n(hl, h, 0.0);
          const auto& seq = p.key.topology.sequences[iu];
          for (int s : seq) {
            const double* f = A + op.in1 + static_cast<std::size_t>(s) * h;
            for (std::size_t j = 0; j < h; ++j) hl[j] += f[j];
          }
          if (config.modified_outputs) {
            const double inv = 1.0 / static_cast<double>(seq.size());
            for (std::size_t j = 0; j < h; ++j) hl[j] *= inv;
          }
          mlp_latency->forward_values(std::span<const double>(hl, h), scalar,
                                      ws_.mlp);
          outputs[iu].latency = scalar[0];
          outputs[iu].has_latency = true;
          break;
        }
        default:
          throw std::logic_error("batch op in a width-1 plan");
      }
    }
    return outputs;
  }

  /// Binds the placement-dependent device geometry for a batch replay:
  /// identical tables (and construction order) to the interpreted batch
  /// path's per-call bookkeeping.
  void bind_batch(std::span<const PlacementGraph* const> graphs) {
    const std::size_t B = graphs.size();
    const PlacementGraph& g0 = *graphs.front();
    const auto S = static_cast<std::size_t>(g0.num_fragments());
    px_.device_offset.resize(B + 1);
    px_.device_offset[0] = 0;
    for (std::size_t b = 0; b < B; ++b) {
      px_.device_offset[b + 1] =
          px_.device_offset[b] + graphs[b]->num_devices();
    }
    px_.device_col.resize(S * B);
    for (std::size_t b = 0; b < B; ++b) {
      for (std::size_t s = 0; s < S; ++s) {
        px_.device_col[s * B + b] =
            px_.device_offset[b] + graphs[b]->steps[s].device_node;
      }
    }
    const std::size_t M = S * B;
    px_.msg_step.resize(M);
    px_.msg_b.resize(M);
    px_.msg_col.resize(M);
    px_.groups.clear();
    px_.any_multi = false;
    int m = 0;
    for (std::size_t b = 0; b < B; ++b) {
      const auto& g = *graphs[b];
      for (int dn = 0; dn < g.num_devices(); ++dn) {
        const auto& steps = g.device_node_steps[dn];
        px_.groups.push_back(BatchWorkspace::Group{
            m, static_cast<int>(steps.size()), px_.device_offset[b] + dn});
        px_.any_multi |= steps.size() > 1;
        for (int sid : steps) {
          px_.msg_step[static_cast<std::size_t>(m)] = sid;
          px_.msg_b[static_cast<std::size_t>(m)] = static_cast<int>(b);
          px_.msg_col[static_cast<std::size_t>(m)] =
              px_.device_offset[b] + dn;
          ++m;
        }
      }
    }
  }

  std::vector<std::vector<gnn::ChainValues>> replay_batch(
      std::span<const PlacementGraph* const> graphs) {
    const std::size_t B = graphs.size();
    const PlacementGraph& g0 = *graphs.front();
    const auto plan = plan_for(g0, static_cast<int>(B));
    const gnn::Plan& p = *plan;
    const gnn::PlanLayout& L = p.layout;
    bind_batch(graphs);
    const auto h = static_cast<std::size_t>(config.hidden);
    const auto C = static_cast<std::size_t>(g0.num_chains);
    const auto S = static_cast<std::size_t>(g0.num_fragments());
    const std::size_t hW = h * B;
    const auto D = static_cast<std::size_t>(px_.device_offset[B]);
    const std::size_t M = S * B;
    const bool use_attention = config.attention_aggregation && px_.any_multi;
    const double head_scale = 1.0 / static_cast<double>(attention.size());
    fit_arena(p.meta.scratch_elems);
    double* A = px_.arena.data();
    std::vector<std::vector<gnn::ChainValues>> outputs(B);
    for (std::size_t b = 0; b < B; ++b) outputs[b].resize(C);
    for (const gnn::PlanOp& op : p.ops) {
      switch (op.kind) {
        case gnn::PlanOpKind::kBatchEncodeService: {
          double* enc_in = A + L.enc_in;
          const auto iu = static_cast<std::size_t>(op.a);
          const std::size_t dim = g0.service_features[iu].size();
          for (std::size_t f = 0; f < dim; ++f) {
            for (std::size_t b = 0; b < B; ++b) {
              enc_in[f * B + b] = graphs[b]->service_features[iu][f];
            }
          }
          enc_service->forward_values_batch(enc_in, A + op.out, B);
          apply_activation_values(std::span<double>(A + op.out, hW),
                                  Activation::kTanh);
          break;
        }
        case gnn::PlanOpKind::kBatchEncodeFragment: {
          double* enc_in = A + L.enc_in;
          const auto su = static_cast<std::size_t>(op.a);
          const std::size_t dim = g0.fragment_features[su].size();
          for (std::size_t f = 0; f < dim; ++f) {
            for (std::size_t b = 0; b < B; ++b) {
              enc_in[f * B + b] = graphs[b]->fragment_features[su][f];
            }
          }
          enc_fragment->forward_values_batch(enc_in, A + op.out, B);
          apply_activation_values(std::span<double>(A + op.out, hW),
                                  Activation::kTanh);
          break;
        }
        case gnn::PlanOpKind::kBatchEncodeDevices: {
          double* enc_in = A + L.enc_in;
          for (std::size_t b = 0; b < B; ++b) {
            const auto& g = *graphs[b];
            for (int dn = 0; dn < g.num_devices(); ++dn) {
              const std::size_t col =
                  static_cast<std::size_t>(px_.device_offset[b] + dn);
              for (std::size_t f = 0; f < g.device_features[dn].size();
                   ++f) {
                enc_in[f * D + col] = g.device_features[dn][f];
              }
            }
          }
          enc_device->forward_values_batch(enc_in, A + op.out, D);
          apply_activation_values(std::span<double>(A + op.out, h * D),
                                  Activation::kTanh);
          break;
        }
        case gnn::PlanOpKind::kBatchGruChainStep: {
          const auto su = static_cast<std::size_t>(op.a);
          double* m_c = A + L.m_c;
          std::copy_n(A + op.in1, hW, m_c);
          const int* cols = px_.device_col.data() + su * B;
          for (std::size_t r = 0; r < h; ++r) {
            const double* src = A + op.aux + r * D;
            double* dst = m_c + (h + r) * B;
            for (std::size_t b = 0; b < B; ++b) dst[b] = src[cols[b]];
          }
          double* sas_row = A + L.sas + su * hW;
          // Stage the carried chain state (see replay_scalar): a
          // single-step chain's carried panel is this sas panel, and the
          // batched GRU forbids h aliasing h_out.
          std::copy_n(A + op.in0, hW, A + L.hs);
          phi_c->forward_values_batch(A + L.hs, m_c, sas_row, B, bws_.gru);
          std::copy_n(sas_row, hW, m_c);
          phi_f->forward_values_batch(A + op.in1, m_c, A + op.out, B,
                                      bws_.gru);
          break;
        }
        case gnn::PlanOpKind::kBatchGatherMessages: {
          const double* sas = A + L.sas;
          const double* fr = A + op.in0;
          for (std::size_t r = 0; r < h; ++r) {
            double* top = A + L.messages + r * M;
            double* bot = A + L.messages + (h + r) * M;
            for (std::size_t m = 0; m < M; ++m) {
              const auto step = static_cast<std::size_t>(px_.msg_step[m]);
              const std::size_t idx =
                  r * B + static_cast<std::size_t>(px_.msg_b[m]);
              top[m] = sas[step * hW + idx];
              bot[m] = fr[step * hW + idx];
            }
          }
          break;
        }
        case gnn::PlanOpKind::kBatchAggregateInit: {
          for (const BatchWorkspace::Group& grp : px_.groups) {
            double* dst = A + L.m_d + grp.col;
            if (grp.count == 1) {
              const double* src = A + L.messages + grp.start;
              for (std::size_t r = 0; r < 2 * h; ++r) dst[r * D] = src[r * M];
            } else if (!config.attention_aggregation) {
              const double inv = 1.0 / static_cast<double>(grp.count);
              for (std::size_t r = 0; r < 2 * h; ++r) {
                const double* src = A + L.messages + r * M + grp.start;
                double acc = 0.0;
                for (int t = 0; t < grp.count; ++t) acc += src[t];
                dst[r * D] = acc * inv;
              }
            } else {
              for (std::size_t r = 0; r < 2 * h; ++r) dst[r * D] = 0.0;
            }
          }
          break;
        }
        case gnn::PlanOpKind::kBatchAttentionJoints: {
          // No multi-step device anywhere in the batch: every group was
          // fully aggregated by the count==1 copies, skip the attention
          // panels entirely (matches the interpreted use_attention gate).
          if (!use_attention) break;
          for (std::size_t r = 0; r < h; ++r) {
            const double* src = A + op.in1 + r * D;
            double* dst = A + L.joints + r * M;
            for (std::size_t m = 0; m < M; ++m) {
              dst[m] = src[px_.msg_col[m]];
            }
          }
          std::copy_n(A + L.messages, 2 * h * M, A + L.joints + h * M);
          break;
        }
        case gnn::PlanOpKind::kBatchAttentionHead: {
          if (!use_attention) break;
          const auto& head = attention[static_cast<std::size_t>(op.a)];
          double* att_act = A + L.att_act;
          double* scores = A + L.scores;
          kernels::gemm(head.w_att.value().data(), nullptr, A + L.joints,
                        att_act, h, 3 * h, M);
          for (std::size_t j = 0; j < h * M; ++j) {
            att_act[j] = att_act[j] > 0.0 ? att_act[j] : 0.2 * att_act[j];
          }
          std::fill_n(scores, M, 0.0);
          const auto alpha = head.alpha.value();
          for (std::size_t j = 0; j < h; ++j) {
            const double a = alpha[j];
            const double* row = att_act + j * M;
            for (std::size_t m = 0; m < M; ++m) scores[m] += a * row[m];
          }
          kernels::gemm(head.w_msg.value().data(), nullptr, A + L.messages,
                        A + L.transformed, 2 * h, 2 * h, M);
          for (const BatchWorkspace::Group& grp : px_.groups) {
            if (grp.count <= 1) continue;
            double* sc = scores + grp.start;
            double max_score = sc[0];
            for (int t = 0; t < grp.count; ++t) {
              max_score = std::max(max_score, sc[t]);
            }
            double denom = 0.0;
            for (int t = 0; t < grp.count; ++t) {
              sc[t] = std::exp(sc[t] - max_score);
              denom += sc[t];
            }
            double* dst = A + L.m_d + grp.col;
            for (int t = 0; t < grp.count; ++t) {
              const double wgt = head_scale * sc[t] / denom;
              const double* src = A + L.transformed + grp.start +
                                  static_cast<std::size_t>(t);
              for (std::size_t r = 0; r < 2 * h; ++r) {
                dst[r * D] += wgt * src[r * M];
              }
            }
          }
          break;
        }
        case gnn::PlanOpKind::kBatchGruDevice: {
          phi_d->forward_values_batch(A + op.in0, A + L.m_d, A + op.out, D,
                                      bws_.gru);
          break;
        }
        case gnn::PlanOpKind::kBatchReadout: {
          const std::size_t CB = C * B;
          double* ro_in = A + L.readout_in;
          double* ro_out = A + L.readout_out;
          for (std::size_t i = 0; i < C; ++i) {
            const double* src = A + p.chain_final[i];
            for (std::size_t r = 0; r < h; ++r) {
              std::copy_n(src + r * B, B, ro_in + r * CB + i * B);
            }
          }
          mlp_tput->forward_values_batch(ro_in, ro_out, CB, bws_.mlp);
          for (std::size_t i = 0; i < C; ++i) {
            for (std::size_t b = 0; b < B; ++b) {
              outputs[b][i].throughput = ro_out[i * B + b];
              outputs[b][i].has_throughput = true;
            }
          }
          for (std::size_t i = 0; i < C; ++i) {
            const auto& seq = p.key.topology.sequences[i];
            for (std::size_t r = 0; r < h; ++r) {
              double* dst = ro_in + r * CB + i * B;
              std::fill_n(dst, B, 0.0);
              for (int s : seq) {
                const double* f =
                    A + op.in1 + static_cast<std::size_t>(s) * hW + r * B;
                for (std::size_t b = 0; b < B; ++b) dst[b] += f[b];
              }
              if (config.modified_outputs) {
                const double inv = 1.0 / static_cast<double>(seq.size());
                for (std::size_t b = 0; b < B; ++b) dst[b] *= inv;
              }
            }
          }
          mlp_latency->forward_values_batch(ro_in, ro_out, CB, bws_.mlp);
          for (std::size_t i = 0; i < C; ++i) {
            for (std::size_t b = 0; b < B; ++b) {
              outputs[b][i].latency = ro_out[i * B + b];
              outputs[b][i].has_latency = true;
            }
          }
          break;
        }
        default:
          throw std::logic_error("scalar op in a batched plan");
      }
    }
    return outputs;
  }

  // ------------------------------------------------------------------
  // Reduced-precision replay tier (DESIGN.md §15). replay_scalar_f32 /
  // replay_batch_f32 are line-for-line float mirrors of the f64 executors
  // above — deliberately duplicated rather than templated so the f64 path
  // stays textually untouched (its bit-identity to the pre-tier engine is
  // part of the serving contract). Differences from the f64 mirrors:
  //  * all arithmetic and storage is float; weights come from the lazily
  //    converted caches (nn.h) and the per-head caches below, bf16-rounded
  //    when config.dtype is kBf16 (weights only — activations and graph
  //    features stay plain f32);
  //  * the tier always dispatches the fused kernel table (there is no
  //    pre-fusion f32 reference path; within-tier parity is pinned by
  //    kernels_f32_test instead);
  //  * outputs widen to double only at the ChainValues boundary.
  // The tier is gated on ranking fidelity against f64, not bit parity
  // (bench_infer rank gate).

  using VecF = std::vector<float>;

  /// Lazily converted f32 copy of one attention parameter, version-checked
  /// like the nn-layer weight caches.
  struct VarF32 {
    VecF data;
    std::uint64_t version = 0;
    DType storage = DType::kF32;
    bool ready = false;
  };
  /// Per-head caches, ordered [w_att, alpha, w_msg] like AttentionHead.
  std::vector<std::array<VarF32, 3>> attention_f32_;

  const float* var_f32(const Var& v, VarF32& cache) {
    const std::uint64_t ver = v.node().version;
    if (cache.ready && cache.storage == config.dtype &&
        cache.version == ver) {
      return cache.data.data();
    }
    const auto src = v.value();
    cache.data.resize(src.size());
    if (config.dtype == DType::kBf16) {
      for (std::size_t i = 0; i < src.size(); ++i) {
        cache.data[i] = bf16_round(static_cast<float>(src[i]));
      }
    } else {
      for (std::size_t i = 0; i < src.size(); ++i) {
        cache.data[i] = static_cast<float>(src[i]);
      }
    }
    cache.version = ver;
    cache.storage = config.dtype;
    cache.ready = true;
    return cache.data.data();
  }

  std::array<VarF32, 3>& head_cache(std::size_t head) {
    if (attention_f32_.size() < attention.size()) {
      attention_f32_.resize(attention.size());
    }
    return attention_f32_[head];
  }

  /// f32-tier replay state: the float arena plus the scalar path's small
  /// staging buffers. Geometry tables are dtype-independent and shared
  /// through px_ (bind_batch).
  struct PlanExecF32 {
    VecF arena;
    VecF feat;  ///< converted graph-feature staging row
    VecF joint, act, weights, transformed;  ///< scalar attention scratch
  };
  PlanExecF32 pxf_;

  void fit_arena_f32(std::int64_t elems) {
    if (pxf_.arena.size() < static_cast<std::size_t>(elems)) {
      pxf_.arena.resize(static_cast<std::size_t>(elems));
    }
  }

  /// Graph features are published as doubles; the f32 tier narrows them on
  /// the way into the encoders (plain round-to-nearest, never bf16).
  std::span<const float> feat_f32(std::span<const double> src) {
    pxf_.feat.resize(src.size());
    for (std::size_t i = 0; i < src.size(); ++i) {
      pxf_.feat[i] = static_cast<float>(src[i]);
    }
    return {pxf_.feat.data(), src.size()};
  }

  void gru_span_f32(const GruCell& cell, std::span<const float> h,
                    std::span<const float> x, std::span<float> out) {
    cell.forward_values(h, x, out, ws_.gru, config.dtype);
  }

  /// Float mirror of aggregate_device_messages_flat.
  void aggregate_device_messages_flat_f32(std::span<const float> device_prev,
                                          const float* msgs,
                                          std::size_t count,
                                          std::span<float> out) {
    const std::size_t two_h = out.size();
    if (count == 1) {
      std::copy_n(msgs, two_h, out.data());
      return;
    }
    if (!config.attention_aggregation) {
      std::fill(out.begin(), out.end(), 0.0f);
      for (std::size_t t = 0; t < count; ++t) {
        const float* m = msgs + t * two_h;
        for (std::size_t j = 0; j < two_h; ++j) out[j] += m[j];
      }
      const float inv = 1.0f / static_cast<float>(count);
      for (auto& v : out) v *= inv;
      return;
    }
    const std::size_t h = device_prev.size();
    std::fill(out.begin(), out.end(), 0.0f);
    VecF& joint = pxf_.joint;
    VecF& act = pxf_.act;
    VecF& weights = pxf_.weights;
    VecF& transformed = pxf_.transformed;
    joint.resize(3 * h);
    act.resize(h);
    weights.resize(count);
    transformed.resize(two_h);
    std::copy(device_prev.begin(), device_prev.end(), joint.begin());
    for (std::size_t a = 0; a < attention.size(); ++a) {
      auto& cache = head_cache(a);
      const float* w_att = var_f32(attention[a].w_att, cache[0]);
      const float* alpha = var_f32(attention[a].alpha, cache[1]);
      const float* w_msg = var_f32(attention[a].w_msg, cache[2]);
      for (std::size_t t = 0; t < count; ++t) {
        const float* m = msgs + t * two_h;
        std::copy_n(m, two_h, joint.begin() + static_cast<std::ptrdiff_t>(h));
        kernels::gemv(w_att, nullptr, joint.data(), act.data(), h, 3 * h);
        for (auto& v : act) v = v > 0.0f ? v : 0.2f * v;  // LeakyReLU(0.2)
        float score = 0.0f;
        for (std::size_t j = 0; j < h; ++j) score += alpha[j] * act[j];
        weights[t] = score;
      }
      float max_score = weights.front();
      for (float s : weights) max_score = std::max(max_score, s);
      float denom = 0.0f;
      for (auto& s : weights) {
        s = std::exp(s - max_score);
        denom += s;
      }
      const float head_scale = 1.0f / static_cast<float>(attention.size());
      for (std::size_t t = 0; t < count; ++t) {
        kernels::gemv(w_msg, nullptr, msgs + t * two_h, transformed.data(),
                      two_h, two_h);
        const float wgt = head_scale * weights[t] / denom;
        for (std::size_t j = 0; j < two_h; ++j) {
          out[j] += wgt * transformed[j];
        }
      }
    }
  }

  std::vector<gnn::ChainValues> replay_scalar_f32(const PlacementGraph& g) {
    const auto plan = plan_for(g, 1);
    const gnn::Plan& p = *plan;
    const gnn::PlanLayout& L = p.layout;
    const auto h = static_cast<std::size_t>(config.hidden);
    fit_arena_f32(p.meta.scratch_elems);
    float* A = pxf_.arena.data();
    const std::span<float> m_c(A + L.m_c, 2 * h);
    std::vector<gnn::ChainValues> outputs(
        static_cast<std::size_t>(g.num_chains));
    for (const gnn::PlanOp& op : p.ops) {
      switch (op.kind) {
        case gnn::PlanOpKind::kEncodeService: {
          const std::span<float> out(A + op.out, h);
          enc_service->forward_values(
              feat_f32(g.service_features[static_cast<std::size_t>(op.a)]),
              out, config.dtype);
          apply_activation_values(out, Activation::kTanh);
          break;
        }
        case gnn::PlanOpKind::kEncodeFragment: {
          const std::span<float> out(A + op.out, h);
          enc_fragment->forward_values(
              feat_f32(g.fragment_features[static_cast<std::size_t>(op.a)]),
              out, config.dtype);
          apply_activation_values(out, Activation::kTanh);
          break;
        }
        case gnn::PlanOpKind::kEncodeDevices: {
          const auto nd = static_cast<std::size_t>(g.num_devices());
          for (std::size_t dn = 0; dn < nd; ++dn) {
            const std::span<float> out(A + op.out + dn * h, h);
            enc_device->forward_values(feat_f32(g.device_features[dn]), out,
                                       config.dtype);
            apply_activation_values(out, Activation::kTanh);
          }
          break;
        }
        case gnn::PlanOpKind::kGruChainStep: {
          const auto dn = static_cast<std::size_t>(
              g.steps[static_cast<std::size_t>(op.a)].device_node);
          std::copy_n(A + op.in1, h, m_c.data());
          std::copy_n(A + op.aux + dn * h, h, m_c.data() + h);
          float* sas_row = A + L.sas + static_cast<std::size_t>(op.a) * h;
          std::copy_n(A + op.in0, h, A + L.hs);
          gru_span_f32(*phi_c, std::span<const float>(A + L.hs, h), m_c,
                       std::span<float>(sas_row, h));
          std::copy_n(sas_row, h, m_c.data());
          gru_span_f32(*phi_f, std::span<const float>(A + op.in1, h), m_c,
                       std::span<float>(A + op.out, h));
          break;
        }
        case gnn::PlanOpKind::kDevicePass: {
          const auto nd = static_cast<std::size_t>(g.num_devices());
          const std::span<float> m_d(A + L.m_d, 2 * h);
          for (std::size_t dn = 0; dn < nd; ++dn) {
            const auto& steps = g.device_node_steps[dn];
            for (std::size_t t = 0; t < steps.size(); ++t) {
              const auto su = static_cast<std::size_t>(steps[t]);
              float* row = A + L.dmsgs + t * 2 * h;
              std::copy_n(A + L.sas + su * h, h, row);
              std::copy_n(A + op.in0 + su * h, h, row + h);
            }
            aggregate_device_messages_flat_f32(
                std::span<const float>(A + op.in1 + dn * h, h), A + L.dmsgs,
                steps.size(), m_d);
            gru_span_f32(*phi_d,
                         std::span<const float>(A + op.in1 + dn * h, h), m_d,
                         std::span<float>(A + op.out + dn * h, h));
          }
          break;
        }
        case gnn::PlanOpKind::kReadout: {
          const auto iu = static_cast<std::size_t>(op.a);
          const std::span<float> scalar(A + L.scalar_out, 1);
          mlp_tput->forward_values(std::span<const float>(A + op.in0, h),
                                   scalar, ws_.mlp, config.dtype);
          outputs[iu].throughput = static_cast<double>(scalar[0]);
          outputs[iu].has_throughput = true;
          float* hl = A + L.h_latency;
          std::fill_n(hl, h, 0.0f);
          const auto& seq = p.key.topology.sequences[iu];
          for (int s : seq) {
            const float* f = A + op.in1 + static_cast<std::size_t>(s) * h;
            for (std::size_t j = 0; j < h; ++j) hl[j] += f[j];
          }
          if (config.modified_outputs) {
            const float inv = 1.0f / static_cast<float>(seq.size());
            for (std::size_t j = 0; j < h; ++j) hl[j] *= inv;
          }
          mlp_latency->forward_values(std::span<const float>(hl, h), scalar,
                                      ws_.mlp, config.dtype);
          outputs[iu].latency = static_cast<double>(scalar[0]);
          outputs[iu].has_latency = true;
          break;
        }
        default:
          throw std::logic_error("batch op in a width-1 plan");
      }
    }
    return outputs;
  }

  std::vector<std::vector<gnn::ChainValues>> replay_batch_f32(
      std::span<const PlacementGraph* const> graphs) {
    const std::size_t B = graphs.size();
    const PlacementGraph& g0 = *graphs.front();
    const auto plan = plan_for(g0, static_cast<int>(B));
    const gnn::Plan& p = *plan;
    const gnn::PlanLayout& L = p.layout;
    bind_batch(graphs);
    const auto h = static_cast<std::size_t>(config.hidden);
    const auto C = static_cast<std::size_t>(g0.num_chains);
    const auto S = static_cast<std::size_t>(g0.num_fragments());
    const std::size_t hW = h * B;
    const auto D = static_cast<std::size_t>(px_.device_offset[B]);
    const std::size_t M = S * B;
    const bool use_attention = config.attention_aggregation && px_.any_multi;
    const float head_scale = 1.0f / static_cast<float>(attention.size());
    fit_arena_f32(p.meta.scratch_elems);
    float* A = pxf_.arena.data();
    std::vector<std::vector<gnn::ChainValues>> outputs(B);
    for (std::size_t b = 0; b < B; ++b) outputs[b].resize(C);
    for (const gnn::PlanOp& op : p.ops) {
      switch (op.kind) {
        case gnn::PlanOpKind::kBatchEncodeService: {
          float* enc_in = A + L.enc_in;
          const auto iu = static_cast<std::size_t>(op.a);
          const std::size_t dim = g0.service_features[iu].size();
          for (std::size_t f = 0; f < dim; ++f) {
            for (std::size_t b = 0; b < B; ++b) {
              enc_in[f * B + b] =
                  static_cast<float>(graphs[b]->service_features[iu][f]);
            }
          }
          enc_service->forward_values_batch(enc_in, A + op.out, B,
                                            config.dtype);
          apply_activation_values(std::span<float>(A + op.out, hW),
                                  Activation::kTanh);
          break;
        }
        case gnn::PlanOpKind::kBatchEncodeFragment: {
          float* enc_in = A + L.enc_in;
          const auto su = static_cast<std::size_t>(op.a);
          const std::size_t dim = g0.fragment_features[su].size();
          for (std::size_t f = 0; f < dim; ++f) {
            for (std::size_t b = 0; b < B; ++b) {
              enc_in[f * B + b] =
                  static_cast<float>(graphs[b]->fragment_features[su][f]);
            }
          }
          enc_fragment->forward_values_batch(enc_in, A + op.out, B,
                                             config.dtype);
          apply_activation_values(std::span<float>(A + op.out, hW),
                                  Activation::kTanh);
          break;
        }
        case gnn::PlanOpKind::kBatchEncodeDevices: {
          float* enc_in = A + L.enc_in;
          for (std::size_t b = 0; b < B; ++b) {
            const auto& g = *graphs[b];
            for (int dn = 0; dn < g.num_devices(); ++dn) {
              const std::size_t col =
                  static_cast<std::size_t>(px_.device_offset[b] + dn);
              for (std::size_t f = 0; f < g.device_features[dn].size();
                   ++f) {
                enc_in[f * D + col] =
                    static_cast<float>(g.device_features[dn][f]);
              }
            }
          }
          enc_device->forward_values_batch(enc_in, A + op.out, D,
                                           config.dtype);
          apply_activation_values(std::span<float>(A + op.out, h * D),
                                  Activation::kTanh);
          break;
        }
        case gnn::PlanOpKind::kBatchGruChainStep: {
          const auto su = static_cast<std::size_t>(op.a);
          float* m_c = A + L.m_c;
          std::copy_n(A + op.in1, hW, m_c);
          const int* cols = px_.device_col.data() + su * B;
          for (std::size_t r = 0; r < h; ++r) {
            const float* src = A + op.aux + r * D;
            float* dst = m_c + (h + r) * B;
            for (std::size_t b = 0; b < B; ++b) dst[b] = src[cols[b]];
          }
          float* sas_row = A + L.sas + su * hW;
          std::copy_n(A + op.in0, hW, A + L.hs);
          phi_c->forward_values_batch(A + L.hs, m_c, sas_row, B, bws_.gru,
                                      config.dtype);
          std::copy_n(sas_row, hW, m_c);
          phi_f->forward_values_batch(A + op.in1, m_c, A + op.out, B,
                                      bws_.gru, config.dtype);
          break;
        }
        case gnn::PlanOpKind::kBatchGatherMessages: {
          const float* sas = A + L.sas;
          const float* fr = A + op.in0;
          for (std::size_t r = 0; r < h; ++r) {
            float* top = A + L.messages + r * M;
            float* bot = A + L.messages + (h + r) * M;
            for (std::size_t m = 0; m < M; ++m) {
              const auto step = static_cast<std::size_t>(px_.msg_step[m]);
              const std::size_t idx =
                  r * B + static_cast<std::size_t>(px_.msg_b[m]);
              top[m] = sas[step * hW + idx];
              bot[m] = fr[step * hW + idx];
            }
          }
          break;
        }
        case gnn::PlanOpKind::kBatchAggregateInit: {
          for (const BatchWorkspace::Group& grp : px_.groups) {
            float* dst = A + L.m_d + grp.col;
            if (grp.count == 1) {
              const float* src = A + L.messages + grp.start;
              for (std::size_t r = 0; r < 2 * h; ++r) dst[r * D] = src[r * M];
            } else if (!config.attention_aggregation) {
              const float inv = 1.0f / static_cast<float>(grp.count);
              for (std::size_t r = 0; r < 2 * h; ++r) {
                const float* src = A + L.messages + r * M + grp.start;
                float acc = 0.0f;
                for (int t = 0; t < grp.count; ++t) acc += src[t];
                dst[r * D] = acc * inv;
              }
            } else {
              for (std::size_t r = 0; r < 2 * h; ++r) dst[r * D] = 0.0f;
            }
          }
          break;
        }
        case gnn::PlanOpKind::kBatchAttentionJoints: {
          if (!use_attention) break;
          for (std::size_t r = 0; r < h; ++r) {
            const float* src = A + op.in1 + r * D;
            float* dst = A + L.joints + r * M;
            for (std::size_t m = 0; m < M; ++m) {
              dst[m] = src[px_.msg_col[m]];
            }
          }
          std::copy_n(A + L.messages, 2 * h * M, A + L.joints + h * M);
          break;
        }
        case gnn::PlanOpKind::kBatchAttentionHead: {
          if (!use_attention) break;
          const auto a = static_cast<std::size_t>(op.a);
          auto& cache = head_cache(a);
          const float* w_att = var_f32(attention[a].w_att, cache[0]);
          const float* alpha = var_f32(attention[a].alpha, cache[1]);
          const float* w_msg = var_f32(attention[a].w_msg, cache[2]);
          float* att_act = A + L.att_act;
          float* scores = A + L.scores;
          kernels::gemm(w_att, nullptr, A + L.joints, att_act, h, 3 * h, M);
          for (std::size_t j = 0; j < h * M; ++j) {
            att_act[j] = att_act[j] > 0.0f ? att_act[j] : 0.2f * att_act[j];
          }
          std::fill_n(scores, M, 0.0f);
          for (std::size_t j = 0; j < h; ++j) {
            const float av = alpha[j];
            const float* row = att_act + j * M;
            for (std::size_t m = 0; m < M; ++m) scores[m] += av * row[m];
          }
          kernels::gemm(w_msg, nullptr, A + L.messages, A + L.transformed,
                        2 * h, 2 * h, M);
          for (const BatchWorkspace::Group& grp : px_.groups) {
            if (grp.count <= 1) continue;
            float* sc = scores + grp.start;
            float max_score = sc[0];
            for (int t = 0; t < grp.count; ++t) {
              max_score = std::max(max_score, sc[t]);
            }
            float denom = 0.0f;
            for (int t = 0; t < grp.count; ++t) {
              sc[t] = std::exp(sc[t] - max_score);
              denom += sc[t];
            }
            float* dst = A + L.m_d + grp.col;
            for (int t = 0; t < grp.count; ++t) {
              const float wgt = head_scale * sc[t] / denom;
              const float* src = A + L.transformed + grp.start +
                                 static_cast<std::size_t>(t);
              for (std::size_t r = 0; r < 2 * h; ++r) {
                dst[r * D] += wgt * src[r * M];
              }
            }
          }
          break;
        }
        case gnn::PlanOpKind::kBatchGruDevice: {
          phi_d->forward_values_batch(A + op.in0, A + L.m_d, A + op.out, D,
                                      bws_.gru, config.dtype);
          break;
        }
        case gnn::PlanOpKind::kBatchReadout: {
          const std::size_t CB = C * B;
          float* ro_in = A + L.readout_in;
          float* ro_out = A + L.readout_out;
          for (std::size_t i = 0; i < C; ++i) {
            const float* src = A + p.chain_final[i];
            for (std::size_t r = 0; r < h; ++r) {
              std::copy_n(src + r * B, B, ro_in + r * CB + i * B);
            }
          }
          mlp_tput->forward_values_batch(ro_in, ro_out, CB, bws_.mlp,
                                         config.dtype);
          for (std::size_t i = 0; i < C; ++i) {
            for (std::size_t b = 0; b < B; ++b) {
              outputs[b][i].throughput =
                  static_cast<double>(ro_out[i * B + b]);
              outputs[b][i].has_throughput = true;
            }
          }
          for (std::size_t i = 0; i < C; ++i) {
            const auto& seq = p.key.topology.sequences[i];
            for (std::size_t r = 0; r < h; ++r) {
              float* dst = ro_in + r * CB + i * B;
              std::fill_n(dst, B, 0.0f);
              for (int s : seq) {
                const float* f =
                    A + op.in1 + static_cast<std::size_t>(s) * hW + r * B;
                for (std::size_t b = 0; b < B; ++b) dst[b] += f[b];
              }
              if (config.modified_outputs) {
                const float inv = 1.0f / static_cast<float>(seq.size());
                for (std::size_t b = 0; b < B; ++b) dst[b] *= inv;
              }
            }
          }
          mlp_latency->forward_values_batch(ro_in, ro_out, CB, bws_.mlp,
                                            config.dtype);
          for (std::size_t i = 0; i < C; ++i) {
            for (std::size_t b = 0; b < B; ++b) {
              outputs[b][i].latency = static_cast<double>(ro_out[i * B + b]);
              outputs[b][i].has_latency = true;
            }
          }
          break;
        }
        default:
          throw std::logic_error("scalar op in a batched plan");
      }
    }
    return outputs;
  }
};

namespace {

/// CHAINNET_INTERPRET selects the interpreted reference executor. Checked
/// per call (not cached) so tests can flip it around individual forwards;
/// empty and "0" mean off.
bool interpret_env() {
  const char* v = std::getenv("CHAINNET_INTERPRET");
  if (v == nullptr || v[0] == '\0') return false;
  return !(v[0] == '0' && v[1] == '\0');
}

}  // namespace

ChainNet::ChainNet(const ChainNetConfig& config, Rng& rng)
    : impl_(std::make_unique<Impl>(config, rng)) {
  register_module("chainnet", impl_.get());
}

ChainNet::~ChainNet() = default;

std::vector<ChainOutput> ChainNet::forward(const PlacementGraph& g) {
  return impl_->run(g);
}

std::vector<gnn::ChainValues> ChainNet::forward_values(
    const PlacementGraph& g) {
  // The interpreted reference walk is f64-only: CHAINNET_INTERPRET forces
  // the full-precision reference regardless of the configured tier.
  if (interpret_env()) return impl_->run_values_interpreted(g);
  if (impl_->config.dtype != tensor::DType::kF64) {
    return impl_->replay_scalar_f32(g);
  }
  return impl_->replay_scalar(g);
}

std::vector<std::vector<gnn::ChainValues>> ChainNet::forward_values_batch(
    std::span<const PlacementGraph* const> graphs) {
  gnn::validate_same_system_batch(graphs);
  if (interpret_env()) return impl_->run_values_batch_interpreted(graphs);
  // Width 1 is exactly the scalar plan; skip the batch binding.
  if (impl_->config.dtype != tensor::DType::kF64) {
    if (graphs.size() == 1) return {impl_->replay_scalar_f32(*graphs.front())};
    return impl_->replay_batch_f32(graphs);
  }
  if (graphs.size() == 1) return {impl_->replay_scalar(*graphs.front())};
  return impl_->replay_batch(graphs);
}

std::vector<gnn::ChainValues> ChainNet::forward_values_interpreted(
    const PlacementGraph& g) {
  return impl_->run_values_interpreted(g);
}

std::vector<std::vector<gnn::ChainValues>>
ChainNet::forward_values_batch_interpreted(
    std::span<const PlacementGraph* const> graphs) {
  return impl_->run_values_batch_interpreted(graphs);
}

void ChainNet::set_plan_cache(std::shared_ptr<gnn::PlanCache> cache) {
  impl_->plan_cache_ = cache != nullptr ? std::move(cache)
                                        : std::make_shared<gnn::PlanCache>();
  impl_->plan_memo_.clear();
}

std::shared_ptr<gnn::PlanCache> ChainNet::plan_cache() const {
  return impl_->plan_cache_;
}

tensor::DType ChainNet::dtype() const { return impl_->config.dtype; }

FeatureMode ChainNet::feature_mode() const {
  return impl_->config.modified_inputs ? FeatureMode::kModified
                                       : FeatureMode::kOriginal;
}

bool ChainNet::ratio_outputs() const { return impl_->config.modified_outputs; }

std::string ChainNet::name() const {
  const auto& c = impl_->config;
  if (c.modified_inputs && c.modified_outputs) {
    return c.attention_aggregation ? "ChainNet" : "ChainNet-noattn";
  }
  if (!c.modified_inputs && !c.modified_outputs) return "ChainNet-alpha";
  if (c.modified_inputs) return "ChainNet-beta";
  return "ChainNet-delta";
}

const ChainNetConfig& ChainNet::config() const { return impl_->config; }

}  // namespace chainnet::core
