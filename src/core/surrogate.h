// Thin convenience wrapper turning any trained GraphModel into a placement
// evaluator: builds the graph for a candidate placement and returns the
// predicted physical performance. This is the object the surrogate
// optimization program of §VII plugs into its search loop.
#pragma once

#include "edge/model.h"
#include "edge/placement.h"
#include "gnn/model.h"

namespace chainnet::core {

class Surrogate {
 public:
  /// The model must outlive the surrogate. Prediction goes through
  /// GraphModel::forward_values, which either avoids the autodiff tape
  /// entirely (ChainNet's raw-buffer path) or frames the pass so the
  /// thread-local tape is rewound per call — a Surrogate can therefore be
  /// driven from a runtime::EvalService worker indefinitely without growing
  /// that worker's tape. Use one Surrogate+model pair per thread; the model
  /// holds mutable inference workspace.
  explicit Surrogate(gnn::GraphModel& model) : model_(&model) {}

  /// Per-chain predicted throughput and latency for a candidate placement.
  std::vector<gnn::ChainPerf> predict(const edge::EdgeSystem& system,
                                      const edge::Placement& placement) const;

  /// Predicted objective of eq. (2): sum of per-chain throughputs.
  double total_throughput(const edge::EdgeSystem& system,
                          const edge::Placement& placement) const;

  gnn::GraphModel& model() const { return *model_; }

 private:
  gnn::GraphModel* model_;
};

}  // namespace chainnet::core
