// Thin convenience wrapper turning any trained GraphModel into a placement
// evaluator: builds the graph for a candidate placement and returns the
// predicted physical performance. This is the object the surrogate
// optimization program of §VII plugs into its search loop.
#pragma once

#include "edge/model.h"
#include "edge/placement.h"
#include "gnn/model.h"

namespace chainnet::core {

class Surrogate {
 public:
  /// The model must outlive the surrogate.
  explicit Surrogate(gnn::GraphModel& model) : model_(&model) {}

  /// Per-chain predicted throughput and latency for a candidate placement.
  std::vector<gnn::ChainPerf> predict(const edge::EdgeSystem& system,
                                      const edge::Placement& placement) const;

  /// Predicted objective of eq. (2): sum of per-chain throughputs.
  double total_throughput(const edge::EdgeSystem& system,
                          const edge::Placement& placement) const;

  gnn::GraphModel& model() const { return *model_; }

 private:
  gnn::GraphModel* model_;
};

}  // namespace chainnet::core
