// Thin convenience wrapper turning any trained GraphModel into a placement
// evaluator: builds the graph for a candidate placement and returns the
// predicted physical performance. This is the object the surrogate
// optimization program of §VII plugs into its search loop.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "edge/graph.h"
#include "edge/model.h"
#include "edge/placement.h"
#include "gnn/model.h"

namespace chainnet::core {

class Surrogate {
 public:
  /// The model must outlive the surrogate. Prediction goes through
  /// GraphModel::forward_values, which either avoids the autodiff tape
  /// entirely (ChainNet's raw-buffer path) or frames the pass so the
  /// thread-local tape is rewound per call — a Surrogate can therefore be
  /// driven from a runtime::EvalService worker indefinitely without growing
  /// that worker's tape. Use one Surrogate+model pair per thread; the model
  /// and the surrogate's graph workspaces hold mutable inference state.
  explicit Surrogate(gnn::GraphModel& model) : model_(&model) {}

  /// Per-chain predicted throughput and latency for a candidate placement.
  /// The candidate's graph is rebuilt into a reused workspace, so repeated
  /// predictions allocate nothing once warm.
  std::vector<gnn::ChainPerf> predict(const edge::EdgeSystem& system,
                                      const edge::Placement& placement) const;

  /// Batched prediction over candidate placements of one system, routed
  /// through GraphModel::forward_values_batch (ChainNet lock-steps them
  /// through Algorithm 2 as GEMMs with B columns). result[b] matches
  /// predict(system, placements[b]) bit-for-bit.
  std::vector<std::vector<gnn::ChainPerf>> predict_batch(
      const edge::EdgeSystem& system,
      std::span<const edge::Placement> placements) const;

  /// Tape-building variant for gradient-needing callers: runs
  /// model().forward() on the candidate's graph and returns the raw
  /// target-space outputs. No tape frame is created here — the caller owns
  /// tape lifetime (wrap the call in a tensor::Tape::Frame and extract
  /// values/gradients before releasing it). The returned Vars reference the
  /// graph built into this surrogate's workspace, valid until the next
  /// predict* call.
  std::vector<gnn::ChainOutput> predict_with_tape(
      const edge::EdgeSystem& system,
      const edge::Placement& placement) const;

  /// Predicted objective of eq. (2): sum of per-chain throughputs.
  double total_throughput(const edge::EdgeSystem& system,
                          const edge::Placement& placement) const;

  /// Batched objective: out[b] = total_throughput(system, placements[b]),
  /// bit-for-bit, through the batched forward pass. `out` must have
  /// placements.size() elements.
  void total_throughput_batch(const edge::EdgeSystem& system,
                              std::span<const edge::Placement> placements,
                              std::span<double> out) const;

  /// Routes a shared compiled-plan cache to the wrapped model (no-op for
  /// models without a compiled executor). The surrogate itself keys plans
  /// implicitly: its GraphWorkspace rebuilds graphs of one system, and the
  /// model resolves the plan for that topology through this cache.
  void set_plan_cache(std::shared_ptr<gnn::PlanCache> cache) const {
    model_->set_plan_cache(std::move(cache));
  }

  gnn::GraphModel& model() const { return *model_; }

 private:
  gnn::GraphModel* model_;
  // Reused graph-construction buffers (see edge::GraphWorkspace): one for
  // the scalar path, one per batch lane. Mutable because prediction is
  // logically const; the surrogate is single-threaded by contract.
  mutable edge::GraphWorkspace ws_;
  mutable std::vector<edge::GraphWorkspace> batch_ws_;
  mutable std::vector<const edge::PlacementGraph*> graph_ptrs_;
};

}  // namespace chainnet::core
