// ChainNet — the paper's customized GNN surrogate (Sections V and VI).
//
// The model follows Algorithm 2 exactly:
//  * per-type encoders initialize service / fragment / device embeddings
//    from the Table-II features;
//  * each of N iterations walks every chain's execution sequence, updating
//    the recurrent service embedding with GRU phi_C (eq. 4-6) and the
//    fragment embedding with GRU phi_F (eq. 7-8), all messages read from
//    the previous iteration's fragment/device snapshots;
//  * device embeddings are then updated with GRU phi_D (eq. 9-10); a device
//    shared by F_k > 1 execution steps aggregates its per-step messages
//    with the multi-head attention f_multi of eq. 14-16;
//  * after the last iteration, MLP_tput reads the final service embedding
//    and MLP_latency reads the mean (or sum, when output modifications are
//    ablated) of the chain's fragment embeddings (eq. 12, Fig. 7).
//
// The ablation switches reproduce Table VI / Fig. 13:
//    ChainNet       : modified_inputs = true,  modified_outputs = true
//    ChainNet-alpha : modified_inputs = false, modified_outputs = false
//    ChainNet-beta  : modified_inputs = true,  modified_outputs = false
//    ChainNet-delta : modified_inputs = false, modified_outputs = true
#pragma once

#include <memory>

#include "gnn/model.h"
#include "support/rng.h"

namespace chainnet::core {

struct ChainNetConfig {
  int hidden = 32;      ///< embedding width (paper: 64)
  int iterations = 4;   ///< message-passing iterations N (paper: 8)
  int attention_heads = 2;  ///< heads of f_multi (Table IV)
  bool modified_inputs = true;   ///< Table II input ("md") features
  bool modified_outputs = true;  ///< ratio targets + mean latency readout
  /// Extra (non-paper) ablation: replace the attention of eq. 14-16 with a
  /// plain mean over per-step device messages.
  bool attention_aggregation = true;
  /// Dispatch inference through the packed/blocked kernels (kernels.h).
  /// `false` re-runs the pre-fusion naive GEMV path — kept as the
  /// bit-parity oracle and the bench_infer baseline; numerically the two
  /// are identical (same per-element accumulation order).
  bool fused_kernels = true;
  /// Numeric tier for the inference-only paths (tensor/dtype.h). kF64
  /// replays plans in double — bit-identical to the pre-tier engine and to
  /// the interpreted walk. kF32/kBf16 replay through the f32 kernel table
  /// over lazily converted weight caches; those tiers are gated on ranking
  /// fidelity, not bit parity (DESIGN.md §15). Training (forward()) and
  /// the interpreted reference always run in f64 regardless.
  tensor::DType dtype = tensor::DType::kF64;

  static ChainNetConfig paper() {
    ChainNetConfig c;
    c.hidden = 64;
    c.iterations = 8;
    return c;
  }
  static ChainNetConfig ablation_alpha() {
    ChainNetConfig c;
    c.modified_inputs = false;
    c.modified_outputs = false;
    return c;
  }
  static ChainNetConfig ablation_beta() {
    ChainNetConfig c;
    c.modified_outputs = false;
    return c;
  }
  static ChainNetConfig ablation_delta() {
    ChainNetConfig c;
    c.modified_inputs = false;
    return c;
  }
};

class ChainNet final : public gnn::GraphModel {
 public:
  ChainNet(const ChainNetConfig& config, support::Rng& rng);
  ~ChainNet() override;

  std::vector<gnn::ChainOutput> forward(
      const edge::PlacementGraph& g) override;
  /// Allocation-light inference path (no autodiff graph); used by the
  /// surrogate optimizer's hot loop. Replays a compiled execution plan
  /// (gnn/plan.h) resolved through the installed PlanCache; set
  /// CHAINNET_INTERPRET=1 to dispatch to the interpreted reference walk
  /// instead. Matches forward() numerically — see the ChainNetFastInference
  /// tests — and the interpreted walk bit for bit (plan_test).
  std::vector<gnn::ChainValues> forward_values(
      const edge::PlacementGraph& g) override;
  /// Lock-stepped batched inference over B placements of the same system:
  /// per-chain hidden states are packed batch-major so every GRU update of
  /// Algorithm 2 is one GEMM with B columns, attention is scored across
  /// all device messages of the whole batch at once, and the readout MLPs
  /// run over C*B columns. Column b is bit-identical to forward_values on
  /// graphs[b] (pinned by chainnet_batch_test). Replays the width-B
  /// compiled plan; CHAINNET_INTERPRET=1 selects the interpreted walk.
  std::vector<std::vector<gnn::ChainValues>> forward_values_batch(
      std::span<const edge::PlacementGraph* const> graphs) override;

  /// Reference executor: the interpreted Algorithm-2 graph walk the plans
  /// are compiled from. Kept public so the parity gates (plan_test,
  /// bench_infer) can cross-check replay against it explicitly; production
  /// callers go through forward_values[_batch] (lint rule
  /// R7-plan-discipline).
  std::vector<gnn::ChainValues> forward_values_interpreted(
      const edge::PlacementGraph& g);
  std::vector<std::vector<gnn::ChainValues>> forward_values_batch_interpreted(
      std::span<const edge::PlacementGraph* const> graphs);

  /// Swaps in a shared plan cache (nullptr restores a private one). The
  /// per-model plan memo is dropped so subsequent forwards resolve through
  /// the new cache.
  void set_plan_cache(std::shared_ptr<gnn::PlanCache> cache) override;
  std::shared_ptr<gnn::PlanCache> plan_cache() const override;

  /// The configured numeric tier (ChainNetConfig::dtype).
  tensor::DType dtype() const override;

  edge::FeatureMode feature_mode() const override;
  bool ratio_outputs() const override;
  std::string name() const override;

  const ChainNetConfig& config() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace chainnet::core
