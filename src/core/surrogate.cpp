#include "core/surrogate.h"

namespace chainnet::core {

std::vector<gnn::ChainPerf> Surrogate::predict(
    const edge::EdgeSystem& system, const edge::Placement& placement) const {
  const auto& graph =
      edge::build_graph(system, placement, model_->feature_mode(), ws_);
  return gnn::predict_physical(*model_, graph);
}

std::vector<std::vector<gnn::ChainPerf>> Surrogate::predict_batch(
    const edge::EdgeSystem& system,
    std::span<const edge::Placement> placements) const {
  if (batch_ws_.size() < placements.size()) {
    batch_ws_.resize(placements.size());
  }
  graph_ptrs_.clear();
  for (std::size_t b = 0; b < placements.size(); ++b) {
    graph_ptrs_.push_back(&edge::build_graph(
        system, placements[b], model_->feature_mode(), batch_ws_[b]));
  }
  return gnn::predict_physical_batch(*model_, graph_ptrs_);
}

std::vector<gnn::ChainOutput> Surrogate::predict_with_tape(
    const edge::EdgeSystem& system, const edge::Placement& placement) const {
  const auto& graph =
      edge::build_graph(system, placement, model_->feature_mode(), ws_);
  return model_->forward(graph);
}

double Surrogate::total_throughput(const edge::EdgeSystem& system,
                                   const edge::Placement& placement) const {
  double total = 0.0;
  for (const auto& perf : predict(system, placement)) {
    total += perf.throughput;
  }
  return total;
}

void Surrogate::total_throughput_batch(
    const edge::EdgeSystem& system,
    std::span<const edge::Placement> placements, std::span<double> out) const {
  const auto perfs = predict_batch(system, placements);
  for (std::size_t b = 0; b < perfs.size(); ++b) {
    double total = 0.0;
    for (const auto& perf : perfs[b]) total += perf.throughput;
    out[b] = total;
  }
}

}  // namespace chainnet::core
