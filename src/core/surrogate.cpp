#include "core/surrogate.h"

#include "edge/graph.h"

namespace chainnet::core {

std::vector<gnn::ChainPerf> Surrogate::predict(
    const edge::EdgeSystem& system, const edge::Placement& placement) const {
  const auto graph =
      edge::build_graph(system, placement, model_->feature_mode());
  return gnn::predict_physical(*model_, graph);
}

double Surrogate::total_throughput(const edge::EdgeSystem& system,
                                   const edge::Placement& placement) const {
  double total = 0.0;
  for (const auto& perf : predict(system, placement)) {
    total += perf.throughput;
  }
  return total;
}

}  // namespace chainnet::core
