// JSON (de)serialization of the deployment domain — the file format the
// CLI tool speaks, so users can describe their own fleets and services.
//
// System document:
// {
//   "devices": [{"name": "pi-0", "memory": 512, "rate": 1.5}, ...],
//   "chains": [{"name": "vision", "arrival_rate": 2.0,
//               "fragments": [{"memory": 1, "compute": 0.5}, ...]}, ...]
// }
//
// Placement document:
// {"assignment": [[0, 1, 2], [1, 3]]}   // device per fragment, per chain
#pragma once

#include <string>

#include "edge/model.h"
#include "edge/placement.h"
#include "support/json.h"

namespace chainnet::edge {

support::Json to_json(const EdgeSystem& system);
support::Json to_json(const Placement& placement);

/// Throws support::JsonError on malformed documents; the resulting system
/// is validate()d before being returned.
EdgeSystem system_from_json(const support::Json& doc);
Placement placement_from_json(const support::Json& doc);

/// File helpers; throw std::runtime_error on I/O failure.
EdgeSystem load_system(const std::string& path);
Placement load_placement(const std::string& path);
void save_json(const support::Json& doc, const std::string& path);

}  // namespace chainnet::edge
