// Heterogeneous graph representation of a placement decision (paper §V-B,
// Algorithm 1, Fig. 4) together with the feature engineering of Table II.
//
// The structure is stored in the execution-step form ChainNet consumes
// (§V-C1): fragment node j and its device node joined by the placement
// edge form execution step E_j; the workflow edges order the steps of each
// chain into its execution sequence. A flat homogeneous edge list over the
// node numbering [services | fragments | devices] is also exposed for the
// GIN/GAT baselines, which treat the graph as ordinary message passing.
#pragma once

#include <vector>

#include "edge/model.h"
#include "edge/placement.h"

namespace chainnet::edge {

/// Whether node features (and prediction targets) use the generalization
/// modifications of Table II ("md" row) or the raw quantities ("ori" row,
/// the GIN*/GAT* configuration of Table V).
enum class FeatureMode { kModified, kOriginal };

inline constexpr int kServiceFeatureDim = 1;
inline constexpr int kFragmentFeatureDim = 3;
inline constexpr int kDeviceFeatureDim = 1;

/// One execution step E_j: a fragment node, its device node, and the
/// placement edge between them. Fragment nodes are identified with their
/// step index (a fragment belongs to exactly one step).
struct ExecutionStep {
  int chain = -1;        ///< service chain i
  int position = -1;     ///< 0-based position j within the chain
  int device_node = -1;  ///< index into device-node arrays (0..d-1)
  int device = -1;       ///< device index in the EdgeSystem

  bool operator==(const ExecutionStep&) const = default;
};

struct PlacementGraph {
  int num_chains = 0;

  /// chain -> its execution sequence: ordered step ids (E_1 ... E_Ti).
  std::vector<std::vector<int>> sequences;
  /// All execution steps; index = fragment-node id.
  std::vector<ExecutionStep> steps;
  /// device node -> device index in the EdgeSystem (d used devices).
  std::vector<int> device_node_device;
  /// device node -> the steps that include it (F_k of eq. 14).
  std::vector<std::vector<int>> device_node_steps;

  /// Input features per node type (Table II).
  std::vector<std::vector<double>> service_features;   ///< C x 1
  std::vector<std::vector<double>> fragment_features;  ///< sum(T_i) x 3
  std::vector<std::vector<double>> device_features;    ///< d x 1

  /// Denormalization context: lambda_i and the chain's total processing
  /// time sum_j t_p_ij under this placement. Needed to map the model's
  /// ratio outputs back to throughput/latency (Table II "md" row).
  std::vector<double> arrival_rate;
  std::vector<double> total_processing;

  int num_fragments() const { return static_cast<int>(steps.size()); }
  int num_devices() const {
    return static_cast<int>(device_node_device.size());
  }
  /// Total node count C + sum(T_i) + d — the x-axis of Fig. 12a/b.
  int num_nodes() const {
    return num_chains + num_fragments() + num_devices();
  }

  // ------------------------------------------------------------------
  // Homogeneous view for the GIN/GAT baselines. Node ids: services in
  // [0, C), fragments in [C, C + S), devices in [C + S, C + S + d).
  struct Edge {
    int src = -1;
    int dst = -1;

    bool operator==(const Edge&) const = default;
  };
  /// Directed edges per Algorithm 1: placement (fragment -> device) and
  /// workflow (device -> subsequent fragment).
  std::vector<Edge> edges;

  int service_node_id(int chain) const { return chain; }
  int fragment_node_id(int step) const { return num_chains + step; }
  int device_node_id(int device_node) const {
    return num_chains + num_fragments() + device_node;
  }

  bool operator==(const PlacementGraph&) const = default;
};

/// Reusable buffers for build_graph. Holding one per evaluation loop (the
/// Surrogate and each EvalService worker own one) makes graph construction
/// allocation-free in steady state: every vector is cleared keeping
/// capacity and refilled in place. The contained graph is valid until the
/// next build into the same workspace.
struct GraphWorkspace {
  PlacementGraph graph;
  /// device -> device-node id for the placement being built (-1 = unused);
  /// flat array sized to the system's device count, replacing the hash map
  /// a fresh build would allocate.
  std::vector<int> device_node_of;
  /// Per-device-node aggregates behind the Table II modified features.
  std::vector<double> delta_t, delta_m;
};

/// Algorithm 1 plus Table II: builds the graph and its features for a
/// complete, valid placement.
PlacementGraph build_graph(const EdgeSystem& system,
                           const Placement& placement, FeatureMode mode);

/// Same construction, rebuilding into `ws` (allocation-free once warm).
/// Returns ws.graph, which is bitwise equal to a fresh build_graph result
/// (pinned by graph_workspace_test).
const PlacementGraph& build_graph(const EdgeSystem& system,
                                  const Placement& placement,
                                  FeatureMode mode, GraphWorkspace& ws);

}  // namespace chainnet::edge
