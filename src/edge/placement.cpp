#include "edge/placement.h"

#include <algorithm>
#include <set>
#include <stdexcept>
#include <string>

namespace chainnet::edge {

Placement::Placement(const EdgeSystem& system) {
  assignment_.reserve(system.chains.size());
  for (const auto& chain : system.chains) {
    assignment_.emplace_back(chain.fragments.size(), -1);
  }
}

Placement::Placement(std::vector<std::vector<int>> assignment)
    : assignment_(std::move(assignment)) {}

bool Placement::complete() const {
  for (const auto& chain : assignment_) {
    for (int dev : chain) {
      if (dev < 0) return false;
    }
  }
  return true;
}

std::vector<int> Placement::used_devices() const {
  std::set<int> used;
  for (const auto& chain : assignment_) {
    for (int dev : chain) {
      if (dev >= 0) used.insert(dev);
    }
  }
  return {used.begin(), used.end()};
}

std::vector<std::pair<int, int>> Placement::fragments_on(int device) const {
  std::vector<std::pair<int, int>> result;
  for (int i = 0; i < num_chains(); ++i) {
    for (int j = 0; j < chain_length(i); ++j) {
      if (assignment_[i][j] == device) result.emplace_back(i, j);
    }
  }
  return result;
}

double Placement::memory_load(const EdgeSystem& system, int device) const {
  double total = 0.0;
  for (int i = 0; i < num_chains(); ++i) {
    for (int j = 0; j < chain_length(i); ++j) {
      if (assignment_[i][j] == device) {
        total += system.chains[i].fragments[j].memory_demand;
      }
    }
  }
  return total;
}

double Placement::processing_load(const EdgeSystem& system, int device) const {
  double total = 0.0;
  for (int i = 0; i < num_chains(); ++i) {
    for (int j = 0; j < chain_length(i); ++j) {
      if (assignment_[i][j] == device) {
        total += system.processing_time(i, j, device);
      }
    }
  }
  return total;
}

bool Placement::memory_feasible(const EdgeSystem& system) const {
  for (int k = 0; k < system.num_devices(); ++k) {
    if (memory_load(system, k) > system.devices[k].memory_capacity + 1e-12) {
      return false;
    }
  }
  return true;
}

bool Placement::distinct_devices_within_chains() const {
  for (const auto& chain : assignment_) {
    std::set<int> seen;
    for (int dev : chain) {
      if (dev >= 0 && !seen.insert(dev).second) return false;
    }
  }
  return true;
}

std::uint64_t Placement::canonical_hash() const noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a 64-bit offset basis
  const auto mix = [&h](std::uint32_t v) {
    for (int b = 0; b < 4; ++b) {
      h ^= (v >> (8 * b)) & 0xffu;
      h *= 0x100000001b3ULL;  // FNV prime
    }
  };
  for (const auto& chain : assignment_) {
    // Delimiter outside the device id range keeps chain shapes distinct.
    mix(0xfffffffeu);
    for (int dev : chain) mix(static_cast<std::uint32_t>(dev));
  }
  return h;
}

void Placement::validate(const EdgeSystem& system) const {
  if (num_chains() != system.num_chains()) {
    throw std::invalid_argument("Placement: chain count mismatch");
  }
  for (int i = 0; i < num_chains(); ++i) {
    if (chain_length(i) != system.chains[i].length()) {
      throw std::invalid_argument("Placement: fragment count mismatch in '" +
                                  system.chains[i].name + "'");
    }
    for (int j = 0; j < chain_length(i); ++j) {
      const int dev = assignment_[i][j];
      if (dev < 0 || dev >= system.num_devices()) {
        throw std::invalid_argument("Placement: fragment (" +
                                    std::to_string(i) + "," +
                                    std::to_string(j) +
                                    ") has invalid device");
      }
    }
  }
  if (!distinct_devices_within_chains()) {
    throw std::invalid_argument(
        "Placement: a chain places two fragments on one device");
  }
}

}  // namespace chainnet::edge
