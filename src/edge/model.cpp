#include "edge/model.h"

#include <stdexcept>

namespace chainnet::edge {

int EdgeSystem::total_fragments() const {
  int total = 0;
  for (const auto& c : chains) total += c.length();
  return total;
}

double EdgeSystem::total_arrival_rate() const {
  double total = 0.0;
  for (const auto& c : chains) total += c.arrival_rate;
  return total;
}

double EdgeSystem::processing_time(int chain, int fragment, int device) const {
  const auto& frag = chains.at(chain).fragments.at(fragment);
  const auto& dev = devices.at(device);
  return frag.compute_demand / dev.service_rate;
}

void EdgeSystem::validate() const {
  if (devices.empty()) throw std::invalid_argument("EdgeSystem: no devices");
  if (chains.empty()) throw std::invalid_argument("EdgeSystem: no chains");
  for (const auto& d : devices) {
    if (d.memory_capacity <= 0.0) {
      throw std::invalid_argument("EdgeSystem: device '" + d.name +
                                  "' has non-positive memory capacity");
    }
    if (d.service_rate <= 0.0) {
      throw std::invalid_argument("EdgeSystem: device '" + d.name +
                                  "' has non-positive service rate");
    }
  }
  for (const auto& c : chains) {
    if (c.arrival_rate <= 0.0) {
      throw std::invalid_argument("EdgeSystem: chain '" + c.name +
                                  "' has non-positive arrival rate");
    }
    if (c.fragments.empty()) {
      throw std::invalid_argument("EdgeSystem: chain '" + c.name +
                                  "' has no fragments");
    }
    for (const auto& f : c.fragments) {
      if (f.memory_demand < 0.0 || f.compute_demand <= 0.0) {
        throw std::invalid_argument("EdgeSystem: chain '" + c.name +
                                    "' has invalid fragment demands");
      }
    }
  }
}

}  // namespace chainnet::edge
