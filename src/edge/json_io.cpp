#include "edge/json_io.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace chainnet::edge {

using support::Json;

Json to_json(const EdgeSystem& system) {
  Json devices;
  for (const auto& d : system.devices) {
    Json dev;
    dev["name"] = Json(d.name);
    dev["memory"] = Json(d.memory_capacity);
    dev["rate"] = Json(d.service_rate);
    devices.push_back(std::move(dev));
  }
  Json chains;
  for (const auto& c : system.chains) {
    Json chain;
    chain["name"] = Json(c.name);
    chain["arrival_rate"] = Json(c.arrival_rate);
    Json fragments;
    for (const auto& f : c.fragments) {
      Json frag;
      frag["memory"] = Json(f.memory_demand);
      frag["compute"] = Json(f.compute_demand);
      fragments.push_back(std::move(frag));
    }
    chain["fragments"] = std::move(fragments);
    chains.push_back(std::move(chain));
  }
  Json doc;
  doc["devices"] = std::move(devices);
  doc["chains"] = std::move(chains);
  return doc;
}

Json to_json(const Placement& placement) {
  Json rows;
  for (const auto& chain : placement.assignment()) {
    Json row;
    for (int dev : chain) row.push_back(Json(dev));
    rows.push_back(std::move(row));
  }
  Json doc;
  doc["assignment"] = std::move(rows);
  return doc;
}

EdgeSystem system_from_json(const Json& doc) {
  EdgeSystem system;
  for (const auto& dev : doc.at("devices").as_array()) {
    Device d;
    d.name = dev.get_string("name",
                            "dev" + std::to_string(system.devices.size()));
    d.memory_capacity = dev.at("memory").as_number();
    d.service_rate = dev.get_number("rate", 1.0);
    system.devices.push_back(std::move(d));
  }
  for (const auto& chain : doc.at("chains").as_array()) {
    ServiceChainSpec c;
    c.name = chain.get_string(
        "name", "chain" + std::to_string(system.chains.size()));
    c.arrival_rate = chain.at("arrival_rate").as_number();
    for (const auto& frag : chain.at("fragments").as_array()) {
      FragmentSpec f;
      f.memory_demand = frag.get_number("memory", 1.0);
      f.compute_demand = frag.at("compute").as_number();
      c.fragments.push_back(f);
    }
    system.chains.push_back(std::move(c));
  }
  system.validate();
  return system;
}

Placement placement_from_json(const Json& doc) {
  std::vector<std::vector<int>> assignment;
  for (const auto& row : doc.at("assignment").as_array()) {
    std::vector<int> devices;
    for (const auto& cell : row.as_array()) {
      devices.push_back(static_cast<int>(cell.as_number()));
    }
    assignment.push_back(std::move(devices));
  }
  return Placement(std::move(assignment));
}

namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

}  // namespace

EdgeSystem load_system(const std::string& path) {
  return system_from_json(Json::parse(read_file(path)));
}

Placement load_placement(const std::string& path) {
  return placement_from_json(Json::parse(read_file(path)));
}

void save_json(const Json& doc, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open " + path);
  out << doc.dump(2) << '\n';
  if (!out) throw std::runtime_error("write failed: " + path);
}

}  // namespace chainnet::edge
