#include "edge/graph.h"

#include <stdexcept>
#include <utility>

namespace chainnet::edge {

PlacementGraph build_graph(const EdgeSystem& system,
                           const Placement& placement, FeatureMode mode) {
  GraphWorkspace ws;
  build_graph(system, placement, mode, ws);
  return std::move(ws.graph);
}

const PlacementGraph& build_graph(const EdgeSystem& system,
                                  const Placement& placement,
                                  FeatureMode mode, GraphWorkspace& ws) {
  system.validate();
  placement.validate(system);

  PlacementGraph& g = ws.graph;
  g.num_chains = system.num_chains();

  // Device nodes: one per *used* device, in ascending device order. A flat
  // device -> node array stands in for the hash map a cold build would
  // need; marking uses 1 ("used, id pending") so real ids (>= 0) can
  // overwrite it in the ascending pass.
  const int num_devices = system.num_devices();
  ws.device_node_of.assign(num_devices, -1);
  for (int i = 0; i < g.num_chains; ++i) {
    for (int j = 0; j < system.chains[i].length(); ++j) {
      ws.device_node_of[placement.device_of(i, j)] = 1;
    }
  }
  g.device_node_device.clear();
  for (int dev = 0; dev < num_devices; ++dev) {
    if (ws.device_node_of[dev] != -1) {
      ws.device_node_of[dev] = static_cast<int>(g.device_node_device.size());
      g.device_node_device.push_back(dev);
    }
  }
  const std::size_t used = g.device_node_device.size();
  for (auto& steps : g.device_node_steps) steps.clear();
  g.device_node_steps.resize(used);

  // Execution steps and sequences (Algorithm 1 lines 1-7).
  g.steps.clear();
  g.sequences.resize(g.num_chains);
  for (auto& seq : g.sequences) seq.clear();
  for (int i = 0; i < g.num_chains; ++i) {
    const auto& chain = system.chains[i];
    for (int j = 0; j < chain.length(); ++j) {
      const int dev = placement.device_of(i, j);
      const int dnode = ws.device_node_of[dev];
      const int step_id = static_cast<int>(g.steps.size());
      g.steps.push_back(ExecutionStep{i, j, dnode, dev});
      g.sequences[i].push_back(step_id);
      g.device_node_steps[dnode].push_back(step_id);
    }
  }

  // Homogeneous edges: placement (fragment -> device) and workflow
  // (device of step j -> fragment of step j+1).
  g.edges.clear();
  for (int s = 0; s < g.num_fragments(); ++s) {
    g.edges.push_back({g.fragment_node_id(s),
                       g.device_node_id(g.steps[s].device_node)});
  }
  for (int i = 0; i < g.num_chains; ++i) {
    const auto& seq = g.sequences[i];
    for (std::size_t j = 0; j + 1 < seq.size(); ++j) {
      g.edges.push_back({g.device_node_id(g.steps[seq[j]].device_node),
                         g.fragment_node_id(seq[j + 1])});
    }
  }

  // Denormalization context.
  g.arrival_rate.resize(g.num_chains);
  g.total_processing.assign(g.num_chains, 0.0);
  for (int i = 0; i < g.num_chains; ++i) {
    g.arrival_rate[i] = system.chains[i].arrival_rate;
    for (int j = 0; j < system.chains[i].length(); ++j) {
      g.total_processing[i] +=
          system.processing_time(i, j, placement.device_of(i, j));
    }
  }

  // Per-device aggregates used by the modified features.
  ws.delta_t.assign(used, 0.0);
  ws.delta_m.assign(used, 0.0);
  for (int s = 0; s < g.num_fragments(); ++s) {
    const auto& st = g.steps[s];
    ws.delta_t[st.device_node] +=
        system.processing_time(st.chain, st.position, st.device);
    ws.delta_m[st.device_node] +=
        system.chains[st.chain].fragments[st.position].memory_demand;
  }

  // Features (Table II).
  g.service_features.resize(g.num_chains);
  for (int i = 0; i < g.num_chains; ++i) {
    g.service_features[i] = {mode == FeatureMode::kModified
                                 ? 1.0
                                 : system.chains[i].arrival_rate};
  }
  g.fragment_features.resize(g.num_fragments());
  for (int s = 0; s < g.num_fragments(); ++s) {
    const auto& st = g.steps[s];
    const double tp =
        system.processing_time(st.chain, st.position, st.device);
    const double m =
        system.chains[st.chain].fragments[st.position].memory_demand;
    const double cap = system.devices[st.device].memory_capacity;
    if (mode == FeatureMode::kModified) {
      const double lambda = system.chains[st.chain].arrival_rate;
      const double dt = ws.delta_t[st.device_node];
      g.fragment_features[s] = {tp * lambda, dt > 0.0 ? tp / dt : 0.0,
                                m / cap};
    } else {
      g.fragment_features[s] = {tp, m, 0.0};
    }
  }
  g.device_features.resize(g.num_devices());
  for (int n = 0; n < g.num_devices(); ++n) {
    const double cap =
        system.devices[g.device_node_device[n]].memory_capacity;
    g.device_features[n] = {mode == FeatureMode::kModified
                                ? ws.delta_m[n] / cap
                                : cap};
  }
  return g;
}

}  // namespace chainnet::edge
