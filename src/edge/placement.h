// Placement decisions (paper eq. 1): the assignment of every fragment to a
// device, stored densely as assignment[i][j] = k. Provides the feasibility
// checks, per-device aggregates (Delta m_k, Delta t_k of Table II), and the
// structural invariants relied on by the optimizer and the graph builder.
#pragma once

#include <cstdint>
#include <vector>

#include "edge/model.h"

namespace chainnet::edge {

class Placement {
 public:
  Placement() = default;
  /// Builds an unassigned placement shaped like the system's chains
  /// (every entry -1).
  explicit Placement(const EdgeSystem& system);
  /// Builds from an explicit assignment.
  explicit Placement(std::vector<std::vector<int>> assignment);

  int device_of(int chain, int fragment) const {
    return assignment_[chain][fragment];
  }
  void assign(int chain, int fragment, int device) {
    assignment_[chain][fragment] = device;
  }

  int num_chains() const { return static_cast<int>(assignment_.size()); }
  int chain_length(int chain) const {
    return static_cast<int>(assignment_[chain].size());
  }
  const std::vector<std::vector<int>>& assignment() const {
    return assignment_;
  }

  /// True when every fragment has a device.
  bool complete() const;

  /// Devices used by at least one fragment, ascending (the paper's d used
  /// devices; d <= D).
  std::vector<int> used_devices() const;

  /// Fragments (chain, fragment index) placed on `device`.
  std::vector<std::pair<int, int>> fragments_on(int device) const;

  /// Delta m_k: total memory demand of all fragments assigned to `device`.
  double memory_load(const EdgeSystem& system, int device) const;

  /// Delta t_k: total processing time of all fragments assigned to
  /// `device` (Table II legend).
  double processing_load(const EdgeSystem& system, int device) const;

  /// Memory feasibility: Delta m_k <= M_k for every device (eq. 2).
  bool memory_feasible(const EdgeSystem& system) const;

  /// True when no two fragments of the same chain share a device (§II:
  /// "each of its fragments is executed on a separate device").
  bool distinct_devices_within_chains() const;

  /// Full structural check against the system; throws std::invalid_argument
  /// with a description of the first violation.
  void validate(const EdgeSystem& system) const;

  bool operator==(const Placement&) const = default;

  /// Canonical content hash: FNV-1a over the device assignments with a
  /// per-chain delimiter, so equal placements (operator==) hash equally and
  /// differently-shaped assignments ([[1,2],[3]] vs [[1],[2,3]]) do not
  /// collide structurally. Key of the runtime::EvalCache; callers must
  /// still confirm equality on hash matches.
  std::uint64_t canonical_hash() const noexcept;

 private:
  std::vector<std::vector<int>> assignment_;
};

}  // namespace chainnet::edge
