#include "edge/problem.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <string>

namespace chainnet::edge {

using support::AcyclicPhaseType;
using support::Distribution;
using support::Exponential;
using support::LowerBounded;
using support::Rng;
using support::Uniform;

NetworkGenParams NetworkGenParams::type1() {
  NetworkGenParams p;
  p.max_devices = 10;
  p.max_chains = 3;
  p.min_fragments = 2;
  p.max_fragments = 6;
  p.memory_capacity = 50.0;
  p.interarrival_mean = std::make_shared<Uniform>(0.1, 10.0);
  // U(0,2) with a tiny floor: a zero processing time has no queueing
  // meaning and would break the t_p-ratio features.
  p.processing_time = std::make_shared<LowerBounded>(
      std::make_unique<Uniform>(0.0, 2.0), 1e-3);
  return p;
}

NetworkGenParams NetworkGenParams::type2() {
  NetworkGenParams p;
  p.max_devices = 80;
  p.max_chains = 12;
  p.min_fragments = 2;
  p.max_fragments = 12;
  p.memory_capacity = 100.0;
  p.interarrival_mean = std::make_shared<LowerBounded>(
      std::make_unique<AcyclicPhaseType>(2.0, 5.0), 1.0);
  p.processing_time = std::make_shared<LowerBounded>(
      std::make_unique<AcyclicPhaseType>(0.1, 10.0), 0.05);
  return p;
}

namespace {

/// Draws `count` distinct integers from [0, n) uniformly (partial
/// Fisher-Yates over an index pool).
std::vector<int> sample_distinct(int n, int count, Rng& rng) {
  if (count > n) throw std::logic_error("sample_distinct: count > n");
  std::vector<int> pool(n);
  std::iota(pool.begin(), pool.end(), 0);
  for (int i = 0; i < count; ++i) {
    const auto j = rng.uniform_int(i, n - 1);
    std::swap(pool[i], pool[j]);
  }
  pool.resize(count);
  return pool;
}

}  // namespace

NetworkSample generate_network_sample(const NetworkGenParams& params,
                                      Rng& rng) {
  if (!params.interarrival_mean || !params.processing_time) {
    throw std::invalid_argument("NetworkGenParams: missing distributions");
  }
  NetworkSample sample;
  auto& sys = sample.system;

  const int num_chains =
      static_cast<int>(rng.uniform_int(1, params.max_chains));
  std::vector<int> lengths(num_chains);
  int longest = 0;
  for (auto& t : lengths) {
    t = static_cast<int>(
        rng.uniform_int(params.min_fragments, params.max_fragments));
    longest = std::max(longest, t);
  }
  // Enough devices for a distinct-device placement of the longest chain.
  const int num_devices = static_cast<int>(
      rng.uniform_int(longest, std::max(longest, params.max_devices)));

  sys.devices.reserve(num_devices);
  for (int k = 0; k < num_devices; ++k) {
    sys.devices.push_back(Device{"dev" + std::to_string(k),
                                 params.memory_capacity, 1.0});
  }
  sys.chains.reserve(num_chains);
  for (int i = 0; i < num_chains; ++i) {
    ServiceChainSpec chain;
    chain.name = "chain" + std::to_string(i);
    chain.arrival_rate = 1.0 / params.interarrival_mean->sample(rng);
    chain.fragments.reserve(lengths[i]);
    for (int j = 0; j < lengths[i]; ++j) {
      // Devices all have unit rate, so compute demand == processing time.
      chain.fragments.push_back(
          FragmentSpec{1.0, params.processing_time->sample(rng)});
    }
    sys.chains.push_back(std::move(chain));
  }

  sample.placement = Placement(sys);
  for (int i = 0; i < num_chains; ++i) {
    const auto devices = sample_distinct(num_devices, lengths[i], rng);
    for (int j = 0; j < lengths[i]; ++j) {
      sample.placement.assign(i, j, devices[j]);
    }
  }
  return sample;
}

PlacementProblemParams PlacementProblemParams::paper(int num_devices) {
  PlacementProblemParams p;
  p.num_devices = num_devices;
  return p;
}

EdgeSystem generate_placement_problem(const PlacementProblemParams& params,
                                      Rng& rng) {
  if (params.num_devices <= params.max_fragments) {
    throw std::invalid_argument(
        "generate_placement_problem: needs more devices than the longest "
        "chain (paper §VII non-triviality assumption)");
  }
  EdgeSystem sys;
  sys.devices.reserve(params.num_devices);
  Uniform service_rate(0.5, 1.0);
  for (int k = 0; k < params.num_devices; ++k) {
    sys.devices.push_back(Device{"dev" + std::to_string(k),
                                 params.memory_capacity,
                                 service_rate.sample(rng)});
  }
  LowerBounded interarrival(std::make_unique<Exponential>(1.0),
                            params.interarrival_floor);
  Uniform compute(0.01, 0.1);
  for (int i = 0; i < params.num_chains; ++i) {
    ServiceChainSpec chain;
    chain.name = "chain" + std::to_string(i);
    chain.arrival_rate = 1.0 / interarrival.sample(rng);
    const int frags = static_cast<int>(
        rng.uniform_int(params.min_fragments, params.max_fragments));
    for (int j = 0; j < frags; ++j) {
      chain.fragments.push_back(FragmentSpec{1.0, compute.sample(rng)});
    }
    sys.chains.push_back(std::move(chain));
  }
  return sys;
}

Placement random_placement(const EdgeSystem& system, Rng& rng) {
  system.validate();
  Placement placement(system);
  for (int i = 0; i < system.num_chains(); ++i) {
    const int frags = system.chains[i].length();
    if (frags > system.num_devices()) {
      throw std::invalid_argument(
          "random_placement: chain '" + system.chains[i].name +
          "' has more fragments than there are devices");
    }
    const auto devices = sample_distinct(system.num_devices(), frags, rng);
    for (int j = 0; j < frags; ++j) placement.assign(i, j, devices[j]);
  }
  return placement;
}

EdgeSystem case_study_system() {
  EdgeSystem sys;
  // Device fleet of §VIII-D; memory in KB, service rate in GFLOP/s.
  sys.devices = {
      {"orangepi-zero-0", 128.0 * 1024.0, 4.8},
      {"orangepi-zero-1", 128.0 * 1024.0, 4.8},
      {"raspberrypi-aplus-0", 256.0 * 1024.0, 0.218},
      {"raspberrypi-aplus-1", 256.0 * 1024.0, 0.218},
      {"raspberrypi-3aplus", 512.0 * 1024.0, 5.0},
  };
  // Fragment profiles per model type. Memory demands span the paper's
  // 4 KB .. 51879 KB range; compute demands (GFLOP) are synthesized so
  // that processing times on the fast devices are commensurate with the
  // 0.6-0.7 s interarrival times (see DESIGN.md, substitutions).
  struct Profile {
    const char* name;
    double interarrival;  // seconds
    std::vector<FragmentSpec> fragments;
  };
  const std::vector<Profile> profiles = {
      {"vgg16", 0.7,
       {{51879.0, 0.66}, {25600.0, 0.46}, {12800.0, 0.30}, {4096.0, 0.12}}},
      {"vgg19", 0.7,
       {{51879.0, 0.80}, {30720.0, 0.53}, {15360.0, 0.36}, {5120.0, 0.13}}},
      {"cnn28", 0.6, {{20480.0, 0.40}, {10240.0, 0.27}, {4096.0, 0.10}}},
      {"intrusion-cnn", 0.6, {{2048.0, 0.08}, {512.0, 0.04}, {4.0, 0.007}}},
  };
  for (const auto& profile : profiles) {
    for (int copy = 0; copy < 2; ++copy) {
      ServiceChainSpec chain;
      chain.name = std::string(profile.name) + "-" + std::to_string(copy);
      chain.arrival_rate = 1.0 / profile.interarrival;
      chain.fragments = profile.fragments;
      sys.chains.push_back(std::move(chain));
    }
  }
  return sys;
}

}  // namespace chainnet::edge
