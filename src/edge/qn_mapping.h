// Mapping from a placement decision to its open queueing network abstraction
// (paper Fig. 1 -> Fig. 2). Used both to generate ground truth (training
// data) and to evaluate candidate placements during simulation-based search.
#pragma once

#include "edge/model.h"
#include "edge/placement.h"
#include "queueing/network.h"

namespace chainnet::edge {

/// How per-step service times are modeled. The paper treats the system as an
/// open QN simulated in JMT; we default to exponential service with mean
/// r_ij / R_k, and expose deterministic service for sensitivity studies.
enum class ServiceModel { kExponential, kDeterministic };

/// Builds the QN for (system, placement). Stations are the *used* devices
/// (unused devices carry no traffic and are omitted, matching the graph
/// representation's d <= D device nodes). The station order matches
/// placement.used_devices().
///
/// Network transmission time is deliberately not modeled: as the paper
/// argues (§III), it acts as a pure delay and does not affect throughput or
/// per-device queueing.
queueing::QnModel build_qn(const EdgeSystem& system, const Placement& placement,
                           ServiceModel service_model = ServiceModel::kExponential);

}  // namespace chainnet::edge
