// Domain model of an edge AI service system (paper §II): heterogeneous
// devices, DNN services partitioned into chains of fragments, and the
// placement decision variables p_{i,j,k}.
#pragma once

#include <string>
#include <vector>

namespace chainnet::edge {

/// An edge device k: memory capacity M_k and service rate R_k.
struct Device {
  std::string name;
  double memory_capacity = 0.0;  ///< M_k
  double service_rate = 1.0;     ///< R_k (work units per time unit)
};

/// One DNN fragment j of a service chain: memory demand m_ij and
/// computational demand r_ij. Its processing time on device k is r_ij / R_k.
struct FragmentSpec {
  double memory_demand = 1.0;   ///< m_ij
  double compute_demand = 1.0;  ///< r_ij
};

/// A service chain i: Poisson arrivals of rate lambda_i feeding a linear
/// chain of fragments executed in order, each on a separate device.
struct ServiceChainSpec {
  std::string name;
  double arrival_rate = 1.0;  ///< lambda_i
  std::vector<FragmentSpec> fragments;

  int length() const { return static_cast<int>(fragments.size()); }
};

/// The deployable system: devices plus the services that must be placed.
struct EdgeSystem {
  std::vector<Device> devices;
  std::vector<ServiceChainSpec> chains;

  int num_devices() const { return static_cast<int>(devices.size()); }
  int num_chains() const { return static_cast<int>(chains.size()); }
  /// Sum over chains of T_i.
  int total_fragments() const;
  /// lambda_total = sum_i lambda_i (denominator of eq. 18).
  double total_arrival_rate() const;
  /// Processing time of fragment (i, j) on device k: r_ij / R_k.
  double processing_time(int chain, int fragment, int device) const;

  /// Throws std::invalid_argument on structural problems (empty chains,
  /// non-positive rates/capacities).
  void validate() const;
};

}  // namespace chainnet::edge
