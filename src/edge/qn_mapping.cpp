#include "edge/qn_mapping.h"

#include <memory>
#include <stdexcept>
#include <unordered_map>

namespace chainnet::edge {

using chainnet::support::Deterministic;
using chainnet::support::Distribution;
using chainnet::support::Exponential;

queueing::QnModel build_qn(const EdgeSystem& system,
                           const Placement& placement,
                           ServiceModel service_model) {
  system.validate();
  placement.validate(system);

  queueing::QnModel qn;
  const auto used = placement.used_devices();
  std::unordered_map<int, int> station_of;  // device index -> station index
  station_of.reserve(used.size());
  for (int dev : used) {
    station_of.emplace(dev, static_cast<int>(qn.stations.size()));
    qn.stations.push_back(queueing::StationSpec{
        system.devices[dev].name, system.devices[dev].memory_capacity});
  }

  for (int i = 0; i < system.num_chains(); ++i) {
    const auto& chain = system.chains[i];
    queueing::ChainSpec spec;
    spec.name = chain.name;
    spec.interarrival = std::make_unique<Exponential>(1.0 / chain.arrival_rate);
    for (int j = 0; j < chain.length(); ++j) {
      const int dev = placement.device_of(i, j);
      const double tp = system.processing_time(i, j, dev);
      std::unique_ptr<Distribution> service;
      switch (service_model) {
        case ServiceModel::kExponential:
          service = std::make_unique<Exponential>(tp);
          break;
        case ServiceModel::kDeterministic:
          service = std::make_unique<Deterministic>(tp);
          break;
      }
      spec.steps.emplace_back(station_of.at(dev), std::move(service),
                              chain.fragments[j].memory_demand);
    }
    qn.chains.push_back(std::move(spec));
  }
  return qn;
}

}  // namespace chainnet::edge
