// Random generators for the paper's experiment inputs:
//  * Table III  — Type I / Type II network samples used to train and test
//    the GNN surrogates (a sample = system + a random placement);
//  * Table VII  — placement problems for the surrogate-optimization study
//    (a problem = system whose placement the optimizer must decide);
//  * §VIII-D    — the real-parameter case study (OrangePi/RaspberryPi
//    devices, VGG16/VGG19/CNN chains).
#pragma once

#include <memory>

#include "edge/model.h"
#include "edge/placement.h"
#include "support/distributions.h"
#include "support/rng.h"

namespace chainnet::edge {

/// Table III parameters. Distributions describe how the per-chain mean
/// interarrival time and per-fragment processing time are sampled; memory
/// demand is one fixed unit per fragment (§VIII-A1).
struct NetworkGenParams {
  int max_devices = 10;
  int max_chains = 3;
  int min_fragments = 2;
  int max_fragments = 6;
  double memory_capacity = 50.0;
  std::shared_ptr<const support::Distribution> interarrival_mean;
  std::shared_ptr<const support::Distribution> processing_time;

  /// Table III "Type I" column.
  static NetworkGenParams type1();
  /// Table III "Type II" column (APH-distributed parameters, lower bounds
  /// 1 and 0.05 per the table footnote).
  static NetworkGenParams type2();
};

/// A dataset sample: the generated system plus the random placement whose
/// performance the simulator will label.
struct NetworkSample {
  EdgeSystem system;
  Placement placement;
};

/// Draws one random (system, placement) pair. Fragments of a chain land on
/// distinct uniformly-chosen devices; the device count is drawn so that a
/// distinct-device placement always exists. Memory feasibility is *not*
/// enforced (the paper deliberately lets placements exceed capacity so the
/// dataset covers lossy regimes).
NetworkSample generate_network_sample(const NetworkGenParams& params,
                                      support::Rng& rng);

/// Table VII parameters for placement-problem generation.
struct PlacementProblemParams {
  int num_devices = 20;  ///< varied as 20 / 40 / 80 / 120 in the paper
  int num_chains = 12;
  int min_fragments = 2;
  int max_fragments = 12;
  double memory_capacity = 100.0;
  double interarrival_floor = 0.01;

  static PlacementProblemParams paper(int num_devices);
};

/// Draws one placement problem: the system only (lambda_i, R_k, r_ij, M_k);
/// the initial placement comes from optim::initial_placement.
EdgeSystem generate_placement_problem(const PlacementProblemParams& params,
                                      support::Rng& rng);

/// Uniformly random valid placement: each chain's fragments land on
/// distinct uniformly-chosen devices (the same placement law the Table III
/// sample generator uses). Requires enough devices for the longest chain.
Placement random_placement(const EdgeSystem& system, support::Rng& rng);

/// The §VIII-D case study: 5 devices (2x OrangePi Zero, 2x Raspberry Pi A+,
/// 1x Raspberry Pi 3A+) and 8 service chains (2 each of VGG16, VGG19, a
/// 28-layer CNN, an intrusion-detection CNN; 28 fragments total). Memory in
/// KB, compute demands synthesized within the paper's published ranges —
/// see DESIGN.md for the substitution rationale.
EdgeSystem case_study_system();

}  // namespace chainnet::edge
