// Discrete-event simulator for QnModel — the ground-truth engine standing in
// for the paper's JMT runs (§VIII-A1). Produces per-chain throughput,
// end-to-end latency and loss probability, plus per-station occupancy
// statistics for Little's-law validation.
#pragma once

#include <cstdint>
#include <vector>

#include "queueing/network.h"
#include "support/rng.h"

namespace chainnet::queueing {

/// Simulation controls. The run executes events until `horizon` simulated
/// time units (or `max_events`, a runaway guard). Statistics collected
/// before warmup_fraction * horizon are discarded as transient, mirroring
/// the paper's "after discarding the initial transient".
struct SimConfig {
  double horizon = 10000.0;
  double warmup_fraction = 0.1;
  std::uint64_t max_events = 200'000'000;
  std::uint64_t seed = 1;
  /// Number of batch-means windows used for the throughput confidence
  /// interval (0 disables CI computation).
  int ci_batches = 20;
};

/// Per-chain steady-state estimates.
struct ChainResult {
  std::uint64_t arrivals = 0;     ///< jobs arrived after warmup
  std::uint64_t completions = 0;  ///< jobs that finished the whole chain
  std::uint64_t losses = 0;       ///< jobs dropped at any step
  /// Losses broken down by the step at which the job was dropped (buffer
  /// overflow or link failure entering that step). Sums to `losses`.
  std::vector<std::uint64_t> losses_by_step;
  double throughput = 0.0;        ///< completions per time unit (X_i)
  double mean_latency = 0.0;      ///< mean end-to-end time of completions
  double loss_probability = 0.0;  ///< losses / arrivals
  /// Half-width of the ~95% batch-means confidence interval on throughput
  /// (0 when SimConfig::ci_batches == 0).
  double throughput_ci = 0.0;
};

/// Per-station steady-state estimates.
struct StationResult {
  double mean_jobs = 0.0;         ///< time-average number in station (queue+service)
  double mean_memory_used = 0.0;  ///< time-average occupied memory
  double utilization = 0.0;       ///< time-average fraction of busy servers
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;
};

struct SimResult {
  std::vector<ChainResult> chains;
  std::vector<StationResult> stations;
  double measured_time = 0.0;  ///< horizon minus warmup
  std::uint64_t events = 0;

  /// Total throughput over all chains (objective of eq. 2).
  double total_throughput() const;
  /// Overall loss probability (eq. 18) given the model's arrival rates.
  double loss_probability(double total_arrival_rate) const;
};

/// Runs one replication. Deterministic given (model, config.seed).
SimResult simulate(const QnModel& model, const SimConfig& config);

/// Averages `replications` independent runs (seeds derived from
/// config.seed) — used where the paper averages repeated simulations.
SimResult simulate_replicated(const QnModel& model, const SimConfig& config,
                              int replications);

}  // namespace chainnet::queueing
