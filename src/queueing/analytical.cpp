#include "queueing/analytical.h"

#include <cmath>
#include <stdexcept>

namespace chainnet::queueing {

Mm1kMetrics mm1k(double lambda, double mu, int K) {
  if (lambda <= 0.0 || mu <= 0.0 || K < 1) {
    throw std::invalid_argument("mm1k: invalid parameters");
  }
  const double rho = lambda / mu;
  Mm1kMetrics m;
  if (std::abs(rho - 1.0) < 1e-12) {
    // Uniform distribution over 0..K states.
    const double states = static_cast<double>(K + 1);
    m.loss_probability = 1.0 / states;
    m.mean_jobs = static_cast<double>(K) / 2.0;
    m.utilization = static_cast<double>(K) / states;
  } else {
    const double rK1 = std::pow(rho, K + 1);
    const double denom = 1.0 - rK1;
    m.loss_probability = (1.0 - rho) * std::pow(rho, K) / denom;
    m.mean_jobs = rho / (1.0 - rho) -
                  static_cast<double>(K + 1) * rK1 / denom;
    const double p0 = (1.0 - rho) / denom;
    m.utilization = 1.0 - p0;
  }
  m.throughput = lambda * (1.0 - m.loss_probability);
  m.mean_response = m.mean_jobs / m.throughput;  // Little's law
  return m;
}

Mm1Metrics mm1(double lambda, double mu) {
  if (lambda <= 0.0 || mu <= 0.0 || lambda >= mu) {
    throw std::invalid_argument("mm1: requires 0 < lambda < mu");
  }
  const double rho = lambda / mu;
  Mm1Metrics m;
  m.mean_jobs = rho / (1.0 - rho);
  m.mean_response = 1.0 / (mu - lambda);
  m.utilization = rho;
  return m;
}

double erlang_c(int servers, double offered_load) {
  if (servers < 1 || offered_load < 0.0 ||
      offered_load >= static_cast<double>(servers)) {
    throw std::invalid_argument("erlang_c: requires 0 <= a < c");
  }
  // C(c, a) = c B(c, a) / (c - a (1 - B(c, a))).
  const double b = erlang_b(servers, offered_load);
  const double c = static_cast<double>(servers);
  return c * b / (c - offered_load * (1.0 - b));
}

MmcMetrics mmc(double lambda, double mu, int servers) {
  if (lambda <= 0.0 || mu <= 0.0 || servers < 1 ||
      lambda >= static_cast<double>(servers) * mu) {
    throw std::invalid_argument("mmc: requires 0 < lambda < c * mu");
  }
  const double a = lambda / mu;  // offered load in Erlangs
  const double c = static_cast<double>(servers);
  MmcMetrics m;
  m.wait_probability = erlang_c(servers, a);
  m.utilization = a / c;
  const double mean_queue = m.wait_probability * a / (c - a);
  m.mean_jobs = mean_queue + a;
  m.mean_response = m.mean_jobs / lambda;  // Little's law
  return m;
}

double mg1_mean_jobs(double rho, double service_scv) {
  if (rho < 0.0 || rho >= 1.0 || service_scv < 0.0) {
    throw std::invalid_argument("mg1_mean_jobs: requires 0 <= rho < 1");
  }
  return rho + rho * rho * (1.0 + service_scv) / (2.0 * (1.0 - rho));
}

double mg1_mean_response(double lambda, double mean_service,
                         double service_scv) {
  if (lambda <= 0.0 || mean_service <= 0.0) {
    throw std::invalid_argument("mg1_mean_response: invalid parameters");
  }
  const double rho = lambda * mean_service;
  return mg1_mean_jobs(rho, service_scv) / lambda;  // Little's law
}

double erlang_b(int servers, double offered_load) {
  if (servers < 0 || offered_load < 0.0) {
    throw std::invalid_argument("erlang_b: invalid parameters");
  }
  // Standard numerically stable recurrence:
  // B(0) = 1; B(c) = a B(c-1) / (c + a B(c-1)).
  double b = 1.0;
  for (int c = 1; c <= servers; ++c) {
    b = offered_load * b / (static_cast<double>(c) + offered_load * b);
  }
  return b;
}

}  // namespace chainnet::queueing
