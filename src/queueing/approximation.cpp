#include "queueing/approximation.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "queueing/analytical.h"

namespace chainnet::queueing {

double ApproxResult::total_throughput() const {
  double total = 0.0;
  for (const auto& c : chains) total += c.throughput;
  return total;
}

ApproxResult approximate(const QnModel& model, const ApproxConfig& config) {
  model.validate();
  if (config.max_iterations <= 0 || config.relaxation <= 0.0 ||
      config.relaxation > 1.0) {
    throw std::invalid_argument("ApproxConfig: invalid parameters");
  }
  const std::size_t num_stations = model.stations.size();
  const std::size_t num_chains = model.chains.size();

  // Static per-station structure: which (chain, step) pairs visit it.
  struct Visit {
    std::size_t chain;
    std::size_t step;
  };
  std::vector<std::vector<Visit>> visits(num_stations);
  for (std::size_t i = 0; i < num_chains; ++i) {
    for (std::size_t j = 0; j < model.chains[i].steps.size(); ++j) {
      visits[static_cast<std::size_t>(model.chains[i].steps[j].station)]
          .push_back({i, j});
    }
  }

  // Buffer sizes in jobs: capacity / mean memory demand of visiting jobs
  // (>= 1 so the M/M/1/K analysis is defined).
  std::vector<int> buffer(num_stations, 1);
  for (std::size_t k = 0; k < num_stations; ++k) {
    if (visits[k].empty()) continue;
    double mean_demand = 0.0;
    for (const auto& v : visits[k]) {
      mean_demand += model.chains[v.chain].steps[v.step].memory_demand;
    }
    mean_demand /= static_cast<double>(visits[k].size());
    const double cap = model.stations[k].memory_capacity;
    buffer[k] = std::max(
        1, static_cast<int>(std::floor(cap / std::max(mean_demand, 1e-12))));
    // Cap to keep pow() in mm1k well conditioned; beyond ~1e4 jobs the
    // finite buffer is effectively infinite for any reachable load.
    buffer[k] = std::min(buffer[k], 10000);
  }

  // Fixed point on per-station blocking probabilities.
  std::vector<double> blocking(num_stations, 0.0);
  ApproxResult result;
  result.blocking.assign(num_stations, 0.0);

  for (int it = 0; it < config.max_iterations; ++it) {
    // Thinned flow of chain i into step j: lambda_i * prod_{j' < j}
    // (1 - blocking at station of j').
    std::vector<double> station_lambda(num_stations, 0.0);
    std::vector<double> station_work(num_stations, 0.0);  // load in time/s
    for (std::size_t i = 0; i < num_chains; ++i) {
      double flow = model.chains[i].arrival_rate();
      for (const auto& step : model.chains[i].steps) {
        const auto k = static_cast<std::size_t>(step.station);
        // The flow *offered* to station k (before its own blocking).
        station_lambda[k] += flow;
        station_work[k] += flow * step.service->mean();
        flow *= std::max(0.0, 1.0 - blocking[k]);
      }
    }

    double delta = 0.0;
    for (std::size_t k = 0; k < num_stations; ++k) {
      double next = 0.0;
      if (station_lambda[k] > 1e-12 && station_work[k] > 1e-12) {
        // Aggregate exponential server whose mean service time is the
        // flow-weighted mean across visiting classes.
        const double mean_service = station_work[k] / station_lambda[k];
        const auto m =
            mm1k(station_lambda[k], 1.0 / mean_service, buffer[k]);
        next = m.loss_probability;
      }
      const double relaxed =
          blocking[k] + config.relaxation * (next - blocking[k]);
      delta = std::max(delta, std::abs(relaxed - blocking[k]));
      blocking[k] = relaxed;
    }
    result.iterations = it + 1;
    if (delta < config.tolerance) {
      result.converged = true;
      break;
    }
  }
  result.blocking = blocking;

  // Final sweep: per-chain throughput and latency from the fixed point.
  result.chains.resize(num_chains);
  // Recompute station metrics once more for sojourn times.
  std::vector<double> station_lambda(num_stations, 0.0);
  std::vector<double> station_work(num_stations, 0.0);
  for (std::size_t i = 0; i < num_chains; ++i) {
    double flow = model.chains[i].arrival_rate();
    for (const auto& step : model.chains[i].steps) {
      const auto k = static_cast<std::size_t>(step.station);
      station_lambda[k] += flow;
      station_work[k] += flow * step.service->mean();
      flow *= std::max(0.0, 1.0 - blocking[k]);
    }
  }
  std::vector<double> sojourn(num_stations, 0.0);
  for (std::size_t k = 0; k < num_stations; ++k) {
    if (station_lambda[k] > 1e-12 && station_work[k] > 1e-12) {
      const double mean_service = station_work[k] / station_lambda[k];
      sojourn[k] =
          mm1k(station_lambda[k], 1.0 / mean_service, buffer[k])
              .mean_response;
    }
  }
  for (std::size_t i = 0; i < num_chains; ++i) {
    const double lambda = model.chains[i].arrival_rate();
    double flow = lambda;
    double latency = 0.0;
    for (const auto& step : model.chains[i].steps) {
      const auto k = static_cast<std::size_t>(step.station);
      flow *= std::max(0.0, 1.0 - blocking[k]);
      latency += sojourn[k];
    }
    auto& chain = result.chains[i];
    chain.throughput = flow;
    chain.mean_latency = latency;
    chain.loss_probability = lambda > 0.0 ? 1.0 - flow / lambda : 0.0;
  }
  return result;
}

}  // namespace chainnet::queueing
