// Open multi-chain queueing network model with finite (memory) buffers and
// loss — the stochastic abstraction the paper uses for edge AI deployments
// (§III, Fig. 2). A QnModel is pure description; the DES engine in
// simulator.h executes it.
//
// Semantics:
//  * Each service chain i has its own renewal arrival process (Poisson in
//    the paper) and visits a fixed sequence of stations (deterministic
//    routing — the paper's core assumption).
//  * A station is a single FCFS server with a memory budget. A job at step
//    j of chain i occupies memory_demand while queued and in service; an
//    arriving job that does not fit is LOST and leaves the network.
//  * Service time at a step is drawn from the step's service distribution
//    (exponential with mean r_ij / R_k by default, matching open-QN use).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "support/distributions.h"

namespace chainnet::queueing {

/// A queueing station (one edge device). memory_capacity bounds the total
/// memory of jobs simultaneously queued or in service. `servers` generalizes
/// the paper's single-server devices to multi-core devices (M/M/c behavior
/// under exponential service); the paper's model is servers == 1.
struct StationSpec {
  std::string name;
  double memory_capacity = 0.0;
  int servers = 1;
};

/// One visit of a chain to a station.
struct ChainStep {
  int station = -1;  ///< index into QnModel::stations
  std::unique_ptr<chainnet::support::Distribution> service;
  double memory_demand = 1.0;
  /// Early-exit extension (paper §X future work): probability that a job
  /// leaves the chain *successfully* after completing this step instead of
  /// proceeding to the next one (models early-exit DNNs). 0 = pure chain.
  /// Ignored on the last step (jobs always complete there).
  double exit_probability = 0.0;
  /// Link-failure extension (paper §X future work): probability that the
  /// transmission *into* this step fails and the job is LOST (the paper's
  /// "probabilistic routing of jobs on failed links to a sink node").
  /// Applies to external arrivals at the first step too.
  double link_failure_probability = 0.0;

  ChainStep() = default;
  ChainStep(int st, std::unique_ptr<chainnet::support::Distribution> svc,
            double mem, double exit_prob = 0.0, double link_fail = 0.0)
      : station(st),
        service(std::move(svc)),
        memory_demand(mem),
        exit_probability(exit_prob),
        link_failure_probability(link_fail) {}
  ChainStep(const ChainStep& other);
  ChainStep& operator=(const ChainStep& other);
  ChainStep(ChainStep&&) noexcept = default;
  ChainStep& operator=(ChainStep&&) noexcept = default;
};

/// A service chain: arrival process plus the ordered station visits.
///
/// Routing between steps is deterministic (j -> j+1) by default — the
/// paper's core assumption. The Markovian-routing extension (§X future
/// work) replaces it with a row-stochastic matrix: `routing[j][k]` is the
/// probability of visiting step k after completing step j, and
/// `routing[j][T]` (one past the last step) the probability of successful
/// completion. Cycles (rework loops) are allowed. When `routing` is empty,
/// deterministic chain routing plus the per-step exit_probability applies.
struct ChainSpec {
  std::string name;
  std::unique_ptr<chainnet::support::Distribution> interarrival;
  std::vector<ChainStep> steps;
  std::vector<std::vector<double>> routing;

  /// True when the Markovian routing matrix is in use.
  bool has_markovian_routing() const { return !routing.empty(); }

  ChainSpec() = default;
  ChainSpec(const ChainSpec& other);
  ChainSpec& operator=(const ChainSpec& other);
  ChainSpec(ChainSpec&&) noexcept = default;
  ChainSpec& operator=(ChainSpec&&) noexcept = default;

  /// Mean arrival rate lambda_i = 1 / E[interarrival].
  double arrival_rate() const;
  /// Sum of mean service times over all steps (the paper's sum of t_p).
  double total_mean_service() const;
};

/// The whole network. Validation (validate()) checks index ranges, positive
/// capacities, and non-empty chains; the simulator calls it on entry.
struct QnModel {
  std::vector<StationSpec> stations;
  std::vector<ChainSpec> chains;

  /// Throws std::invalid_argument with a description on structural errors.
  void validate() const;

  /// Sum of all chain arrival rates (lambda_total in eq. 18).
  double total_arrival_rate() const;
};

}  // namespace chainnet::queueing
