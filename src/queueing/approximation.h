// Fixed-point decomposition approximation for open multi-chain queueing
// networks with finite memory buffers and loss.
//
// The paper argues (§III) that no accurate closed-form analysis exists for
// this model class — that gap is ChainNet's motivation. This module
// implements the classical *approximate* alternative the literature offers
// (station-by-station M/M/1/K decomposition with flow thinning, in the
// spirit of Shi 1995 / Thomas 2006): it is fast and needs no training, but
// it ignores inter-station correlations and non-Poisson internal flows, so
// its error grows with congestion and sharing. It serves two purposes:
//  * an additional, training-free baseline evaluator for the optimizer;
//  * an accuracy yardstick in the benches (approximation vs simulation vs
//    ChainNet), quantifying the paper's "approximations are not accurate
//    enough" premise.
//
// Method: each station k is modeled as M/M/1/K_k where
//   K_k    = max jobs that fit in memory (capacity / mean per-job demand),
//   lambda_k = sum of thinned chain flows entering k,
//   mu_k   = aggregate service rate under the current flow mix.
// Chain flows are thinned by each visited station's blocking probability;
// blocking probabilities and flows are iterated to a fixed point.
#pragma once

#include <vector>

#include "queueing/network.h"

namespace chainnet::queueing {

struct ApproxConfig {
  int max_iterations = 200;
  double tolerance = 1e-9;
  /// Under-relaxation factor in (0, 1]; values < 1 damp oscillations of
  /// the fixed point in heavily loaded networks.
  double relaxation = 0.5;
};

struct ApproxChainResult {
  double throughput = 0.0;      ///< X_i after all thinning stages
  double mean_latency = 0.0;    ///< sum of per-station sojourn times
  double loss_probability = 0.0;
};

struct ApproxResult {
  std::vector<ApproxChainResult> chains;
  /// Per-station blocking probability at the fixed point.
  std::vector<double> blocking;
  int iterations = 0;
  bool converged = false;

  double total_throughput() const;
};

/// Runs the decomposition. Requires a valid model (validate() passes).
/// Limitations (documented, by design): assumes single-server FCFS
/// stations and deterministic chain routing — the paper's model class;
/// multi-server stations, early exits, link failures and Markovian routing
/// are simulator extensions the decomposition does not see.
ApproxResult approximate(const QnModel& model,
                         const ApproxConfig& config = {});

}  // namespace chainnet::queueing
