#include "queueing/network.h"

#include <cmath>
#include <stdexcept>

namespace chainnet::queueing {

ChainStep::ChainStep(const ChainStep& other)
    : station(other.station),
      service(other.service ? other.service->clone() : nullptr),
      memory_demand(other.memory_demand),
      exit_probability(other.exit_probability),
      link_failure_probability(other.link_failure_probability) {}

ChainStep& ChainStep::operator=(const ChainStep& other) {
  if (this != &other) {
    station = other.station;
    service = other.service ? other.service->clone() : nullptr;
    memory_demand = other.memory_demand;
    exit_probability = other.exit_probability;
    link_failure_probability = other.link_failure_probability;
  }
  return *this;
}

ChainSpec::ChainSpec(const ChainSpec& other)
    : name(other.name),
      interarrival(other.interarrival ? other.interarrival->clone() : nullptr),
      steps(other.steps),
      routing(other.routing) {}

ChainSpec& ChainSpec::operator=(const ChainSpec& other) {
  if (this != &other) {
    name = other.name;
    interarrival = other.interarrival ? other.interarrival->clone() : nullptr;
    steps = other.steps;
    routing = other.routing;
  }
  return *this;
}

double ChainSpec::arrival_rate() const {
  if (!interarrival) throw std::logic_error("ChainSpec: no arrival process");
  const double mean = interarrival->mean();
  if (mean <= 0.0) throw std::logic_error("ChainSpec: non-positive mean");
  return 1.0 / mean;
}

double ChainSpec::total_mean_service() const {
  double total = 0.0;
  for (const auto& s : steps) {
    if (s.service) total += s.service->mean();
  }
  return total;
}

void QnModel::validate() const {
  if (stations.empty()) throw std::invalid_argument("QnModel: no stations");
  if (chains.empty()) throw std::invalid_argument("QnModel: no chains");
  for (const auto& st : stations) {
    if (st.memory_capacity <= 0.0) {
      throw std::invalid_argument("QnModel: station '" + st.name +
                                  "' has non-positive memory capacity");
    }
    if (st.servers < 1) {
      throw std::invalid_argument("QnModel: station '" + st.name +
                                  "' needs at least one server");
    }
  }
  for (const auto& ch : chains) {
    if (!ch.interarrival) {
      throw std::invalid_argument("QnModel: chain '" + ch.name +
                                  "' has no arrival process");
    }
    if (ch.steps.empty()) {
      throw std::invalid_argument("QnModel: chain '" + ch.name +
                                  "' has no steps");
    }
    for (const auto& s : ch.steps) {
      if (s.station < 0 || s.station >= static_cast<int>(stations.size())) {
        throw std::invalid_argument("QnModel: chain '" + ch.name +
                                    "' references invalid station index");
      }
      if (!s.service) {
        throw std::invalid_argument("QnModel: chain '" + ch.name +
                                    "' has a step without service process");
      }
      if (s.memory_demand < 0.0) {
        throw std::invalid_argument("QnModel: negative memory demand");
      }
      if (s.exit_probability < 0.0 || s.exit_probability >= 1.0) {
        throw std::invalid_argument(
            "QnModel: exit probability must be in [0, 1)");
      }
      if (s.link_failure_probability < 0.0 ||
          s.link_failure_probability >= 1.0) {
        throw std::invalid_argument(
            "QnModel: link failure probability must be in [0, 1)");
      }
    }
    if (ch.has_markovian_routing()) {
      const std::size_t t = ch.steps.size();
      if (ch.routing.size() != t) {
        throw std::invalid_argument("QnModel: chain '" + ch.name +
                                    "' routing must have one row per step");
      }
      for (const auto& row : ch.routing) {
        if (row.size() != t + 1) {
          throw std::invalid_argument(
              "QnModel: chain '" + ch.name +
              "' routing rows need T+1 columns (last = completion)");
        }
        double total = 0.0;
        for (double p : row) {
          if (p < 0.0 || p > 1.0) {
            throw std::invalid_argument("QnModel: chain '" + ch.name +
                                        "' routing probability out of range");
          }
          total += p;
        }
        if (std::abs(total - 1.0) > 1e-9) {
          throw std::invalid_argument("QnModel: chain '" + ch.name +
                                      "' routing row does not sum to 1");
        }
      }
    }
  }
}

double QnModel::total_arrival_rate() const {
  double total = 0.0;
  for (const auto& ch : chains) total += ch.arrival_rate();
  return total;
}

}  // namespace chainnet::queueing
