#include "queueing/simulator.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <queue>
#include <stdexcept>

#include "support/stats.h"

namespace chainnet::queueing {

using chainnet::support::Rng;
using chainnet::support::TimeWeightedStats;

namespace {

struct Job {
  int chain = -1;
  int step = -1;
  double entered_system = 0.0;  ///< chain arrival time (for e2e latency)
};

enum class EventType : std::uint8_t { kArrival, kDeparture };

struct Event {
  double time;
  std::uint64_t seq;  ///< tie-breaker for deterministic ordering
  EventType type;
  int index;  ///< chain for arrivals, station for departures
  Job job;    ///< the departing job (departure events only)

  bool operator>(const Event& other) const {
    if (time != other.time) return time > other.time;
    return seq > other.seq;
  }
};

struct StationState {
  double capacity = 0.0;
  int servers = 1;
  double used_memory = 0.0;
  int in_service = 0;
  std::deque<Job> waiting;  ///< admitted jobs not yet in service
  TimeWeightedStats jobs_tw;
  TimeWeightedStats memory_tw;
  TimeWeightedStats busy_tw;  ///< fraction of servers busy
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;
};

class Engine {
 public:
  Engine(const QnModel& model, const SimConfig& config)
      : model_(model), config_(config), rng_(config.seed) {
    model.validate();
    if (config.horizon <= 0.0 || config.warmup_fraction < 0.0 ||
        config.warmup_fraction >= 1.0) {
      throw std::invalid_argument("SimConfig: invalid horizon or warmup");
    }
    warmup_ = config.horizon * config.warmup_fraction;
    stations_.resize(model.stations.size());
    for (std::size_t k = 0; k < stations_.size(); ++k) {
      stations_[k].capacity = model.stations[k].memory_capacity;
      stations_[k].servers = model.stations[k].servers;
    }
    chain_stats_.resize(model.chains.size());
    latency_.resize(model.chains.size());
    if (config.ci_batches > 0) {
      batch_completions_.assign(
          model.chains.size(),
          std::vector<std::uint64_t>(
              static_cast<std::size_t>(config.ci_batches), 0));
    }
    arrival_rng_.reserve(model.chains.size());
    service_rng_.reserve(model.chains.size());
    routing_rng_.reserve(model.chains.size());
    for (std::size_t i = 0; i < model.chains.size(); ++i) {
      arrival_rng_.push_back(rng_.child(3 * i));
      service_rng_.push_back(rng_.child(3 * i + 1));
      routing_rng_.push_back(rng_.child(3 * i + 2));
    }
  }

  SimResult run() {
    for (int i = 0; i < static_cast<int>(model_.chains.size()); ++i) {
      schedule_arrival(i, 0.0);
    }
    while (!events_.empty() && events_.top().time <= config_.horizon &&
           event_count_ < config_.max_events) {
      const Event ev = events_.top();
      events_.pop();
      ++event_count_;
      now_ = ev.time;
      if (ev.type == EventType::kArrival) {
        handle_arrival(ev.index);
      } else {
        handle_departure(ev.index, ev.job);
      }
    }
    now_ = config_.horizon;
    return collect();
  }

 private:
  bool in_window() const { return now_ >= warmup_; }

  void record_loss(const Job& job) {
    auto& stats = chain_stats_[job.chain];
    ++stats.losses;
    if (stats.losses_by_step.size() <=
        static_cast<std::size_t>(job.step)) {
      stats.losses_by_step.resize(
          model_.chains[job.chain].steps.size(), 0);
    }
    ++stats.losses_by_step[static_cast<std::size_t>(job.step)];
  }

  void schedule_arrival(int chain, double from) {
    const double dt =
        model_.chains[chain].interarrival->sample(arrival_rng_[chain]);
    push_event({from + dt, seq_++, EventType::kArrival, chain, Job{}});
  }

  void push_event(Event ev) { events_.push(ev); }

  /// Records a change in station occupancy at time `now_`. Must be called
  /// AFTER the queue/memory modification: the previous value's area over
  /// [last change, now] is closed and the new value starts holding. Times
  /// are clipped to the measurement window so pre-warmup history carries
  /// zero weight.
  void touch_station(int k) {
    auto& st = stations_[k];
    const double t = std::max(now_, warmup_);
    st.jobs_tw.update(
        t - warmup_,
        static_cast<double>(st.waiting.size()) + st.in_service);
    st.memory_tw.update(t - warmup_, st.used_memory);
    st.busy_tw.update(t - warmup_, static_cast<double>(st.in_service) /
                                       static_cast<double>(st.servers));
  }

  void start_service(int k, const Job& job) {
    auto& st = stations_[k];
    const auto& step = model_.chains[job.chain].steps[job.step];
    const double svc = step.service->sample(service_rng_[job.chain]);
    ++st.in_service;
    push_event({now_ + svc, seq_++, EventType::kDeparture, k, job});
  }

  /// Attempts to place `job` at its current step's station. Returns false
  /// and records a loss when memory does not suffice.
  void offer(Job job) {
    const auto& step = model_.chains[job.chain].steps[job.step];
    // Link-failure extension: the transmission into this step may fail,
    // dropping the job before it reaches the station's buffer.
    if (step.link_failure_probability > 0.0 &&
        routing_rng_[static_cast<std::size_t>(job.chain)].bernoulli(
            step.link_failure_probability)) {
      if (in_window()) record_loss(job);
      return;
    }
    auto& st = stations_[step.station];
    if (st.used_memory + step.memory_demand > st.capacity + 1e-12) {
      if (in_window()) {
        record_loss(job);
        ++st.rejected;
      }
      return;
    }
    st.used_memory += step.memory_demand;
    if (in_window()) ++st.admitted;
    if (st.in_service < st.servers) {
      start_service(step.station, job);
    } else {
      st.waiting.push_back(job);
    }
    touch_station(step.station);
  }

  void handle_arrival(int chain) {
    schedule_arrival(chain, now_);
    if (in_window()) ++chain_stats_[chain].arrivals;
    offer(Job{chain, 0, now_});
  }

  void handle_departure(int k, Job job) {
    auto& st = stations_[k];
    if (st.in_service <= 0) {
      throw std::logic_error("departure from idle station");
    }
    --st.in_service;
    const auto& step = model_.chains[job.chain].steps[job.step];
    st.used_memory -= step.memory_demand;
    if (!st.waiting.empty()) {
      const Job next = st.waiting.front();
      st.waiting.pop_front();
      start_service(k, next);
    }
    touch_station(k);

    const auto& chain = model_.chains[job.chain];
    int next_step;
    if (chain.has_markovian_routing()) {
      // Markovian-routing extension: sample the next step from the
      // row-stochastic routing matrix; column T means completion.
      const auto& row =
          chain.routing[static_cast<std::size_t>(job.step)];
      double u = routing_rng_[static_cast<std::size_t>(job.chain)]
                     .uniform01();
      next_step = static_cast<int>(chain.steps.size());  // completion
      for (std::size_t s = 0; s < row.size(); ++s) {
        if (u < row[s]) {
          next_step = static_cast<int>(s);
          break;
        }
        u -= row[s];
      }
    } else {
      const bool is_last =
          job.step + 1 >= static_cast<int>(chain.steps.size());
      // Early-exit extension: a job may complete the service after this
      // step with the step's exit probability (ignored on the last step).
      const bool exits_early =
          !is_last && step.exit_probability > 0.0 &&
          routing_rng_[static_cast<std::size_t>(job.chain)].bernoulli(
              step.exit_probability);
      next_step = is_last || exits_early
                      ? static_cast<int>(chain.steps.size())
                      : job.step + 1;
    }
    if (next_step < static_cast<int>(chain.steps.size())) {
      job.step = next_step;
      offer(job);
    } else if (in_window()) {
      ++chain_stats_[job.chain].completions;
      latency_[job.chain].add(now_ - job.entered_system);
      if (config_.ci_batches > 0) {
        const double span = config_.horizon - warmup_;
        auto batch = static_cast<std::size_t>(
            (now_ - warmup_) / span * config_.ci_batches);
        batch = std::min(batch,
                         static_cast<std::size_t>(config_.ci_batches - 1));
        batch_completions_[static_cast<std::size_t>(job.chain)][batch] += 1;
      }
    }
  }

  SimResult collect() {
    SimResult result;
    result.measured_time = config_.horizon - warmup_;
    result.events = event_count_;
    result.chains.resize(model_.chains.size());
    for (std::size_t i = 0; i < model_.chains.size(); ++i) {
      auto& cr = result.chains[i];
      cr = chain_stats_[i];
      cr.losses_by_step.resize(model_.chains[i].steps.size(), 0);
      cr.throughput =
          static_cast<double>(cr.completions) / result.measured_time;
      cr.mean_latency = latency_[i].mean();
      cr.loss_probability =
          cr.arrivals
              ? static_cast<double>(cr.losses) / static_cast<double>(cr.arrivals)
              : 0.0;
      if (config_.ci_batches > 1) {
        // Batch-means 95% CI on throughput: each window's completion rate
        // is one (approximately independent) observation.
        const double span =
            result.measured_time / static_cast<double>(config_.ci_batches);
        chainnet::support::RunningStats batches;
        for (std::uint64_t count : batch_completions_[i]) {
          batches.add(static_cast<double>(count) / span);
        }
        cr.throughput_ci =
            1.96 * batches.stddev() /
            std::sqrt(static_cast<double>(config_.ci_batches));
      }
    }
    result.stations.resize(stations_.size());
    for (std::size_t k = 0; k < stations_.size(); ++k) {
      auto& st = stations_[k];
      auto& sr = result.stations[k];
      touch_station(static_cast<int>(k));
      sr.mean_jobs = st.jobs_tw.average(result.measured_time);
      sr.mean_memory_used = st.memory_tw.average(result.measured_time);
      sr.utilization = st.busy_tw.average(result.measured_time);
      sr.admitted = st.admitted;
      sr.rejected = st.rejected;
    }
    return result;
  }

  const QnModel& model_;
  SimConfig config_;
  Rng rng_;
  std::vector<Rng> arrival_rng_;
  std::vector<Rng> service_rng_;
  std::vector<Rng> routing_rng_;
  double warmup_ = 0.0;
  double now_ = 0.0;
  std::uint64_t seq_ = 0;
  std::uint64_t event_count_ = 0;
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> events_;
  std::vector<StationState> stations_;
  std::vector<ChainResult> chain_stats_;
  std::vector<chainnet::support::RunningStats> latency_;
  std::vector<std::vector<std::uint64_t>> batch_completions_;
};

}  // namespace

double SimResult::total_throughput() const {
  double total = 0.0;
  for (const auto& c : chains) total += c.throughput;
  return total;
}

double SimResult::loss_probability(double total_arrival_rate) const {
  if (total_arrival_rate <= 0.0) return 0.0;
  return (total_arrival_rate - total_throughput()) / total_arrival_rate;
}

SimResult simulate(const QnModel& model, const SimConfig& config) {
  return Engine(model, config).run();
}

SimResult simulate_replicated(const QnModel& model, const SimConfig& config,
                              int replications) {
  if (replications <= 0) {
    throw std::invalid_argument("simulate_replicated: replications <= 0");
  }
  SimResult acc;
  Rng seeder(config.seed);
  for (int r = 0; r < replications; ++r) {
    SimConfig c = config;
    c.seed = seeder();
    SimResult one = simulate(model, c);
    if (r == 0) {
      acc = std::move(one);
      continue;
    }
    for (std::size_t i = 0; i < acc.chains.size(); ++i) {
      auto& a = acc.chains[i];
      const auto& b = one.chains[i];
      a.arrivals += b.arrivals;
      a.completions += b.completions;
      a.losses += b.losses;
      for (std::size_t s = 0; s < b.losses_by_step.size(); ++s) {
        a.losses_by_step[s] += b.losses_by_step[s];
      }
      a.throughput += b.throughput;
      a.mean_latency += b.mean_latency;
      a.loss_probability += b.loss_probability;
    }
    for (std::size_t k = 0; k < acc.stations.size(); ++k) {
      auto& a = acc.stations[k];
      const auto& b = one.stations[k];
      a.mean_jobs += b.mean_jobs;
      a.mean_memory_used += b.mean_memory_used;
      a.utilization += b.utilization;
      a.admitted += b.admitted;
      a.rejected += b.rejected;
    }
    acc.events += one.events;
  }
  const double inv = 1.0 / static_cast<double>(replications);
  for (auto& c : acc.chains) {
    c.throughput *= inv;
    c.mean_latency *= inv;
    c.loss_probability *= inv;
  }
  for (auto& s : acc.stations) {
    s.mean_jobs *= inv;
    s.mean_memory_used *= inv;
    s.utilization *= inv;
  }
  return acc;
}

}  // namespace chainnet::queueing
