// Closed-form results for elementary queues. These are not used by the
// surrogate itself (no closed forms exist for the paper's multi-chain
// finite-buffer networks — that is the point of ChainNet); they validate the
// DES engine in the property-based test suite.
#pragma once

namespace chainnet::queueing {

/// Steady-state metrics of an M/M/1/K queue (Poisson arrivals rate lambda,
/// exponential service rate mu, at most K jobs in system incl. in service).
struct Mm1kMetrics {
  double loss_probability = 0.0;  ///< P(arrival finds system full)
  double mean_jobs = 0.0;         ///< E[number in system]
  double throughput = 0.0;        ///< lambda * (1 - loss_probability)
  double mean_response = 0.0;     ///< E[sojourn] of admitted jobs (Little)
  double utilization = 0.0;       ///< P(server busy)
};

/// Exact M/M/1/K analysis. Requires lambda > 0, mu > 0, K >= 1. Handles the
/// rho == 1 boundary analytically.
Mm1kMetrics mm1k(double lambda, double mu, int K);

/// Steady-state metrics of the infinite-buffer M/M/1 queue; requires
/// rho = lambda/mu < 1.
struct Mm1Metrics {
  double mean_jobs = 0.0;
  double mean_response = 0.0;
  double utilization = 0.0;
};

Mm1Metrics mm1(double lambda, double mu);

/// Erlang-B blocking probability B(c, a) for an M/M/c/c loss system with
/// offered load a = lambda/mu (used as an extra cross-check of loss
/// accounting via the c = 1 special case, and exercised in tests).
double erlang_b(int servers, double offered_load);

/// Erlang-C waiting probability C(c, a) for an M/M/c queue with infinite
/// buffer; requires a < c.
double erlang_c(int servers, double offered_load);

/// Steady-state metrics of the infinite-buffer M/M/c queue; requires
/// lambda < c * mu. Validates the simulator's multi-server extension.
struct MmcMetrics {
  double mean_jobs = 0.0;       ///< E[number in system]
  double mean_response = 0.0;   ///< E[sojourn]
  double utilization = 0.0;     ///< lambda / (c mu), per-server busy frac
  double wait_probability = 0.0;
};

MmcMetrics mmc(double lambda, double mu, int servers);

/// Pollaczek-Khinchine mean number in system for M/G/1 with utilization
/// rho = lambda * E[S] < 1 and service SCV c2:
/// L = rho + rho^2 (1 + c2) / (2 (1 - rho)).
double mg1_mean_jobs(double rho, double service_scv);

/// M/G/1 mean sojourn time via Little's law on mg1_mean_jobs.
double mg1_mean_response(double lambda, double mean_service,
                         double service_scv);

}  // namespace chainnet::queueing
