// bench_serve_scale — SLO load harness for the scale-out serving tier.
//
// Drives a serve::Router in front of N in-process serve::Server backends
// with an OPEN-LOOP load generator: arrivals follow a precomputed Poisson
// schedule and are injected at their scheduled instants regardless of how
// the system is doing, so queueing delay shows up in the measured latency
// instead of silently throttling the generator (closed-loop benches
// flatter an overloaded server). Latency is measured from the *scheduled*
// arrival, per-tenant deadline classes ride on the requests, and typed
// rejects (overloaded / deadline_exceeded / upstream_failed) are counted
// as shed.
//
// The backends run an EMULATED oracle: every placement evaluation sleeps a
// fixed service time instead of running the GNN. That makes each backend's
// capacity analytically known (workers / service_time) and — crucially —
// time-bound rather than CPU-bound, so on the single-core hosts this repo
// targets the harness still measures the *serving tier* (routing, batching,
// admission, failover) and goodput genuinely scales with backend count, as
// it would when each backend fronts its own accelerator.
//
// Tenancy is arranged so the capacity formula is actually reachable: the
// flusher only batches a prefix of SAME-system placements, so each backend
// gets one tenant system whose name is searched (on the same deterministic
// HashRing the router builds) to consistent-hash onto that backend, and
// max_batch = workers so one full batch saturates the pool in a single
// service time. Each tenant system carries two deadline classes (strict /
// lax), and max_pending is a small multiple of max_batch so overload turns
// into fast typed "overloaded" rejects instead of unbounded queue latency.
//
// Two experiments, emitted to BENCH_serve_scale.json (override with
// CHAINNET_SCALE_OUT):
//   scaling:        fixed offered load (1.15x the 3-backend capacity)
//                   against N = 1, 2, 3 backends -> goodput must grow with N
//   overload_sweep: N = 3 backends, offered load swept from 0.4x to 1.8x of
//                   capacity -> goodput saturates, shed rate rises
//                   monotonically
//
//   CHAINNET_SCALE_SERVICE_US  emulated per-placement service time (20000)
//   CHAINNET_SCALE_WORKERS     pool workers per backend (4)
//   CHAINNET_SCALE_BACKENDS    max backends N (3)
//   CHAINNET_SCALE_SECONDS     open-loop seconds per point (2.0)
//   CHAINNET_SCALE_OUT         output JSON path (BENCH_serve_scale.json)
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "edge/problem.h"
#include "optim/evaluator.h"
#include "runtime/eval_service.h"
#include "runtime/thread_pool.h"
#include "serve/client.h"
#include "serve/hash_ring.h"
#include "serve/protocol.h"
#include "serve/router.h"
#include "serve/server.h"
#include "support/json.h"
#include "support/rng.h"

namespace {

using namespace chainnet;
using Clock = std::chrono::steady_clock;

int env_int(const char* name, int fallback) {
  const char* value = std::getenv(name);
  return value ? std::atoi(value) : fallback;
}

double env_double(const char* name, double fallback) {
  const char* value = std::getenv(name);
  return value ? std::atof(value) : fallback;
}

/// Fixed-service-time oracle: evaluation cost is wall time, not CPU. The
/// returned value is a deterministic function of the placement so repeated
/// queries stay consistent.
class EmulatedEvaluator final : public optim::PlacementEvaluator {
 public:
  explicit EmulatedEvaluator(std::chrono::microseconds service)
      : service_(service) {}

  double total_throughput(const edge::EdgeSystem&,
                          const edge::Placement& placement) override {
    record_evaluation();
    std::this_thread::sleep_for(service_);
    return 1.0 + static_cast<double>(placement.canonical_hash() % 997);
  }

 private:
  std::chrono::microseconds service_;
};

struct HarnessConfig {
  int service_us = 20000;
  int workers = 4;
  int max_backends = 3;
  double seconds = 2.0;
  double strict_deadline_ms = 150.0;
  double lax_deadline_ms = 400.0;
  /// Admission bound, in batches: queue wait tops out around
  /// queue_batches * service_time, comfortably under the strict deadline.
  int queue_batches = 3;

  /// Placements per second one backend can absorb: max_batch = workers, so
  /// a full batch fans one placement per worker and completes in one
  /// service time.
  double backend_capacity() const {
    return static_cast<double>(workers) * 1e6 / service_us;
  }
  /// Worst-case round trip of an ACCEPTED request: full admission queue
  /// ahead of it plus its own batch, plus scheduling slack.
  double accepted_rtt_s() const {
    return (queue_batches + 1) * service_us / 1e6 + 0.02;
  }
};

/// One tenant system name per backend, searched so that the router's
/// deterministic ring (same backend count, same vnodes) hashes each name
/// onto its own backend. This is what makes per-backend queues
/// single-system — the flusher batches a prefix of same-system placements,
/// so mixed-tenant queues would degrade batches toward size 1.
std::vector<std::string> pinned_tenant_names(int backends, int vnodes) {
  const serve::HashRing ring(static_cast<std::size_t>(backends), vnodes);
  std::vector<std::string> names(static_cast<std::size_t>(backends));
  std::vector<char> found(static_cast<std::size_t>(backends), 0);
  int remaining = backends;
  for (int k = 0; remaining > 0; ++k) {
    const std::string name = "tenant-" + std::to_string(k);
    const std::size_t b = ring.pick(serve::HashRing::hash_bytes(name));
    if (!found[b]) {
      found[b] = 1;
      names[b] = name;
      --remaining;
    }
  }
  return names;
}

struct PointResult {
  int backends = 0;
  double offered_qps = 0.0;
  double elapsed_s = 0.0;
  std::uint64_t sent = 0;
  std::uint64_t ok_within_deadline = 0;
  std::uint64_t ok_late = 0;
  std::uint64_t shed_overloaded = 0;
  std::uint64_t shed_deadline = 0;
  std::uint64_t shed_upstream = 0;
  std::uint64_t shed_other = 0;
  std::uint64_t transport_errors = 0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;

  double goodput_qps() const {
    return elapsed_s > 0.0 ? static_cast<double>(ok_within_deadline) /
                                 elapsed_s
                           : 0.0;
  }
  std::uint64_t shed_total() const {
    return shed_overloaded + shed_deadline + shed_upstream + shed_other;
  }
  double shed_rate() const {
    return sent > 0 ? static_cast<double>(shed_total()) / sent : 0.0;
  }
};

/// One backend process-in-miniature: pool + service + server, constructed
/// in dependency order.
struct Backend {
  std::unique_ptr<runtime::ThreadPool> pool;
  std::unique_ptr<runtime::EvalService> service;
  std::unique_ptr<serve::Server> server;
};

PointResult run_point(const HarnessConfig& harness,
                      const edge::EdgeSystem& system,
                      const std::vector<edge::Placement>& placements,
                      int backends, double offered_qps) {
  const auto service_time = std::chrono::microseconds(harness.service_us);
  runtime::EvalService::EvaluatorFactory factory =
      [service_time](support::Rng) -> std::unique_ptr<optim::PlacementEvaluator> {
    return std::make_unique<EmulatedEvaluator>(service_time);
  };

  std::vector<Backend> fleet;
  serve::RouterConfig router_cfg;
  const auto tenant_names =
      pinned_tenant_names(backends, router_cfg.vnodes_per_backend);
  for (int b = 0; b < backends; ++b) {
    Backend backend;
    backend.pool = std::make_unique<runtime::ThreadPool>(harness.workers);
    backend.service = std::make_unique<runtime::EvalService>(
        *backend.pool, factory, 7 + static_cast<std::uint64_t>(b));
    serve::ServerConfig server_cfg;
    server_cfg.max_batch = harness.workers;
    server_cfg.flush_window_ms = 0.2;
    // Tight admission bound: anything past queue_batches full batches is
    // answered "overloaded" immediately, which keeps accepted-request
    // latency bounded by accepted_rtt() and frees generator connections
    // fast under overload.
    server_cfg.max_pending = static_cast<std::size_t>(
        harness.queue_batches * harness.workers);
    backend.server =
        std::make_unique<serve::Server>(*backend.service, server_cfg);
    // Every backend loads every tenant system so a failover (health-probe
    // ejection mid-run) reroutes cleanly instead of "unknown system".
    for (const auto& name : tenant_names) {
      backend.server->add_system(name, system);
    }
    backend.server->start();
    router_cfg.backends.push_back(
        serve::BackendAddress{"127.0.0.1", backend.server->port()});
    fleet.push_back(std::move(backend));
  }
  // System affinity + one pinned tenant system per backend: each backend's
  // pending queue stays single-system, so flusher batches fill to
  // max_batch and the analytic capacity is actually reachable.
  router_cfg.affinity = serve::RouteAffinity::kSystem;
  router_cfg.health_interval_ms = 100.0;
  router_cfg.metrics_port = -1;  // the metrics path has its own test
  serve::Router router(router_cfg);
  router.start();

  // Precompute the Poisson arrival schedule (open loop: the offered load
  // is a property of the schedule, not of how fast the system answers).
  support::Rng arrivals_rng(42);
  const std::size_t total = static_cast<std::size_t>(
      std::max(1.0, offered_qps * harness.seconds));
  std::vector<double> schedule(total);
  double t = 0.0;
  for (std::size_t i = 0; i < total; ++i) {
    t += arrivals_rng.exponential(1.0 / offered_qps);
    schedule[i] = t;
  }

  // Enough connections that the generator never becomes the bottleneck:
  // accepted requests hold a connection for at most accepted_rtt() (the
  // admission queue is bounded), rejects return in ~a millisecond, so
  // offered * accepted_rtt * 1.5 connections keep the schedule on time
  // even if every request were accepted and worst-case slow.
  const int clients = static_cast<int>(std::clamp(
      offered_qps * harness.accepted_rtt_s() * 1.5, 16.0, 96.0));

  std::atomic<std::size_t> next{0};
  std::vector<PointResult> partial(static_cast<std::size_t>(clients));
  std::vector<std::vector<double>> latencies(
      static_cast<std::size_t>(clients));
  const auto t0 = Clock::now() + std::chrono::milliseconds(50);
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      PointResult& mine = partial[static_cast<std::size_t>(c)];
      auto& lat = latencies[static_cast<std::size_t>(c)];
      std::unique_ptr<serve::Client> client;
      for (;;) {
        const std::size_t i = next.fetch_add(1);
        if (i >= schedule.size()) break;
        const auto scheduled =
            t0 + std::chrono::duration_cast<Clock::duration>(
                     std::chrono::duration<double>(schedule[i]));
        std::this_thread::sleep_until(scheduled);
        // Tenant classes: each pinned system carries a strict-deadline and
        // a lax-deadline tenant, interleaved across arrivals.
        const std::size_t tenant = i % (2 * tenant_names.size());
        const std::string& tenant_system = tenant_names[tenant / 2];
        const double deadline_ms = tenant % 2 == 0
                                       ? harness.strict_deadline_ms
                                       : harness.lax_deadline_ms;
        const auto& placement = placements[i % placements.size()];
        ++mine.sent;
        try {
          if (!client) {
            client = std::make_unique<serve::Client>("127.0.0.1",
                                                     router.port());
          }
          client->evaluate_one(placement, tenant_system, deadline_ms);
          const double ms = std::chrono::duration<double, std::milli>(
                                Clock::now() - scheduled)
                                .count();
          lat.push_back(ms);
          if (ms <= deadline_ms) {
            ++mine.ok_within_deadline;
          } else {
            ++mine.ok_late;
          }
        } catch (const serve::ServeError& e) {
          switch (e.code()) {
            case serve::ErrorCode::kOverloaded: ++mine.shed_overloaded; break;
            case serve::ErrorCode::kDeadlineExceeded:
              ++mine.shed_deadline;
              break;
            case serve::ErrorCode::kUpstreamFailed:
              ++mine.shed_upstream;
              break;
            default: ++mine.shed_other; break;
          }
        } catch (const std::exception&) {
          ++mine.transport_errors;
          client.reset();  // reconnect on the next arrival
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  const double elapsed =
      std::chrono::duration<double>(Clock::now() - t0).count();

  router.stop();
  for (auto& backend : fleet) backend.server->stop();

  PointResult result;
  result.backends = backends;
  result.offered_qps = offered_qps;
  result.elapsed_s = elapsed;
  std::vector<double> all;
  for (int c = 0; c < clients; ++c) {
    const PointResult& mine = partial[static_cast<std::size_t>(c)];
    result.sent += mine.sent;
    result.ok_within_deadline += mine.ok_within_deadline;
    result.ok_late += mine.ok_late;
    result.shed_overloaded += mine.shed_overloaded;
    result.shed_deadline += mine.shed_deadline;
    result.shed_upstream += mine.shed_upstream;
    result.shed_other += mine.shed_other;
    result.transport_errors += mine.transport_errors;
    all.insert(all.end(), latencies[static_cast<std::size_t>(c)].begin(),
               latencies[static_cast<std::size_t>(c)].end());
  }
  std::sort(all.begin(), all.end());
  if (!all.empty()) {
    result.p50_ms = all[all.size() / 2];
    result.p99_ms = all[std::min(all.size() - 1,
                                 static_cast<std::size_t>(
                                     std::ceil(0.99 * all.size())))];
  }
  return result;
}

support::Json point_json(const PointResult& point) {
  support::Json row;
  row["backends"] = support::Json(point.backends);
  row["offered_qps"] = support::Json(point.offered_qps);
  row["goodput_qps"] = support::Json(point.goodput_qps());
  row["sent"] = support::Json(static_cast<double>(point.sent));
  row["ok_within_deadline"] =
      support::Json(static_cast<double>(point.ok_within_deadline));
  row["ok_late"] = support::Json(static_cast<double>(point.ok_late));
  row["shed_rate"] = support::Json(point.shed_rate());
  row["shed_overloaded"] =
      support::Json(static_cast<double>(point.shed_overloaded));
  row["shed_deadline"] =
      support::Json(static_cast<double>(point.shed_deadline));
  row["shed_upstream"] =
      support::Json(static_cast<double>(point.shed_upstream));
  row["transport_errors"] =
      support::Json(static_cast<double>(point.transport_errors));
  row["p50_ms"] = support::Json(point.p50_ms);
  row["p99_ms"] = support::Json(point.p99_ms);
  return row;
}

void print_point(const char* tag, const PointResult& point) {
  std::printf("  %-10s N=%d offered %7.0f/s -> goodput %7.0f/s "
              "(p50 %6.1fms, p99 %6.1fms, shed %4.1f%%, late %llu)\n",
              tag, point.backends, point.offered_qps, point.goodput_qps(),
              point.p50_ms, point.p99_ms, 100.0 * point.shed_rate(),
              static_cast<unsigned long long>(point.ok_late));
}

}  // namespace

int main() {
  HarnessConfig harness;
  harness.service_us = std::max(100, env_int("CHAINNET_SCALE_SERVICE_US",
                                             20000));
  harness.workers = std::max(1, env_int("CHAINNET_SCALE_WORKERS", 4));
  harness.max_backends = std::max(1, env_int("CHAINNET_SCALE_BACKENDS", 3));
  harness.seconds = std::max(0.2, env_double("CHAINNET_SCALE_SECONDS", 2.0));
  const char* out_env = std::getenv("CHAINNET_SCALE_OUT");
  const std::string out_path = out_env ? out_env : "BENCH_serve_scale.json";

  support::Rng gen_rng(5);
  const auto system = edge::generate_placement_problem(
      edge::PlacementProblemParams::paper(13), gen_rng);
  support::Rng placement_rng(23);
  std::vector<edge::Placement> placements;
  for (int i = 0; i < 64; ++i) {
    placements.push_back(edge::random_placement(system, placement_rng));
  }

  const double capacity_n =
      harness.backend_capacity() * harness.max_backends;
  std::printf("bench_serve_scale: emulated service %dus x %d workers -> "
              "%.0f placements/s per backend (%.0f/s at N=%d)\n\n",
              harness.service_us, harness.workers,
              harness.backend_capacity(), capacity_n, harness.max_backends);

  // Experiment 1: goodput scaling. The offered load exceeds what any
  // smaller fleet can serve, so goodput is capacity-limited at every N and
  // must grow as backends are added.
  std::printf("goodput scaling (offered %.0f/s fixed):\n",
              1.15 * capacity_n);
  std::vector<PointResult> scaling;
  for (int n = 1; n <= harness.max_backends; ++n) {
    scaling.push_back(run_point(harness, system, placements, n,
                                1.15 * capacity_n));
    print_point("scale", scaling.back());
  }

  // Experiment 2: overload sweep at full fleet size.
  static constexpr double kFractions[] = {0.4, 0.7, 0.9, 1.1, 1.4, 1.8};
  std::printf("\noverload sweep (N=%d, capacity %.0f/s):\n",
              harness.max_backends, capacity_n);
  std::vector<PointResult> sweep;
  for (const double fraction : kFractions) {
    sweep.push_back(run_point(harness, system, placements,
                              harness.max_backends, fraction * capacity_n));
    print_point("sweep", sweep.back());
  }

  support::Json doc;
  {
    support::Json config_doc;
    config_doc["service_us"] = support::Json(harness.service_us);
    config_doc["workers_per_backend"] = support::Json(harness.workers);
    config_doc["backend_capacity_qps"] =
        support::Json(harness.backend_capacity());
    config_doc["max_backends"] = support::Json(harness.max_backends);
    config_doc["seconds_per_point"] = support::Json(harness.seconds);
    config_doc["queue_batches"] = support::Json(harness.queue_batches);
    config_doc["strict_deadline_ms"] =
        support::Json(harness.strict_deadline_ms);
    config_doc["lax_deadline_ms"] = support::Json(harness.lax_deadline_ms);
    doc["config"] = std::move(config_doc);
  }
  {
    support::Json rows;
    for (const auto& point : scaling) rows.push_back(point_json(point));
    doc["scaling"] = std::move(rows);
  }
  {
    support::Json rows;
    for (const auto& point : sweep) rows.push_back(point_json(point));
    doc["overload_sweep"] = std::move(rows);
  }
  if (!scaling.empty()) {
    doc["scaling_goodput_ratio"] = support::Json(
        scaling.front().goodput_qps() > 0.0
            ? scaling.back().goodput_qps() / scaling.front().goodput_qps()
            : 0.0);
  }
  std::ofstream out(out_path);
  out << doc.dump(2) << "\n";
  std::printf("\nwrote %s\n", out_path.c_str());
  return 0;
}
