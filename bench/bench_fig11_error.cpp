// Reproduces Fig. 11: (a)-(b) MAPE of throughput and latency predictions on
// the Type I and Type II test sets; (c)-(d) APE distribution percentiles.
// Also emits CSV series (fig11_*.csv in the cache dir) for external
// plotting, and a service-time sensitivity row (exponential vs
// deterministic ground truth) documented in DESIGN.md as an extra.
#include <iostream>
#include <vector>

#include "common.h"
#include "gnn/metrics.h"
#include "support/table.h"

namespace {

struct Row {
  std::string label;
  chainnet::gnn::ApeSummary tput1, lat1, tput2, lat2;
};

}  // namespace

int main() {
  using namespace chainnet;
  bench::print_header("Fig. 11: MAPE and APE distributions");

  struct Entry {
    const char* label;
    const char* tput_model;
    const char* lat_model;
  };
  const std::vector<Entry> entries = {
      {"ChainNet", "chainnet", "chainnet"},
      {"GIN", "gin_tput", "gin_lat"},
      {"GAT", "gat_tput", "gat_lat"},
  };

  std::vector<Row> rows;
  for (const auto& e : entries) {
    Row row;
    row.label = e.label;
    auto& tm = bench::model(e.tput_model);
    row.tput1 = gnn::summarize(
        gnn::throughput_apes(gnn::evaluate(tm, bench::test_type1())));
    row.tput2 = gnn::summarize(
        gnn::throughput_apes(gnn::evaluate(tm, bench::test_type2())));
    auto& lm = bench::model(e.lat_model);
    row.lat1 = gnn::summarize(
        gnn::latency_apes(gnn::evaluate(lm, bench::test_type1())));
    row.lat2 = gnn::summarize(
        gnn::latency_apes(gnn::evaluate(lm, bench::test_type2())));
    rows.push_back(row);
  }

  support::Table mape({"model", "I tput MAPE", "I lat MAPE", "II tput MAPE",
                       "II lat MAPE"});
  for (const auto& r : rows) {
    mape.add_row({r.label, support::Table::num(r.tput1.mape),
                  support::Table::num(r.lat1.mape),
                  support::Table::num(r.tput2.mape),
                  support::Table::num(r.lat2.mape)});
  }
  mape.print(std::cout, "Fig. 11a-b: MAPE (lower is better)");

  support::Table dist({"model", "metric", "set", "p50", "p75", "p95", "p99"});
  const auto add_dist = [&](const std::string& label, const char* metric,
                            const char* set, const gnn::ApeSummary& s) {
    dist.add_row({label, metric, set, support::Table::num(s.p50),
                  support::Table::num(s.p75), support::Table::num(s.p95),
                  support::Table::num(s.p99)});
  };
  for (const auto& r : rows) {
    add_dist(r.label, "tput", "I", r.tput1);
    add_dist(r.label, "tput", "II", r.tput2);
    add_dist(r.label, "lat", "I", r.lat1);
    add_dist(r.label, "lat", "II", r.lat2);
  }
  dist.print(std::cout, "Fig. 11c-d: APE distribution percentiles");

  // CSV for plotting.
  support::CsvWriter csv(bench::cache_dir() + "/fig11_mape.csv",
                         {"model", "tput_I", "lat_I", "tput_II", "lat_II"});
  for (const auto& r : rows) {
    csv.row(std::vector<std::string>{
        r.label, support::Table::num(r.tput1.mape, 6),
        support::Table::num(r.lat1.mape, 6),
        support::Table::num(r.tput2.mape, 6),
        support::Table::num(r.lat2.mape, 6)});
  }

  // Error-reduction headline (paper: 48.0% tput / 64.2% latency vs the
  // best baseline).
  const double best_tput =
      std::min(rows[1].tput2.mape + rows[1].tput1.mape,
               rows[2].tput2.mape + rows[2].tput1.mape);
  const double best_lat = std::min(rows[1].lat2.mape + rows[1].lat1.mape,
                                   rows[2].lat2.mape + rows[2].lat1.mape);
  const double cn_tput = rows[0].tput1.mape + rows[0].tput2.mape;
  const double cn_lat = rows[0].lat1.mape + rows[0].lat2.mape;
  std::cout << "\nError reduction vs best baseline (paper: 48.0% tput, "
               "64.2% latency):\n"
            << "  throughput: " << support::Table::num(
                   100.0 * (1.0 - cn_tput / best_tput), 1)
            << "%\n  latency:    "
            << support::Table::num(100.0 * (1.0 - cn_lat / best_lat), 1)
            << "%\n";
  return 0;
}
