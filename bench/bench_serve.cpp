// bench_serve — loopback throughput of the TCP serving layer.
//
// Starts an in-process serve::Server backed by the approximation oracle
// behind the sharded EvalCache (the intended serving configuration: repeat
// queries are cache hits), then drives single-placement queries from
// concurrent loopback clients, sweeping client counts at two flush
// windows. Each configuration gets a fresh server so its stats are clean;
// the cache is shared across the sweep, as it would be across a server's
// lifetime. After the sweep the headline configuration's `stats` response
// is printed: batch-size histogram, latency percentiles, cache hit rate.
// A final pass swaps in the uncached GNN surrogate oracle and compares
// max_batch=1 against max_batch=32 under concurrent clients — the flusher's
// aggregated batches reach the lock-stepped multi-placement forward, so the
// qps ratio is the serving-layer view of batched-vs-scalar inference.
//
// Alongside the text report the full sweep is written as machine-readable
// JSON to BENCH_serve.json (override with CHAINNET_SERVE_OUT), following
// the BENCH_infer.json conventions so the serving trajectory is tracked
// across revisions.
//
//   CHAINNET_SERVE_DEVICES     problem size (default 20)
//   CHAINNET_SERVE_POOL        distinct placements queried (default 512)
//   CHAINNET_SERVE_SECONDS     measured seconds per configuration (0.4)
//   CHAINNET_SERVE_OUT         output JSON path (default BENCH_serve.json)
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/chainnet.h"
#include "edge/problem.h"
#include "optim/evaluator.h"
#include "oracles.h"
#include "runtime/eval_cache.h"
#include "runtime/eval_service.h"
#include "runtime/thread_pool.h"
#include "serve/client.h"
#include "serve/server.h"
#include "support/json.h"
#include "support/rng.h"

namespace {

using namespace chainnet;
using Clock = std::chrono::steady_clock;

int env_int(const char* name, int fallback) {
  const char* value = std::getenv(name);
  return value ? std::atoi(value) : fallback;
}

double env_double(const char* name, double fallback) {
  const char* value = std::getenv(name);
  return value ? std::atof(value) : fallback;
}

struct RunResult {
  double qps = 0.0;
  support::Json stats;
};

RunResult run_config(runtime::EvalService& service,
                     const edge::EdgeSystem& system,
                     const std::shared_ptr<runtime::EvalCache>& cache,
                     const std::vector<edge::Placement>& placements,
                     int clients, double flush_ms, double seconds,
                     int max_batch = 32) {
  serve::ServerConfig config;
  config.max_batch = max_batch;
  config.flush_window_ms = flush_ms;
  config.cache = cache;
  serve::Server server(service, config);
  server.add_system("default", system);
  server.start();

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> queries{0};
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(clients));
  const auto start = Clock::now();
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      serve::Client client("127.0.0.1", server.port());
      std::size_t i = static_cast<std::size_t>(c) * 37;
      while (!stop.load(std::memory_order_relaxed)) {
        client.evaluate_one(placements[i % placements.size()]);
        i += 13;  // coprime stride: clients cycle the pool out of phase
        queries.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  std::this_thread::sleep_for(
      std::chrono::duration<double>(std::max(0.05, seconds)));
  stop.store(true);
  for (auto& t : threads) t.join();
  const double elapsed =
      std::chrono::duration<double>(Clock::now() - start).count();

  RunResult result;
  result.qps = static_cast<double>(queries.load()) / elapsed;
  serve::Client stats_client("127.0.0.1", server.port());
  result.stats = stats_client.stats();
  server.stop();
  return result;
}

}  // namespace

int main() {
  const char* out_env = std::getenv("CHAINNET_SERVE_OUT");
  const std::string out_path = out_env ? out_env : "BENCH_serve.json";
  support::Rng gen_rng(5);
  const auto system = edge::generate_placement_problem(
      edge::PlacementProblemParams::paper(
          std::max(env_int("CHAINNET_SERVE_DEVICES", 20), 13)),
      gen_rng);
  const int pool_size = std::max(env_int("CHAINNET_SERVE_POOL", 512), 1);
  const double seconds = env_double("CHAINNET_SERVE_SECONDS", 0.4);

  support::Rng rng(23);
  std::vector<edge::Placement> placements;
  placements.reserve(static_cast<std::size_t>(pool_size));
  for (int i = 0; i < pool_size; ++i) {
    placements.push_back(edge::random_placement(system, rng));
  }

  auto cache = std::make_shared<runtime::EvalCache>();
  runtime::EvalService::EvaluatorFactory factory =
      [cache](support::Rng) -> std::unique_ptr<optim::PlacementEvaluator> {
    return std::make_unique<runtime::CachedEvaluator>(
        std::make_unique<optim::ApproximationEvaluator>(), cache);
  };
  runtime::ThreadPool pool(4);
  runtime::EvalService service(pool, factory, 99);

  std::printf("bench_serve: %d chains, %d devices, %d-placement query pool, "
              "%u hardware threads\n\n",
              system.num_chains(), system.num_devices(), pool_size,
              std::thread::hardware_concurrency());
  std::printf("  %8s %10s %12s %10s\n", "clients", "flush_ms",
              "queries/sec", "batches");

  RunResult headline;
  support::Json sweep_rows;
  for (const double flush_ms : {0.0, 0.2}) {
    for (const int clients : {1, 2, 4, 8}) {
      const auto result = run_config(service, system, cache, placements,
                                     clients, flush_ms, seconds);
      std::printf("  %8d %10.1f %12.0f %10.0f\n", clients, flush_ms,
                  result.qps, result.stats.at("batches").as_number());
      support::Json row;
      row["clients"] = support::Json(clients);
      row["flush_ms"] = support::Json(flush_ms);
      row["queries_per_s"] = support::Json(result.qps);
      row["batches"] = result.stats.at("batches");
      sweep_rows.push_back(std::move(row));
      headline = result;  // last = 8 clients, 0.2ms window
    }
  }

  const auto& stats = headline.stats;
  const auto& latency = stats.at("service_latency");
  std::printf("\nheadline (8 clients, 0.2ms flush window): %.0f queries/sec\n",
              headline.qps);
  std::printf("service latency: mean %.0fus, p50 %.0fus, p95 %.0fus, "
              "p99 %.0fus (%.0f requests)\n",
              latency.at("mean_s").as_number() * 1e6,
              latency.at("p50_s").as_number() * 1e6,
              latency.at("p95_s").as_number() * 1e6,
              latency.at("p99_s").as_number() * 1e6,
              latency.at("count").as_number());
  std::printf("batch-size histogram ([size] count):\n");
  for (const auto& row : stats.at("batch_size_histogram").as_array()) {
    std::printf("  [%3.0f] %.0f\n", row.as_array()[0].as_number(),
                row.as_array()[1].as_number());
  }
  if (stats.has("cache")) {
    const auto& c = stats.at("cache");
    std::printf("cache: %.0f hits / %.0f misses (hit rate %.3f)\n",
                c.at("hits").as_number(), c.at("misses").as_number(),
                c.at("hit_rate").as_number());
  }

  // Surrogate oracle, no cache: every query is a real GNN forward, so the
  // flush window's batch aggregation directly exercises the lock-stepped
  // multi-placement path. max_batch=1 forces one scalar forward per query;
  // max_batch=32 lets concurrent clients' queries fuse into batched
  // forwards. Same clients, same pool, same flush window — the qps ratio is
  // the batching win as a client would observe it.
  double scalar_qps = 0.0;
  double batched_qps = 0.0;
  {
    core::ChainNetConfig model_cfg;
    runtime::ThreadPool gnn_pool(2);
    runtime::EvalService gnn_service(gnn_pool,
                                     bench::surrogate_factory(model_cfg), 99);
    std::printf("\nsurrogate oracle (uncached, 8 clients, 0.2ms flush "
                "window):\n");
    for (const int max_batch : {1, 32}) {
      const auto result = run_config(gnn_service, system, nullptr, placements,
                                     8, 0.2, seconds, max_batch);
      (max_batch == 1 ? scalar_qps : batched_qps) = result.qps;
      std::printf("  max_batch %2d: %7.0f queries/sec, %.0f batches\n",
                  max_batch, result.qps,
                  result.stats.at("batches").as_number());
    }
    std::printf("  batched vs scalar speedup: %.2fx\n",
                batched_qps / scalar_qps);
  }

  support::Json doc;
  {
    support::Json config_doc;
    config_doc["chains"] = support::Json(system.num_chains());
    config_doc["devices"] = support::Json(system.num_devices());
    config_doc["placement_pool"] = support::Json(pool_size);
    config_doc["seconds_per_config"] = support::Json(seconds);
    doc["config"] = std::move(config_doc);
  }
  doc["sweep"] = std::move(sweep_rows);
  {
    support::Json head;
    head["clients"] = support::Json(8);
    head["flush_ms"] = support::Json(0.2);
    head["queries_per_s"] = support::Json(headline.qps);
    head["service_latency"] = headline.stats.at("service_latency");
    if (headline.stats.has("cache")) head["cache"] = headline.stats.at("cache");
    doc["headline"] = std::move(head);
  }
  {
    support::Json surrogate;
    surrogate["scalar_queries_per_s"] = support::Json(scalar_qps);
    surrogate["batched_queries_per_s"] = support::Json(batched_qps);
    surrogate["batched_vs_scalar_speedup"] =
        support::Json(scalar_qps > 0.0 ? batched_qps / scalar_qps : 0.0);
    doc["surrogate_uncached"] = std::move(surrogate);
  }
  std::ofstream out(out_path);
  out << doc.dump(2) << "\n";
  std::printf("\nwrote %s\n", out_path.c_str());
  return 0;
}
