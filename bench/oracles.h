// Surrogate oracle factory shared by the runtime/serving benches: each
// EvalService worker gets an evaluator that owns its ChainNet instance
// (fixed init seed — an untrained model's inference cost is identical to a
// trained one's, which is all a throughput bench needs). The evaluator
// forwards the batch entry point so EvalService batches reach the
// lock-stepped multi-placement GNN forward instead of the serial
// per-placement fallback.
#pragma once

#include <memory>
#include <span>

#include "core/chainnet.h"
#include "core/surrogate.h"
#include "optim/evaluator.h"
#include "runtime/eval_service.h"
#include "support/rng.h"

namespace chainnet::bench {

/// PlacementEvaluator that owns its model (SurrogateEvaluator itself only
/// borrows one) and routes batches to Surrogate::total_throughput_batch.
struct OwningSurrogateEvaluator final : public optim::PlacementEvaluator {
  explicit OwningSurrogateEvaluator(std::unique_ptr<core::ChainNet> m)
      : model(std::move(m)), eval(core::Surrogate(*model)) {}

  double total_throughput(const edge::EdgeSystem& system,
                          const edge::Placement& placement) override {
    record_evaluation();
    return eval.total_throughput(system, placement);
  }

  void total_throughput_batch(const edge::EdgeSystem& system,
                              std::span<const edge::Placement> placements,
                              std::span<double> out) override {
    for (std::size_t i = 0; i < placements.size(); ++i) record_evaluation();
    eval.total_throughput_batch(system, placements, out);
  }

  std::unique_ptr<core::ChainNet> model;
  optim::SurrogateEvaluator eval;
};

inline runtime::EvalService::EvaluatorFactory surrogate_factory(
    const core::ChainNetConfig& cfg) {
  return [cfg](support::Rng) -> std::unique_ptr<optim::PlacementEvaluator> {
    support::Rng init_rng(1);
    return std::make_unique<OwningSurrogateEvaluator>(
        std::make_unique<core::ChainNet>(cfg, init_rng));
  };
}

}  // namespace chainnet::bench
