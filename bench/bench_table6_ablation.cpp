// Reproduces Table VI: MAPE of ChainNet against its ablated variants
// (alpha: no Table-II modifications; beta: no output modification;
// delta: no input modification) on both test sets, plus an extra
// non-paper ablation replacing the f_multi attention with a plain mean.
#include <iostream>
#include <vector>

#include "common.h"
#include "gnn/metrics.h"
#include "support/table.h"

int main() {
  using namespace chainnet;
  bench::print_header("Table VI: ablation study (MAPE)");

  struct Entry {
    const char* label;
    const char* model;
    const char* paper_row[4];  // I-tput, I-lat, II-tput, II-lat
  };
  const std::vector<Entry> entries = {
      {"ChainNet", "chainnet", {"0.037", "0.033", "0.012", "0.069"}},
      {"ChainNet-alpha", "chainnet_alpha",
       {"0.136", "0.124", "0.213", "3.952"}},
      {"ChainNet-beta", "chainnet_beta",
       {"0.379", "0.159", "0.794", "4.546"}},
      {"ChainNet-delta", "chainnet_delta",
       {"0.042", "0.050", "0.033", "0.237"}},
      {"ChainNet-noattn (extra)", "chainnet_noattn",
       {"-", "-", "-", "-"}},
  };

  support::Table table(
      {"model", "I tput", "I lat", "II tput", "II lat"});
  support::Table reference(
      {"model", "I tput", "I lat", "II tput", "II lat"});
  for (const auto& e : entries) {
    auto& mdl = bench::model(e.model);
    const auto e1 = gnn::evaluate(mdl, bench::test_type1());
    const auto e2 = gnn::evaluate(mdl, bench::test_type2());
    table.add_row(
        {e.label,
         support::Table::num(gnn::summarize(gnn::throughput_apes(e1)).mape),
         support::Table::num(gnn::summarize(gnn::latency_apes(e1)).mape),
         support::Table::num(gnn::summarize(gnn::throughput_apes(e2)).mape),
         support::Table::num(gnn::summarize(gnn::latency_apes(e2)).mape)});
    reference.add_row({e.label, e.paper_row[0], e.paper_row[1],
                       e.paper_row[2], e.paper_row[3]});
  }
  table.print(std::cout, "Measured (this run)");
  reference.print(std::cout, "Paper Table VI (reference)");
  std::cout << "\nShape check: full ChainNet should dominate; beta (raw "
               "outputs) should be the\nworst on Type II; delta (raw inputs) "
               "should sit between ChainNet and beta.\n";
  return 0;
}
