// bench_parallel — throughput of the concurrent evaluation runtime.
//
// Measures placement evaluations/sec through runtime::EvalService for the
// three oracle types (approximation, simulation, GNN surrogate) at thread
// counts 1/2/4/8, reporting the speedup over the 1-thread run, plus a
// memoization pass quantifying what the sharded EvalCache saves on a
// revisit-heavy workload, and a batched-vs-scalar pass showing what the
// surrogate's lock-stepped multi-placement forward buys over one-at-a-time
// evaluation on a single worker. Absolute speedups depend on the host's
// core count (a 1-core container shows ~1x everywhere); the per-oracle
// evals/sec column is the portable number.
//
//   CHAINNET_PAR_DEVICES   problem size (default 20)
//   CHAINNET_PAR_BATCH     placements per batch (default: per-oracle)
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/chainnet.h"
#include "core/surrogate.h"
#include "edge/problem.h"
#include "optim/annealing.h"
#include "optim/evaluator.h"
#include "optim/initial.h"
#include "oracles.h"
#include "queueing/simulator.h"
#include "runtime/eval_cache.h"
#include "runtime/eval_service.h"
#include "runtime/thread_pool.h"
#include "support/rng.h"

namespace {

using namespace chainnet;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

int env_int(const char* name, int fallback) {
  const char* value = std::getenv(name);
  return value ? std::atoi(value) : fallback;
}

/// Random walk of feasible placements starting from the ranking-score
/// initial decision — the same visitation pattern the SA drivers produce.
std::vector<edge::Placement> walk_placements(const edge::EdgeSystem& system,
                                             int count) {
  std::vector<edge::Placement> placements;
  placements.reserve(static_cast<std::size_t>(count));
  edge::Placement current = optim::initial_placement(system);
  support::Rng rng(17);
  const optim::SaConfig cfg;
  for (int i = 0; i < count; ++i) {
    edge::Placement next;
    if (propose_move(system, current, rng, cfg, next)) current = next;
    placements.push_back(current);
  }
  return placements;
}

struct OracleSpec {
  std::string name;
  runtime::EvalService::EvaluatorFactory factory;
  int batch;  ///< placements per timed batch (scaled to oracle cost)
};

void bench_oracle(const edge::EdgeSystem& system, const OracleSpec& oracle) {
  const auto placements = walk_placements(system, oracle.batch);
  std::printf("%-12s (%d placements/batch)\n", oracle.name.c_str(),
              oracle.batch);
  std::printf("  %8s %14s %10s\n", "threads", "evals/sec", "speedup");
  double base_rate = 0.0;
  for (const int threads : {1, 2, 4, 8}) {
    runtime::ThreadPool pool(threads);
    runtime::EvalService service(pool, oracle.factory, 99);
    service.evaluate_batch(system, {placements.data(), 8});  // warm up
    const auto start = Clock::now();
    int evaluated = 0;
    double elapsed = 0.0;
    do {  // repeat batches until the measurement is long enough to trust
      service.evaluate_batch(system, placements);
      evaluated += static_cast<int>(placements.size());
      elapsed = seconds_since(start);
    } while (elapsed < 0.25);
    const double rate = evaluated / elapsed;
    if (threads == 1) base_rate = rate;
    std::printf("  %8d %14.0f %9.2fx\n", threads, rate, rate / base_rate);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  int devices = env_int("CHAINNET_PAR_DEVICES", 20);
  // The generator requires more devices than the longest possible chain
  // (paper §VII non-triviality assumption).
  auto params = edge::PlacementProblemParams::paper(devices);
  if (devices <= params.max_fragments) {
    std::printf("CHAINNET_PAR_DEVICES=%d too small, using %d\n", devices,
                params.max_fragments + 1);
    params.num_devices = params.max_fragments + 1;
  }
  support::Rng gen_rng(5);
  const auto system = edge::generate_placement_problem(params, gen_rng);
  std::printf("bench_parallel: %d chains, %d devices, %u hardware threads\n\n",
              system.num_chains(), system.num_devices(),
              std::thread::hardware_concurrency());

  // Simulation effort comparable to the search oracle of the fig14 bench.
  double max_ia = 0.0;
  for (const auto& chain : system.chains) {
    max_ia = std::max(max_ia, 1.0 / chain.arrival_rate);
  }
  queueing::SimConfig sim_cfg;
  sim_cfg.horizon = 400.0 * max_ia;
  sim_cfg.seed = 7;

  // Surrogate: a fixed-seed (untrained) ChainNet per worker — inference
  // cost is identical to a trained model's, which is all throughput needs.
  core::ChainNetConfig model_cfg;

  const int sim_batch = env_int("CHAINNET_PAR_BATCH", 48);
  const int cheap_batch = env_int("CHAINNET_PAR_BATCH", 512);

  bench_oracle(system,
               {"approx",
                [](support::Rng) -> std::unique_ptr<optim::PlacementEvaluator> {
                  return std::make_unique<optim::ApproximationEvaluator>();
                },
                cheap_batch});
  bench_oracle(
      system,
      {"sim",
       [sim_cfg](support::Rng) -> std::unique_ptr<optim::PlacementEvaluator> {
         return std::make_unique<optim::SimulationEvaluator>(sim_cfg);
       },
       sim_batch});
  bench_oracle(system,
               {"surrogate", bench::surrogate_factory(model_cfg), cheap_batch});

  // Batched vs scalar surrogate on ONE worker: the same placements either
  // trickle through evaluate() one at a time (B=1 scalar fused path) or go
  // down evaluate_batch() in one lock-stepped multi-placement GNN forward.
  // Thread-count speedups above measure parallelism; this isolates what the
  // batch-major forward itself buys.
  {
    const int batch = env_int("CHAINNET_PAR_GNN_BATCH", 32);
    const auto placements = walk_placements(system, batch);
    runtime::ThreadPool pool(1);
    runtime::EvalService service(pool, bench::surrogate_factory(model_cfg),
                                 99);
    service.evaluate_batch(system, placements);  // warm up
    auto measure = [&](auto&& pass) {
      const auto start = Clock::now();
      int evaluated = 0;
      double elapsed = 0.0;
      do {
        pass();
        evaluated += static_cast<int>(placements.size());
        elapsed = seconds_since(start);
      } while (elapsed < 0.25);
      return evaluated / elapsed;
    };
    const double scalar_rate = measure([&] {
      for (const auto& p : placements) service.evaluate(system, p);
    });
    const double batched_rate =
        measure([&] { service.evaluate_batch(system, placements); });
    std::printf("surrogate batched vs scalar (1 thread, batch %d): "
                "scalar %.0f/s, batched %.0f/s, speedup %.2fx\n\n",
                batch, scalar_rate, batched_rate, batched_rate / scalar_rate);
  }

  // Memoization: the SA walk revisits states, a cache turns those into
  // near-free hits. Second pass over an identical batch = 100% hit rate.
  {
    auto cache = std::make_shared<runtime::EvalCache>();
    runtime::EvalService::EvaluatorFactory cached =
        [sim_cfg,
         cache](support::Rng) -> std::unique_ptr<optim::PlacementEvaluator> {
      return std::make_unique<runtime::CachedEvaluator>(
          std::make_unique<optim::SimulationEvaluator>(sim_cfg), cache);
    };
    runtime::ThreadPool pool(2);
    runtime::EvalService service(pool, cached, 99);
    const auto placements = walk_placements(system, sim_batch);
    auto start = Clock::now();
    service.evaluate_batch(system, placements);
    const double cold = seconds_since(start);
    start = Clock::now();
    service.evaluate_batch(system, placements);
    const double warm = seconds_since(start);
    const auto stats = cache->stats();
    std::printf("cache (sim oracle, %zu placements): cold %.4fs, warm %.4fs "
                "(%.0fx), %llu hits / %llu misses\n",
                placements.size(), cold, warm, cold / std::max(warm, 1e-9),
                static_cast<unsigned long long>(stats.hits),
                static_cast<unsigned long long>(stats.misses));
  }
  return 0;
}
