// Fixed-wall-clock shoot-out of the src/search/ population optimizers
// against single-chain parallel SA (the fig14 protocol generalized to an
// algorithm matrix): every algorithm gets the SAME wall-clock budget and
// thread count on the SAME systems (the §VIII-D case study plus Table-VII
// problems), restarts trials until the budget is exhausted, and reports
//   - objective at budget (best total throughput found),
//   - time / oracle evaluations to reach the baseline's final quality
//     (the placements-to-target axis, from TrajectoryPoint::evals),
//   - acceptance / exchange / resample diagnostics,
//   - batch-discipline evidence (batched fraction, compiled-plan count).
//
// The headline criterion mirrors ROADMAP's open item: a population
// algorithm should reach parallel SA's final objective in <= 0.5x the
// wall-clock, or beat its objective outright at the full budget.
//
// Environment knobs:
//   CHAINNET_SEARCH_SECONDS   wall-clock budget per system (default 2.0)
//   CHAINNET_SEARCH_THREADS   worker threads for every algorithm (def. 4)
//   CHAINNET_SEARCH_POP       population / pool width K (default 16)
//   CHAINNET_SEARCH_ORACLE    surrogate | approx (default surrogate)
//   CHAINNET_SEARCH_PROBLEMS  Table-VII problems beside the case study
//                             (default 2)
//   CHAINNET_SEARCH_OUT       output JSON path (default BENCH_search.json)
//   CHAINNET_DTYPE            numeric tier for the surrogate oracle
//                             (f64 | f32 | bf16, default f64)
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "core/chainnet.h"
#include "gnn/plan.h"
#include "runtime/thread_pool.h"
#include "search_common.h"
#include "support/json.h"
#include "support/rng.h"
#include "support/table.h"
#include "tensor/dtype.h"
#include "tensor/serialize.h"

namespace {

using namespace chainnet;
using Clock = std::chrono::steady_clock;

double env_double(const char* name, double fallback) {
  const char* value = std::getenv(name);
  return value ? std::atof(value) : fallback;
}

int env_int(const char* name, int fallback) {
  const char* value = std::getenv(name);
  return value ? std::atoi(value) : fallback;
}

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// One benched system plus its protocol-wide constants.
struct Problem {
  std::string name;
  edge::EdgeSystem system;
};

/// Everything the report needs about one algorithm's budgeted run.
struct Outcome {
  std::string algo;
  optim::SaResult result;
  double wall = 0.0;
  double batched_fraction = 0.0;
  std::uint64_t plan_compiles = 0;
};

/// Restarts `round` (one trial / trial-group per call, seeded from one
/// seeder) until `budget_seconds` of wall-clock elapses; always runs at
/// least one round (the anneal_for contract).
template <typename Round>
optim::SaResult run_budgeted(double budget_seconds, std::uint64_t seed,
                             Round round) {
  const auto start = Clock::now();
  optim::SaResult acc;
  support::Rng seeder(seed);
  do {
    optim::merge_trial(acc, round(seeder()));
  } while (seconds_since(start) < budget_seconds);
  acc.wall_seconds = seconds_since(start);
  return acc;
}

/// First trajectory point whose best-so-far reaches `target`; returns
/// false when the run never got there.
bool first_at_target(const optim::SaResult& result, double target,
                     double* seconds, std::uint64_t* evals) {
  for (const auto& point : result.trajectory) {
    if (point.best >= target) {
      *seconds = point.seconds;
      *evals = point.evals;
      return true;
    }
  }
  return false;
}

}  // namespace

int main() {
  bench::print_header("search: population algorithms vs parallel SA");
  const double budget = env_double("CHAINNET_SEARCH_SECONDS", 2.0);
  const int threads = std::max(1, env_int("CHAINNET_SEARCH_THREADS", 4));
  const int population = std::max(1, env_int("CHAINNET_SEARCH_POP", 16));
  const int extra_problems =
      std::max(0, env_int("CHAINNET_SEARCH_PROBLEMS", 2));
  const char* oracle_env = std::getenv("CHAINNET_SEARCH_ORACLE");
  const std::string oracle = oracle_env ? oracle_env : "surrogate";
  const char* out_env = std::getenv("CHAINNET_SEARCH_OUT");
  const std::string out_path = out_env ? out_env : "BENCH_search.json";

  // Oracle factory: one private evaluator per worker (the EvalService
  // contract). The surrogate path clones the trained chainnet_search model
  // from the bench cache per worker, mirroring the CLI's --weights stack.
  runtime::EvalService::EvaluatorFactory factory;
  auto models =
      std::make_shared<std::vector<std::unique_ptr<core::ChainNet>>>();
  if (oracle == "approx") {
    factory = [](support::Rng) -> std::unique_ptr<optim::PlacementEvaluator> {
      return std::make_unique<optim::ApproximationEvaluator>();
    };
  } else if (oracle == "surrogate") {
    bench::model("chainnet_search");  // train once / load from cache
    const std::string weights =
        bench::cache_dir() + "/model_chainnet_search.bin";
    core::ChainNetConfig cfg;
    cfg.hidden = bench::scale().hidden;
    cfg.iterations = bench::scale().chainnet_iterations;
    cfg.dtype = tensor::dtype_from_env(tensor::DType::kF64);
    factory = [models, cfg, weights](
                  support::Rng) -> std::unique_ptr<optim::PlacementEvaluator> {
      support::Rng init_rng(1);
      auto model = std::make_unique<core::ChainNet>(cfg, init_rng);
      tensor::load_parameters(*model, weights);
      models->push_back(std::move(model));
      return std::make_unique<optim::SurrogateEvaluator>(
          core::Surrogate(*models->back()));
    };
  } else {
    std::cerr << "unknown CHAINNET_SEARCH_ORACLE '" << oracle << "'\n";
    return 1;
  }

  std::vector<Problem> problems;
  problems.push_back({"casestudy", edge::case_study_system()});
  support::Rng master(20260808);
  for (int p = 0; p < extra_problems; ++p) {
    const int devices = bench::device_count_for_problem(p);
    problems.push_back(
        {"tableVII_d" + std::to_string(devices),
         edge::generate_placement_problem(
             edge::PlacementProblemParams::paper(devices), master)});
  }

  optim::SaConfig sa;
  sa.max_steps = bench::scale().sa_steps;

  const std::vector<search::Algo> algos = {
      search::Algo::kPt, search::Algo::kPopAnneal, search::Algo::kBestOfB};

  support::Json::Array system_docs;
  support::Table table({"system", "algo", "best", "wall (s)", "evals",
                        "to-target (s)", "batched", "criterion"});
  std::vector<int> criterion_hits(algos.size(), 0);

  for (const auto& problem : problems) {
    const auto initial = optim::initial_placement(problem.system);

    // Baseline: single-chain parallel SA — `threads` independent serial SA
    // trials per round, fanned across the pool, restarted until budget.
    Outcome baseline;
    baseline.algo = "sa_parallel";
    {
      runtime::ThreadPool pool(threads);
      runtime::EvalService service(pool, factory, 1);
      baseline.result = run_budgeted(
          budget, 12345, [&](std::uint64_t round_seed) {
            optim::SaConfig round_sa = sa;
            round_sa.seed = round_seed;
            return optim::anneal_trials_parallel(problem.system, initial,
                                                 service, round_sa, threads);
          });
      baseline.wall = baseline.result.wall_seconds;
      baseline.batched_fraction = service.stats().batched_fraction();
      baseline.plan_compiles = service.plan_cache()->stats().compiles;
    }
    const double target = baseline.result.best_objective;
    table.add_row({problem.name, baseline.algo,
                   support::Table::num(target, 4),
                   support::Table::num(baseline.wall, 2),
                   std::to_string(baseline.result.evaluations), "-",
                   support::Table::num(baseline.batched_fraction, 2),
                   "baseline"});

    support::Json::Array algo_docs;
    for (std::size_t a = 0; a < algos.size(); ++a) {
      Outcome outcome;
      outcome.algo = std::string(search::algo_name(algos[a]));
      {
        runtime::ThreadPool pool(threads);
        runtime::EvalService service(pool, factory, 1);
        search::SearchConfig cfg;
        cfg.sa = sa;
        cfg.population = population;
        const auto optimizer =
            search::make_optimizer(algos[a], service, cfg);
        outcome.result = run_budgeted(
            budget, 12345, [&](std::uint64_t round_seed) {
              return optimizer->run(problem.system, initial, round_seed);
            });
        outcome.wall = outcome.result.wall_seconds;
        outcome.batched_fraction = service.stats().batched_fraction();
        outcome.plan_compiles = service.plan_cache()->stats().compiles;
      }

      // Population trials run single-driver (their trajectory time axis is
      // wall-clock), so seconds-to-target is directly comparable to the
      // baseline's wall.
      double to_target_seconds = 0.0;
      std::uint64_t to_target_evals = 0;
      const bool reached = first_at_target(outcome.result, target,
                                           &to_target_seconds,
                                           &to_target_evals);
      const bool better_at_budget =
          outcome.result.best_objective > target;
      const bool criterion =
          better_at_budget ||
          (reached && to_target_seconds <= 0.5 * baseline.wall);
      if (criterion) ++criterion_hits[a];

      table.add_row(
          {problem.name, outcome.algo,
           support::Table::num(outcome.result.best_objective, 4),
           support::Table::num(outcome.wall, 2),
           std::to_string(outcome.result.evaluations),
           reached ? support::Table::num(to_target_seconds, 3) : "never",
           support::Table::num(outcome.batched_fraction, 2),
           criterion ? "met" : "missed"});
      std::cout << problem.name << "/" << outcome.algo << ": "
                << optim::search_diagnostics(outcome.result) << "\n";

      support::Json::Object doc;
      doc["algo"] = outcome.algo;
      doc["best_objective"] = outcome.result.best_objective;
      doc["wall_seconds"] = outcome.wall;
      doc["trials"] = outcome.result.trials;
      doc["evaluations"] =
          static_cast<double>(outcome.result.evaluations);
      doc["reached_target"] = reached;
      if (reached) {
        doc["seconds_to_target"] = to_target_seconds;
        doc["evals_to_target"] = static_cast<double>(to_target_evals);
        doc["speedup_to_target"] =
            to_target_seconds > 0.0 ? baseline.wall / to_target_seconds
                                    : 0.0;
      }
      doc["better_at_budget"] = better_at_budget;
      doc["criterion_met"] = criterion;
      doc["acceptance_rate"] = outcome.result.counters.acceptance_rate();
      doc["exchange_rate"] = outcome.result.counters.exchange_rate();
      doc["resample_events"] =
          static_cast<double>(outcome.result.counters.resample_events);
      doc["batched_fraction"] = outcome.batched_fraction;
      doc["plan_compiles"] = static_cast<double>(outcome.plan_compiles);
      algo_docs.push_back(support::Json(std::move(doc)));
    }

    support::Json::Object sys_doc;
    sys_doc["name"] = problem.name;
    sys_doc["devices"] = problem.system.num_devices();
    sys_doc["chains"] = problem.system.num_chains();
    support::Json::Object base_doc;
    base_doc["algo"] = baseline.algo;
    base_doc["best_objective"] = target;
    base_doc["wall_seconds"] = baseline.wall;
    base_doc["trials"] = baseline.result.trials;
    base_doc["evaluations"] =
        static_cast<double>(baseline.result.evaluations);
    base_doc["acceptance_rate"] =
        baseline.result.counters.acceptance_rate();
    sys_doc["baseline"] = support::Json(std::move(base_doc));
    sys_doc["algos"] = support::Json(std::move(algo_docs));
    system_docs.push_back(support::Json(std::move(sys_doc)));
  }

  table.print(std::cout, "objective at equal wall-clock budget per system");

  support::Json::Object config;
  config["scale"] = bench::scale().name;
  config["oracle"] = oracle;
  config["dtype"] = std::string(tensor::dtype_name(
      tensor::dtype_from_env(tensor::DType::kF64)));
  config["threads"] = threads;
  config["population"] = population;
  config["budget_seconds"] = budget;
  config["sa_steps"] = sa.max_steps;
  config["criterion"] =
      "reach parallel-SA final objective in <=0.5x wall-clock, or beat it "
      "at equal budget";

  support::Json::Object summary;
  bool any_all = false;
  for (std::size_t a = 0; a < algos.size(); ++a) {
    const bool all =
        criterion_hits[a] == static_cast<int>(problems.size());
    summary[std::string(search::algo_name(algos[a]))] = all;
    any_all = any_all || all;
    std::cout << search::algo_name(algos[a]) << ": criterion met on "
              << criterion_hits[a] << "/" << problems.size()
              << " systems\n";
  }

  support::Json::Object doc;
  doc["config"] = support::Json(std::move(config));
  doc["systems"] = support::Json(std::move(system_docs));
  doc["criterion_met_all_systems"] = support::Json(std::move(summary));
  std::ofstream out(out_path);
  out << support::Json(std::move(doc)).dump(2) << "\n";
  std::cout << "wrote " << out_path << "\n";
  if (!any_all) {
    std::cout << "note: no algorithm met the criterion on every system at "
                 "this budget/scale\n";
  }
  return 0;  // report-only: the JSON carries the verdict
}
