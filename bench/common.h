// Shared infrastructure for the table/figure reproduction drivers: the
// scale profile (env CHAINNET_SCALE = small | medium | paper), the on-disk
// cache of generated datasets and trained model weights, and a registry of
// named models so every bench trains each model at most once per cache.
//
// Cache layout (./chainnet_cache/<scale>/):
//   type1_train.bin / type1_test.bin / type2_test.bin   datasets
//   model_<name>.bin                                    trained weights
//   curves_<name>.csv                                   loss curves (Fig 13)
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "gnn/dataset.h"
#include "gnn/model.h"
#include "gnn/trainer.h"

namespace chainnet::bench {

struct Scale {
  std::string name = "small";

  // Dataset sizes (paper: 50k / 10k / 10k).
  int train_samples = 700;
  int test1_samples = 150;
  int test2_samples = 100;
  double arrivals_per_chain = 2500.0;

  // Model sizes (paper: hidden 64, 8 iterations, 8/12 layers, 200 epochs).
  int hidden = 32;
  int chainnet_iterations = 4;
  int gat_layers = 3;
  int gin_layers = 4;
  int epochs = 40;
  int batch_size = 32;
  int curve_validation_samples = 40;

  // Search-experiment sizes (paper: 100 problems, 100 steps, 30 trials).
  int fixed_time_problems = 6;
  int fixed_steps_problems = 3;
  int sa_steps = 100;
  int fixed_steps_trials = 6;
  /// Simulation effort per candidate inside the baseline search. The paper's
  /// JMT runs collect 7e5 samples per evaluation; this scaled-down default
  /// still keeps one simulated evaluation ~2 orders of magnitude costlier
  /// than one surrogate evaluation, preserving the paper's cost asymmetry.
  double search_eval_arrivals = 2000.0;
  double reference_eval_arrivals = 2000.0;  ///< post-processing sim effort

  /// Reads CHAINNET_SCALE (small | medium | paper); unknown values fall
  /// back to small with a warning on stderr.
  static Scale from_env();
};

/// Process-wide scale (resolved once).
const Scale& scale();

/// Cache directory for the current scale; created on first use.
std::string cache_dir();

/// Datasets, generated or loaded from cache (process-wide singletons).
const gnn::Dataset& train_set();
const gnn::Dataset& test_type1();
const gnn::Dataset& test_type2();
/// Mixed training set for the *search* surrogate: Type I samples plus
/// random placements of Table-VII-style problems. At paper scale the pure
/// Type-I model has enough resolution to rank search neighbors; at reduced
/// scale it does not, so the fig14/fig15 search surrogate trains on this
/// set (documented substitution — see DESIGN.md).
const gnn::Dataset& search_train_set();
/// First curve_validation_samples of Type II — validation set for the
/// Fig. 13 loss curves.
const gnn::Dataset& validation_subset();

/// Known model names:
///   chainnet, chainnet_alpha, chainnet_beta, chainnet_delta,
///   chainnet_noattn, chainnet_search (trained on search_train_set),
///   chainnet_half_hidden, chainnet_half_iters, chainnet_single_iter
///   (bench_sweep variants),
///   gat_tput, gat_lat, gin_tput, gin_lat,
///   gat_star_tput, gin_star_tput, gcn_tput, gcn_lat (extra baseline)
/// The model is trained on train_set() (with a Fig. 13 validation curve
/// for the chainnet variants) unless cached weights exist.
gnn::GraphModel& model(const std::string& name);

/// Per-epoch (train, validation) loss curve captured while training
/// `name`; trains the model if neither weights nor curves are cached.
/// Validation entries are NaN for models trained without validation.
std::vector<std::pair<double, double>> loss_curves(const std::string& name);

/// Pretty banner for bench output: scale + hyperparameters (Table IV).
void print_header(const std::string& title);

}  // namespace chainnet::bench
