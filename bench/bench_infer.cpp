// bench_infer — surrogate inference-engine throughput (the PR-4 hot path).
//
// Four measurements on the paper-sized ChainNet (hidden 64, 8 iterations):
//   1. single-stream forward_values placements/s, pre-fusion reference
//      kernels vs the packed/blocked fused kernels (same weights; outputs
//      are bit-identical, which this bench re-checks before timing);
//   2. batched forward_values_batch aggregate placements/s for
//      B in {1,2,4,8,16,32} over prebuilt graphs;
//   3. compiled execution plans (PR 7): one-time plan-compile cost for the
//      scalar and batch-32 flavors, and plan replay vs the interpreted
//      Algorithm-2 reference walk (CHAINNET_INTERPRET's executor) at B=1
//      and B=32 — the parity gate first re-checks replay == interpreted
//      bit for bit;
//   4. end-to-end surrogate objective: pre-PR-equivalent scalar path
//      (fresh build_graph allocation + reference kernels, one placement at
//      a time) vs the current path (graph-workspace reuse + fused kernels +
//      one batched plan replay over 32 placements);
//   5. reduced-precision tier (DESIGN.md §15): f32 single-stream and
//      batched rates vs the f64 tier (same weights, converted once), plus
//      an analytic bytes/placement + effective-GB/s estimate per batch
//      size for both tiers;
//   6. ranking-fidelity gate: pairwise rank agreement of the f32 and bf16
//      objectives against f64 over an SA-style neighbor sample, and a
//      fixed-step SA objective-at-budget comparison f32 vs f64. The gate
//      FAILS the bench (exit 1) when agreement or the SA objective drops
//      below the committed thresholds — a reduced tier that misorders
//      neighbors is a silent search-quality regression, not a speedup.
//
// Results print to stdout and are written machine-readable to
// BENCH_infer.json (override with CHAINNET_INFER_OUT).
//
//   CHAINNET_INFER_DEVICES   problem size (default 16)
//   CHAINNET_INFER_SECONDS   min seconds per timed loop (default 0.4)
//   CHAINNET_INFER_OUT       output JSON path (default BENCH_infer.json)
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "core/chainnet.h"
#include "core/surrogate.h"
#include "edge/graph.h"
#include "edge/problem.h"
#include "gnn/metrics.h"
#include "gnn/model.h"
#include "gnn/plan.h"
#include "gnn/plan_compiler.h"
#include "optim/annealing.h"
#include "optim/evaluator.h"
#include "optim/initial.h"
#include "support/json.h"
#include "support/rng.h"
#include "tensor/dtype.h"
#include "tensor/kernels.h"

namespace {

using namespace chainnet;
using Clock = std::chrono::steady_clock;

double env_double(const char* name, double fallback) {
  const char* value = std::getenv(name);
  return value ? std::atof(value) : fallback;
}

int env_int(const char* name, int fallback) {
  const char* value = std::getenv(name);
  return value ? std::atoi(value) : fallback;
}

/// Runs `body` (which evaluates `unit` placements per call) repeatedly for
/// at least min_seconds and returns aggregate placements/s.
double time_rate(double min_seconds, int unit,
                 const std::function<void()>& body) {
  body();  // warm up (packs weights, sizes workspaces)
  const auto start = Clock::now();
  long evaluated = 0;
  double elapsed = 0.0;
  do {
    body();
    evaluated += unit;
    elapsed = std::chrono::duration<double>(Clock::now() - start).count();
  } while (elapsed < min_seconds);
  return evaluated / elapsed;
}

/// Same SA-style visitation pattern the search drivers produce.
std::vector<edge::Placement> walk_placements(const edge::EdgeSystem& system,
                                             int count,
                                             std::uint64_t seed = 17) {
  std::vector<edge::Placement> placements;
  placements.reserve(static_cast<std::size_t>(count));
  edge::Placement current = optim::initial_placement(system);
  support::Rng rng(seed);
  const optim::SaConfig cfg;
  for (int i = 0; i < count; ++i) {
    edge::Placement next;
    if (propose_move(system, current, rng, cfg, next)) current = next;
    placements.push_back(current);
  }
  return placements;
}

bool same_outputs(const std::vector<gnn::ChainValues>& a,
                  const std::vector<gnn::ChainValues>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].has_throughput != b[i].has_throughput ||
        a[i].has_latency != b[i].has_latency)
      return false;
    if (a[i].has_throughput && a[i].throughput != b[i].throughput)
      return false;
    if (a[i].has_latency && a[i].latency != b[i].latency) return false;
  }
  return true;
}

}  // namespace

int main() {
  int devices = env_int("CHAINNET_INFER_DEVICES", 16);
  const double min_seconds = env_double("CHAINNET_INFER_SECONDS", 0.4);
  const char* out_env = std::getenv("CHAINNET_INFER_OUT");
  const std::string out_path = out_env ? out_env : "BENCH_infer.json";

  auto params = edge::PlacementProblemParams::paper(devices);
  if (devices <= params.max_fragments) {
    devices = params.max_fragments + 1;
    params.num_devices = devices;
  }
  support::Rng gen_rng(5);
  const auto system = edge::generate_placement_problem(params, gen_rng);

  // Paper-sized model (Table IV): hidden 64, 8 message-passing iterations.
  // Two instances from the same init seed — identical weights — differing
  // only in kernel dispatch, so the speedup isolates the kernel change.
  const auto cfg = core::ChainNetConfig::paper();
  auto cfg_ref = cfg;
  cfg_ref.fused_kernels = false;
  support::Rng init_ref(1);
  core::ChainNet reference(cfg_ref, init_ref);
  support::Rng init_fused(1);
  core::ChainNet fused(cfg, init_fused);

  constexpr int kBatchMax = 32;
  const auto placements = walk_placements(system, kBatchMax);
  std::vector<edge::PlacementGraph> graphs;
  graphs.reserve(placements.size());
  for (const auto& p : placements) {
    graphs.push_back(edge::build_graph(system, p, fused.feature_mode()));
  }
  std::vector<const edge::PlacementGraph*> ptrs;
  for (const auto& g : graphs) ptrs.push_back(&g);

  std::printf(
      "bench_infer: hidden=%d iterations=%d, %d chains, %d devices, "
      "kernels=%s\n",
      cfg.hidden, cfg.iterations, system.num_chains(), system.num_devices(),
      tensor::kernels::isa());

  // Parity gate: fused and batched outputs must be bit-identical to the
  // reference kernels, and plan replay (which forward_values[_batch] now
  // is) bit-identical to the interpreted Algorithm-2 walk, before any
  // throughput number is worth reporting.
  const auto ref_out = reference.forward_values(graphs[0]);
  if (!same_outputs(ref_out, fused.forward_values(graphs[0])) ||
      !same_outputs(ref_out, fused.forward_values_batch(ptrs)[0])) {
    std::printf("PARITY FAILURE: fused/batched != reference — aborting\n");
    return 1;
  }
  // LINT:interpret(parity gate — replay must reproduce the reference walk)
  const auto interp_out = fused.forward_values_interpreted(graphs[0]);
  // LINT:interpret(parity gate — batched replay vs reference walk)
  const auto interp_batch = fused.forward_values_batch_interpreted(ptrs);
  bool plan_parity = same_outputs(interp_out, fused.forward_values(graphs[0]));
  const auto replay_batch = fused.forward_values_batch(ptrs);
  for (std::size_t i = 0; i < ptrs.size(); ++i) {
    plan_parity = plan_parity && same_outputs(interp_batch[i], replay_batch[i]);
  }
  if (!plan_parity) {
    std::printf("PARITY FAILURE: plan replay != interpreted — aborting\n");
    return 1;
  }
  std::printf("parity: fused/batched bit-identical to reference; plan "
              "replay bit-identical to interpreted walk\n\n");

  // 1. Single-stream kernels.
  const double ref_rate = time_rate(min_seconds, kBatchMax, [&] {
    for (const auto* g : ptrs) reference.forward_values(*g);
  });
  const double fused_rate = time_rate(min_seconds, kBatchMax, [&] {
    for (const auto* g : ptrs) fused.forward_values(*g);
  });
  std::printf("single-stream forward_values (placements/s)\n");
  std::printf("  %-22s %12.0f\n", "reference kernels", ref_rate);
  std::printf("  %-22s %12.0f  (%.2fx)\n\n", "fused kernels", fused_rate,
              fused_rate / ref_rate);

  // 2. Batched forward over prebuilt graphs.
  std::printf("batched forward_values_batch (aggregate placements/s)\n");
  std::printf("  %5s %14s %10s\n", "B", "placements/s", "vs B=1");
  support::Json::Array batch_rows;
  double b1_rate = 0.0;
  double b_last_rate = 0.0;
  std::vector<std::pair<int, double>> f64_batch_rates;
  for (const int b : {1, 2, 4, 8, 16, 32}) {
    std::span<const edge::PlacementGraph* const> span(
        ptrs.data(), static_cast<std::size_t>(b));
    const double rate =
        time_rate(min_seconds, b, [&] { fused.forward_values_batch(span); });
    if (b == 1) b1_rate = rate;
    b_last_rate = rate;
    f64_batch_rates.emplace_back(b, rate);
    std::printf("  %5d %14.0f %9.2fx\n", b, rate, rate / b1_rate);
    support::Json::Object row;
    row["batch"] = b;
    row["placements_per_s"] = rate;
    row["speedup_vs_b1"] = rate / b1_rate;
    batch_rows.push_back(std::move(row));
  }
  const double b32_vs_b1 = b_last_rate / b1_rate;

  // 3. Compiled execution plans: one-time compile cost per flavor, then
  //    replay vs the interpreted reference walk. Compile time is measured
  //    on fresh compile_plan calls (the cache path is what production
  //    hits, but the cost being amortized is exactly this).
  gnn::PlanShape shape;
  shape.hidden = cfg.hidden;
  shape.iterations = cfg.iterations;
  shape.attention_heads = cfg.attention_heads;
  shape.modified_outputs = cfg.modified_outputs;
  shape.attention_aggregation = cfg.attention_aggregation;
  const auto compile_ms = [&](int width) {
    constexpr int kReps = 50;
    const auto start = Clock::now();
    for (int i = 0; i < kReps; ++i) {
      auto plan = gnn::compile_plan(graphs[0], shape, width);
      (void)plan;
    }
    return std::chrono::duration<double, std::milli>(Clock::now() - start)
               .count() /
           kReps;
  };
  const double compile_ms_b1 = compile_ms(1);
  const double compile_ms_b32 = compile_ms(kBatchMax);
  const double interp_rate = time_rate(min_seconds, kBatchMax, [&] {
    // LINT:interpret(benchmark baseline — timing the reference walk)
    for (const auto* g : ptrs) fused.forward_values_interpreted(*g);
  });
  const double interp_b32_rate = time_rate(min_seconds, kBatchMax, [&] {
    // LINT:interpret(benchmark baseline — timing the reference walk)
    fused.forward_values_batch_interpreted(ptrs);
  });
  const double replay_b32_rate = b_last_rate;
  std::printf("\ncompiled plans (replay vs interpreted reference)\n");
  std::printf("  %-34s %9.3f ms\n", "plan compile, width 1", compile_ms_b1);
  std::printf("  %-34s %9.3f ms\n", "plan compile, width 32", compile_ms_b32);
  std::printf("  %-34s %12.0f\n", "interpreted B=1 (placements/s)",
              interp_rate);
  std::printf("  %-34s %12.0f  (%.2fx)\n", "plan replay B=1 (placements/s)",
              fused_rate, fused_rate / interp_rate);
  std::printf("  %-34s %12.0f\n", "interpreted B=32 (placements/s)",
              interp_b32_rate);
  std::printf("  %-34s %12.0f  (%.2fx)\n", "plan replay B=32 (placements/s)",
              replay_b32_rate, replay_b32_rate / interp_b32_rate);
  // One compile pays for itself after this many replayed placements.
  const double amortize_after =
      (compile_ms_b32 / 1e3) /
      (1.0 / interp_b32_rate - 1.0 / replay_b32_rate);
  if (amortize_after > 0) {
    std::printf("  compile amortized after ~%.0f placements at B=32\n",
                amortize_after);
  }

  // 4. End-to-end surrogate objective: what the optimizer actually calls.
  //    Pre-PR equivalent = allocate a fresh graph per candidate and run the
  //    reference scalar kernels; current = workspace reuse + one batched
  //    fused forward.
  const double e2e_scalar = time_rate(min_seconds, kBatchMax, [&] {
    for (const auto& p : placements) {
      const auto graph = edge::build_graph(system, p, reference.feature_mode());
      double total = 0.0;
      for (const auto& perf : gnn::predict_physical(reference, graph)) {
        total += perf.throughput;
      }
      (void)total;
    }
  });
  core::Surrogate surrogate(fused);
  std::vector<double> scores(placements.size());
  const double e2e_batched = time_rate(min_seconds, kBatchMax, [&] {
    surrogate.total_throughput_batch(system, placements, scores);
  });
  std::printf("\nend-to-end surrogate objective (placements/s)\n");
  std::printf("  %-38s %12.0f\n", "pre-PR scalar (fresh graphs, reference)",
              e2e_scalar);
  std::printf("  %-38s %12.0f  (%.2fx)\n",
              "batched B=32 (workspace reuse, fused)", e2e_batched,
              e2e_batched / e2e_scalar);

  // 5. Reduced-precision tier: the same weights (same init seed) replayed
  //    through the f32 kernel table. Rates per batch width, and the
  //    headline f32-B32 vs f64-B32 ratio the acceptance bar pins.
  auto cfg_f32 = cfg;
  cfg_f32.dtype = tensor::DType::kF32;
  support::Rng init_f32(1);
  core::ChainNet model_f32(cfg_f32, init_f32);
  auto cfg_bf16 = cfg;
  cfg_bf16.dtype = tensor::DType::kBf16;
  support::Rng init_bf16(1);
  core::ChainNet model_bf16(cfg_bf16, init_bf16);

  const double f32_single_rate = time_rate(min_seconds, kBatchMax, [&] {
    for (const auto* g : ptrs) model_f32.forward_values(*g);
  });
  std::printf("\nreduced-precision tier: f32 kernels + converted weights\n");
  std::printf("  single-stream %10.0f placements/s  (%.2fx vs f64)\n",
              f32_single_rate, f32_single_rate / fused_rate);
  std::printf("  %5s %14s %12s\n", "B", "placements/s", "vs f64");
  support::Json::Array f32_batch_rows;
  std::vector<std::pair<int, double>> f32_batch_rates;
  double f32_b32_rate = 0.0;
  for (std::size_t bi = 0; bi < f64_batch_rates.size(); ++bi) {
    const int b = f64_batch_rates[bi].first;
    std::span<const edge::PlacementGraph* const> span(
        ptrs.data(), static_cast<std::size_t>(b));
    const double rate = time_rate(
        min_seconds, b, [&] { model_f32.forward_values_batch(span); });
    f32_batch_rates.emplace_back(b, rate);
    if (b == kBatchMax) f32_b32_rate = rate;
    const double vs = rate / f64_batch_rates[bi].second;
    std::printf("  %5d %14.0f %11.2fx\n", b, rate, vs);
    support::Json::Object row;
    row["batch"] = b;
    row["placements_per_s"] = rate;
    row["speedup_vs_f64"] = vs;
    f32_batch_rows.push_back(std::move(row));
  }
  const double f32_vs_f64_b32 = f32_b32_rate / b_last_rate;
  std::printf("  f32 B=32 vs f64 B=32: %.2fx\n", f32_vs_f64_b32);

  // Analytic traffic estimate: each parameter streamed once per
  // message-passing iteration (per-step re-reads assumed cache-resident;
  // encoder/readout weights slightly overcounted), amortized over the
  // batch, plus the plan arena written and read once per replay. A model
  // of memory *demand*, not a counter measurement — good for comparing
  // tiers and batch widths, not for absolute DRAM numbers.
  const std::size_t param_count = fused.parameter_count();
  const auto traffic_row = [&](tensor::DType dtype, int b, double rate,
                               support::Json::Array& rows) {
    const std::size_t eb = tensor::dtype_element_bytes(dtype);
    gnn::PlanShape tier_shape = shape;
    tier_shape.dtype = dtype;
    const auto plan = gnn::compile_plan(graphs[0], tier_shape, b);
    const double weight_stream =
        static_cast<double>(param_count * eb) * cfg.iterations;
    const double arena_bytes =
        static_cast<double>(plan->meta.scratch_elems) *
        static_cast<double>(eb);
    const double per_placement = (weight_stream + 2.0 * arena_bytes) / b;
    const double gb_per_s = per_placement * rate / 1e9;
    std::printf("  %-5s %5d %14.0f %15.0f %10.2f\n",
                tensor::dtype_name(dtype), b, rate, per_placement, gb_per_s);
    support::Json::Object row;
    row["dtype"] = std::string(tensor::dtype_name(dtype));
    row["batch"] = b;
    row["placements_per_s"] = rate;
    row["est_bytes_per_placement"] = per_placement;
    row["effective_gb_per_s"] = gb_per_s;
    rows.push_back(std::move(row));
  };
  std::printf("\nestimated memory traffic (analytic weight+arena model)\n");
  std::printf("  %-5s %5s %14s %15s %10s\n", "dtype", "B", "placements/s",
              "est bytes/pl", "eff GB/s");
  support::Json::Array traffic_rows;
  for (const auto& [b, rate] : f64_batch_rates) {
    traffic_row(tensor::DType::kF64, b, rate, traffic_rows);
  }
  for (const auto& [b, rate] : f32_batch_rates) {
    traffic_row(tensor::DType::kF32, b, rate, traffic_rows);
  }

  // 6. Ranking-fidelity gate. The committed thresholds: the reduced tiers
  //    must reproduce the f64 ordering of SA-neighbor objectives on at
  //    least this fraction of comparable pairs, and a fixed-step SA run
  //    on the f32 oracle must land within the noise band of the f64 run's
  //    objective-at-budget.
  constexpr double kF32RankGate = 0.97;
  constexpr double kBf16RankGate = 0.90;
  constexpr double kSaObjectiveBand = 0.02;  // |f32 - f64| / f64
  constexpr int kRankSample = 128;
  const auto gate_placements = walk_placements(system, kRankSample, 97);
  std::vector<double> obj_f64(gate_placements.size());
  std::vector<double> obj_f32(gate_placements.size());
  std::vector<double> obj_bf16(gate_placements.size());
  core::Surrogate(fused).total_throughput_batch(system, gate_placements,
                                                obj_f64);
  core::Surrogate(model_f32).total_throughput_batch(system, gate_placements,
                                                    obj_f32);
  core::Surrogate(model_bf16).total_throughput_batch(system, gate_placements,
                                                     obj_bf16);
  const auto rank_f32 = gnn::pairwise_rank_agreement(obj_f64, obj_f32);
  const auto rank_bf16 = gnn::pairwise_rank_agreement(obj_f64, obj_bf16);
  std::printf("\nranking fidelity vs f64 (%d SA-neighbor placements)\n",
              kRankSample);
  std::printf("  %-5s %12s %12s %8s %10s  gate >= %s\n", "tier", "concordant",
              "discordant", "ties", "agreement", "threshold");
  const auto print_rank = [](const char* tier, const gnn::RankAgreement& r,
                             double gate) {
    std::printf("  %-5s %12llu %12llu %8llu %10.4f  %.2f %s\n", tier,
                static_cast<unsigned long long>(r.concordant),
                static_cast<unsigned long long>(r.discordant),
                static_cast<unsigned long long>(r.reference_ties),
                r.agreement(), gate, r.agreement() >= gate ? "PASS" : "FAIL");
  };
  print_rank("f32", rank_f32, kF32RankGate);
  print_rank("bf16", rank_bf16, kBf16RankGate);

  // Objective-at-budget: identical SA schedule/seed on each tier's oracle;
  // trajectories may diverge (accept decisions compare tier objectives)
  // but the achieved objective must not.
  optim::SaConfig sa;
  sa.max_steps = 2000;
  sa.seed = 404;
  const auto initial = optim::initial_placement(system);
  core::Surrogate sur_f64(fused);
  optim::SurrogateEvaluator eval_f64(sur_f64);
  const auto sa_f64 = optim::anneal(system, initial, eval_f64, sa);
  core::Surrogate sur_f32(model_f32);
  optim::SurrogateEvaluator eval_f32(sur_f32);
  const auto sa_f32 = optim::anneal(system, initial, eval_f32, sa);
  // Both tiers' best placements are re-scored by the f64 oracle so the
  // comparison measures search quality, not the tiers' score offsets.
  const double sa_f32_rescored =
      eval_f64.total_throughput(system, sa_f32.best);
  const double sa_rel_diff =
      std::abs(sa_f32_rescored - sa_f64.best_objective) /
      std::abs(sa_f64.best_objective);
  const bool sa_pass = sa_rel_diff <= kSaObjectiveBand;
  std::printf("\nSA objective at %d steps (f64-rescored best placements)\n",
              sa.max_steps);
  std::printf("  f64 oracle %.6f | f32 oracle %.6f | rel diff %.4f "
              "(band %.2f) %s\n",
              sa_f64.best_objective, sa_f32_rescored, sa_rel_diff,
              kSaObjectiveBand, sa_pass ? "PASS" : "FAIL");

  const bool gate_pass = rank_f32.agreement() >= kF32RankGate &&
                         rank_bf16.agreement() >= kBf16RankGate && sa_pass;

  support::Json::Object doc;
  support::Json::Object config;
  config["hidden"] = cfg.hidden;
  config["iterations"] = cfg.iterations;
  config["devices"] = system.num_devices();
  config["chains"] = system.num_chains();
  config["kernel_isa"] = tensor::kernels::isa();
  doc["config"] = std::move(config);
  support::Json::Object single;
  single["reference_placements_per_s"] = ref_rate;
  single["fused_placements_per_s"] = fused_rate;
  single["speedup"] = fused_rate / ref_rate;
  doc["single_stream"] = std::move(single);
  doc["batched"] = std::move(batch_rows);
  doc["batch32_vs_batch1_speedup"] = b32_vs_b1;
  support::Json::Object plan_sec;
  plan_sec["compile_ms_width1"] = compile_ms_b1;
  plan_sec["compile_ms_width32"] = compile_ms_b32;
  plan_sec["interpreted_b1_placements_per_s"] = interp_rate;
  plan_sec["replay_b1_placements_per_s"] = fused_rate;
  plan_sec["replay_vs_interpret_b1_speedup"] = fused_rate / interp_rate;
  plan_sec["interpreted_b32_placements_per_s"] = interp_b32_rate;
  plan_sec["replay_b32_placements_per_s"] = replay_b32_rate;
  plan_sec["replay_vs_interpret_b32_speedup"] =
      replay_b32_rate / interp_b32_rate;
  plan_sec["compile_amortized_after_placements_b32"] = amortize_after;
  doc["plan"] = std::move(plan_sec);
  support::Json::Object e2e;
  e2e["prepr_scalar_placements_per_s"] = e2e_scalar;
  e2e["batched32_placements_per_s"] = e2e_batched;
  e2e["speedup"] = e2e_batched / e2e_scalar;
  doc["end_to_end"] = std::move(e2e);

  support::Json::Object rp;
  rp["f32_single_stream_placements_per_s"] = f32_single_rate;
  rp["f32_single_stream_vs_f64"] = f32_single_rate / fused_rate;
  rp["f32_batched"] = std::move(f32_batch_rows);
  rp["f32_b32_vs_f64_b32_speedup"] = f32_vs_f64_b32;
  const auto rank_json = [](const gnn::RankAgreement& r, double gate) {
    support::Json::Object o;
    o["concordant"] = static_cast<double>(r.concordant);
    o["discordant"] = static_cast<double>(r.discordant);
    o["reference_ties"] = static_cast<double>(r.reference_ties);
    o["agreement"] = r.agreement();
    o["threshold"] = gate;
    o["pass"] = r.agreement() >= gate;
    return o;
  };
  rp["rank_sample_placements"] = kRankSample;
  rp["rank_f32"] = rank_json(rank_f32, kF32RankGate);
  rp["rank_bf16"] = rank_json(rank_bf16, kBf16RankGate);
  support::Json::Object sa_doc;
  sa_doc["steps"] = sa.max_steps;
  sa_doc["f64_best_objective"] = sa_f64.best_objective;
  sa_doc["f32_best_objective_rescored_f64"] = sa_f32_rescored;
  sa_doc["rel_diff"] = sa_rel_diff;
  sa_doc["band"] = kSaObjectiveBand;
  sa_doc["pass"] = sa_pass;
  rp["sa_objective_at_budget"] = std::move(sa_doc);
  rp["gate_pass"] = gate_pass;
  doc["reduced_precision"] = std::move(rp);
  doc["traffic"] = std::move(traffic_rows);

  std::ofstream out(out_path);
  out << support::Json(std::move(doc)).dump(2) << "\n";
  std::printf("\nwrote %s\n", out_path.c_str());
  if (!gate_pass) {
    std::printf("RANK-FIDELITY GATE FAILURE: reduced tier regressed beyond "
                "the committed thresholds\n");
    return 1;
  }
  return 0;
}
