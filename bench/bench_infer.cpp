// bench_infer — surrogate inference-engine throughput (the PR-4 hot path).
//
// Four measurements on the paper-sized ChainNet (hidden 64, 8 iterations):
//   1. single-stream forward_values placements/s, pre-fusion reference
//      kernels vs the packed/blocked fused kernels (same weights; outputs
//      are bit-identical, which this bench re-checks before timing);
//   2. batched forward_values_batch aggregate placements/s for
//      B in {1,2,4,8,16,32} over prebuilt graphs;
//   3. compiled execution plans (PR 7): one-time plan-compile cost for the
//      scalar and batch-32 flavors, and plan replay vs the interpreted
//      Algorithm-2 reference walk (CHAINNET_INTERPRET's executor) at B=1
//      and B=32 — the parity gate first re-checks replay == interpreted
//      bit for bit;
//   4. end-to-end surrogate objective: pre-PR-equivalent scalar path
//      (fresh build_graph allocation + reference kernels, one placement at
//      a time) vs the current path (graph-workspace reuse + fused kernels +
//      one batched plan replay over 32 placements).
//
// Results print to stdout and are written machine-readable to
// BENCH_infer.json (override with CHAINNET_INFER_OUT).
//
//   CHAINNET_INFER_DEVICES   problem size (default 16)
//   CHAINNET_INFER_SECONDS   min seconds per timed loop (default 0.4)
//   CHAINNET_INFER_OUT       output JSON path (default BENCH_infer.json)
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "core/chainnet.h"
#include "core/surrogate.h"
#include "edge/graph.h"
#include "edge/problem.h"
#include "gnn/model.h"
#include "gnn/plan.h"
#include "gnn/plan_compiler.h"
#include "optim/annealing.h"
#include "optim/initial.h"
#include "support/json.h"
#include "support/rng.h"
#include "tensor/kernels.h"

namespace {

using namespace chainnet;
using Clock = std::chrono::steady_clock;

double env_double(const char* name, double fallback) {
  const char* value = std::getenv(name);
  return value ? std::atof(value) : fallback;
}

int env_int(const char* name, int fallback) {
  const char* value = std::getenv(name);
  return value ? std::atoi(value) : fallback;
}

/// Runs `body` (which evaluates `unit` placements per call) repeatedly for
/// at least min_seconds and returns aggregate placements/s.
double time_rate(double min_seconds, int unit,
                 const std::function<void()>& body) {
  body();  // warm up (packs weights, sizes workspaces)
  const auto start = Clock::now();
  long evaluated = 0;
  double elapsed = 0.0;
  do {
    body();
    evaluated += unit;
    elapsed = std::chrono::duration<double>(Clock::now() - start).count();
  } while (elapsed < min_seconds);
  return evaluated / elapsed;
}

/// Same SA-style visitation pattern the search drivers produce.
std::vector<edge::Placement> walk_placements(const edge::EdgeSystem& system,
                                             int count) {
  std::vector<edge::Placement> placements;
  placements.reserve(static_cast<std::size_t>(count));
  edge::Placement current = optim::initial_placement(system);
  support::Rng rng(17);
  const optim::SaConfig cfg;
  for (int i = 0; i < count; ++i) {
    edge::Placement next;
    if (propose_move(system, current, rng, cfg, next)) current = next;
    placements.push_back(current);
  }
  return placements;
}

bool same_outputs(const std::vector<gnn::ChainValues>& a,
                  const std::vector<gnn::ChainValues>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].has_throughput != b[i].has_throughput ||
        a[i].has_latency != b[i].has_latency)
      return false;
    if (a[i].has_throughput && a[i].throughput != b[i].throughput)
      return false;
    if (a[i].has_latency && a[i].latency != b[i].latency) return false;
  }
  return true;
}

}  // namespace

int main() {
  int devices = env_int("CHAINNET_INFER_DEVICES", 16);
  const double min_seconds = env_double("CHAINNET_INFER_SECONDS", 0.4);
  const char* out_env = std::getenv("CHAINNET_INFER_OUT");
  const std::string out_path = out_env ? out_env : "BENCH_infer.json";

  auto params = edge::PlacementProblemParams::paper(devices);
  if (devices <= params.max_fragments) {
    devices = params.max_fragments + 1;
    params.num_devices = devices;
  }
  support::Rng gen_rng(5);
  const auto system = edge::generate_placement_problem(params, gen_rng);

  // Paper-sized model (Table IV): hidden 64, 8 message-passing iterations.
  // Two instances from the same init seed — identical weights — differing
  // only in kernel dispatch, so the speedup isolates the kernel change.
  const auto cfg = core::ChainNetConfig::paper();
  auto cfg_ref = cfg;
  cfg_ref.fused_kernels = false;
  support::Rng init_ref(1);
  core::ChainNet reference(cfg_ref, init_ref);
  support::Rng init_fused(1);
  core::ChainNet fused(cfg, init_fused);

  constexpr int kBatchMax = 32;
  const auto placements = walk_placements(system, kBatchMax);
  std::vector<edge::PlacementGraph> graphs;
  graphs.reserve(placements.size());
  for (const auto& p : placements) {
    graphs.push_back(edge::build_graph(system, p, fused.feature_mode()));
  }
  std::vector<const edge::PlacementGraph*> ptrs;
  for (const auto& g : graphs) ptrs.push_back(&g);

  std::printf(
      "bench_infer: hidden=%d iterations=%d, %d chains, %d devices, "
      "kernels=%s\n",
      cfg.hidden, cfg.iterations, system.num_chains(), system.num_devices(),
      tensor::kernels::isa());

  // Parity gate: fused and batched outputs must be bit-identical to the
  // reference kernels, and plan replay (which forward_values[_batch] now
  // is) bit-identical to the interpreted Algorithm-2 walk, before any
  // throughput number is worth reporting.
  const auto ref_out = reference.forward_values(graphs[0]);
  if (!same_outputs(ref_out, fused.forward_values(graphs[0])) ||
      !same_outputs(ref_out, fused.forward_values_batch(ptrs)[0])) {
    std::printf("PARITY FAILURE: fused/batched != reference — aborting\n");
    return 1;
  }
  // LINT:interpret(parity gate — replay must reproduce the reference walk)
  const auto interp_out = fused.forward_values_interpreted(graphs[0]);
  // LINT:interpret(parity gate — batched replay vs reference walk)
  const auto interp_batch = fused.forward_values_batch_interpreted(ptrs);
  bool plan_parity = same_outputs(interp_out, fused.forward_values(graphs[0]));
  const auto replay_batch = fused.forward_values_batch(ptrs);
  for (std::size_t i = 0; i < ptrs.size(); ++i) {
    plan_parity = plan_parity && same_outputs(interp_batch[i], replay_batch[i]);
  }
  if (!plan_parity) {
    std::printf("PARITY FAILURE: plan replay != interpreted — aborting\n");
    return 1;
  }
  std::printf("parity: fused/batched bit-identical to reference; plan "
              "replay bit-identical to interpreted walk\n\n");

  // 1. Single-stream kernels.
  const double ref_rate = time_rate(min_seconds, kBatchMax, [&] {
    for (const auto* g : ptrs) reference.forward_values(*g);
  });
  const double fused_rate = time_rate(min_seconds, kBatchMax, [&] {
    for (const auto* g : ptrs) fused.forward_values(*g);
  });
  std::printf("single-stream forward_values (placements/s)\n");
  std::printf("  %-22s %12.0f\n", "reference kernels", ref_rate);
  std::printf("  %-22s %12.0f  (%.2fx)\n\n", "fused kernels", fused_rate,
              fused_rate / ref_rate);

  // 2. Batched forward over prebuilt graphs.
  std::printf("batched forward_values_batch (aggregate placements/s)\n");
  std::printf("  %5s %14s %10s\n", "B", "placements/s", "vs B=1");
  support::Json::Array batch_rows;
  double b1_rate = 0.0;
  double b_last_rate = 0.0;
  for (const int b : {1, 2, 4, 8, 16, 32}) {
    std::span<const edge::PlacementGraph* const> span(
        ptrs.data(), static_cast<std::size_t>(b));
    const double rate =
        time_rate(min_seconds, b, [&] { fused.forward_values_batch(span); });
    if (b == 1) b1_rate = rate;
    b_last_rate = rate;
    std::printf("  %5d %14.0f %9.2fx\n", b, rate, rate / b1_rate);
    support::Json::Object row;
    row["batch"] = b;
    row["placements_per_s"] = rate;
    row["speedup_vs_b1"] = rate / b1_rate;
    batch_rows.push_back(std::move(row));
  }
  const double b32_vs_b1 = b_last_rate / b1_rate;

  // 3. Compiled execution plans: one-time compile cost per flavor, then
  //    replay vs the interpreted reference walk. Compile time is measured
  //    on fresh compile_plan calls (the cache path is what production
  //    hits, but the cost being amortized is exactly this).
  gnn::PlanShape shape;
  shape.hidden = cfg.hidden;
  shape.iterations = cfg.iterations;
  shape.attention_heads = cfg.attention_heads;
  shape.modified_outputs = cfg.modified_outputs;
  shape.attention_aggregation = cfg.attention_aggregation;
  const auto compile_ms = [&](int width) {
    constexpr int kReps = 50;
    const auto start = Clock::now();
    for (int i = 0; i < kReps; ++i) {
      auto plan = gnn::compile_plan(graphs[0], shape, width);
      (void)plan;
    }
    return std::chrono::duration<double, std::milli>(Clock::now() - start)
               .count() /
           kReps;
  };
  const double compile_ms_b1 = compile_ms(1);
  const double compile_ms_b32 = compile_ms(kBatchMax);
  const double interp_rate = time_rate(min_seconds, kBatchMax, [&] {
    // LINT:interpret(benchmark baseline — timing the reference walk)
    for (const auto* g : ptrs) fused.forward_values_interpreted(*g);
  });
  const double interp_b32_rate = time_rate(min_seconds, kBatchMax, [&] {
    // LINT:interpret(benchmark baseline — timing the reference walk)
    fused.forward_values_batch_interpreted(ptrs);
  });
  const double replay_b32_rate = b_last_rate;
  std::printf("\ncompiled plans (replay vs interpreted reference)\n");
  std::printf("  %-34s %9.3f ms\n", "plan compile, width 1", compile_ms_b1);
  std::printf("  %-34s %9.3f ms\n", "plan compile, width 32", compile_ms_b32);
  std::printf("  %-34s %12.0f\n", "interpreted B=1 (placements/s)",
              interp_rate);
  std::printf("  %-34s %12.0f  (%.2fx)\n", "plan replay B=1 (placements/s)",
              fused_rate, fused_rate / interp_rate);
  std::printf("  %-34s %12.0f\n", "interpreted B=32 (placements/s)",
              interp_b32_rate);
  std::printf("  %-34s %12.0f  (%.2fx)\n", "plan replay B=32 (placements/s)",
              replay_b32_rate, replay_b32_rate / interp_b32_rate);
  // One compile pays for itself after this many replayed placements.
  const double amortize_after =
      (compile_ms_b32 / 1e3) /
      (1.0 / interp_b32_rate - 1.0 / replay_b32_rate);
  if (amortize_after > 0) {
    std::printf("  compile amortized after ~%.0f placements at B=32\n",
                amortize_after);
  }

  // 4. End-to-end surrogate objective: what the optimizer actually calls.
  //    Pre-PR equivalent = allocate a fresh graph per candidate and run the
  //    reference scalar kernels; current = workspace reuse + one batched
  //    fused forward.
  const double e2e_scalar = time_rate(min_seconds, kBatchMax, [&] {
    for (const auto& p : placements) {
      const auto graph = edge::build_graph(system, p, reference.feature_mode());
      double total = 0.0;
      for (const auto& perf : gnn::predict_physical(reference, graph)) {
        total += perf.throughput;
      }
      (void)total;
    }
  });
  core::Surrogate surrogate(fused);
  std::vector<double> scores(placements.size());
  const double e2e_batched = time_rate(min_seconds, kBatchMax, [&] {
    surrogate.total_throughput_batch(system, placements, scores);
  });
  std::printf("\nend-to-end surrogate objective (placements/s)\n");
  std::printf("  %-38s %12.0f\n", "pre-PR scalar (fresh graphs, reference)",
              e2e_scalar);
  std::printf("  %-38s %12.0f  (%.2fx)\n",
              "batched B=32 (workspace reuse, fused)", e2e_batched,
              e2e_batched / e2e_scalar);

  support::Json::Object doc;
  support::Json::Object config;
  config["hidden"] = cfg.hidden;
  config["iterations"] = cfg.iterations;
  config["devices"] = system.num_devices();
  config["chains"] = system.num_chains();
  config["kernel_isa"] = tensor::kernels::isa();
  doc["config"] = std::move(config);
  support::Json::Object single;
  single["reference_placements_per_s"] = ref_rate;
  single["fused_placements_per_s"] = fused_rate;
  single["speedup"] = fused_rate / ref_rate;
  doc["single_stream"] = std::move(single);
  doc["batched"] = std::move(batch_rows);
  doc["batch32_vs_batch1_speedup"] = b32_vs_b1;
  support::Json::Object plan_sec;
  plan_sec["compile_ms_width1"] = compile_ms_b1;
  plan_sec["compile_ms_width32"] = compile_ms_b32;
  plan_sec["interpreted_b1_placements_per_s"] = interp_rate;
  plan_sec["replay_b1_placements_per_s"] = fused_rate;
  plan_sec["replay_vs_interpret_b1_speedup"] = fused_rate / interp_rate;
  plan_sec["interpreted_b32_placements_per_s"] = interp_b32_rate;
  plan_sec["replay_b32_placements_per_s"] = replay_b32_rate;
  plan_sec["replay_vs_interpret_b32_speedup"] =
      replay_b32_rate / interp_b32_rate;
  plan_sec["compile_amortized_after_placements_b32"] = amortize_after;
  doc["plan"] = std::move(plan_sec);
  support::Json::Object e2e;
  e2e["prepr_scalar_placements_per_s"] = e2e_scalar;
  e2e["batched32_placements_per_s"] = e2e_batched;
  e2e["speedup"] = e2e_batched / e2e_scalar;
  doc["end_to_end"] = std::move(e2e);

  std::ofstream out(out_path);
  out << support::Json(std::move(doc)).dump(2) << "\n";
  std::printf("\nwrote %s\n", out_path.c_str());
  return 0;
}
