// Reproduces Fig. 14 (and Table VII inputs):
//   (a) five independent SA trial trajectories on one problem (surrogate);
//   (b) mean relative loss reduction of ChainNet-based vs simulation-based
//       search under a fixed wall-clock budget (the fixed-steps group is
//       produced by bench_fig15_fixedsteps);
//   (c)-(d) mean loss probability / relative loss reduction over the fixed
//       time frame, with the ChainNet curve shown both as estimated by the
//       surrogate (dashed in the paper) and re-simulated (solid).
//
// Fixed-time protocol (§VIII-C4a): the budget is the duration of ONE
// simulation-based trial; ChainNet restarts trials until the budget is
// exhausted; both methods' final decisions are re-scored by a reference
// simulation.
#include <iostream>
#include <vector>

#include "search_common.h"
#include "support/rng.h"
#include "support/stats.h"
#include "support/table.h"

int main() {
  using namespace chainnet;
  bench::print_header("Fig. 14: fixed-time surrogate optimization");
  const auto& sc = bench::scale();

  support::Table params({"parameter", "value"});
  params.add_row({"# available devices", "20, 40, 80, 120 (cycled)"});
  params.add_row({"# service chains", "12"});
  params.add_row({"max # fragments per chain", "12"});
  params.add_row({"mean interarrival", "Exp(1), floor 0.01"});
  params.add_row({"device service rate", "U(0.5, 1)"});
  params.add_row({"memory capacity", "100"});
  params.add_row({"fragment compute demand", "U(0.01, 0.1)"});
  params.print(std::cout, "Table VII: placement problem generation");

  // The search surrogate is trained on the mixed in-domain set (see
  // common.h search_train_set) — a documented small-scale substitution.
  auto& chainnet_model = bench::model("chainnet_search");
  core::Surrogate surrogate(chainnet_model);

  support::Rng master(20240613);
  const int num_problems = sc.fixed_time_problems;

  // Common relative-time grid for the mean curves (fractions of budget).
  const std::vector<double> grid_fracs = {0.0, 0.05, 0.1, 0.2, 0.35,
                                          0.5,  0.7,  0.85, 1.0};
  std::vector<support::RunningStats> sim_loss(grid_fracs.size());
  std::vector<support::RunningStats> cn_loss_est(grid_fracs.size());
  std::vector<support::RunningStats> cn_loss_sim(grid_fracs.size());
  std::vector<support::RunningStats> sim_eta(grid_fracs.size());
  std::vector<support::RunningStats> cn_eta(grid_fracs.size());
  support::RunningStats final_eta_sim, final_eta_cn, budgets;

  for (int p = 0; p < num_problems; ++p) {
    const auto sys = edge::generate_placement_problem(
        edge::PlacementProblemParams::paper(
            bench::device_count_for_problem(p)),
        master);
    const auto initial = optim::initial_placement(sys);
    const auto ref_cfg = bench::reference_sim_config(sys, 555 + p);
    const double x0 =
        optim::simulated_total_throughput(sys, initial, ref_cfg);
    const double lambda_total = sys.total_arrival_rate();

    optim::SaConfig sa;
    sa.max_steps = sc.sa_steps;
    sa.seed = 42 + static_cast<std::uint64_t>(p);
    sa.record_best_placements = true;

    // Baseline: one simulation-driven trial; its duration is the budget.
    optim::SimulationEvaluator sim_eval(
        bench::search_sim_config(sys, 77 + p));
    bench::EvaluatorSaOptimizer sim_opt(sim_eval, sa);
    const auto sim_result = sim_opt.run(sys, initial, sa.seed);
    const double budget = sim_result.seconds;
    budgets.add(budget);

    // ChainNet: as many trials as fit in the same wall-clock budget.
    optim::SurrogateEvaluator cn_eval(surrogate);
    bench::EvaluatorSaOptimizer cn_opt(cn_eval, sa);
    const auto cn_result =
        search::run_for(cn_opt, sys, initial, sa.seed, budget);

    // Post-processing: reference-simulate final decisions.
    const double x_sim =
        optim::simulated_total_throughput(sys, sim_result.best, ref_cfg);
    const double x_cn =
        optim::simulated_total_throughput(sys, cn_result.best, ref_cfg);
    final_eta_sim.add(optim::relative_loss_reduction(sys, x0, x_sim));
    final_eta_cn.add(optim::relative_loss_reduction(sys, x0, x_cn));

    // Curves: sample best-so-far at grid times. The simulation method's
    // trajectory values are already simulated estimates; the ChainNet
    // trajectory is surrogate-estimated, so each grid decision is also
    // re-simulated (cheap effort) for the solid curve.
    const auto cheap_cfg = bench::search_sim_config(sys, 99 + p);
    for (std::size_t gi = 0; gi < grid_fracs.size(); ++gi) {
      const double t = grid_fracs[gi] * budget;
      const auto sim_best = optim::best_at_times(sim_result.trajectory, {t});
      sim_loss[gi].add(optim::loss_probability(sys, sim_best[0]));
      sim_eta[gi].add(
          optim::relative_loss_reduction(sys, x0, sim_best[0]));
      const auto cn_best = optim::best_at_times(cn_result.trajectory, {t});
      cn_loss_est[gi].add(optim::loss_probability(sys, cn_best[0]));
      const auto& placement = bench::placement_at_time(cn_result, t);
      const double x_grid =
          optim::simulated_total_throughput(sys, placement, cheap_cfg);
      cn_loss_sim[gi].add(optim::loss_probability(sys, x_grid));
      cn_eta[gi].add(optim::relative_loss_reduction(sys, x0, x_grid));
    }

    std::cout << "problem " << p << ": devices="
              << bench::device_count_for_problem(p)
              << " lambda_total=" << support::Table::num(lambda_total, 2)
              << " budget=" << support::Table::num(budget, 2) << "s"
              << " | sim trials=1 evals=" << sim_result.evaluations
              << " | chainnet trials=" << cn_result.trials
              << " evals=" << cn_result.evaluations << "\n";
  }

  // Fig. 14a: five trial trajectories on a fresh problem (surrogate-driven,
  // like the paper's example run).
  {
    const auto sys = edge::generate_placement_problem(
        edge::PlacementProblemParams::paper(40), master);
    const auto initial = optim::initial_placement(sys);
    support::Table fig14a({"step", "trial1", "trial2", "trial3", "trial4",
                           "trial5"});
    std::vector<optim::SaResult> trials;
    for (int t = 0; t < 5; ++t) {
      optim::SurrogateEvaluator eval(surrogate);
      optim::SaConfig sa;
      sa.max_steps = sc.sa_steps;
      bench::EvaluatorSaOptimizer opt(eval, sa);
      trials.push_back(
          opt.run(sys, initial, 1000 + static_cast<std::uint64_t>(t)));
    }
    for (int s = 0; s <= sc.sa_steps; s += std::max(1, sc.sa_steps / 10)) {
      std::vector<std::string> row = {std::to_string(s)};
      for (const auto& trial : trials) {
        const auto best = optim::best_at_steps(trial.trajectory, {s});
        row.push_back(support::Table::num(
            optim::loss_probability(sys, best[0]), 3));
      }
      fig14a.add_row(row);
    }
    fig14a.print(std::cout,
                 "Fig. 14a: estimated loss probability, 5 trials");
  }

  // Fig. 14b (fixed-time group).
  support::Table fig14b({"method", "mean relative loss reduction"});
  fig14b.add_row({"simulation-based (1 trial budget)",
                  support::Table::num(final_eta_sim.mean(), 3)});
  fig14b.add_row({"ChainNet-based (same budget)",
                  support::Table::num(final_eta_cn.mean(), 3)});
  fig14b.print(std::cout,
               "Fig. 14b fixed-time (paper: 20.5% sim vs 37.6% ChainNet, "
               "+83.4%)");
  if (final_eta_sim.mean() > 0.0) {
    std::cout << "improvement over simulation-based search: "
              << support::Table::num(
                     100.0 * (final_eta_cn.mean() / final_eta_sim.mean() -
                              1.0),
                     1)
              << "% (paper: 83.4%)\n";
  }

  // Fig. 14c-d: mean curves over the budget fraction.
  support::Table curves({"t/budget", "sim loss", "CN loss (est)",
                         "CN loss (sim)", "sim eta", "CN eta (sim)"});
  support::CsvWriter csv(bench::cache_dir() + "/fig14cd_curves.csv",
                         {"frac", "sim_loss", "cn_loss_est", "cn_loss_sim",
                          "sim_eta", "cn_eta"});
  for (std::size_t gi = 0; gi < grid_fracs.size(); ++gi) {
    curves.add_row({support::Table::num(grid_fracs[gi], 2),
                    support::Table::num(sim_loss[gi].mean(), 3),
                    support::Table::num(cn_loss_est[gi].mean(), 3),
                    support::Table::num(cn_loss_sim[gi].mean(), 3),
                    support::Table::num(sim_eta[gi].mean(), 3),
                    support::Table::num(cn_eta[gi].mean(), 3)});
    csv.row({grid_fracs[gi], sim_loss[gi].mean(), cn_loss_est[gi].mean(),
             cn_loss_sim[gi].mean(), sim_eta[gi].mean(),
             cn_eta[gi].mean()});
  }
  curves.print(std::cout, "Fig. 14c-d: mean curves over the time budget");
  std::cout << "\nShape check: the ChainNet curve should drop steeply early "
               "(many trials in the\nbudget) and dominate the simulation "
               "curve throughout; mean budget was "
            << support::Table::num(budgets.mean(), 2) << "s per problem.\n";
  return 0;
}
