// Extra experiment (not in the paper, but quantifying its §III premise):
// how accurate is the classical M/M/1/K decomposition approximation on the
// paper's test sets, compared with ChainNet? The paper dismisses analytical
// approximations as inaccurate for multi-chain finite-buffer networks —
// this bench measures that claim and the speed of each oracle.
#include <chrono>
#include <iostream>

#include "common.h"
#include "edge/qn_mapping.h"
#include "gnn/metrics.h"
#include "queueing/approximation.h"
#include "support/table.h"

namespace {

using namespace chainnet;

struct ApproxErrors {
  std::vector<double> tput;
  std::vector<double> latency;
  double seconds = 0.0;
  std::size_t evals = 0;
};

ApproxErrors evaluate_approximation(const gnn::Dataset& ds) {
  ApproxErrors errors;
  const auto start = std::chrono::steady_clock::now();
  for (const auto& s : ds.samples) {
    const auto qn = edge::build_qn(s.system, s.placement);
    const auto approx = queueing::approximate(qn);
    ++errors.evals;
    for (std::size_t i = 0; i < s.throughput.size(); ++i) {
      errors.tput.push_back(
          gnn::ape(approx.chains[i].throughput, s.throughput[i]));
      if (s.has_latency[i]) {
        errors.latency.push_back(
            gnn::ape(approx.chains[i].mean_latency, s.latency[i]));
      }
    }
  }
  errors.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return errors;
}

}  // namespace

int main() {
  bench::print_header(
      "Extra: analytical decomposition vs ChainNet (SIII premise)");

  auto& chainnet_model = bench::model("chainnet");
  support::Table table({"oracle", "set", "tput MAPE", "tput p95",
                        "lat MAPE", "lat p95"});
  for (const auto& [set_name, ds] :
       {std::pair<const char*, const gnn::Dataset*>{"Type I",
                                                    &bench::test_type1()},
        {"Type II", &bench::test_type2()}}) {
    const auto approx = evaluate_approximation(*ds);
    const auto at = gnn::summarize(approx.tput);
    const auto al = gnn::summarize(approx.latency);
    table.add_row({"MM1K decomposition", set_name,
                   support::Table::num(at.mape), support::Table::num(at.p95),
                   support::Table::num(al.mape),
                   support::Table::num(al.p95)});
    const auto cn = gnn::evaluate(chainnet_model, *ds);
    const auto ct = gnn::summarize(gnn::throughput_apes(cn));
    const auto cl = gnn::summarize(gnn::latency_apes(cn));
    table.add_row({"ChainNet", set_name, support::Table::num(ct.mape),
                   support::Table::num(ct.p95), support::Table::num(cl.mape),
                   support::Table::num(cl.p95)});
  }
  table.print(std::cout, "Accuracy: decomposition vs learned surrogate");
  std::cout
      << "\nReading: the paper's premise (SIII) is that no *exact* analysis "
         "exists for\nmulti-chain finite-buffer networks; the decomposition "
         "is a heuristic with no\nerror guarantee. Empirically, on Table-III "
         "networks (Poisson arrivals,\nexponential service, feed-forward "
         "chains) it is a strong heuristic, and at\nthis reduced training "
         "scale it can out-predict the GNN; the paper-scale\nChainNet "
         "(50k samples, 200 epochs, width 64) reaches ~1% MAPE and "
         "overtakes\nit. The decomposition also degrades where its "
         "independence assumptions\nbreak (deterministic service, heavy "
         "inter-station correlation), while the\nlearned surrogate is "
         "model-free: retrain it on any workload class.\n";
  return 0;
}
