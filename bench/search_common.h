// Helpers shared by the surrogate-optimization benches (Fig. 14, Fig. 15,
// case study, bench_search): building evaluators for Table-VII problems,
// reference re-simulation of decisions ("post-processing" per §VIII-C5),
// sampling of best-so-far placements along a trajectory, and the
// algorithm-agnostic trial runner every search bench drives its
// optimizers through.
#pragma once

#include <algorithm>
#include <string>
#include <vector>

#include "common.h"
#include "core/surrogate.h"
#include "edge/problem.h"
#include "optim/annealing.h"
#include "optim/evaluator.h"
#include "optim/experiment.h"
#include "optim/initial.h"
#include "search/optimizer.h"

namespace chainnet::bench {

/// Serial SA on a caller-owned evaluator behind the search::Optimizer
/// interface. With this adapter the fig14/fig15 protocols and the
/// bench_search harness share one driver layer: search::run_trials
/// reproduces optim::anneal_trials bit-for-bit (same per-trial seeds, same
/// merge) and search::run_for reproduces optim::anneal_for, so converting
/// the figure benches to the shared runner changed none of their numbers.
class EvaluatorSaOptimizer final : public search::Optimizer {
 public:
  EvaluatorSaOptimizer(optim::PlacementEvaluator& evaluator,
                       const optim::SaConfig& sa)
      : evaluator_(evaluator), sa_(sa) {}

  std::string_view name() const noexcept override { return "sa"; }

  optim::SaResult run(const edge::EdgeSystem& system,
                      const edge::Placement& initial,
                      std::uint64_t seed) override {
    optim::SaConfig config = sa_;
    config.seed = seed;
    return optim::anneal(system, initial, evaluator_, config);
  }

 private:
  optim::PlacementEvaluator& evaluator_;
  optim::SaConfig sa_;
};

/// Simulation effort used *inside* the baseline search (cheap) — the knob
/// that the paper turns up to a full JMT run per candidate.
inline queueing::SimConfig search_sim_config(const edge::EdgeSystem& sys,
                                             std::uint64_t seed) {
  double max_ia = 0.0;
  for (const auto& chain : sys.chains) {
    max_ia = std::max(max_ia, 1.0 / chain.arrival_rate);
  }
  queueing::SimConfig cfg;
  cfg.horizon = scale().search_eval_arrivals * max_ia;
  cfg.warmup_fraction = 0.1;
  cfg.seed = seed;
  return cfg;
}

/// Reference simulation effort used to *score* final decisions.
inline queueing::SimConfig reference_sim_config(const edge::EdgeSystem& sys,
                                                std::uint64_t seed) {
  auto cfg = search_sim_config(sys, seed);
  cfg.horizon *= scale().reference_eval_arrivals /
                 scale().search_eval_arrivals;
  return cfg;
}

/// Best-so-far placement at time `t` (seconds) within a recorded search.
inline const edge::Placement& placement_at_time(
    const optim::SaResult& result, double t) {
  std::size_t idx = 0;
  for (std::size_t i = 0; i < result.trajectory.size(); ++i) {
    if (result.trajectory[i].seconds <= t) idx = i;
  }
  return result.best_placements.at(idx);
}

/// Best-so-far placement at cumulative step `s`.
inline const edge::Placement& placement_at_step(
    const optim::SaResult& result, int s) {
  std::size_t idx = 0;
  for (std::size_t i = 0; i < result.trajectory.size(); ++i) {
    if (result.trajectory[i].step <= s) idx = i;
  }
  return result.best_placements.at(idx);
}

/// Device counts cycled across generated problems (Table VII).
inline int device_count_for_problem(int index) {
  constexpr int kCounts[] = {20, 40, 80, 120};
  return kCounts[index % 4];
}

}  // namespace chainnet::bench
