// Reproduces Fig. 15 (and the fixed-steps group of Fig. 14b): both methods
// run the SAME number of search steps (trials x steps); an accurate
// surrogate should then track the simulation-based search closely while
// being orders of magnitude faster (§VIII-C4b).
#include <iostream>
#include <vector>

#include "search_common.h"
#include "support/rng.h"
#include "support/stats.h"
#include "support/table.h"

int main() {
  using namespace chainnet;
  bench::print_header("Fig. 15: fixed-steps surrogate optimization");
  const auto& sc = bench::scale();

  // The search surrogate is trained on the mixed in-domain set (see
  // common.h search_train_set) — a documented small-scale substitution.
  auto& chainnet_model = bench::model("chainnet_search");
  core::Surrogate surrogate(chainnet_model);

  support::Rng master(7771);
  const int trials = sc.fixed_steps_trials;
  const int total_steps = trials * sc.sa_steps;

  // Step grid for the mean curves.
  std::vector<int> grid_steps;
  for (int f = 0; f <= 10; ++f) grid_steps.push_back(total_steps * f / 10);
  std::vector<support::RunningStats> sim_loss(grid_steps.size());
  std::vector<support::RunningStats> cn_loss(grid_steps.size());
  std::vector<support::RunningStats> sim_eta_curve(grid_steps.size());
  std::vector<support::RunningStats> cn_eta_curve(grid_steps.size());
  support::RunningStats eta_sim, eta_cn, eta_approx;
  support::RunningStats secs_sim, secs_cn, secs_approx;

  for (int p = 0; p < sc.fixed_steps_problems; ++p) {
    const auto sys = edge::generate_placement_problem(
        edge::PlacementProblemParams::paper(
            bench::device_count_for_problem(p)),
        master);
    const auto initial = optim::initial_placement(sys);
    const auto ref_cfg = bench::reference_sim_config(sys, 300 + p);
    const double x0 =
        optim::simulated_total_throughput(sys, initial, ref_cfg);

    optim::SaConfig sa;
    sa.max_steps = sc.sa_steps;
    sa.seed = 90 + static_cast<std::uint64_t>(p);
    sa.record_best_placements = true;

    optim::SimulationEvaluator sim_eval(
        bench::search_sim_config(sys, 11 + p));
    bench::EvaluatorSaOptimizer sim_opt(sim_eval, sa);
    const auto sim_result =
        search::run_trials(sim_opt, sys, initial, sa.seed, trials);
    optim::SurrogateEvaluator cn_eval(surrogate);
    bench::EvaluatorSaOptimizer cn_opt(cn_eval, sa);
    const auto cn_result =
        search::run_trials(cn_opt, sys, initial, sa.seed, trials);

    // Extra (non-paper) series: the classical M/M/1/K decomposition as the
    // search oracle — training-free and fast, but biased under sharing.
    optim::ApproximationEvaluator approx_eval;
    bench::EvaluatorSaOptimizer approx_opt(approx_eval, sa);
    const auto approx_result =
        search::run_trials(approx_opt, sys, initial, sa.seed, trials);

    const double x_sim =
        optim::simulated_total_throughput(sys, sim_result.best, ref_cfg);
    const double x_cn =
        optim::simulated_total_throughput(sys, cn_result.best, ref_cfg);
    const double x_approx =
        optim::simulated_total_throughput(sys, approx_result.best, ref_cfg);
    eta_sim.add(optim::relative_loss_reduction(sys, x0, x_sim));
    eta_cn.add(optim::relative_loss_reduction(sys, x0, x_cn));
    eta_approx.add(optim::relative_loss_reduction(sys, x0, x_approx));
    secs_sim.add(sim_result.seconds);
    secs_cn.add(cn_result.seconds);
    secs_approx.add(approx_result.seconds);

    const auto cheap_cfg = bench::search_sim_config(sys, 13 + p);
    for (std::size_t gi = 0; gi < grid_steps.size(); ++gi) {
      const auto sim_best =
          optim::best_at_steps(sim_result.trajectory, {grid_steps[gi]});
      sim_loss[gi].add(optim::loss_probability(sys, sim_best[0]));
      sim_eta_curve[gi].add(
          optim::relative_loss_reduction(sys, x0, sim_best[0]));
      // ChainNet decisions re-simulated per grid step (the paper reports
      // simulated values for surrogate decisions).
      const auto& placement =
          bench::placement_at_step(cn_result, grid_steps[gi]);
      const double x_grid =
          optim::simulated_total_throughput(sys, placement, cheap_cfg);
      cn_loss[gi].add(optim::loss_probability(sys, x_grid));
      cn_eta_curve[gi].add(optim::relative_loss_reduction(sys, x0, x_grid));
    }
    std::cout << "problem " << p << ": sim "
              << support::Table::num(sim_result.seconds, 2) << "s vs CN "
              << support::Table::num(cn_result.seconds, 2) << "s for "
              << total_steps << " steps\n";
  }

  support::Table headline({"method", "mean eta", "mean duration (s)"});
  headline.add_row({"simulation-based", support::Table::num(eta_sim.mean(), 3),
                    support::Table::num(secs_sim.mean(), 2)});
  headline.add_row({"ChainNet-based", support::Table::num(eta_cn.mean(), 3),
                    support::Table::num(secs_cn.mean(), 2)});
  headline.add_row({"MM1K-decomposition (extra)",
                    support::Table::num(eta_approx.mean(), 3),
                    support::Table::num(secs_approx.mean(), 2)});
  headline.print(std::cout,
                 "Fig. 14b fixed-steps group (paper: ChainNet reaches 86.7% "
                 "of the baseline eta; 30h vs 90s)");
  if (eta_sim.mean() > 0.0) {
    std::cout << "ChainNet reaches "
              << support::Table::num(100.0 * eta_cn.mean() / eta_sim.mean(),
                                     1)
              << "% of the simulation-based quality at "
              << support::Table::num(secs_sim.mean() /
                                         std::max(secs_cn.mean(), 1e-9),
                                     1)
              << "x lower wall-clock cost\n";
  }

  support::Table curves({"step", "sim loss", "CN loss (sim)", "sim eta",
                         "CN eta"});
  support::CsvWriter csv(bench::cache_dir() + "/fig15_curves.csv",
                         {"step", "sim_loss", "cn_loss", "sim_eta",
                          "cn_eta"});
  for (std::size_t gi = 0; gi < grid_steps.size(); ++gi) {
    curves.add_row({std::to_string(grid_steps[gi]),
                    support::Table::num(sim_loss[gi].mean(), 3),
                    support::Table::num(cn_loss[gi].mean(), 3),
                    support::Table::num(sim_eta_curve[gi].mean(), 3),
                    support::Table::num(cn_eta_curve[gi].mean(), 3)});
    csv.row({static_cast<double>(grid_steps[gi]), sim_loss[gi].mean(),
             cn_loss[gi].mean(), sim_eta_curve[gi].mean(),
             cn_eta_curve[gi].mean()});
  }
  curves.print(std::cout, "Fig. 15a-b: mean curves over search steps");
  std::cout << "\nShape check: both curves should descend together (the "
               "surrogate tracks the\nsimulation search), with tails that "
               "flatten as randomization struggles to\nimprove the "
               "incumbent (paper observation).\n";
  return 0;
}
