// Reproduces Fig. 13: training loss (Type I) and validation loss (Type II)
// per epoch for ChainNet and its three ablated variants. The paper's
// qualitative claim: every ablation's validation loss is either much larger
// or fails to converge, while full ChainNet converges tightly.
#include <cmath>
#include <iostream>
#include <vector>

#include "common.h"
#include "support/table.h"

int main() {
  using namespace chainnet;
  bench::print_header(
      "Fig. 13: training/validation loss curves (ablations)");

  const std::vector<std::pair<std::string, std::string>> variants = {
      {"ChainNet", "chainnet"},
      {"ChainNet-alpha", "chainnet_alpha"},
      {"ChainNet-beta", "chainnet_beta"},
      {"ChainNet-delta", "chainnet_delta"},
  };

  // Collect curves (training happens on first access, cached afterwards).
  std::vector<std::vector<std::pair<double, double>>> curves;
  for (const auto& [label, name] : variants) {
    curves.push_back(bench::loss_curves(name));
  }

  // Print a downsampled epoch table.
  const std::size_t epochs = curves.front().size();
  support::Table table({"epoch", "CN train", "CN val", "a train", "a val",
                        "b train", "b val", "d train", "d val"});
  const std::size_t stride = std::max<std::size_t>(1, epochs / 10);
  for (std::size_t e = 0; e < epochs; e += stride) {
    std::vector<std::string> row = {std::to_string(e)};
    for (const auto& curve : curves) {
      row.push_back(support::Table::num(curve[e].first, 4));
      row.push_back(std::isnan(curve[e].second)
                        ? "-"
                        : support::Table::num(curve[e].second, 4));
    }
    table.add_row(row);
  }
  table.print(std::cout, "Loss per epoch (train on Type I, val on Type II)");

  // CSV for plotting.
  support::CsvWriter csv(
      bench::cache_dir() + "/fig13_losscurves.csv",
      {"epoch", "chainnet_train", "chainnet_val", "alpha_train", "alpha_val",
       "beta_train", "beta_val", "delta_train", "delta_val"});
  for (std::size_t e = 0; e < epochs; ++e) {
    std::vector<double> row = {static_cast<double>(e)};
    for (const auto& curve : curves) {
      row.push_back(curve[e].first);
      row.push_back(curve[e].second);
    }
    csv.row(row);
  }

  // Final-epoch summary: the paper's claim in one line per variant.
  support::Table summary({"model", "final train", "final val",
                          "val/train ratio"});
  for (std::size_t v = 0; v < variants.size(); ++v) {
    const auto& [train, val] = curves[v].back();
    summary.add_row({variants[v].first, support::Table::num(train, 4),
                     support::Table::num(val, 4),
                     support::Table::num(val / std::max(train, 1e-9), 1)});
  }
  summary.print(std::cout, "Final losses");
  std::cout << "\nShape check: ChainNet's validation loss should be the "
               "smallest by a wide\nmargin; ablated variants' validation "
               "curves should sit far above their\ntraining curves "
               "(generalization failure).\n";
  return 0;
}
