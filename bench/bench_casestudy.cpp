// Reproduces the §VIII-D case study: deploying 8 DNN service chains
// (2x VGG16, 2x VGG19, 2x 28-layer CNN, 2x intrusion-detection CNN — 28
// fragments) on 5 devices (2x OrangePi Zero, 2x Raspberry Pi A+, 1x
// Raspberry Pi 3A+). The paper reports: initial loss 96.2%; 100-step
// ChainNet optimization (3 s) -> 14.6%; simulation-based (10 min) -> 86.8%;
// GAT -> 23.5%; GIN -> 94.7%.
#include <chrono>
#include <iostream>

#include "search_common.h"
#include "support/table.h"

namespace {

using Clock = std::chrono::steady_clock;

double run_search(const chainnet::edge::EdgeSystem& sys,
                  const chainnet::edge::Placement& initial,
                  chainnet::optim::PlacementEvaluator& eval, int steps,
                  std::uint64_t seed, const chainnet::queueing::SimConfig& ref,
                  double* seconds) {
  using namespace chainnet;
  optim::SaConfig sa;
  sa.max_steps = steps;
  sa.seed = seed;
  const auto start = Clock::now();
  const auto result = optim::anneal(sys, initial, eval, sa);
  *seconds = std::chrono::duration<double>(Clock::now() - start).count();
  const double x =
      optim::simulated_total_throughput(sys, result.best, ref);
  return optim::loss_probability(sys, x);
}

}  // namespace

int main() {
  using namespace chainnet;
  bench::print_header("Case study (SVIII-D): real-parameter deployment");
  const auto& sc = bench::scale();

  const auto sys = edge::case_study_system();
  support::Table fleet({"device", "memory (KB)", "rate (GFLOP/s)"});
  for (const auto& d : sys.devices) {
    fleet.add_row({d.name, support::Table::num(d.memory_capacity, 0),
                   support::Table::num(d.service_rate, 3)});
  }
  fleet.print(std::cout, "Device fleet");
  std::cout << "chains: " << sys.num_chains() << ", fragments: "
            << sys.total_fragments() << ", lambda_total = "
            << support::Table::num(sys.total_arrival_rate(), 2) << "/s\n";

  const auto initial = optim::initial_placement(sys);
  const auto ref_cfg = bench::reference_sim_config(sys, 4242);
  const double x0 = optim::simulated_total_throughput(sys, initial, ref_cfg);
  const double initial_loss = optim::loss_probability(sys, x0);

  support::Table results(
      {"method", "loss probability", "search time (s)", "paper"});
  results.add_row({"initial placement",
                   support::Table::num(initial_loss, 3), "-", "0.962"});

  const int steps = sc.sa_steps;

  // ChainNet-driven search.
  {
    core::Surrogate surrogate(bench::model("chainnet"));
    optim::SurrogateEvaluator eval(surrogate);
    double secs = 0.0;
    const double loss =
        run_search(sys, initial, eval, steps, 5, ref_cfg, &secs);
    results.add_row({"ChainNet (100 steps)", support::Table::num(loss, 3),
                     support::Table::num(secs, 2), "0.146 (~3 s)"});
  }
  // GAT-driven search.
  {
    core::Surrogate surrogate(bench::model("gat_tput"));
    optim::SurrogateEvaluator eval(surrogate);
    double secs = 0.0;
    const double loss =
        run_search(sys, initial, eval, steps, 6, ref_cfg, &secs);
    results.add_row({"GAT (100 steps)", support::Table::num(loss, 3),
                     support::Table::num(secs, 2), "0.235"});
  }
  // GIN-driven search.
  {
    core::Surrogate surrogate(bench::model("gin_tput"));
    optim::SurrogateEvaluator eval(surrogate);
    double secs = 0.0;
    const double loss =
        run_search(sys, initial, eval, steps, 7, ref_cfg, &secs);
    results.add_row({"GIN (100 steps)", support::Table::num(loss, 3),
                     support::Table::num(secs, 2), "0.947"});
  }
  // Simulation-based search. The paper's JMT-driven search was capped at
  // ~10 minutes, which bought it only a small fraction of the 100 steps
  // (hence its 86.8% residual loss). We reproduce that regime by (i) giving
  // the search evaluator JMT-like effort (many more collected samples per
  // candidate) and (ii) capping the step count at a fifth of the budget.
  {
    auto slow_cfg = bench::search_sim_config(sys, 99);
    slow_cfg.horizon *= 30.0;
    optim::SimulationEvaluator eval(slow_cfg);
    double secs = 0.0;
    const double loss =
        run_search(sys, initial, eval, steps / 5, 8, ref_cfg, &secs);
    results.add_row({"simulation (time-capped, " +
                         std::to_string(steps / 5) + " steps)",
                     support::Table::num(loss, 3),
                     support::Table::num(secs, 2), "0.868 (~600 s)"});
  }

  results.print(std::cout, "Case study results");
  std::cout << "\nShape check: the initial ranked placement should lose most "
               "jobs; ChainNet\nshould find the lowest-loss deployment, GAT "
               "close behind, GIN far worse, and\nthe budget-matched "
               "simulation search in between — at much higher cost.\n";
  return 0;
}
