// Microbenchmarks (google-benchmark): DES event throughput, graph
// construction, ChainNet / GAT inference latency (the paper quotes ~0.01 s
// per graph, §VIII-B3), and a full surrogate evaluation (graph build +
// forward) as used inside the SA loop.
#include <benchmark/benchmark.h>

#include <memory>

#include "core/chainnet.h"
#include "core/surrogate.h"
#include "edge/graph.h"
#include "edge/problem.h"
#include "edge/qn_mapping.h"
#include "gnn/baselines.h"
#include "optim/initial.h"
#include "queueing/simulator.h"
#include "support/rng.h"

namespace {

using namespace chainnet;

edge::NetworkSample make_sample(int min_frags, int max_frags,
                                std::uint64_t seed) {
  auto params = edge::NetworkGenParams::type2();
  params.min_fragments = min_frags;
  params.max_fragments = max_frags;
  support::Rng rng(seed);
  return edge::generate_network_sample(params, rng);
}

void BM_SimulatorEvents(benchmark::State& state) {
  const auto sample = make_sample(4, 8, 1);
  const auto qn = edge::build_qn(sample.system, sample.placement);
  std::uint64_t seed = 1;
  std::uint64_t events = 0;
  for (auto _ : state) {
    queueing::SimConfig cfg;
    cfg.horizon = 2000.0;
    cfg.seed = seed++;
    const auto result = queueing::simulate(qn, cfg);
    events += result.events;
    benchmark::DoNotOptimize(result.chains[0].throughput);
  }
  state.counters["events/s"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulatorEvents)->Unit(benchmark::kMillisecond);

void BM_GraphConstruction(benchmark::State& state) {
  const auto sample = make_sample(4, 12, 2);
  for (auto _ : state) {
    const auto g = edge::build_graph(sample.system, sample.placement,
                                     edge::FeatureMode::kModified);
    benchmark::DoNotOptimize(g.num_nodes());
  }
}
BENCHMARK(BM_GraphConstruction)->Unit(benchmark::kMicrosecond);

void BM_ChainNetInference(benchmark::State& state) {
  support::Rng rng(3);
  core::ChainNetConfig cfg;
  cfg.hidden = static_cast<int>(state.range(0));
  cfg.iterations = 4;
  core::ChainNet model(cfg, rng);
  const auto sample = make_sample(6, 12, 4);
  const auto g = edge::build_graph(sample.system, sample.placement,
                                   model.feature_mode());
  for (auto _ : state) {
    const auto out = model.forward(g);
    benchmark::DoNotOptimize(out[0].throughput.item());
  }
  state.counters["nodes"] = static_cast<double>(g.num_nodes());
}
BENCHMARK(BM_ChainNetInference)->Arg(32)->Arg(64)->Unit(
    benchmark::kMillisecond);

void BM_ChainNetFastInference(benchmark::State& state) {
  // The allocation-light forward_values path used inside the optimizer.
  support::Rng rng(3);
  core::ChainNetConfig cfg;
  cfg.hidden = static_cast<int>(state.range(0));
  cfg.iterations = 4;
  core::ChainNet model(cfg, rng);
  const auto sample = make_sample(6, 12, 4);
  const auto g = edge::build_graph(sample.system, sample.placement,
                                   model.feature_mode());
  for (auto _ : state) {
    const auto out = model.forward_values(g);
    benchmark::DoNotOptimize(out[0].throughput);
  }
  state.counters["nodes"] = static_cast<double>(g.num_nodes());
}
BENCHMARK(BM_ChainNetFastInference)->Arg(32)->Arg(64)->Unit(
    benchmark::kMillisecond);

void BM_GatInference(benchmark::State& state) {
  support::Rng rng(5);
  gnn::BaselineConfig cfg;
  cfg.hidden = 32;
  cfg.layers = static_cast<int>(state.range(0));
  gnn::Gat model(cfg, rng);
  const auto sample = make_sample(6, 12, 6);
  const auto g = edge::build_graph(sample.system, sample.placement,
                                   model.feature_mode());
  for (auto _ : state) {
    const auto out = model.forward(g);
    benchmark::DoNotOptimize(out[0].throughput.item());
  }
}
BENCHMARK(BM_GatInference)->Arg(3)->Arg(8)->Unit(benchmark::kMillisecond);

void BM_SurrogateEvaluation(benchmark::State& state) {
  // Full SA-loop evaluation cost: graph build + ChainNet forward + decode.
  support::Rng rng(7);
  core::ChainNetConfig cfg;
  cfg.hidden = 32;
  cfg.iterations = 4;
  core::ChainNet model(cfg, rng);
  core::Surrogate surrogate(model);
  support::Rng gen(8);
  const auto sys = edge::generate_placement_problem(
      edge::PlacementProblemParams::paper(40), gen);
  const auto placement = optim::initial_placement(sys);
  for (auto _ : state) {
    benchmark::DoNotOptimize(surrogate.total_throughput(sys, placement));
  }
}
BENCHMARK(BM_SurrogateEvaluation)->Unit(benchmark::kMillisecond);

void BM_SimulationEvaluation(benchmark::State& state) {
  // The baseline's per-candidate cost at bench search effort.
  support::Rng gen(9);
  const auto sys = edge::generate_placement_problem(
      edge::PlacementProblemParams::paper(40), gen);
  const auto placement = optim::initial_placement(sys);
  const auto qn = edge::build_qn(sys, placement);
  double max_ia = 0.0;
  for (const auto& chain : sys.chains) {
    max_ia = std::max(max_ia, 1.0 / chain.arrival_rate);
  }
  std::uint64_t seed = 1;
  for (auto _ : state) {
    queueing::SimConfig cfg;
    cfg.horizon = 120.0 * max_ia;
    cfg.seed = seed++;
    benchmark::DoNotOptimize(
        queueing::simulate(qn, cfg).total_throughput());
  }
}
BENCHMARK(BM_SimulationEvaluation)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
