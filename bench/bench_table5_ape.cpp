// Reproduces Table V: throughput APE percentiles (75th / 95th / 99th) on
// the Type I and Type II test sets for ChainNet, GIN, GAT and the
// raw-feature variants GIN* / GAT*.
//
// Expected shape (paper values for reference):
//   ChainNet has the lowest percentiles in both columns; GIN degrades
//   catastrophically on Type II; the starred (raw-feature) variants are
//   the worst of each family.
#include <iostream>
#include <vector>

#include "common.h"
#include "gnn/metrics.h"
#include "support/table.h"

int main() {
  using namespace chainnet;
  bench::print_header("Table V: throughput APE percentiles");

  const std::vector<std::string> models = {"chainnet",      "gin_tput",
                                           "gat_tput",      "gin_star_tput",
                                           "gat_star_tput", "gcn_tput"};
  const std::vector<std::string> labels = {"ChainNet", "GIN",  "GAT",
                                           "GIN*",     "GAT*", "GCN (extra)"};
  // Paper Table V rows for side-by-side comparison.
  const char* paper[5][6] = {
      {"0.012", "0.108", "0.388", "0.011", "0.038", "0.144"},
      {"0.035", "0.227", "0.688", "0.797", "0.961", "0.987"},
      {"0.026", "0.219", "0.709", "0.014", "0.112", "0.346"},
      {"0.065", "0.295", "0.945", "0.648", "1.132", "2.210"},
      {"0.040", "0.287", "0.931", "0.083", "0.363", "1.258"},
  };

  support::Table table({"model", "I-75th", "I-95th", "I-99th", "II-75th",
                        "II-95th", "II-99th"});
  support::Table reference({"model", "I-75th", "I-95th", "I-99th", "II-75th",
                            "II-95th", "II-99th"});
  for (std::size_t m = 0; m < models.size(); ++m) {
    auto& mdl = bench::model(models[m]);
    const auto e1 = gnn::summarize(
        gnn::throughput_apes(gnn::evaluate(mdl, bench::test_type1())));
    const auto e2 = gnn::summarize(
        gnn::throughput_apes(gnn::evaluate(mdl, bench::test_type2())));
    table.add_row({labels[m], support::Table::num(e1.p75),
                   support::Table::num(e1.p95), support::Table::num(e1.p99),
                   support::Table::num(e2.p75), support::Table::num(e2.p95),
                   support::Table::num(e2.p99)});
    if (m < 5) {  // the paper has no GCN row
      reference.add_row({labels[m], paper[m][0], paper[m][1], paper[m][2],
                         paper[m][3], paper[m][4], paper[m][5]});
    }
  }
  table.print(std::cout, "Measured (this run)");
  reference.print(std::cout, "Paper Table V (reference)");
  std::cout << "\nShape check: ChainNet percentiles should be the lowest in "
               "each column;\nGIN should collapse on Type II; starred "
               "variants should be the worst.\n";
  return 0;
}
