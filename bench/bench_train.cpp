// Training/inference throughput of the tensor substrate (ISSUE 2 bench).
//
// Measures, on a small fixed workload:
//   * ChainNet training steps/s (one step = one optimizer batch) via
//     gnn::train on a generated dataset;
//   * autodiff forward+backward passes/s on a single placement graph;
//   * inference forward_values calls/s on the same graph (the SA hot path).
//
// With the arena tape it also reports tape ops (nodes) per training pass and
// arena bytes in use per pass, plus the steady-state tape capacity — the
// numbers behind the "allocation-free steady state" claim in DESIGN.md.
//
// Usage: bench_train [epochs] (default 8; dataset/model sizes are fixed so
// runs are comparable across commits).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/chainnet.h"
#include "edge/graph.h"
#include "gnn/dataset.h"
#include "gnn/trainer.h"
#include "support/rng.h"
#include "tensor/tape.h"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace chainnet;

  const int epochs = argc > 1 ? std::atoi(argv[1]) : 8;

  // Fixed workload: small Type-I systems, modest ChainNet.
  gnn::LabelingConfig lc;
  lc.arrivals_per_chain = 300.0;
  auto params = edge::NetworkGenParams::type1();
  const auto ds = gnn::generate_dataset(params, 64, lc, 4242);

  support::Rng rng(7);
  core::ChainNetConfig cfg;
  cfg.hidden = 32;
  cfg.iterations = 4;
  core::ChainNet model(cfg, rng);

  gnn::TrainConfig tc;
  tc.epochs = epochs;
  tc.batch_size = 8;
  tc.seed = 99;

  const std::size_t batches_per_epoch =
      (ds.samples.size() + static_cast<std::size_t>(tc.batch_size) - 1) /
      static_cast<std::size_t>(tc.batch_size);

  std::printf("bench_train: %zu samples, hidden=%d iters=%d, %d epochs, "
              "batch=%d\n",
              ds.samples.size(), cfg.hidden, cfg.iterations, epochs,
              tc.batch_size);

  // ---- training throughput -------------------------------------------
  const auto report = gnn::train(model, ds, nullptr, tc);
  const double steps =
      static_cast<double>(batches_per_epoch) * static_cast<double>(epochs);
  std::printf("train: %.3fs for %.0f steps -> %.1f steps/s "
              "(%.1f samples/s), final loss %.6f\n",
              report.seconds, steps, steps / report.seconds,
              static_cast<double>(ds.samples.size()) *
                  static_cast<double>(epochs) / report.seconds,
              report.train_loss.back());

  // ---- forward+backward passes/s on one graph ------------------------
  const auto& sample0 = ds.samples.front();
  const auto& graph = sample0.graph(model.feature_mode());
  tensor::Tape& tape = tensor::Tape::current();
  {
    const int passes = 200;
    std::size_t nodes_per_pass = 0;
    std::size_t bytes_per_pass = 0;
    const auto start = Clock::now();
    double sink = 0.0;
    for (int i = 0; i < passes; ++i) {
      const std::size_t nodes0 = tape.node_count();
      const std::size_t bytes0 = tape.used_bytes();
      const tensor::Tape::Frame frame(tape);
      const auto outputs = model.forward(graph);
      auto loss = tensor::mse(outputs.front().throughput,
                              tensor::Var::scalar(0.5));
      loss.backward();
      sink += loss.item();
      model.zero_grad();
      if (i == 0) {
        nodes_per_pass = tape.node_count() - nodes0;
        bytes_per_pass = tape.used_bytes() - bytes0;
      }
    }
    const double dt = seconds_since(start);
    std::printf("forward+backward: %d passes in %.3fs -> %.1f passes/s "
                "(sink %.3f)\n",
                passes, dt, passes / dt, sink);
    std::printf("  tape: %zu ops/pass, %zu bytes/pass, capacity %zu bytes "
                "(steady state)\n",
                nodes_per_pass, bytes_per_pass, tape.capacity_bytes());
  }

  // ---- inference forward_values calls/s ------------------------------
  {
    const int calls = 2000;
    const std::size_t cap0 = tape.capacity_bytes();
    const auto start = Clock::now();
    double sink = 0.0;
    for (int i = 0; i < calls; ++i) {
      const auto values = model.forward_values(graph);
      sink += values.front().throughput;
    }
    const double dt = seconds_since(start);
    std::printf("forward_values: %d calls in %.3fs -> %.1f calls/s "
                "(sink %.3f)\n",
                calls, dt, calls / dt, sink);
    std::printf("  tape: capacity grew %zu bytes over %d calls "
                "(0 = allocation-free inference)\n",
                tape.capacity_bytes() - cap0, calls);
  }

  return 0;
}
