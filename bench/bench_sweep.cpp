// Extra experiment: ChainNet hyperparameter sensitivity. The paper reports
// Table IV "after basic hyperparameter tuning"; this bench reproduces that
// tuning axis by sweeping the embedding width and the number of
// message-passing iterations N, reporting MAPE on both test sets.
//
// Expected shape: halving the width costs little; cutting the iterations
// hurts more (information must propagate along the execution sequence),
// and a single iteration clearly degrades Type II (long chains).
#include <iostream>
#include <vector>

#include "common.h"
#include "gnn/metrics.h"
#include "support/table.h"

int main() {
  using namespace chainnet;
  bench::print_header("Extra: ChainNet hyperparameter sweep (Table IV)");

  struct Entry {
    const char* label;
    const char* model;
  };
  const std::vector<Entry> entries = {
      {"ChainNet (scale default)", "chainnet"},
      {"half hidden width", "chainnet_half_hidden"},
      {"half iterations", "chainnet_half_iters"},
      {"single iteration", "chainnet_single_iter"},
  };

  support::Table table({"variant", "I tput MAPE", "I lat MAPE",
                        "II tput MAPE", "II lat MAPE", "params"});
  for (const auto& e : entries) {
    auto& mdl = bench::model(e.model);
    const auto e1 = gnn::evaluate(mdl, bench::test_type1());
    const auto e2 = gnn::evaluate(mdl, bench::test_type2());
    table.add_row(
        {e.label,
         support::Table::num(gnn::summarize(gnn::throughput_apes(e1)).mape),
         support::Table::num(gnn::summarize(gnn::latency_apes(e1)).mape),
         support::Table::num(gnn::summarize(gnn::throughput_apes(e2)).mape),
         support::Table::num(gnn::summarize(gnn::latency_apes(e2)).mape),
         std::to_string(mdl.parameter_count())});
  }
  table.print(std::cout, "Hyperparameter sensitivity");
  std::cout << "\nShape check: fewer message-passing iterations should hurt "
               "most on Type II\n(longer execution sequences need more "
               "rounds for information to traverse).\n";
  return 0;
}
