// Prints the experiment inputs (Table III generation parameters, Table IV
// hyperparameters) and summary statistics of the generated datasets —
// and, as the alphabetically first bench binary, warms the shared cache
// (datasets are generated here; models are trained by later benches).
#include <iostream>

#include "common.h"
#include "support/stats.h"
#include "support/table.h"

namespace {

void summarize(const char* name, const chainnet::gnn::Dataset& ds) {
  using chainnet::support::RunningStats;
  using chainnet::support::Table;
  RunningStats chains, fragments, devices, nodes, tput_ratio, loss_share;
  for (const auto& s : ds.samples) {
    chains.add(static_cast<double>(s.system.num_chains()));
    fragments.add(static_cast<double>(s.system.total_fragments()));
    devices.add(static_cast<double>(s.placement.used_devices().size()));
    nodes.add(static_cast<double>(s.graph_modified.num_nodes()));
    for (std::size_t i = 0; i < s.throughput.size(); ++i) {
      const double lambda = s.system.chains[i].arrival_rate;
      tput_ratio.add(std::min(1.0, s.throughput[i] / lambda));
      loss_share.add(s.throughput[i] < 0.95 * lambda ? 1.0 : 0.0);
    }
  }
  Table t({"statistic", "mean", "min", "max"});
  const auto row = [&](const char* label, const RunningStats& st) {
    t.add_row({label, Table::num(st.mean(), 2), Table::num(st.min(), 2),
               Table::num(st.max(), 2)});
  };
  row("# service chains", chains);
  row("# fragments", fragments);
  row("# used devices", devices);
  row("# graph nodes", nodes);
  row("X_i / lambda_i (ground truth)", tput_ratio);
  row("share of chains with >5% loss", loss_share);
  t.print(std::cout, name);
}

}  // namespace

int main() {
  using namespace chainnet;
  bench::print_header("Datasets: Table III inputs and label statistics");

  support::Table t3({"parameter", "Type I", "Type II"});
  t3.add_row({"max # devices", "10", "80"});
  t3.add_row({"max # service chains", "3", "12"});
  t3.add_row({"max # fragments per chain", "6", "12"});
  t3.add_row({"mean interarrival time", "U(0.1,10)", "APH(2,5), floor 1"});
  t3.add_row(
      {"fragment processing time", "U(0,2)", "APH(0.1,10), floor 0.05"});
  t3.add_row({"memory capacity", "50", "100"});
  t3.print(std::cout, "Table III: network generation parameters");

  summarize("Type I training set", bench::train_set());
  summarize("Type I test set", bench::test_type1());
  summarize("Type II test set", bench::test_type2());

  std::cout << "\nGround truth comes from the discrete-event QN simulator "
               "(JMT substitute);\nsee DESIGN.md for the substitution "
               "rationale.\n";
  return 0;
}
