// Reproduces Fig. 12: box plots of the throughput/latency APE distribution
// on the Type II test set, grouped (a)-(b) by graph size (number of nodes)
// and (c)-(d) by number of service chains, for ChainNet and GAT (the paper
// omits GIN boxes because its medians sit above the other models' Q3).
#include <iostream>
#include <vector>

#include "common.h"
#include "gnn/metrics.h"
#include "support/table.h"

namespace {

void print_groups(const std::string& title,
                  const std::vector<chainnet::gnn::GroupedBox>& groups,
                  bool latency) {
  using chainnet::support::Table;
  Table table({"group", "n", "min", "q1", "median", "q3", "max"});
  for (const auto& g : groups) {
    const auto& box = latency ? g.latency : g.throughput;
    table.add_row({Table::num(g.key_lo, 0) + "-" + Table::num(g.key_hi, 0),
                   std::to_string(box.count), Table::num(box.min),
                   Table::num(box.q1), Table::num(box.median),
                   Table::num(box.q3), Table::num(box.max)});
  }
  table.print(std::cout, title);
}

}  // namespace

int main() {
  using namespace chainnet;
  bench::print_header("Fig. 12: APE vs graph size / chain count (Type II)");

  constexpr int kBuckets = 5;
  struct Entry {
    const char* label;
    const char* tput_model;
    const char* lat_model;
  };
  const std::vector<Entry> entries = {
      {"ChainNet", "chainnet", "chainnet"},
      {"GAT", "gat_tput", "gat_lat"},
      {"GIN", "gin_tput", "gin_lat"},
  };

  for (const auto& e : entries) {
    auto& tput_model = bench::model(e.tput_model);
    const auto tput_errors = gnn::evaluate(tput_model, bench::test_type2());
    print_groups(std::string("Fig. 12a: ") + e.label +
                     " throughput APE by #nodes",
                 gnn::group_by(tput_errors, gnn::GroupKey::kNumNodes,
                               kBuckets),
                 false);
    print_groups(std::string("Fig. 12c: ") + e.label +
                     " throughput APE by #chains",
                 gnn::group_by(tput_errors, gnn::GroupKey::kNumChains,
                               kBuckets),
                 false);
    auto& lat_model = bench::model(e.lat_model);
    const auto lat_errors = gnn::evaluate(lat_model, bench::test_type2());
    print_groups(std::string("Fig. 12b: ") + e.label +
                     " latency APE by #nodes",
                 gnn::group_by(lat_errors, gnn::GroupKey::kNumNodes,
                               kBuckets),
                 true);
    print_groups(std::string("Fig. 12d: ") + e.label +
                     " latency APE by #chains",
                 gnn::group_by(lat_errors, gnn::GroupKey::kNumChains,
                               kBuckets),
                 true);
  }
  std::cout << "\nShape check: ChainNet medians stay below GAT/GIN in every "
               "group and the\ngap widens for the largest graphs (the "
               "paper's generalization claim).\n";
  return 0;
}
