#include "common.h"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <limits>
#include <map>
#include <sstream>
#include <stdexcept>

#include "core/chainnet.h"
#include "gnn/baselines.h"
#include "support/rng.h"
#include "tensor/dtype.h"
#include "tensor/serialize.h"

namespace chainnet::bench {

namespace fs = std::filesystem;
using support::Rng;

Scale Scale::from_env() {
  Scale s;
  const char* env = std::getenv("CHAINNET_SCALE");
  const std::string requested = env ? env : "small";
  if (requested == "small" || requested.empty()) {
    return s;
  }
  if (requested == "medium") {
    s.name = "medium";
    s.train_samples = 2000;
    s.test1_samples = 500;
    s.test2_samples = 300;
    s.arrivals_per_chain = 2000.0;
    s.hidden = 48;
    s.chainnet_iterations = 6;
    s.gat_layers = 5;
    s.gin_layers = 8;
    s.epochs = 60;
    s.fixed_time_problems = 10;
    s.fixed_steps_problems = 6;
    s.fixed_steps_trials = 10;
    s.search_eval_arrivals = 1200.0;
    s.reference_eval_arrivals = 4000.0;
    return s;
  }
  if (requested == "paper") {
    s.name = "paper";
    s.train_samples = 50000;
    s.test1_samples = 10000;
    s.test2_samples = 10000;
    s.arrivals_per_chain = 10000.0;
    s.hidden = 64;
    s.chainnet_iterations = 8;
    s.gat_layers = 8;
    s.gin_layers = 12;
    s.epochs = 200;
    s.batch_size = 128;
    s.curve_validation_samples = 500;
    s.fixed_time_problems = 100;
    s.fixed_steps_problems = 100;
    s.fixed_steps_trials = 30;
    s.search_eval_arrivals = 20000.0;  // ~JMT's per-candidate effort
    s.reference_eval_arrivals = 50000.0;
    return s;
  }
  std::cerr << "CHAINNET_SCALE='" << requested
            << "' not recognized; using 'small'\n";
  return s;
}

const Scale& scale() {
  static const Scale s = Scale::from_env();
  return s;
}

#ifndef CHAINNET_DEFAULT_CACHE_DIR
#define CHAINNET_DEFAULT_CACHE_DIR "chainnet_cache"
#endif

std::string cache_dir() {
  // Priority: CHAINNET_CACHE_DIR env var, then the build-time default
  // (bench/CMakeLists.txt points it under the build tree so benches never
  // litter the source checkout), then a relative fallback.
  static const std::string dir = [] {
    const char* env = std::getenv("CHAINNET_CACHE_DIR");
    const fs::path root =
        (env && *env) ? fs::path(env) : fs::path(CHAINNET_DEFAULT_CACHE_DIR);
    const fs::path p = root / scale().name;
    fs::create_directories(p);
    return p.string();
  }();
  return dir;
}

namespace {

gnn::LabelingConfig labeling(std::uint64_t seed) {
  gnn::LabelingConfig cfg;
  cfg.arrivals_per_chain = scale().arrivals_per_chain;
  cfg.seed = seed;
  return cfg;
}

const gnn::Dataset& cached_dataset(const std::string& file,
                                   const edge::NetworkGenParams& params,
                                   int count, std::uint64_t seed) {
  static std::map<std::string, gnn::Dataset> cache;
  auto it = cache.find(file);
  if (it != cache.end()) return it->second;
  const std::string path = cache_dir() + "/" + file;
  if (gnn::dataset_file_exists(path)) {
    std::cerr << "[cache] loading " << path << "\n";
    return cache.emplace(file, gnn::load_dataset(path)).first->second;
  }
  std::cerr << "[cache] generating " << count << " samples -> " << path
            << "\n";
  auto ds = gnn::generate_dataset(params, count, labeling(seed), seed);
  gnn::save_dataset(ds, path);
  return cache.emplace(file, std::move(ds)).first->second;
}

}  // namespace

const gnn::Dataset& train_set() {
  return cached_dataset("type1_train.bin", edge::NetworkGenParams::type1(),
                        scale().train_samples, 1001);
}

const gnn::Dataset& test_type1() {
  return cached_dataset("type1_test.bin", edge::NetworkGenParams::type1(),
                        scale().test1_samples, 2002);
}

const gnn::Dataset& test_type2() {
  return cached_dataset("type2_test.bin", edge::NetworkGenParams::type2(),
                        scale().test2_samples, 3003);
}

const gnn::Dataset& search_train_set() {
  static const gnn::Dataset ds = [] {
    const std::string path = cache_dir() + "/search_train.bin";
    if (gnn::dataset_file_exists(path)) {
      std::cerr << "[cache] loading " << path << "\n";
      return gnn::load_dataset(path);
    }
    const auto& sc = scale();
    gnn::Dataset mixed;
    // Type I portion: reuse the front of the standard training set.
    const auto& base = train_set();
    const auto type1_count =
        std::min<std::size_t>(base.samples.size(),
                              static_cast<std::size_t>(sc.train_samples / 2));
    mixed.samples.assign(base.samples.begin(),
                         base.samples.begin() +
                             static_cast<std::ptrdiff_t>(type1_count));
    // In-domain portion: random placements of Table-VII problems.
    const int problem_count = sc.train_samples * 2 / 5;
    std::cerr << "[cache] labeling " << problem_count
              << " Table-VII placements -> " << path << "\n";
    support::Rng rng(909090);
    for (int n = 0; n < problem_count; ++n) {
      const auto params = edge::PlacementProblemParams::paper(
          20 + 20 * static_cast<int>(rng.uniform_int(0, 5)));
      auto sys = edge::generate_placement_problem(params, rng);
      auto placement = edge::random_placement(sys, rng);
      gnn::LabelingConfig lc;
      lc.arrivals_per_chain = sc.arrivals_per_chain / 2.0;
      lc.seed = rng();
      mixed.samples.push_back(
          gnn::label_sample(std::move(sys), std::move(placement), lc));
    }
    gnn::save_dataset(mixed, path);
    return mixed;
  }();
  return ds;
}

const gnn::Dataset& validation_subset() {
  static const gnn::Dataset subset = [] {
    gnn::Dataset ds;
    const auto& full = test_type2();
    const auto n = std::min<std::size_t>(
        full.samples.size(),
        static_cast<std::size_t>(scale().curve_validation_samples));
    ds.samples.assign(full.samples.begin(),
                      full.samples.begin() + static_cast<std::ptrdiff_t>(n));
    return ds;
  }();
  return subset;
}

namespace {

std::uint64_t name_seed(const std::string& name) {
  std::uint64_t h = 1469598103934665603ULL;
  for (char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

std::unique_ptr<gnn::GraphModel> build_model(const std::string& name) {
  Rng rng(name_seed(name));
  const auto& sc = scale();
  // CHAINNET_DTYPE selects the numeric tier for every bench surrogate;
  // training/eval of the model is unaffected (the master weights stay f64).
  const tensor::DType tier = tensor::dtype_from_env(tensor::DType::kF64);

  const auto chainnet_with = [&](core::ChainNetConfig cfg) {
    cfg.hidden = sc.hidden;
    cfg.iterations = sc.chainnet_iterations;
    cfg.dtype = tier;
    return std::make_unique<core::ChainNet>(cfg, rng);
  };
  if (name == "chainnet" || name == "chainnet_search") {
    return chainnet_with(core::ChainNetConfig{});
  }
  // Hyperparameter-sweep variants (bench_sweep): override one knob each,
  // relative to the scale's default ChainNet.
  if (name == "chainnet_half_hidden") {
    core::ChainNetConfig cfg;
    cfg.hidden = std::max(4, sc.hidden / 2);
    cfg.iterations = sc.chainnet_iterations;
    cfg.dtype = tier;
    return std::make_unique<core::ChainNet>(cfg, rng);
  }
  if (name == "chainnet_half_iters") {
    core::ChainNetConfig cfg;
    cfg.hidden = sc.hidden;
    cfg.iterations = std::max(1, sc.chainnet_iterations / 2);
    cfg.dtype = tier;
    return std::make_unique<core::ChainNet>(cfg, rng);
  }
  if (name == "chainnet_single_iter") {
    core::ChainNetConfig cfg;
    cfg.hidden = sc.hidden;
    cfg.iterations = 1;
    cfg.dtype = tier;
    return std::make_unique<core::ChainNet>(cfg, rng);
  }
  if (name == "chainnet_alpha") {
    return chainnet_with(core::ChainNetConfig::ablation_alpha());
  }
  if (name == "chainnet_beta") {
    return chainnet_with(core::ChainNetConfig::ablation_beta());
  }
  if (name == "chainnet_delta") {
    return chainnet_with(core::ChainNetConfig::ablation_delta());
  }
  if (name == "chainnet_noattn") {
    core::ChainNetConfig cfg;
    cfg.attention_aggregation = false;
    return chainnet_with(cfg);
  }

  gnn::BaselineConfig cfg;
  cfg.hidden = sc.hidden;
  cfg.heads = 2;
  cfg.mode = name.find("star") != std::string::npos
                 ? edge::FeatureMode::kOriginal
                 : edge::FeatureMode::kModified;
  cfg.head = name.find("_lat") != std::string::npos
                 ? gnn::PredictionHead::kLatency
                 : gnn::PredictionHead::kThroughput;
  if (name.rfind("gat", 0) == 0) {
    cfg.layers = sc.gat_layers;
    return std::make_unique<gnn::Gat>(cfg, rng);
  }
  if (name.rfind("gin", 0) == 0) {
    cfg.layers = sc.gin_layers;
    return std::make_unique<gnn::Gin>(cfg, rng);
  }
  if (name.rfind("gcn", 0) == 0) {
    cfg.layers = sc.gat_layers;
    return std::make_unique<gnn::Gcn>(cfg, rng);
  }
  throw std::invalid_argument("bench: unknown model name '" + name + "'");
}

bool wants_validation_curve(const std::string& name) {
  return name.rfind("chainnet", 0) == 0 && name != "chainnet_search";
}

/// The fig14/fig15 search surrogate trains on the mixed in-domain set; all
/// accuracy-bench models train on the paper's Type-I set.
bool wants_search_data(const std::string& name) {
  return name.find("_search") != std::string::npos;
}

struct TrainedModel {
  std::unique_ptr<gnn::GraphModel> model;
  std::vector<std::pair<double, double>> curves;
};

void save_curves(const std::string& path,
                 const std::vector<std::pair<double, double>>& curves) {
  std::ofstream out(path);
  out << "epoch,train_loss,val_loss\n";
  for (std::size_t e = 0; e < curves.size(); ++e) {
    out << e << ',' << curves[e].first << ',' << curves[e].second << '\n';
  }
}

std::vector<std::pair<double, double>> load_curves(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::pair<double, double>> curves;
  std::string line;
  std::getline(in, line);  // header
  while (std::getline(in, line)) {
    std::istringstream ls(line);
    std::string epoch, train, val;
    std::getline(ls, epoch, ',');
    std::getline(ls, train, ',');
    std::getline(ls, val, ',');
    curves.emplace_back(std::stod(train), std::stod(val));
  }
  return curves;
}

TrainedModel& trained(const std::string& name) {
  static std::map<std::string, TrainedModel> registry;
  auto it = registry.find(name);
  if (it != registry.end()) return it->second;

  TrainedModel entry;
  entry.model = build_model(name);
  const std::string weights = cache_dir() + "/model_" + name + ".bin";
  const std::string curves = cache_dir() + "/curves_" + name + ".csv";
  if (tensor::is_parameter_file(weights)) {
    std::cerr << "[cache] loading weights " << weights << "\n";
    tensor::load_parameters(*entry.model, weights);
    if (std::filesystem::exists(curves)) entry.curves = load_curves(curves);
  } else {
    const auto& sc = scale();
    gnn::TrainConfig tc;
    tc.epochs = sc.epochs;
    tc.batch_size = sc.batch_size;
    tc.seed = name_seed(name) ^ 0xbeef;
    const gnn::Dataset& data =
        wants_search_data(name) ? search_train_set() : train_set();
    std::cerr << "[train] " << entry.model->name() << " ("
              << entry.model->parameter_count() << " params, " << sc.epochs
              << " epochs on " << data.size() << " samples"
              << (wants_search_data(name) ? ", mixed search set" : "")
              << ")\n";
    const gnn::Dataset* val =
        wants_validation_curve(name) ? &validation_subset() : nullptr;
    const auto report = gnn::train(*entry.model, data, val, tc);
    std::cerr << "[train] done in " << report.seconds << "s, final loss "
              << report.train_loss.back() << "\n";
    for (std::size_t e = 0; e < report.train_loss.size(); ++e) {
      entry.curves.emplace_back(
          report.train_loss[e],
          e < report.val_loss.size()
              ? report.val_loss[e]
              : std::numeric_limits<double>::quiet_NaN());
    }
    tensor::save_parameters(*entry.model, weights);
    save_curves(curves, entry.curves);
  }
  return registry.emplace(name, std::move(entry)).first->second;
}

}  // namespace

gnn::GraphModel& model(const std::string& name) {
  return *trained(name).model;
}

std::vector<std::pair<double, double>> loss_curves(const std::string& name) {
  return trained(name).curves;
}

void print_header(const std::string& title) {
  const auto& sc = scale();
  std::cout << "\n################################################\n"
            << "# " << title << "\n"
            << "# scale=" << sc.name << " (CHAINNET_SCALE; paper values in"
            << " parentheses)\n"
            << "# hidden=" << sc.hidden << " (64), iterations="
            << sc.chainnet_iterations << " (8), gat_layers=" << sc.gat_layers
            << " (8), gin_layers=" << sc.gin_layers << " (12)\n"
            << "# epochs=" << sc.epochs << " (200), batch=" << sc.batch_size
            << " (128), adam lr=1e-3 decay 10%/10 epochs (Table IV)\n"
            << "# train=" << sc.train_samples << " (50000), testI="
            << sc.test1_samples << " (10000), testII=" << sc.test2_samples
            << " (10000)\n"
            << "################################################\n";
}

}  // namespace chainnet::bench
