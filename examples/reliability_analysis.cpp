// Link-reliability what-if analysis (the paper's §X link-failure
// extension): sweep the per-hop transmission failure probability of a
// deployed chain and compare the simulated end-to-end delivery rate with
// the independence prediction (1 - q)^hops, then show how failures
// interact with buffer loss at a congested hop.
//
// Usage: ./build/examples/reliability_analysis [hops]
#include <cmath>
#include <cstdlib>
#include <iostream>

#include "queueing/network.h"
#include "queueing/simulator.h"
#include "support/table.h"

using namespace chainnet;

namespace {

queueing::QnModel chain_with_failures(int hops, double per_hop_failure,
                                      double bottleneck_capacity) {
  queueing::QnModel qn;
  queueing::ChainSpec chain;
  chain.name = "pipeline";
  chain.interarrival = std::make_unique<support::Exponential>(1.0);
  for (int h = 0; h < hops; ++h) {
    const bool bottleneck = h == hops - 1;
    qn.stations.push_back({"hop" + std::to_string(h),
                           bottleneck ? bottleneck_capacity : 1e6});
    // Transmission into every hop after the first can fail.
    chain.steps.emplace_back(h,
                             std::make_unique<support::Exponential>(
                                 bottleneck ? 0.6 : 0.1),
                             1.0, /*exit=*/0.0,
                             /*link failure=*/h == 0 ? 0.0 : per_hop_failure);
  }
  qn.chains.push_back(std::move(chain));
  return qn;
}

}  // namespace

int main(int argc, char** argv) {
  const int hops = argc > 1 ? std::atoi(argv[1]) : 4;
  queueing::SimConfig cfg;
  cfg.horizon = 100000.0;
  cfg.seed = 31;

  // Part 1: failures only (huge buffers): delivery = (1-q)^(hops-1).
  support::Table independent(
      {"per-hop failure", "simulated delivery", "(1-q)^(h-1)"});
  for (const double q : {0.0, 0.01, 0.05, 0.1, 0.2}) {
    const auto qn = chain_with_failures(hops, q, 1e6);
    const auto r = queueing::simulate(qn, cfg);
    independent.add_row(
        {support::Table::num(q, 2),
         support::Table::num(1.0 - r.chains[0].loss_probability, 4),
         support::Table::num(std::pow(1.0 - q, hops - 1), 4)});
  }
  independent.print(std::cout,
                    "Link failures, uncongested (independence law holds)");

  // Part 2: failures + a congested final hop. Counter-intuitively, link
  // failures upstream *relieve* the bottleneck, so total loss grows less
  // than additively.
  support::Table congested({"per-hop failure", "total loss",
                            "link loss alone", "buffer loss alone"});
  const auto buffer_only = queueing::simulate(
      chain_with_failures(hops, 0.0, 4.0), cfg);
  for (const double q : {0.0, 0.05, 0.1, 0.2}) {
    const auto r =
        queueing::simulate(chain_with_failures(hops, q, 4.0), cfg);
    congested.add_row(
        {support::Table::num(q, 2),
         support::Table::num(r.chains[0].loss_probability, 4),
         support::Table::num(1.0 - std::pow(1.0 - q, hops - 1), 4),
         support::Table::num(buffer_only.chains[0].loss_probability, 4)});
  }
  congested.print(std::cout, "Link failures + congested final hop");
  std::cout << "\nReading: with a congested hop, total loss is less than "
               "the sum of the two\nmechanisms — upstream failures thin the "
               "flow into the bottleneck. Loss-aware\nplanning must model "
               "the interaction, not add the factors (paper SX).\n";
  return 0;
}
