// Capacity planning with the queueing substrate: for a fixed portfolio of
// AI services, sweep the device-fleet size and report the achievable loss
// probability, answering "how many edge devices do we need to keep data
// loss under X%?" — a design question the paper's loss-aware methodology
// enables beyond single-placement optimization.
//
// Usage: ./build/examples/capacity_planning [target_loss]
#include <cstdlib>
#include <iostream>

#include "edge/problem.h"
#include "optim/annealing.h"
#include "optim/evaluator.h"
#include "optim/experiment.h"
#include "optim/initial.h"
#include "support/rng.h"
#include "support/table.h"

using namespace chainnet;

namespace {

/// A fixed service portfolio: six chains with mixed sizes and loads.
edge::EdgeSystem portfolio_with_devices(int num_devices,
                                        support::Rng& rng) {
  edge::EdgeSystem sys;
  support::Uniform rate(0.5, 1.0);
  for (int k = 0; k < num_devices; ++k) {
    sys.devices.push_back(
        {"dev" + std::to_string(k), 100.0, rate.sample(rng)});
  }
  const struct {
    const char* name;
    double lambda;
    int fragments;
    double work;
  } services[] = {
      {"vision-a", 2.0, 5, 0.20}, {"vision-b", 1.5, 4, 0.15},
      {"nlp-a", 3.0, 3, 0.12},    {"nlp-b", 1.0, 6, 0.18},
      {"audio", 4.0, 2, 0.10},    {"telemetry", 6.0, 2, 0.05},
  };
  for (const auto& svc : services) {
    edge::ServiceChainSpec chain;
    chain.name = svc.name;
    chain.arrival_rate = svc.lambda;
    for (int j = 0; j < svc.fragments; ++j) {
      chain.fragments.push_back({1.0, svc.work});
    }
    sys.chains.push_back(chain);
  }
  return sys;
}

}  // namespace

int main(int argc, char** argv) {
  const double target_loss = argc > 1 ? std::atof(argv[1]) : 0.05;
  std::cout << "target loss probability: " << target_loss << "\n";

  support::Table table({"devices", "initial loss", "optimized loss",
                        "meets target"});
  int recommended = -1;
  for (const int d : {8, 10, 14, 20, 28}) {
    support::Rng rng(99);  // same rates across sweep points
    const auto sys = portfolio_with_devices(d, rng);
    const auto initial = optim::initial_placement(sys);

    queueing::SimConfig eval_cfg;
    eval_cfg.horizon = 400.0;
    optim::SimulationEvaluator evaluator(eval_cfg);
    optim::SaConfig sa;
    sa.max_steps = 60;
    const auto result = optim::anneal_trials(sys, initial, evaluator, sa, 2);

    queueing::SimConfig ref;
    ref.horizon = 4000.0;
    const double x0 = optim::simulated_total_throughput(sys, initial, ref);
    const double x1 =
        optim::simulated_total_throughput(sys, result.best, ref);
    const double loss0 = optim::loss_probability(sys, x0);
    const double loss1 = optim::loss_probability(sys, x1);
    const bool ok = loss1 <= target_loss;
    if (ok && recommended < 0) recommended = d;
    table.add_row({std::to_string(d), support::Table::num(loss0, 3),
                   support::Table::num(loss1, 3), ok ? "yes" : "no"});
  }
  table.print(std::cout, "Fleet-size sweep");
  if (recommended > 0) {
    std::cout << "\nsmallest fleet meeting the target: " << recommended
              << " devices\n";
  } else {
    std::cout << "\nno swept fleet size meets the target; add devices or "
                 "reduce load\n";
  }
  return 0;
}
