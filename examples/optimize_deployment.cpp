// Loss-aware deployment optimization (the paper's Fig. 3 workflow): train a
// ChainNet surrogate, then drive simulated annealing with it to place 12
// service chains on a fleet of devices, and verify the win by simulation.
//
// Usage: ./build/examples/optimize_deployment [num_devices] [sa_steps]
#include <cstdlib>
#include <iostream>

#include "core/chainnet.h"
#include "core/surrogate.h"
#include "edge/problem.h"
#include "gnn/dataset.h"
#include "gnn/trainer.h"
#include "optim/annealing.h"
#include "optim/evaluator.h"
#include "optim/experiment.h"
#include "optim/initial.h"
#include "support/rng.h"

using namespace chainnet;

int main(int argc, char** argv) {
  const int num_devices = argc > 1 ? std::atoi(argv[1]) : 20;
  const int sa_steps = argc > 2 ? std::atoi(argv[2]) : 100;

  // 1. A placement problem in the style of Table VII.
  support::Rng problem_rng(42);
  const auto system = edge::generate_placement_problem(
      edge::PlacementProblemParams::paper(num_devices), problem_rng);
  std::cout << "problem: " << system.num_chains() << " chains / "
            << system.total_fragments() << " fragments on "
            << system.num_devices() << " devices, lambda_total="
            << system.total_arrival_rate() << "/s\n";

  // 2. Train a compact surrogate. Lesson from the benches: to *rank* SA
  //    neighbors on problems of this shape, a small surrogate needs
  //    training data from the same placement family, so we mix Type-I
  //    samples with random placements of Table-VII-style problems. (A
  //    production deployment would reuse pre-trained weights; see
  //    tensor/serialize.h.)
  gnn::LabelingConfig labeling;
  labeling.arrivals_per_chain = 500.0;
  auto dataset =
      gnn::generate_dataset(edge::NetworkGenParams::type1(), 60, labeling, 3);
  support::Rng mix_rng(17);
  for (int n = 0; n < 80; ++n) {
    auto sys = edge::generate_placement_problem(
        edge::PlacementProblemParams::paper(num_devices), mix_rng);
    auto placement = edge::random_placement(sys, mix_rng);
    gnn::LabelingConfig lc = labeling;
    lc.seed = mix_rng();
    dataset.samples.push_back(
        gnn::label_sample(std::move(sys), std::move(placement), lc));
  }
  support::Rng rng(5);
  core::ChainNetConfig cfg;
  cfg.hidden = 24;
  cfg.iterations = 3;
  core::ChainNet model(cfg, rng);
  gnn::TrainConfig tc;
  tc.epochs = 30;
  std::cout << "training surrogate on " << dataset.size()
            << " simulated deployments...\n";
  gnn::train(model, dataset, nullptr, tc);

  // 3. Optimize with the surrogate in the SA loop.
  const auto initial = optim::initial_placement(system);
  core::Surrogate surrogate(model);
  optim::SurrogateEvaluator evaluator{surrogate};
  optim::SaConfig sa;
  sa.max_steps = sa_steps;
  const auto result = optim::anneal_trials(system, initial, evaluator, sa, 5);
  std::cout << "search: " << result.trials << " trials, "
            << result.evaluations << " surrogate evaluations in "
            << result.seconds << "s\n";

  // 4. Verify by simulation (post-processing, as the paper does).
  queueing::SimConfig ref;
  double max_ia = 0.0;
  for (const auto& chain : system.chains) {
    max_ia = std::max(max_ia, 1.0 / chain.arrival_rate);
  }
  ref.horizon = 2000.0 * max_ia;
  const double x0 = optim::simulated_total_throughput(system, initial, ref);
  const double x1 =
      optim::simulated_total_throughput(system, result.best, ref);
  std::cout << "loss probability: initial "
            << optim::loss_probability(system, x0) << " -> optimized "
            << optim::loss_probability(system, x1)
            << " (relative loss reduction "
            << optim::relative_loss_reduction(system, x0, x1) << ")\n";
  return 0;
}
