// Train a ChainNet surrogate and persist its weights for reuse (the
// serialize API): generate a Type-I dataset, train with the Table-IV
// recipe, report MAPE on held-out data, and write the weights file.
//
// Usage: ./build/examples/train_surrogate [out.bin] [samples] [epochs]
#include <cstdlib>
#include <iostream>

#include "core/chainnet.h"
#include "edge/problem.h"
#include "gnn/dataset.h"
#include "gnn/metrics.h"
#include "gnn/trainer.h"
#include "support/rng.h"
#include "tensor/serialize.h"

using namespace chainnet;

int main(int argc, char** argv) {
  const std::string out = argc > 1 ? argv[1] : "chainnet_weights.bin";
  const int samples = argc > 2 ? std::atoi(argv[2]) : 200;
  const int epochs = argc > 3 ? std::atoi(argv[3]) : 25;

  gnn::LabelingConfig labeling;
  labeling.arrivals_per_chain = 800.0;
  std::cout << "generating " << samples << " training and " << samples / 4
            << " test deployments (simulated ground truth)...\n";
  const auto train_ds = gnn::generate_dataset(
      edge::NetworkGenParams::type1(), samples, labeling, 11);
  const auto test_ds = gnn::generate_dataset(
      edge::NetworkGenParams::type1(), samples / 4, labeling, 22);

  support::Rng rng(33);
  core::ChainNetConfig cfg;  // paper-shape defaults, scaled hidden size
  cfg.hidden = 32;
  cfg.iterations = 4;
  core::ChainNet model(cfg, rng);

  gnn::TrainConfig tc;  // Table IV: Adam 1e-3, 10%/10-epoch decay
  tc.epochs = epochs;
  tc.batch_size = 32;
  tc.on_epoch = [](int epoch, double train_loss, double) {
    if (epoch % 5 == 0) {
      std::cout << "  epoch " << epoch << ": loss " << train_loss << "\n";
    }
  };
  std::cout << "training ChainNet (" << model.parameter_count()
            << " parameters)...\n";
  const auto report = gnn::train(model, train_ds, nullptr, tc);
  std::cout << "trained in " << report.seconds << "s\n";

  const auto errors = gnn::evaluate(model, test_ds);
  std::cout << "held-out MAPE: throughput "
            << gnn::summarize(gnn::throughput_apes(errors)).mape
            << ", latency "
            << gnn::summarize(gnn::latency_apes(errors)).mape << "\n";

  tensor::save_parameters(model, out);
  std::cout << "weights written to " << out << "\n";

  // Demonstrate reloading into a fresh model.
  support::Rng rng2(44);
  core::ChainNet reloaded(cfg, rng2);
  tensor::load_parameters(reloaded, out);
  const auto check = gnn::evaluate(reloaded, test_ds);
  std::cout << "reloaded model MAPE matches: "
            << gnn::summarize(gnn::throughput_apes(check)).mape << "\n";
  return 0;
}
