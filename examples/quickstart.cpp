// Quickstart: the whole ChainNet workflow on a toy deployment in ~100
// lines — define an edge system, evaluate a placement with the queueing
// simulator, train a small ChainNet surrogate, and compare its predictions
// with the simulation ground truth.
//
// Build & run:  ./build/examples/quickstart
#include <iostream>

#include "core/chainnet.h"
#include "core/surrogate.h"
#include "edge/problem.h"
#include "edge/qn_mapping.h"
#include "gnn/dataset.h"
#include "gnn/metrics.h"
#include "gnn/trainer.h"
#include "optim/initial.h"
#include "queueing/simulator.h"
#include "support/rng.h"

using namespace chainnet;

int main() {
  // 1. Describe the deployment target: four devices, two AI service
  //    chains (e.g. a 3-fragment detector and a 2-fragment classifier).
  edge::EdgeSystem system;
  system.devices = {
      {"edge-a", 50.0, 1.0},
      {"edge-b", 50.0, 1.0},
      {"edge-c", 40.0, 2.0},
      {"edge-d", 60.0, 1.5},
  };
  edge::ServiceChainSpec detector;
  detector.name = "detector";
  detector.arrival_rate = 0.8;  // requests per second
  detector.fragments = {{1.0, 0.5}, {1.0, 0.7}, {1.0, 0.3}};
  edge::ServiceChainSpec classifier;
  classifier.name = "classifier";
  classifier.arrival_rate = 0.4;
  classifier.fragments = {{1.0, 0.2}, {1.0, 0.9}};
  system.chains = {detector, classifier};

  // 2. Pick a placement (here: the paper's ranking-score initialization)
  //    and get ground truth from the queueing simulator.
  const auto placement = optim::initial_placement(system);
  const auto qn = edge::build_qn(system, placement);
  queueing::SimConfig sim;
  sim.horizon = 20000.0;
  const auto truth = queueing::simulate(qn, sim);
  std::cout << "simulated ground truth:\n";
  for (std::size_t i = 0; i < truth.chains.size(); ++i) {
    std::cout << "  " << system.chains[i].name
              << ": throughput=" << truth.chains[i].throughput
              << "/s latency=" << truth.chains[i].mean_latency
              << "s loss=" << truth.chains[i].loss_probability << "\n";
  }

  // 3. Train a small ChainNet surrogate on randomly generated Type-I-style
  //    deployments (in production you would use bench-scale settings).
  gnn::LabelingConfig labeling;
  labeling.arrivals_per_chain = 500.0;
  auto gen = edge::NetworkGenParams::type1();
  const auto dataset = gnn::generate_dataset(gen, 120, labeling, 7);

  support::Rng rng(1);
  core::ChainNetConfig config;
  config.hidden = 16;
  config.iterations = 3;
  core::ChainNet model(config, rng);
  gnn::TrainConfig train_cfg;
  train_cfg.epochs = 25;
  train_cfg.batch_size = 16;
  std::cout << "\ntraining ChainNet (" << model.parameter_count()
            << " parameters) on " << dataset.size() << " samples...\n";
  const auto report = gnn::train(model, dataset, nullptr, train_cfg);
  std::cout << "final training loss: " << report.train_loss.back() << " in "
            << report.seconds << "s\n";

  // 4. Predict the toy placement with the surrogate and compare.
  core::Surrogate surrogate(model);
  const auto predictions = surrogate.predict(system, placement);
  std::cout << "\nsurrogate vs simulation:\n";
  for (std::size_t i = 0; i < predictions.size(); ++i) {
    std::cout << "  " << system.chains[i].name << ": X_pred="
              << predictions[i].throughput
              << " (sim " << truth.chains[i].throughput << "), L_pred="
              << predictions[i].latency << " (sim "
              << truth.chains[i].mean_latency << "), APE(X)="
              << gnn::ape(predictions[i].throughput,
                          truth.chains[i].throughput)
              << "\n";
  }
  return 0;
}
