// Early-exit DNN study (the paper's §X future-work scenario): an early-exit
// network lets some inputs complete at an intermediate fragment. This
// example uses the simulator's exit-probability extension to quantify how
// an early-exit head changes loss, latency and the memory pressure on
// downstream devices — a what-if analysis the loss-aware methodology makes
// cheap.
//
// Usage: ./build/examples/early_exit_study [arrival_rate]
#include <cstdlib>
#include <iostream>

#include "queueing/network.h"
#include "queueing/simulator.h"
#include "support/table.h"

using namespace chainnet;

namespace {

/// Three-stage early-exit classifier on three devices; the last device is
/// the bottleneck. `exit1` / `exit2` are the early-exit probabilities after
/// stages 1 and 2.
queueing::QnModel early_exit_model(double lambda, double exit1,
                                   double exit2) {
  queueing::QnModel qn;
  qn.stations.push_back({"edge-cam", 40.0});
  qn.stations.push_back({"edge-hub", 20.0});
  qn.stations.push_back({"edge-server", 6.0});  // tight memory
  queueing::ChainSpec chain;
  chain.name = "early-exit-classifier";
  chain.interarrival =
      std::make_unique<support::Exponential>(1.0 / lambda);
  chain.steps.emplace_back(0, std::make_unique<support::Exponential>(0.15),
                           1.0, exit1);
  chain.steps.emplace_back(1, std::make_unique<support::Exponential>(0.3),
                           2.0, exit2);
  chain.steps.emplace_back(2, std::make_unique<support::Exponential>(0.8),
                           3.0);
  qn.chains.push_back(std::move(chain));
  return qn;
}

}  // namespace

int main(int argc, char** argv) {
  const double lambda = argc > 1 ? std::atof(argv[1]) : 1.2;
  std::cout << "arrival rate: " << lambda << " jobs/s\n";

  support::Table table({"exit1", "exit2", "loss prob", "mean latency",
                        "server mem used", "throughput"});
  queueing::SimConfig cfg;
  cfg.horizon = 100000.0;
  cfg.seed = 21;
  for (const auto& [e1, e2] :
       {std::pair{0.0, 0.0}, {0.2, 0.0}, {0.2, 0.3}, {0.4, 0.4},
        {0.6, 0.5}}) {
    const auto qn = early_exit_model(lambda, e1, e2);
    const auto r = queueing::simulate(qn, cfg);
    table.add_row({support::Table::num(e1, 1), support::Table::num(e2, 1),
                   support::Table::num(r.chains[0].loss_probability, 3),
                   support::Table::num(r.chains[0].mean_latency, 2),
                   support::Table::num(r.stations[2].mean_memory_used, 2),
                   support::Table::num(r.chains[0].throughput, 3)});
  }
  table.print(std::cout, "Early-exit sweep");
  std::cout << "\nReading: higher exit rates shed load from the "
               "memory-tight server, cutting\nboth loss and latency — the "
               "accuracy/dependability trade-off an early-exit\ndesigner "
               "must balance.\n";
  return 0;
}
