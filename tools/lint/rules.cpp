#include "rules.h"

#include <algorithm>
#include <array>

namespace chainnet::lint {

namespace {

const std::set<std::string>& guard_classes() {
  static const std::set<std::string> kGuards = {
      "lock_guard", "unique_lock", "shared_lock", "scoped_lock"};
  return kGuards;
}

const std::set<std::string>& manual_lock_methods() {
  static const std::set<std::string> kMethods = {
      "lock",          "unlock",          "try_lock",       "try_lock_for",
      "try_lock_until", "lock_shared",    "unlock_shared",
      "try_lock_shared"};
  return kMethods;
}

const std::set<std::string>& tensor_private_symbols() {
  static const std::set<std::string> kSymbols = {
      "gemv_blocked", "gemm_row_tile", "gemm_row_col", "tile_scratch",
      "tile_scratch_f32"};
  return kSymbols;
}

// R7: entry points of the interpreted Algorithm-2 graph walk. Production
// forwards replay compiled plans (gnn/plan.h); the walk survives only as
// the parity reference, so calls are confined to the reference executor
// and the plan compiler.
const std::set<std::string>& interpret_entry_points() {
  static const std::set<std::string> kEntryPoints = {
      "forward_values_interpreted", "forward_values_batch_interpreted",
      "run_values_interpreted", "run_values_batch_interpreted"};
  return kEntryPoints;
}

/// File stems allowed to touch the interpreted walk: chainnet.{h,cpp}
/// (declares the entry points and hosts the reference executor) and
/// plan_compiler.{h,cpp} (walks topology at compile time).
const std::set<std::string>& interpret_allowed_stems() {
  static const std::set<std::string> kStems = {"chainnet", "plan_compiler"};
  return kStems;
}

const std::set<std::string>& malloc_family() {
  static const std::set<std::string> kFns = {
      "malloc", "calloc", "realloc", "aligned_alloc", "free", "strdup"};
  return kFns;
}

std::string dirname_of(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? std::string(".") : path.substr(0, slash);
}

std::string basename_of(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

std::string stem_of(const std::string& path) {
  const std::string base = basename_of(path);
  const std::size_t dot = base.find_last_of('.');
  return dot == std::string::npos ? base : base.substr(0, dot);
}

std::string registry_key(const std::string& path) {
  return dirname_of(path) + "/" + stem_of(path);
}

bool path_has_component(const std::string& path, const std::string& comp) {
  std::size_t start = 0;
  while (start <= path.size()) {
    const std::size_t slash = path.find('/', start);
    const std::size_t end = slash == std::string::npos ? path.size() : slash;
    if (path.compare(start, end - start, comp) == 0) return true;
    if (slash == std::string::npos) break;
    start = slash + 1;
  }
  return false;
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// A RAII guard constructed somewhere in the current scope chain, with the
/// (dot-normalized) names it was handed. Both the full chain ("shard.mutex")
/// and the final component ("mutex") are stored, so a GUARDED_BY(mutex)
/// annotation matches a guard on any object's `mutex` field.
struct GuardScope {
  int depth = 0;
  std::set<std::string> names;
};

/// Collects the argument identifiers of a guard construction, normalizing
/// member chains: `this->mu_` -> "mu_", `shard->mutex` -> "shard.mutex" plus
/// "mutex". `first` indexes the opening '(' or '{'; returns the index of the
/// matching close (or the last token).
std::size_t collect_guard_args(const std::vector<Token>& toks,
                               std::size_t first,
                               std::set<std::string>& names) {
  const std::string open = toks[first].text;
  const std::string close = open == "(" ? ")" : "}";
  int depth = 0;
  std::vector<std::string> parts;
  auto flush = [&]() {
    if (parts.empty()) return;
    if (parts.front() == "this") parts.erase(parts.begin());
    if (parts.empty() || parts.front() == "std") {
      parts.clear();
      return;
    }
    std::string full = parts.front();
    for (std::size_t p = 1; p < parts.size(); ++p) full += "." + parts[p];
    names.insert(full);
    names.insert(parts.back());
    parts.clear();
  };
  std::size_t i = first;
  for (; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind == TokKind::kPunct) {
      if (t.text == open || (open == "(" && t.text == "{")) {
        ++depth;
        continue;
      }
      if (t.text == close || (open == "(" && t.text == "}")) {
        if (--depth == 0) break;
        continue;
      }
      if (t.text == "." || t.text == "->" || t.text == "::") continue;
      flush();
      continue;
    }
    if (t.kind == TokKind::kIdentifier) {
      parts.push_back(t.text);
    }
  }
  flush();
  return i;
}

/// Skips a balanced template-argument list starting at `i` (which must index
/// '<'). Returns the index one past the closing '>'. Treats '>>' as two
/// closes (C++11 semantics).
std::size_t skip_angles(const std::vector<Token>& toks, std::size_t i) {
  int depth = 0;
  for (; i < toks.size(); ++i) {
    const std::string& t = toks[i].text;
    if (t == "<") {
      ++depth;
    } else if (t == ">") {
      if (--depth == 0) return i + 1;
    } else if (t == ">>") {
      depth -= 2;
      if (depth <= 0) return i + 1;
    } else if (t == ";" || t == "{" || t == "}") {
      return i;  // not a template-arg list after all; bail out
    }
  }
  return i;
}

/// Steps backwards over a `ns :: ns :: name` qualification chain ending
/// just before `idx`, returning the index of the token preceding the whole
/// chain (or npos when the chain starts the stream).
std::size_t before_qualifiers(const std::vector<Token>& toks,
                              std::size_t idx) {
  std::size_t p = idx;
  while (p >= 2 && toks[p - 1].text == "::" &&
         toks[p - 2].kind == TokKind::kIdentifier) {
    p -= 2;
  }
  return p == 0 ? std::string::npos : p - 1;
}

}  // namespace

void Linter::add_file(FileLex lex) {
  FileInfo info;
  info.lex = std::move(lex);
  info.in_tensor = path_has_component(info.lex.path, "tensor");
  for (const Comment& c : info.lex.comments) {
    auto& slot = info.comment_by_line[c.line];
    if (!slot.empty()) slot += ' ';
    slot += c.text;
    if (c.text.find("LINT:counters") != std::string::npos) {
      info.tag_counters = true;
    }
    if (c.text.find("LINT:allocator") != std::string::npos) {
      info.tag_allocator = true;
    }
  }
  register_annotations(info);
  files_.push_back(std::move(info));
}

void Linter::register_annotations(FileInfo& info) {
  const std::vector<Token>& toks = info.lex.tokens;
  for (const Comment& c : info.lex.comments) {
    const std::size_t at = c.text.find("GUARDED_BY(");
    if (at == std::string::npos) continue;
    const std::size_t open = at + std::string("GUARDED_BY").size();
    const std::size_t close = c.text.find(')', open);
    if (close == std::string::npos) continue;
    std::string mutex = c.text.substr(open + 1, close - open - 1);
    if (mutex.empty()) continue;
    // The annotated declaration is on the comment's own line (trailing
    // comment) or, for a comment on its own line, the line below.
    for (const int line : {c.line, c.line + 1}) {
      std::string member;
      bool saw_tokens = false;
      for (const Token& t : toks) {
        if (t.line < line) continue;
        if (t.line > line) break;
        saw_tokens = true;
        if (t.kind == TokKind::kIdentifier) {
          member = t.text;
        } else if (t.text == "=" || t.text == "{" || t.text == ";") {
          break;  // past the declarator
        }
      }
      if (!saw_tokens) continue;
      if (!member.empty()) {
        registry_[registry_key(info.lex.path)].push_back({member, mutex});
        info.annotation_lines.insert(line);
      }
      break;
    }
  }
}

bool Linter::waived(const FileInfo& info, int line, const std::string& kind) {
  // A waiver covers the line it ends on and the line directly below, and
  // may wrap: the comment on `line` is joined with the contiguous run of
  // commented lines above it before searching.
  std::vector<const std::string*> parts;
  if (const auto it = info.comment_by_line.find(line);
      it != info.comment_by_line.end()) {
    parts.push_back(&it->second);
  }
  for (int l = line - 1; l > 0; --l) {
    const auto it = info.comment_by_line.find(l);
    if (it == info.comment_by_line.end()) break;
    parts.push_back(&it->second);
  }
  std::string joined;
  for (auto rit = parts.rbegin(); rit != parts.rend(); ++rit) {
    joined += **rit;
    joined += ' ';
  }
  const std::string needle = "LINT:" + kind + "(";
  const std::size_t at = joined.find(needle);
  if (at == std::string::npos) return false;
  const std::size_t close = joined.find(')', at + needle.size());
  // A waiver must state a reason; an empty one does not count.
  return close != std::string::npos && close > at + needle.size();
}

void Linter::check_file(const FileInfo& info,
                        std::vector<Finding>& out) const {
  const std::vector<Token>& toks = info.lex.tokens;
  const std::string& path = info.lex.path;

  // Annotations binding in this file: its own plus same-stem siblings'.
  std::map<std::string, std::string> guarded;  // member -> mutex
  const auto reg = registry_.find(registry_key(path));
  if (reg != registry_.end()) {
    for (const Annotation& a : reg->second) guarded[a.member] = a.mutex;
  }

  // R5: private-kernel includes.
  if (!info.in_tensor) {
    for (const Include& inc : info.lex.includes) {
      if (ends_with(inc.target, "kernels_simd.inc") ||
          ends_with(inc.target, "kernels_simd_f32.inc") ||
          ends_with(inc.target, "kernels_dispatch.h")) {
        out.push_back({path, inc.line, "R5-kernel-routing",
                       "'" + inc.target +
                           "' is private to src/tensor/; call the dispatched "
                           "kernels::gemv/gemm API from tensor/kernels.h"});
      }
    }
  }

  int depth = 0;
  std::vector<GuardScope> guards;
  auto holds = [&](const std::string& mutex) {
    return std::any_of(guards.begin(), guards.end(),
                       [&](const GuardScope& g) {
                         return g.names.count(mutex) != 0;
                       });
  };

  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind == TokKind::kPunct) {
      if (t.text == "{") {
        ++depth;
      } else if (t.text == "}") {
        depth = std::max(0, depth - 1);
        while (!guards.empty() && guards.back().depth > depth) {
          guards.pop_back();
        }
      }
      continue;
    }
    if (t.kind != TokKind::kIdentifier) continue;
    const std::string& id = t.text;
    const std::string prev = i > 0 ? toks[i - 1].text : std::string();
    const std::string next = i + 1 < toks.size() ? toks[i + 1].text
                                                 : std::string();

    // --- Guard constructions (feeds R2) & guard temporaries (R1). -------
    if (guard_classes().count(id) != 0) {
      std::size_t j = i + 1;
      if (j < toks.size() && toks[j].text == "<") j = skip_angles(toks, j);
      if (j < toks.size() && toks[j].kind == TokKind::kIdentifier &&
          j + 1 < toks.size() &&
          (toks[j + 1].text == "(" || toks[j + 1].text == "{")) {
        // `std::lock_guard<std::mutex> name(mu);`
        GuardScope scope;
        scope.depth = depth;
        i = collect_guard_args(toks, j + 1, scope.names);
        guards.push_back(std::move(scope));
        continue;
      }
      if (j < toks.size() && (toks[j].text == "(" || toks[j].text == "{")) {
        // `std::unique_lock<std::mutex>(mu)` — bound (auto lk = ...) or a
        // self-destructing temporary. Only the binding forms are legal.
        const std::size_t before = before_qualifiers(toks, i);
        const std::string lead =
            before == std::string::npos ? std::string() : toks[before].text;
        GuardScope scope;
        scope.depth = depth;
        i = collect_guard_args(toks, j, scope.names);
        if (lead == "=" || lead == "return" || lead == "(" || lead == ",") {
          guards.push_back(std::move(scope));
        } else {
          out.push_back(
              {path, t.line, "R1-lock-discipline",
               "lock guard temporary is destroyed at the end of the "
               "statement; bind it to a named local"});
        }
        continue;
      }
      continue;
    }

    // --- R1: naked .lock()/.unlock() et al. -----------------------------
    if ((prev == "." || prev == "->") &&
        manual_lock_methods().count(id) != 0 && next == "(") {
      if (!waived(info, t.line, "manual-lock")) {
        out.push_back(
            {path, t.line, "R1-lock-discipline",
             "naked '." + id +
                 "()'; acquire through lock_guard/unique_lock/scoped_lock "
                 "or waive with // LINT:manual-lock(why)"});
      }
      continue;
    }

    // --- R3: relaxed atomics only in counter files. ---------------------
    if (id == "memory_order_relaxed" && !info.tag_counters) {
      out.push_back({path, t.line, "R3-relaxed-atomic",
                     "memory_order_relaxed outside a // LINT:counters file; "
                     "use acquire/release or tag the file"});
      continue;
    }

    // --- R4: Tape::Frame must bind to a named local; no new Tape. -------
    if (id == "Frame" && prev == "::" && i >= 2 &&
        toks[i - 2].text == "Tape" && (next == "(" || next == "{")) {
      out.push_back({path, t.line, "R4-tape-frame",
                     "'Tape::Frame(...)' temporary releases its mark at the "
                     "semicolon and scopes nothing; bind it to a named "
                     "local"});
      continue;
    }
    if (id == "new" && prev != "operator") {
      // Resolve `new [ns::]*Type` to see whether the type is tape-related.
      std::size_t j = i + 1;
      std::string last;
      while (j < toks.size() && toks[j].kind == TokKind::kIdentifier) {
        last = toks[j].text;
        if (j + 1 < toks.size() && toks[j + 1].text == "::") {
          j += 2;
          continue;
        }
        break;
      }
      if (last == "Tape" || last == "Frame") {
        out.push_back({path, t.line, "R4-tape-frame",
                       "'new " + last +
                           "' is forbidden; tapes are per-thread "
                           "(Tape::current()) and frames are stack-owned"});
        continue;
      }
      if (!info.tag_allocator) {
        out.push_back({path, t.line, "R6-allocation",
                       "naked 'new' outside the arena internals; use "
                       "make_unique/make_shared or a tape arena"});
      }
      continue;
    }

    // --- R5: internal kernel symbols are tensor-private. ----------------
    if (!info.in_tensor) {
      if (tensor_private_symbols().count(id) != 0) {
        out.push_back({path, t.line, "R5-kernel-routing",
                       "'" + id +
                           "' bypasses the fixed accumulation-order regime; "
                           "only src/tensor/ may call internal kernels — use "
                           "kernels::gemv/gemm"});
        continue;
      }
      if (id == "detail" && prev == "::" && i >= 2 &&
          toks[i - 2].text == "kernels") {
        out.push_back({path, t.line, "R5-kernel-routing",
                       "'kernels::detail' is private to src/tensor/; use the "
                       "dispatched kernels::gemv/gemm API"});
        continue;
      }
    }

    // --- R6: malloc family. ---------------------------------------------
    if (!info.tag_allocator && malloc_family().count(id) != 0 &&
        next == "(" && prev != "." && prev != "->") {
      out.push_back({path, t.line, "R6-allocation",
                     "'" + id +
                         "()' is forbidden outside the arena internals; use "
                         "standard containers or a tape arena"});
      continue;
    }

    // --- R7: interpreted graph walks are reference/compiler-only. -------
    if (interpret_entry_points().count(id) != 0 && next == "(" &&
        interpret_allowed_stems().count(stem_of(path)) == 0) {
      if (!waived(info, t.line, "interpret")) {
        out.push_back(
            {path, t.line, "R7-plan-discipline",
             "'" + id +
                 "()' walks the graph interpretively; production forwards "
                 "replay compiled plans — call forward_values/"
                 "forward_values_batch, or waive a parity or debug use "
                 "with // LINT:interpret(why)"});
      }
      continue;
    }

    // --- R2: guarded members need a guard in lexical scope. -------------
    const auto g = guarded.find(id);
    if (g != guarded.end() && prev != "::" &&
        info.annotation_lines.count(t.line) == 0) {
      if (!holds(g->second) && !waived(info, t.line, "unguarded")) {
        out.push_back({path, t.line, "R2-guarded-member",
                       "'" + id + "' is GUARDED_BY(" + g->second +
                           ") but no guard on '" + g->second +
                           "' is in scope; take a lock or waive with "
                           "// LINT:unguarded(why)"});
      }
    }
  }
}

std::vector<Finding> Linter::run() {
  std::vector<Finding> findings;
  for (const FileInfo& info : files_) check_file(info, findings);
  std::sort(findings.begin(), findings.end());
  findings.erase(std::unique(findings.begin(), findings.end()),
                 findings.end());
  return findings;
}

}  // namespace chainnet::lint
