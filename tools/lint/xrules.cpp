#include "xrules.h"

#include <algorithm>
#include <deque>
#include <sstream>

namespace chainnet::lint {

namespace {

// ---------------------------------------------------------------------------
// Layer spec
// ---------------------------------------------------------------------------

std::string trim(const std::string& s) {
  std::size_t a = 0, b = s.size();
  while (a < b && std::isspace(static_cast<unsigned char>(s[a]))) ++a;
  while (b > a && std::isspace(static_cast<unsigned char>(s[b - 1]))) --b;
  return s.substr(a, b - a);
}

std::vector<std::string> split_ws(const std::string& s) {
  std::vector<std::string> out;
  std::istringstream in(s);
  std::string word;
  while (in >> word) out.push_back(word);
  return out;
}

/// Reflexive-transitive closure of one module's deps; detects spec cycles.
bool close_over(const LayerSpec& spec, const std::string& mod,
                std::set<std::string>& out, std::set<std::string>& path) {
  if (!path.insert(mod).second) return false;  // dependency cycle
  out.insert(mod);
  const auto it = spec.deps.find(mod);
  if (it != spec.deps.end()) {
    for (const std::string& dep : it->second) {
      if (out.count(dep) == 0 || path.count(dep) != 0) {
        if (!close_over(spec, dep, out, path)) return false;
      }
    }
  }
  path.erase(mod);
  return true;
}

// ---------------------------------------------------------------------------
// Blocking-operation classification (R10)
// ---------------------------------------------------------------------------

/// Call names that block on the network, the disk, the OS, or the oracle.
/// `read`/`write`/`bind`/`getline` are deliberately absent: they collide
/// with std:: and stream utilities and the codebase does raw fd I/O through
/// the names below.
const std::map<std::string, std::string>& blocking_calls() {
  static const std::map<std::string, std::string> kCalls = {
      {"recv", "socket I/O"},        {"send", "socket I/O"},
      {"accept", "socket I/O"},      {"connect", "socket I/O"},
      {"poll", "socket I/O"},        {"select", "socket I/O"},
      {"listen", "socket I/O"},      {"getaddrinfo", "name resolution"},
      {"fopen", "file I/O"},         {"fread", "file I/O"},
      {"fwrite", "file I/O"},        {"fclose", "file I/O"},
      {"fflush", "file I/O"},        {"popen", "subprocess I/O"},
      {"pclose", "subprocess I/O"},  {"system", "subprocess I/O"},
      {"sleep_for", "sleep"},        {"sleep_until", "sleep"},
      {"usleep", "sleep"},           {"nanosleep", "sleep"},
      {"evaluate", "oracle evaluation"},
      {"evaluate_batch", "oracle evaluation"},
      {"join", "thread join"},
  };
  return kCalls;
}

const std::set<std::string>& cv_wait_names() {
  static const std::set<std::string> kNames = {"wait", "wait_for",
                                               "wait_until"};
  return kNames;
}

const std::set<std::string>& stream_types() {
  static const std::set<std::string> kTypes = {"ifstream", "ofstream",
                                               "fstream"};
  return kTypes;
}

// ---------------------------------------------------------------------------
// Analysis state
// ---------------------------------------------------------------------------

struct ResolvedCall {
  std::size_t file = 0;  ///< index into files
  std::size_t fn = 0;    ///< index into that file's functions
  const CallSite* site = nullptr;
  std::vector<std::size_t> targets;  ///< call-graph group ids
};

std::string loc(const std::string& file, int line) {
  return file + ":" + std::to_string(line);
}

struct LockEdge {
  std::vector<std::string> witness;
  std::string file;
  int line = 0;  ///< the holding acquisition — where the waiver goes
};

class CrossFileAnalysis {
 public:
  CrossFileAnalysis(const std::vector<FileModel>& files,
                    const LayerSpec* spec)
      : files_(files), spec_(spec), graph_(files) {}

  std::vector<Finding> run() {
    resolve_all_calls();
    seed_direct_facts();
    propagate();
    if (spec_ != nullptr) rule_r8();
    rule_r9_r10();
    rule_r11();
    return std::move(findings_);
  }

 private:
  bool waived(const FileModel& fm, int line, const std::string& kind) const {
    return waiver_at(fm.comment_by_line, line, kind);
  }

  // --- call resolution & fixpoints -------------------------------------

  void resolve_all_calls() {
    const std::size_t n = graph_.groups().size();
    calls_by_group_.resize(n);
    acq_.resize(n);
    blocks_.resize(n);
    for (const FunctionGroup& group : graph_.groups()) {
      (void)group;
    }
    for (std::size_t gi = 0; gi < n; ++gi) {
      for (const auto& [fi, di] : graph_.groups()[gi].defs) {
        const FunctionDef& def = files_[fi].functions[di];
        for (const CallSite& cs : def.calls) {
          ResolvedCall rc;
          rc.file = fi;
          rc.fn = di;
          rc.site = &cs;
          rc.targets = graph_.resolve(def, cs);
          calls_by_group_[gi].push_back(std::move(rc));
        }
      }
    }
  }

  void seed_direct_facts() {
    for (std::size_t gi = 0; gi < graph_.groups().size(); ++gi) {
      const FunctionGroup& group = graph_.groups()[gi];
      for (const auto& [fi, di] : group.defs) {
        const FunctionDef& def = files_[fi].functions[di];
        for (const GuardRegion& region : def.guards) {
          for (const std::string& m : region.mutexes) {
            if (acq_[gi].count(m) != 0) continue;
            acq_[gi][m] = {loc(def.file, region.line) + ": '" +
                           group.qualified + "' acquires '" + m + "'"};
          }
        }
        if (blocks_[gi].empty()) {
          seed_direct_blocking(gi, fi, def);
        }
      }
    }
  }

  /// A function blocks when its own body performs a blocking operation —
  /// under a lock or not; what matters to callers is that control may
  /// stall inside it while *they* hold a lock.
  void seed_direct_blocking(std::size_t gi, std::size_t fi,
                            const FunctionDef& def) {
    const std::vector<Token>& toks = files_[fi].lex.tokens;
    for (const CallSite& cs : def.calls) {
      const auto it = blocking_calls().find(cs.name);
      if (it != blocking_calls().end()) {
        blocks_[gi] = {loc(def.file, cs.line) + ": '" + cs.name + "' (" +
                       it->second + ") in '" + def.qualified + "'"};
        return;
      }
      if (cv_wait_names().count(cs.name) != 0 &&
          cs.qual == CallQual::kMember) {
        blocks_[gi] = {loc(def.file, cs.line) + ": '" + cs.qualifier + "." +
                       cs.name + "' (condition wait) in '" + def.qualified +
                       "'"};
        return;
      }
    }
    for (std::size_t t = def.body_begin;
         t < def.body_end && t < toks.size(); ++t) {
      if (toks[t].kind == TokKind::kIdentifier &&
          stream_types().count(toks[t].text) != 0) {
        blocks_[gi] = {loc(def.file, toks[t].line) + ": '" + toks[t].text +
                       "' (file I/O) in '" + def.qualified + "'"};
        return;
      }
    }
  }

  void propagate() {
    bool changed = true;
    while (changed) {
      changed = false;
      for (std::size_t gi = 0; gi < calls_by_group_.size(); ++gi) {
        for (const ResolvedCall& rc : calls_by_group_[gi]) {
          const FunctionDef& def = files_[rc.file].functions[rc.fn];
          for (const std::size_t h : rc.targets) {
            const std::string step =
                loc(def.file, rc.site->line) + ": '" + def.qualified +
                "' calls '" + graph_.groups()[h].qualified + "'";
            for (const auto& [m, w] : acq_[h]) {
              if (acq_[gi].count(m) != 0) continue;
              std::vector<std::string> chain = {step};
              chain.insert(chain.end(), w.begin(), w.end());
              acq_[gi].emplace(m, std::move(chain));
              changed = true;
            }
            if (!blocks_[h].empty() && blocks_[gi].empty()) {
              std::vector<std::string> chain = {step};
              chain.insert(chain.end(), blocks_[h].begin(),
                           blocks_[h].end());
              blocks_[gi] = std::move(chain);
              changed = true;
            }
          }
        }
      }
    }
  }

  // --- R8: include-graph layering --------------------------------------

  void rule_r8() {
    for (const Finding& f : spec_->errors) findings_.push_back(f);
    for (const FileModel& fm : files_) {
      if (fm.module.empty() || spec_->closure.count(fm.module) == 0) {
        continue;  // not part of the declared DAG (tools/, tests/)
      }
      const std::set<std::string>& allowed = spec_->closure.at(fm.module);
      for (const Include& inc : fm.lex.includes) {
        const std::size_t slash = inc.target.find('/');
        if (slash == std::string::npos) continue;  // sibling / system
        const std::string target = inc.target.substr(0, slash);
        if (spec_->closure.count(target) == 0) continue;  // not a module
        if (allowed.count(target) != 0) continue;
        if (spec_->waived.count({fm.module, target}) != 0) continue;
        if (waived(fm, inc.line, "layer")) continue;
        findings_.push_back(
            {fm.lex.path, inc.line, "R8-layering",
             "include edge '" + fm.module + "' -> '" + target +
                 "' violates the layer DAG (" + spec_->path +
                 "); depend downward only, add a spec `waive " + fm.module +
                 " -> " + target +
                 " <reason>` line, or waive the include with "
                 "// LINT:layer(why)"});
      }
    }
  }

  // --- R9 + R10 over guard regions -------------------------------------

  struct ActiveAt {
    const GuardRegion* region;
    bool covers(std::size_t tok) const {
      for (const GuardSegment& s : region->segments) {
        if (tok >= s.begin && tok < s.end) return true;
      }
      return false;
    }
  };

  void rule_r9_r10() {
    // Edges of the acquisition-order graph: from -> to -> first witness.
    std::map<std::string, std::map<std::string, LockEdge>> edges;

    for (std::size_t fi = 0; fi < files_.size(); ++fi) {
      const FileModel& fm = files_[fi];
      for (std::size_t di = 0; di < fm.functions.size(); ++di) {
        const FunctionDef& def = fm.functions[di];
        if (def.guards.empty()) continue;
        scan_function_guards(fm, def, edges);
      }
    }
    report_cycles(edges);
  }

  void scan_function_guards(
      const FileModel& fm, const FunctionDef& def,
      std::map<std::string, std::map<std::string, LockEdge>>& edges) {
    const std::vector<Token>& toks = fm.lex.tokens;

    // Map call-site token -> call, for in-segment lookups.
    std::map<std::size_t, const CallSite*> call_at;
    for (const CallSite& cs : def.calls) call_at[cs.token] = &cs;

    for (const GuardRegion& outer : def.guards) {
      const bool hold_waived =
          waived(fm, outer.line, "lock-order");
      // Nested acquisitions inside this region -> direct order edges.
      for (const GuardRegion& inner : def.guards) {
        if (&inner == &outer) continue;
        if (!ActiveAt{&outer}.covers(inner.token)) continue;
        if (hold_waived || waived(fm, inner.line, "lock-order")) continue;
        for (const std::string& a : outer.mutexes) {
          for (const std::string& b : inner.mutexes) {
            if (a == b) continue;
            auto& slot = edges[a];
            if (slot.count(b) != 0) continue;
            slot[b] = {{loc(def.file, outer.line) + ": '" + def.qualified +
                            "' acquires '" + a + "'",
                        loc(def.file, inner.line) + ": '" + def.qualified +
                            "' acquires '" + b + "' while holding '" + a +
                            "'"},
                       def.file,
                       outer.line};
          }
        }
      }

      // Walk the region's token ranges: calls (R9 propagation + R10
      // transitive blocking) and direct blocking operations (R10).
      for (const GuardSegment& seg : outer.segments) {
        for (std::size_t t = seg.begin;
             t < seg.end && t < toks.size(); ++t) {
          const Token& tok = toks[t];
          if (tok.kind != TokKind::kIdentifier) continue;

          if (stream_types().count(tok.text) != 0 &&
              !waived(fm, tok.line, "blocking") &&
              !waived(fm, outer.line, "blocking")) {
            findings_.push_back(
                {def.file, tok.line, "R10-blocking-under-lock",
                 "'" + tok.text + "' (file I/O) while holding '" +
                     outer.mutexes.front() + "' (acquired " +
                     loc(def.file, outer.line) +
                     "); do the I/O outside the lock or waive with "
                     "// LINT:blocking(why)"});
            continue;
          }

          const auto ca = call_at.find(t);
          if (ca == call_at.end()) continue;
          const CallSite& cs = *ca->second;
          handle_call_under_guard(fm, def, outer, cs, edges);
        }
      }
    }
  }

  void handle_call_under_guard(
      const FileModel& fm, const FunctionDef& def, const GuardRegion& outer,
      const CallSite& cs,
      std::map<std::string, std::map<std::string, LockEdge>>& edges) {
    const std::vector<Token>& toks = fm.lex.tokens;

    // Condition-variable waits: waiting on the guard's *own* lock is the
    // cv protocol; waiting while any other guard is live is a stall with
    // a lock held.
    if (cv_wait_names().count(cs.name) != 0 && cs.qual == CallQual::kMember) {
      std::string arg;
      if (cs.token + 2 < toks.size() &&
          toks[cs.token + 2].kind == TokKind::kIdentifier) {
        arg = toks[cs.token + 2].text;
      }
      if (outer.var != arg && !waived(fm, cs.line, "blocking") &&
          !waived(fm, outer.line, "blocking")) {
        findings_.push_back(
            {def.file, cs.line, "R10-blocking-under-lock",
             "'" + cs.qualifier + "." + cs.name +
                 "(...)' waits while holding '" + outer.mutexes.front() +
                 "' (acquired " + loc(def.file, outer.line) +
                 "), which is not the wait's own lock; drop it first or "
                 "waive with // LINT:blocking(why)"});
      }
      return;
    }

    const auto blk = blocking_calls().find(cs.name);
    if (blk != blocking_calls().end()) {
      if (!waived(fm, cs.line, "blocking") &&
          !waived(fm, outer.line, "blocking")) {
        findings_.push_back(
            {def.file, cs.line, "R10-blocking-under-lock",
             "'" + cs.name + "()' (" + blk->second + ") while holding '" +
                 outer.mutexes.front() + "' (acquired " +
                 loc(def.file, outer.line) +
                 "); move it outside the lock (the serve flusher's "
                 "unlock/relock split is the sanctioned idiom) or waive "
                 "with // LINT:blocking(why)"});
      }
      return;  // the direct finding covers the transitive one
    }

    const std::vector<std::size_t> targets = graph_.resolve(def, cs);
    if (targets.empty()) return;

    const bool order_waived = waived(fm, outer.line, "lock-order") ||
                              waived(fm, cs.line, "lock-order");
    bool blocking_reported = false;
    for (const std::size_t h : targets) {
      // R9: callee (transitively) acquires other mutexes while ours held.
      if (!order_waived) {
        for (const auto& [m, w] : acq_[h]) {
          for (const std::string& a : outer.mutexes) {
            if (a == m) continue;
            auto& slot = edges[a];
            if (slot.count(m) != 0) continue;
            LockEdge edge;
            edge.file = def.file;
            edge.line = outer.line;
            edge.witness.push_back(loc(def.file, outer.line) + ": '" +
                                   def.qualified + "' acquires '" + a + "'");
            edge.witness.push_back(loc(def.file, cs.line) + ": '" +
                                   def.qualified + "' calls '" +
                                   graph_.groups()[h].qualified +
                                   "' while holding '" + a + "'");
            edge.witness.insert(edge.witness.end(), w.begin(), w.end());
            slot[m] = std::move(edge);
          }
        }
      }
      // R10 transitive: the callee may block.
      if (!blocking_reported && !blocks_[h].empty() &&
          !waived(fm, cs.line, "blocking") &&
          !waived(fm, outer.line, "blocking")) {
        std::string chain;
        for (const std::string& step : blocks_[h]) {
          if (!chain.empty()) chain += "; ";
          chain += step;
        }
        findings_.push_back(
            {def.file, cs.line, "R10-blocking-under-lock",
             "call to '" + graph_.groups()[h].qualified +
                 "' may block while holding '" + outer.mutexes.front() +
                 "' (acquired " + loc(def.file, outer.line) + "); via: " +
                 chain + "; restructure or waive with "
                 "// LINT:blocking(why)"});
        blocking_reported = true;
      }
    }
  }

  void report_cycles(
      const std::map<std::string, std::map<std::string, LockEdge>>& edges) {
    std::set<std::string> reported;
    for (const auto& [from, tos] : edges) {
      for (const auto& [to, edge] : tos) {
        // Shortest path back: to -> ... -> from over the edge map.
        const std::vector<std::string> back = shortest_path(edges, to, from);
        if (back.empty()) continue;
        // Cycle nodes: from -> to (-> ... -> from).
        std::vector<std::string> cycle = {from};
        cycle.insert(cycle.end(), back.begin(), back.end() - 1);
        // Normalize rotation so each cycle is reported exactly once.
        const std::size_t min_at = std::distance(
            cycle.begin(), std::min_element(cycle.begin(), cycle.end()));
        std::rotate(cycle.begin(), cycle.begin() + min_at, cycle.end());
        std::string key;
        for (const std::string& n : cycle) key += n + "|";
        if (!reported.insert(key).second) continue;

        std::string names;
        for (const std::string& n : cycle) names += "'" + n + "' -> ";
        names += "'" + cycle.front() + "'";
        std::string witness;
        for (std::size_t i = 0; i < cycle.size(); ++i) {
          const std::string& a = cycle[i];
          const std::string& b = cycle[(i + 1) % cycle.size()];
          const LockEdge& e = edges.at(a).at(b);
          for (const std::string& step : e.witness) {
            if (!witness.empty()) witness += "; ";
            witness += step;
          }
        }
        const LockEdge& anchor = edges.at(cycle.front()).at(cycle[1]);
        findings_.push_back(
            {anchor.file, anchor.line, "R9-lock-order",
             "lock-order cycle " + names +
                 " can deadlock; witness: " + witness +
                 "; fix the acquisition order or waive one edge with "
                 "// LINT:lock-order(why) on its holding acquisition"});
      }
    }
  }

  static std::vector<std::string> shortest_path(
      const std::map<std::string, std::map<std::string, LockEdge>>& edges,
      const std::string& from, const std::string& to) {
    std::map<std::string, std::string> parent;
    std::deque<std::string> queue = {from};
    parent[from] = from;
    while (!queue.empty()) {
      const std::string node = queue.front();
      queue.pop_front();
      if (node == to) {
        std::vector<std::string> path = {node};
        std::string cur = node;
        while (parent[cur] != cur) {
          cur = parent[cur];
          path.push_back(cur);
        }
        std::reverse(path.begin(), path.end());
        return path;  // from ... to
      }
      const auto it = edges.find(node);
      if (it == edges.end()) continue;
      for (const auto& [next, edge] : it->second) {
        (void)edge;
        if (parent.count(next) != 0) continue;
        parent[next] = node;
        queue.push_back(next);
      }
    }
    return {};
  }

  // --- R11: determinism audit ------------------------------------------

  static bool in_deterministic_module(const FileModel& fm) {
    return fm.module == "tensor" || fm.module == "gnn" ||
           fm.module == "optim" || fm.module == "search";
  }

  void rule_r11() {
    // Clock aliases (`using Clock = std::chrono::steady_clock;`) bind
    // globally: population.h's alias is what parallel_tempering.cpp reads.
    std::set<std::string> clocks = {"steady_clock", "system_clock",
                                    "high_resolution_clock"};
    for (const FileModel& fm : files_) {
      const std::vector<Token>& toks = fm.lex.tokens;
      for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
        if (toks[i].text != "using" ||
            toks[i + 1].kind != TokKind::kIdentifier ||
            toks[i + 2].text != "=") {
          continue;
        }
        for (std::size_t j = i + 3; j < toks.size(); ++j) {
          if (toks[j].text == ";") break;
          if (clocks.count(toks[j].text) != 0) {
            clocks.insert(toks[i + 1].text);
            break;
          }
        }
      }
    }

    // unordered_{map,set} declarations bind per dir/stem, like GUARDED_BY:
    // a header's members govern its .cpp.
    std::map<std::string, std::set<std::string>> unordered_by_stem;
    for (const FileModel& fm : files_) {
      if (fm.unordered_decls.empty()) continue;
      unordered_by_stem[dir_stem(fm.lex.path)].insert(
          fm.unordered_decls.begin(), fm.unordered_decls.end());
    }

    for (const FileModel& fm : files_) {
      if (!in_deterministic_module(fm)) continue;
      const std::vector<Token>& toks = fm.lex.tokens;
      const auto uit = unordered_by_stem.find(dir_stem(fm.lex.path));
      const std::set<std::string>* unordered =
          uit == unordered_by_stem.end() ? nullptr : &uit->second;

      for (std::size_t i = 0; i < toks.size(); ++i) {
        const Token& t = toks[i];
        if (t.kind != TokKind::kIdentifier) continue;
        const std::string prev = i > 0 ? toks[i - 1].text : std::string();
        const std::string next =
            i + 1 < toks.size() ? toks[i + 1].text : std::string();

        if ((t.text == "rand" || t.text == "srand") && next == "(" &&
            prev != "." && prev != "->") {
          if (!waived(fm, t.line, "nondet")) {
            findings_.push_back(
                {fm.lex.path, t.line, "R11-determinism",
                 "'" + t.text +
                     "()' breaks the fixed-seed replay contract; draw from "
                     "a seeded support/rng.h stream or waive with "
                     "// LINT:nondet(why)"});
          }
          continue;
        }
        if (t.text == "random_device") {
          if (!waived(fm, t.line, "nondet")) {
            findings_.push_back(
                {fm.lex.path, t.line, "R11-determinism",
                 "'std::random_device' is entropy, not a seed; "
                 "deterministic modules take seeds from callers or waive "
                 "with // LINT:nondet(why)"});
          }
          continue;
        }
        if (t.text == "now" && prev == "::" && i >= 2 &&
            clocks.count(toks[i - 2].text) != 0) {
          if (!waived(fm, t.line, "nondet")) {
            findings_.push_back(
                {fm.lex.path, t.line, "R11-determinism",
                 "'" + toks[i - 2].text +
                     "::now()' reads the wall clock; results that depend "
                     "on it cannot replay bit-for-bit — thread a budget "
                     "through the API or waive with // LINT:nondet(why)"});
          }
          continue;
        }
        if (t.text == "for" && next == "(" && unordered != nullptr) {
          check_unordered_range_for(fm, i, *unordered);
        }
      }
    }
  }

  void check_unordered_range_for(const FileModel& fm, std::size_t i,
                                 const std::set<std::string>& unordered) {
    const std::vector<Token>& toks = fm.lex.tokens;
    int depth = 0;
    std::size_t colon = 0;
    std::size_t j = i + 1;
    for (; j < toks.size(); ++j) {
      const std::string& t = toks[j].text;
      if (t == "(") ++depth;
      if (t == ")" && --depth == 0) break;
      if (depth == 1 && t == ":") {
        colon = j;
        break;
      }
      if (t == ";" && depth == 1) return;  // classic for, not range-for
    }
    if (colon == 0) return;
    for (j = colon + 1; j < toks.size(); ++j) {
      const Token& t = toks[j];
      if (t.text == "(") {
        ++depth;
        continue;
      }
      if (t.text == ")") {
        if (--depth == 0) break;
        continue;
      }
      if (t.kind == TokKind::kIdentifier && unordered.count(t.text) != 0) {
        if (!waived(fm, toks[i].line, "nondet")) {
          findings_.push_back(
              {fm.lex.path, toks[i].line, "R11-determinism",
               "range-for over unordered container '" + t.text +
                   "' feeds hash-order into downstream results; iterate a "
                   "sorted copy, use a std::map, or waive an "
                   "order-insensitive fold with // LINT:nondet(why)"});
        }
        return;
      }
    }
  }

  static std::string dir_stem(const std::string& path) {
    const std::size_t slash = path.find_last_of('/');
    const std::string dir =
        slash == std::string::npos ? "." : path.substr(0, slash);
    const std::string base =
        slash == std::string::npos ? path : path.substr(slash + 1);
    const std::size_t dot = base.find_last_of('.');
    return dir + "/" +
           (dot == std::string::npos ? base : base.substr(0, dot));
  }

  const std::vector<FileModel>& files_;
  const LayerSpec* spec_;
  CallGraph graph_;
  std::vector<std::vector<ResolvedCall>> calls_by_group_;
  /// Per group: mutex key -> witness chain of how the group reaches the
  /// acquisition (possibly through calls).
  std::vector<std::map<std::string, std::vector<std::string>>> acq_;
  /// Per group: non-empty witness chain when the group may block.
  std::vector<std::vector<std::string>> blocks_;
  std::vector<Finding> findings_;
};

}  // namespace

LayerSpec parse_layer_spec(const std::string& path, const std::string& text) {
  LayerSpec spec;
  spec.path = path;
  std::istringstream in(text);
  std::string raw;
  int line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    const std::size_t hash = raw.find('#');
    std::string line = trim(hash == std::string::npos ? raw
                                                      : raw.substr(0, hash));
    if (line.empty()) continue;
    if (line.compare(0, 6, "waive ") == 0) {
      // waive <from> -> <to> <reason...>
      std::istringstream ws(line.substr(6));
      std::string from, arrow, to;
      ws >> from >> arrow >> to;
      std::string reason;
      std::getline(ws, reason);
      reason = trim(reason);
      if (from.empty() || arrow != "->" || to.empty() || reason.empty()) {
        spec.errors.push_back(
            {path, line_no, "R8-layering",
             "malformed waiver; expected `waive <from> -> <to> <reason>` "
             "with a non-empty reason"});
        continue;
      }
      spec.waived[{from, to}] = reason;
      continue;
    }
    const std::size_t colon = line.find(':');
    if (colon == std::string::npos) {
      spec.errors.push_back({path, line_no, "R8-layering",
                             "malformed module line; expected "
                             "`<module>: <dep> <dep> ...`"});
      continue;
    }
    const std::string mod = trim(line.substr(0, colon));
    spec.deps[mod] = split_ws(line.substr(colon + 1));
  }
  // Validate deps and waivers refer to declared modules; build closure.
  for (const auto& [mod, deps] : spec.deps) {
    for (const std::string& dep : deps) {
      if (spec.deps.count(dep) == 0) {
        spec.errors.push_back({path, 0, "R8-layering",
                               "module '" + mod + "' depends on '" + dep +
                                   "', which the spec does not declare"});
      }
    }
  }
  for (const auto& [edge, reason] : spec.waived) {
    (void)reason;
    if (spec.deps.count(edge.first) == 0 ||
        spec.deps.count(edge.second) == 0) {
      spec.errors.push_back({path, 0, "R8-layering",
                             "waiver '" + edge.first + " -> " + edge.second +
                                 "' names an undeclared module"});
    }
  }
  for (const auto& [mod, deps] : spec.deps) {
    (void)deps;
    std::set<std::string> out, pathset;
    if (!close_over(spec, mod, out, pathset)) {
      spec.errors.push_back({path, 0, "R8-layering",
                             "the spec's dependency edges reach a cycle "
                             "through '" + mod + "'; the layer graph must "
                             "be a DAG"});
      out = {mod};
    }
    spec.closure[mod] = std::move(out);
  }
  return spec;
}

std::vector<Finding> run_cross_file_rules(const std::vector<FileModel>& files,
                                          const LayerSpec* spec) {
  return CrossFileAnalysis(files, spec).run();
}

}  // namespace chainnet::lint
