#include "lexer.h"

#include <cctype>
#include <fstream>
#include <sstream>

namespace chainnet::lint {

namespace {

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}
bool is_digit(char c) { return std::isdigit(static_cast<unsigned char>(c)); }

// Multi-character operators, longest first so greedy matching is correct.
constexpr std::string_view kOps3[] = {"...", "->*", "<=>", ">>=", "<<="};
constexpr std::string_view kOps2[] = {
    "::", "->", "<<", ">>", "<=", ">=", "==", "!=", "+=", "-=",
    "*=", "/=", "%=", "&=", "|=", "^=", "&&", "||", "++", "--"};

class Lexer {
 public:
  Lexer(std::string path, std::string_view src)
      : src_(src) {
    out_.path = std::move(path);
  }

  FileLex run() {
    while (i_ < src_.size()) {
      const char c = src_[i_];
      if (c == '\n') {
        ++line_;
        ++i_;
        at_line_start_ = true;
        continue;
      }
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++i_;
        continue;
      }
      if (c == '/' && peek(1) == '/') {
        line_comment();
        continue;
      }
      if (c == '/' && peek(1) == '*') {
        block_comment();
        continue;
      }
      if (c == '#' && at_line_start_) {
        preprocessor_line();
        continue;
      }
      at_line_start_ = false;
      if (c == 'R' && peek(1) == '"') {
        raw_string();
        continue;
      }
      if (c == '"') {
        quoted('"');
        continue;
      }
      if (c == '\'') {
        quoted('\'');
        continue;
      }
      if (is_ident_start(c)) {
        identifier();
        continue;
      }
      if (is_digit(c) || (c == '.' && is_digit(peek(1)))) {
        number();
        continue;
      }
      punct();
    }
    return std::move(out_);
  }

 private:
  char peek(std::size_t ahead) const {
    return i_ + ahead < src_.size() ? src_[i_ + ahead] : '\0';
  }

  void line_comment() {
    const int start = line_;
    i_ += 2;
    std::string text;
    while (i_ < src_.size() && src_[i_] != '\n') text.push_back(src_[i_++]);
    out_.comments.push_back({start, std::move(text)});
  }

  void block_comment() {
    const int start = line_;
    i_ += 2;
    std::string text;
    while (i_ < src_.size() && !(src_[i_] == '*' && peek(1) == '/')) {
      if (src_[i_] == '\n') ++line_;
      text.push_back(src_[i_++]);
    }
    if (i_ < src_.size()) i_ += 2;  // closing */
    out_.comments.push_back({start, std::move(text)});
  }

  /// Consumes a whole preprocessor directive (honoring backslash
  /// continuations), recording #include targets and emitting no tokens, so
  /// macro bodies and conditional-compilation lines cannot unbalance the
  /// rules layer's scope tracking.
  void preprocessor_line() {
    const int start = line_;
    std::string directive;
    while (i_ < src_.size()) {
      const char c = src_[i_];
      if (c == '\\' && peek(1) == '\n') {
        i_ += 2;
        ++line_;
        directive.push_back(' ');
        continue;
      }
      if (c == '/' && peek(1) == '/') {  // trailing comment on the directive
        line_comment();
        continue;
      }
      if (c == '/' && peek(1) == '*') {
        block_comment();
        continue;
      }
      if (c == '\n') break;  // the newline itself is handled by run()
      directive.push_back(c);
      ++i_;
    }
    // Parse `# include <target>` / `# include "target"`.
    std::size_t p = 1;  // past '#'
    while (p < directive.size() &&
           std::isspace(static_cast<unsigned char>(directive[p]))) {
      ++p;
    }
    if (directive.compare(p, 7, "include") == 0) {
      p += 7;
      while (p < directive.size() &&
             std::isspace(static_cast<unsigned char>(directive[p]))) {
        ++p;
      }
      if (p < directive.size() &&
          (directive[p] == '"' || directive[p] == '<')) {
        const char close = directive[p] == '"' ? '"' : '>';
        const std::size_t end = directive.find(close, p + 1);
        if (end != std::string::npos) {
          out_.includes.push_back(
              {start, directive.substr(p + 1, end - p - 1)});
        }
      }
    }
  }

  void raw_string() {
    // R"delim( ... )delim"
    i_ += 2;  // R"
    std::string delim;
    while (i_ < src_.size() && src_[i_] != '(') delim.push_back(src_[i_++]);
    if (i_ < src_.size()) ++i_;  // (
    const std::string close = ")" + delim + "\"";
    while (i_ < src_.size() && src_.compare(i_, close.size(), close) != 0) {
      if (src_[i_] == '\n') ++line_;
      ++i_;
    }
    if (i_ < src_.size()) i_ += close.size();
  }

  void quoted(char quote) {
    ++i_;
    while (i_ < src_.size() && src_[i_] != quote) {
      if (src_[i_] == '\\') {
        ++i_;
        if (i_ >= src_.size()) break;
      }
      if (src_[i_] == '\n') ++line_;  // tolerate unterminated literals
      ++i_;
    }
    if (i_ < src_.size()) ++i_;
  }

  void identifier() {
    std::string text;
    while (i_ < src_.size() && is_ident_char(src_[i_])) {
      text.push_back(src_[i_++]);
    }
    // Encoding prefixes glue onto the literal that follows: `u8R"(..)"` is
    // one raw string, not identifier `u8R` plus a quoted string whose body
    // would leak tokens; `L"w"` / `u8'c'` are literals, not identifiers.
    if (i_ < src_.size() && src_[i_] == '"' &&
        (text == "u8R" || text == "uR" || text == "UR" || text == "LR")) {
      --i_;  // raw_string() expects to sit on the char before the quote
      raw_string();
      return;
    }
    if ((i_ < src_.size() && (src_[i_] == '"' || src_[i_] == '\'')) &&
        (text == "u8" || text == "u" || text == "U" || text == "L")) {
      quoted(src_[i_]);
      return;
    }
    out_.tokens.push_back({TokKind::kIdentifier, std::move(text), line_});
  }

  void number() {
    // pp-number: digits, idents, quotes-as-separators, and signs directly
    // after an exponent letter. Precision does not matter to any rule; the
    // goal is only to not split `1e-6` into tokens that confuse patterns.
    std::string text;
    while (i_ < src_.size()) {
      const char c = src_[i_];
      if (is_ident_char(c) || c == '.' || c == '\'') {
        text.push_back(c);
        ++i_;
        continue;
      }
      if ((c == '+' || c == '-') && !text.empty()) {
        const char prev = text.back();
        if (prev == 'e' || prev == 'E' || prev == 'p' || prev == 'P') {
          text.push_back(c);
          ++i_;
          continue;
        }
      }
      break;
    }
    out_.tokens.push_back({TokKind::kNumber, std::move(text), line_});
  }

  void punct() {
    for (const auto op : kOps3) {
      if (src_.compare(i_, op.size(), op) == 0) {
        out_.tokens.push_back({TokKind::kPunct, std::string(op), line_});
        i_ += op.size();
        return;
      }
    }
    for (const auto op : kOps2) {
      if (src_.compare(i_, op.size(), op) == 0) {
        out_.tokens.push_back({TokKind::kPunct, std::string(op), line_});
        i_ += op.size();
        return;
      }
    }
    out_.tokens.push_back({TokKind::kPunct, std::string(1, src_[i_]), line_});
    ++i_;
  }

  std::string_view src_;
  FileLex out_;
  std::size_t i_ = 0;
  int line_ = 1;
  bool at_line_start_ = true;
};

}  // namespace

FileLex lex_source(std::string path, std::string_view source) {
  return Lexer(std::move(path), source).run();
}

bool lex_file(const std::string& path, FileLex& out, std::string& error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    error = "cannot open " + path;
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string source = buffer.str();
  out = lex_source(path, source);
  return true;
}

}  // namespace chainnet::lint
