// Cross-file rule engine of chainnet_lint v2 — phase 2 of the analyzer.
// Consumes the per-TU program models (model.h) and the repo-wide call
// graph (callgraph.h) to enforce the contracts the per-scope engine
// (rules.h) cannot see:
//
//   R8-layering      every `#include` between src/ modules must respect
//                    the layer DAG committed in tools/lint/layers.spec
//                    (`support → tensor → {edge, queueing} → gnn → core →
//                    {runtime, optim} → {search, serve}`). A back- or
//                    cross-edge is an error unless the spec carries a
//                    `waive from -> to <reason>` line or the include line
//                    carries // LINT:layer(reason).
//   R9-lock-order    held-guard sets propagate through the call graph into
//                    a global mutex acquisition-order graph; any cycle is
//                    a potential deadlock, reported with the full witness
//                    path (file:line chain of acquisitions and calls).
//                    // LINT:lock-order(reason) on the holding acquisition
//                    or the offending call waives one edge.
//   R10-blocking     no socket I/O, file I/O, `evaluate`/`evaluate_batch`,
//                    thread joins, sleeps, or condition-variable waits on
//                    *another* lock while a guard is held — directly or
//                    through any call chain. The audited manual
//                    unlock/relock idiom (serve flusher) is understood as
//                    a region split, not waived away.
//                    // LINT:blocking(reason) waives one site.
//   R11-determinism  src/{tensor,gnn,optim,search} are the bit-for-bit
//                    replay / fixed-seed modules: `rand`, `srand`,
//                    `std::random_device`, `chrono::*_clock::now`, and
//                    range-for iteration over unordered_{map,set} are
//                    findings. // LINT:nondet(reason) waives (e.g. a
//                    wall-clock *budget* that only truncates, never
//                    reorders).
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "callgraph.h"
#include "model.h"
#include "rules.h"

namespace chainnet::lint {

/// The committed module DAG. Parse errors surface as findings against the
/// spec file itself, so a malformed spec fails the gate rather than
/// silently disabling R8.
struct LayerSpec {
  std::string path;
  /// module -> modules it may depend on directly.
  std::map<std::string, std::vector<std::string>> deps;
  /// Reflexive-transitive closure of `deps`.
  std::map<std::string, std::set<std::string>> closure;
  /// Waived back-edges, (from, to) -> reason (must be non-empty).
  std::map<std::pair<std::string, std::string>, std::string> waived;
  std::vector<Finding> errors;
};

LayerSpec parse_layer_spec(const std::string& path, const std::string& text);

/// Runs R8-R11 over every model. `spec` may be null (R8 is skipped, the
/// other families still run). Findings are neither sorted nor deduplicated
/// — the caller merges them with the per-file engine's output.
std::vector<Finding> run_cross_file_rules(const std::vector<FileModel>& files,
                                          const LayerSpec* spec);

}  // namespace chainnet::lint
