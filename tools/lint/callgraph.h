// Repo-wide call graph over the per-TU program models (model.h). Nodes are
// *function groups*: every definition sharing one lexically qualified name
// (`serve::Server::submit`) collapses into a single node, which folds
// overload sets and header/TU duplicates together — the right granularity
// for lock-order and blocking analysis, where any overload acquiring a
// mutex taints the name.
//
// Resolution is lexical, in decreasing order of evidence:
//   * qualified calls (`A::B::f(...)`) match groups whose qualified name
//     ends in `A::B::f` at a `::` boundary;
//   * unqualified and `this->` calls inside a method prefer the method's
//     own class, then fall back to free functions of that name;
//   * `obj.f(...)` / `obj->f(...)` calls resolve to *every* class method
//     named `f` — without types this over-approximates, which is the safe
//     direction for deadlock detection (waivers record the exceptions);
//   * anything with no definition in the analyzed tree is unresolved and
//     contributes no edges (std::, libc, and system calls by design).
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "model.h"

namespace chainnet::lint {

/// One call-graph node: all definitions of one qualified name.
struct FunctionGroup {
  std::string qualified;
  std::string name;    ///< simple name (shared by every def in the group)
  std::string owner;   ///< "" for free functions
  /// (file index into CallGraph::files, function index into that model).
  std::vector<std::pair<std::size_t, std::size_t>> defs;
};

class CallGraph {
 public:
  /// Builds groups and indexes from every file model. The models must
  /// outlive the graph (it stores pointers).
  explicit CallGraph(const std::vector<FileModel>& files);

  const std::vector<FileModel>& files() const { return *files_; }
  const std::vector<FunctionGroup>& groups() const { return groups_; }

  /// Group id for an exact qualified name, or npos.
  std::size_t group_of(const std::string& qualified) const;

  /// Resolves one call site made from inside `caller`. Returns sorted,
  /// deduplicated group ids; empty when unresolved.
  std::vector<std::size_t> resolve(const FunctionDef& caller,
                                   const CallSite& call) const;

  static constexpr std::size_t npos = std::size_t(-1);

 private:
  const std::vector<FileModel>* files_;
  /// Union of every file's atomic_decls: receivers whose member calls are
  /// std atomic protocol, never user methods.
  std::set<std::string> atomic_names_;
  std::vector<FunctionGroup> groups_;
  std::map<std::string, std::size_t> by_qualified_;
  std::map<std::string, std::vector<std::size_t>> by_name_;
};

}  // namespace chainnet::lint
