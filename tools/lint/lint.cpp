// chainnet_lint — static enforcement of the codebase's concurrency, tape,
// kernel, layering, and determinism contracts (rules.h and xrules.h list
// the rules, DESIGN.md §11 the rationale). No external toolchain: the tool
// lexes C++ itself, so it runs before any build exists and is the tier-0
// stage of scripts/check_all.sh.
//
// The run is two-phase. Phase 1 lexes every file, runs the per-scope rules
// (R1-R7), and builds a per-TU program model (include graph, scoped
// function definitions, lexical call sites, RAII guard regions). Phase 2
// links the models into a repo-wide call graph and runs the cross-file
// rules (R8-R11): include-graph layering against tools/lint/layers.spec,
// interprocedural lock-order cycles with witness paths, blocking
// operations under held guards, and the determinism audit.
//
// Usage: chainnet_lint [--json] [--layers <spec>] <file-or-dir>...
//   Directories are scanned recursively for .h/.hpp/.cpp/.cc/.cxx/.inc.
//   Findings go to stdout as `file:line: rule-id: message`, or as a JSON
//   array of {file, line, rule, message} objects under --json.
//   Without --layers, the spec is discovered by walking up from the first
//   input to the nearest tools/lint/layers.spec; if none exists, R8 is
//   skipped and every other rule still runs.
//   Exit 0: clean. Exit 1: findings. Exit 2: usage or I/O error.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lexer.h"
#include "model.h"
#include "rules.h"
#include "xrules.h"

namespace fs = std::filesystem;

namespace {

bool lintable(const fs::path& path) {
  static const std::vector<std::string> kExts = {".h",  ".hpp", ".cpp",
                                                 ".cc", ".cxx", ".inc"};
  const std::string ext = path.extension().string();
  return std::find(kExts.begin(), kExts.end(), ext) != kExts.end();
}

int usage() {
  std::cerr
      << "usage: chainnet_lint [--json] [--layers <spec>] <file-or-dir>...\n"
      << "rules: R1-lock-discipline R2-guarded-member R3-relaxed-atomic "
         "R4-tape-frame R5-kernel-routing R6-allocation R7-plan-discipline "
         "R8-layering R9-lock-order R10-blocking-under-lock "
         "R11-determinism (see DESIGN.md §11)\n";
  return 2;
}

/// Nearest tools/lint/layers.spec at or above `start`, or "".
std::string discover_spec(const fs::path& start) {
  std::error_code ec;
  fs::path dir = fs::absolute(start, ec);
  if (ec) return "";
  if (!fs::is_directory(dir, ec)) dir = dir.parent_path();
  for (; !dir.empty(); dir = dir.parent_path()) {
    const fs::path candidate = dir / "tools" / "lint" / "layers.spec";
    if (fs::is_regular_file(candidate, ec)) {
      return candidate.generic_string();
    }
    if (dir == dir.root_path()) break;
  }
  return "";
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

void print_findings(const std::vector<chainnet::lint::Finding>& findings,
                    bool json) {
  if (!json) {
    for (const auto& f : findings) {
      std::cout << f.file << ":" << f.line << ": " << f.rule << ": "
                << f.message << "\n";
    }
    return;
  }
  std::cout << "[";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const auto& f = findings[i];
    std::cout << (i == 0 ? "\n" : ",\n")
              << "  {\"file\": \"" << json_escape(f.file)
              << "\", \"line\": " << f.line << ", \"rule\": \""
              << json_escape(f.rule) << "\", \"message\": \""
              << json_escape(f.message) << "\"}";
  }
  std::cout << (findings.empty() ? "]\n" : "\n]\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> inputs;
  std::string layers_path;
  bool json = false;
  bool layers_given = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-h" || arg == "--help") return usage();
    if (arg == "--json") {
      json = true;
      continue;
    }
    if (arg == "--layers") {
      if (i + 1 >= argc) return usage();
      layers_path = argv[++i];
      layers_given = true;
      continue;
    }
    inputs.push_back(arg);
  }
  if (inputs.empty()) return usage();

  std::vector<std::string> paths;
  for (const std::string& input : inputs) {
    std::error_code ec;
    if (fs::is_directory(input, ec)) {
      for (fs::recursive_directory_iterator it(input, ec), end;
           !ec && it != end; it.increment(ec)) {
        if (it->is_regular_file() && lintable(it->path())) {
          paths.push_back(it->path().generic_string());
        }
      }
      if (ec) {
        std::cerr << "chainnet_lint: cannot scan " << input << ": "
                  << ec.message() << "\n";
        return 2;
      }
    } else if (fs::is_regular_file(input, ec)) {
      paths.push_back(fs::path(input).generic_string());
    } else {
      std::cerr << "chainnet_lint: no such file or directory: " << input
                << "\n";
      return 2;
    }
  }
  std::sort(paths.begin(), paths.end());
  paths.erase(std::unique(paths.begin(), paths.end()), paths.end());

  if (!layers_given) layers_path = discover_spec(inputs.front());

  chainnet::lint::LayerSpec spec;
  bool have_spec = false;
  if (!layers_path.empty()) {
    std::ifstream in(layers_path, std::ios::binary);
    if (!in) {
      std::cerr << "chainnet_lint: cannot open layer spec " << layers_path
                << "\n";
      return 2;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    spec = chainnet::lint::parse_layer_spec(
        fs::path(layers_path).generic_string(), buffer.str());
    have_spec = true;
  }

  // Phase 1: lex once per file; feed the per-scope rules and build the
  // program models the cross-file rules link together.
  chainnet::lint::Linter linter;
  std::vector<chainnet::lint::FileModel> models;
  models.reserve(paths.size());
  for (const std::string& path : paths) {
    chainnet::lint::FileLex lex;
    std::string error;
    if (!chainnet::lint::lex_file(path, lex, error)) {
      std::cerr << "chainnet_lint: " << error << "\n";
      return 2;
    }
    models.push_back(chainnet::lint::build_model(lex));
    linter.add_file(std::move(lex));
  }

  // Phase 2: per-scope rules + cross-file rules, merged and ordered.
  std::vector<chainnet::lint::Finding> findings = linter.run();
  std::vector<chainnet::lint::Finding> cross =
      chainnet::lint::run_cross_file_rules(models,
                                           have_spec ? &spec : nullptr);
  findings.insert(findings.end(), cross.begin(), cross.end());
  std::sort(findings.begin(), findings.end());
  findings.erase(std::unique(findings.begin(), findings.end()),
                 findings.end());

  print_findings(findings, json);
  if (!findings.empty()) {
    std::cerr << "chainnet_lint: " << findings.size() << " finding"
              << (findings.size() == 1 ? "" : "s") << " in " << paths.size()
              << " file" << (paths.size() == 1 ? "" : "s") << "\n";
    return 1;
  }
  return 0;
}
