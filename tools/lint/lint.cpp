// chainnet_lint — static enforcement of the codebase's concurrency, tape,
// and kernel contracts (rules.h lists the rules, DESIGN.md §11 the
// rationale). No external toolchain: the tool lexes C++ itself, so it runs
// before any build exists and is the tier-0 stage of scripts/check_all.sh.
//
// Usage: chainnet_lint <file-or-dir>...
//   Directories are scanned recursively for .h/.hpp/.cpp/.cc/.cxx/.inc.
//   Findings go to stdout as `file:line: rule-id: message`.
//   Exit 0: clean. Exit 1: findings. Exit 2: usage or I/O error.
#include <algorithm>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "lexer.h"
#include "rules.h"

namespace fs = std::filesystem;

namespace {

bool lintable(const fs::path& path) {
  static const std::vector<std::string> kExts = {".h",  ".hpp", ".cpp",
                                                 ".cc", ".cxx", ".inc"};
  const std::string ext = path.extension().string();
  return std::find(kExts.begin(), kExts.end(), ext) != kExts.end();
}

int usage() {
  std::cerr << "usage: chainnet_lint <file-or-dir>...\n"
            << "rules: R1-lock-discipline R2-guarded-member "
               "R3-relaxed-atomic R4-tape-frame R5-kernel-routing "
               "R6-allocation R7-plan-discipline (see DESIGN.md §11)\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> inputs;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-h" || arg == "--help") return usage();
    inputs.push_back(arg);
  }
  if (inputs.empty()) return usage();

  std::vector<std::string> paths;
  for (const std::string& input : inputs) {
    std::error_code ec;
    if (fs::is_directory(input, ec)) {
      for (fs::recursive_directory_iterator it(input, ec), end;
           !ec && it != end; it.increment(ec)) {
        if (it->is_regular_file() && lintable(it->path())) {
          paths.push_back(it->path().generic_string());
        }
      }
      if (ec) {
        std::cerr << "chainnet_lint: cannot scan " << input << ": "
                  << ec.message() << "\n";
        return 2;
      }
    } else if (fs::is_regular_file(input, ec)) {
      paths.push_back(fs::path(input).generic_string());
    } else {
      std::cerr << "chainnet_lint: no such file or directory: " << input
                << "\n";
      return 2;
    }
  }
  std::sort(paths.begin(), paths.end());
  paths.erase(std::unique(paths.begin(), paths.end()), paths.end());

  chainnet::lint::Linter linter;
  for (const std::string& path : paths) {
    chainnet::lint::FileLex lex;
    std::string error;
    if (!chainnet::lint::lex_file(path, lex, error)) {
      std::cerr << "chainnet_lint: " << error << "\n";
      return 2;
    }
    linter.add_file(std::move(lex));
  }

  const std::vector<chainnet::lint::Finding> findings = linter.run();
  for (const auto& f : findings) {
    std::cout << f.file << ":" << f.line << ": " << f.rule << ": "
              << f.message << "\n";
  }
  if (!findings.empty()) {
    std::cerr << "chainnet_lint: " << findings.size() << " finding"
              << (findings.size() == 1 ? "" : "s") << " in " << paths.size()
              << " file" << (paths.size() == 1 ? "" : "s") << "\n";
    return 1;
  }
  return 0;
}
