// Lexical front end of chainnet_lint: strips comments and string/char
// literals, tokenizes what remains, and records the stripped comments and
// #include targets on the side. The rule engine (rules.h) works purely on
// this token stream plus the comment map, so every contract it enforces is
// decidable without a compiler — the point of the tool is to run before any
// build exists.
//
// The lexer is deliberately a *lexer*, not a parser: it understands C++
// token boundaries (multi-char operators, raw strings, pp-numbers,
// preprocessor lines) but nothing about declarations. The rules layer
// reconstructs just enough structure (brace scopes, guard constructions,
// member-declaration lines) from token patterns.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace chainnet::lint {

enum class TokKind {
  kIdentifier,  ///< identifiers and keywords (the rules don't distinguish)
  kNumber,      ///< pp-number: 0x1f, 1e-6, 1'000, ...
  kPunct,       ///< operators/punctuation; multi-char ops are one token
};

struct Token {
  TokKind kind = TokKind::kPunct;
  std::string text;
  int line = 0;
};

/// One comment, attributed to the line it starts on, delimiters stripped.
struct Comment {
  int line = 0;
  std::string text;
};

/// An #include directive and the path between its quotes/brackets.
struct Include {
  int line = 0;
  std::string target;
};

struct FileLex {
  std::string path;
  std::vector<Token> tokens;
  std::vector<Comment> comments;
  std::vector<Include> includes;
};

/// Lexes an in-memory buffer. Never throws; unterminated constructs are
/// closed at end of input (a linter must degrade, not die, on weird input).
FileLex lex_source(std::string path, std::string_view source);

/// Reads and lexes a file. Returns false (with *error set) when the file
/// cannot be read.
bool lex_file(const std::string& path, FileLex& out, std::string& error);

}  // namespace chainnet::lint
