#include "callgraph.h"

#include <algorithm>

namespace chainnet::lint {

namespace {

/// True when `qualified` ends with `suffix` at a `::` boundary:
/// "a::b::f" matches suffixes "f", "b::f", "a::b::f" — not "::b::f"-less
/// fragments like "bb::f".
bool suffix_matches(const std::string& qualified, const std::string& suffix) {
  if (qualified == suffix) return true;
  if (qualified.size() <= suffix.size() + 2) return false;
  if (qualified.compare(qualified.size() - suffix.size(), suffix.size(),
                        suffix) != 0) {
    return false;
  }
  const std::size_t at = qualified.size() - suffix.size();
  return qualified.compare(at - 2, 2, "::") == 0;
}

}  // namespace

CallGraph::CallGraph(const std::vector<FileModel>& files) : files_(&files) {
  for (std::size_t fi = 0; fi < files.size(); ++fi) {
    const FileModel& fm = files[fi];
    atomic_names_.insert(fm.atomic_decls.begin(), fm.atomic_decls.end());
    for (std::size_t di = 0; di < fm.functions.size(); ++di) {
      const FunctionDef& def = fm.functions[di];
      auto it = by_qualified_.find(def.qualified);
      if (it == by_qualified_.end()) {
        FunctionGroup group;
        group.qualified = def.qualified;
        group.name = def.name;
        group.owner = def.owner;
        groups_.push_back(std::move(group));
        it = by_qualified_.emplace(def.qualified, groups_.size() - 1).first;
        by_name_[def.name].push_back(it->second);
      }
      groups_[it->second].defs.push_back({fi, di});
    }
  }
}

std::size_t CallGraph::group_of(const std::string& qualified) const {
  const auto it = by_qualified_.find(qualified);
  return it == by_qualified_.end() ? npos : it->second;
}

std::vector<std::size_t> CallGraph::resolve(const FunctionDef& caller,
                                            const CallSite& call) const {
  std::vector<std::size_t> out;
  const auto named = by_name_.find(call.name);
  if (named == by_name_.end()) return out;

  switch (call.qual) {
    case CallQual::kQualified: {
      const std::string suffix = call.qualifier + "::" + call.name;
      for (const std::size_t g : named->second) {
        if (suffix_matches(groups_[g].qualified, suffix)) out.push_back(g);
      }
      break;
    }
    case CallQual::kUnqualified: {
      // Same class wins outright; otherwise free functions by name.
      if (!caller.owner.empty()) {
        const std::size_t own =
            group_of(caller.owner + "::" + call.name);
        if (own != npos) {
          out.push_back(own);
          break;
        }
      }
      for (const std::size_t g : named->second) {
        if (groups_[g].owner.empty()) out.push_back(g);
      }
      break;
    }
    case CallQual::kMember: {
      // A call on an atomic-typed receiver (`done.load(...)`) is the std
      // atomic protocol; resolving it to same-named class methods would
      // manufacture edges (e.g. onto ModelRegistry::load).
      if (atomic_names_.count(call.qualifier) != 0) break;
      if (call.qualifier == "this" && !caller.owner.empty()) {
        const std::size_t own =
            group_of(caller.owner + "::" + call.name);
        if (own != npos) {
          out.push_back(own);
          break;
        }
      }
      // Receiver type unknown: every class's method of that name.
      for (const std::size_t g : named->second) {
        if (!groups_[g].owner.empty() &&
            !groups_[g].name.empty() && groups_[g].name[0] != '<') {
          out.push_back(g);
        }
      }
      break;
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace chainnet::lint
