// Program model of chainnet_lint v2. Phase 1 of the analyzer: from one
// file's token stream (lexer.h) it reconstructs just enough program
// structure for the cross-file rules (xrules.h) to reason *between*
// functions and *between* files — where the per-scope rule engine
// (rules.h) deliberately stops:
//
//   * the scope tree: namespaces, classes, and function definitions, each
//     function carrying its lexically qualified name (`serve::Server::run`)
//     so out-of-line definitions and in-class bodies land on the same node;
//   * call sites inside every function body, classified by how the callee
//     was named (unqualified, `this->`/object member, or `A::B::`-qualified)
//     — the raw material of the repo-wide call graph (callgraph.h);
//   * RAII guard regions: which mutexes a `lock_guard`/`unique_lock`/...
//     holds, over which token range. Regions split at audited manual
//     `.unlock()`/`.lock()` pairs (the serve-flusher idiom) and pause
//     inside lambda bodies, whose code runs on some other thread at some
//     other time — so "held across this call" is an honest claim;
//   * determinism-relevant declarations: names declared as
//     `unordered_map`/`unordered_set`, which R11 forbids iterating in the
//     reproducibility-critical modules.
//
// Like the lexer, the model is built without a compiler: resolution is
// lexical, and the rules that consume it over-approximate (then let the
// audited waiver syntax record the exceptions).
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "lexer.h"

namespace chainnet::lint {

/// How a call site named its callee; drives call-graph resolution.
enum class CallQual {
  kUnqualified,  ///< `f(...)` — same class first, else free functions
  kMember,       ///< `obj.f(...)` / `obj->f(...)` / `this->f(...)`
  kQualified,    ///< `A::B::f(...)` — resolved against the suffix A::B::f
};

struct CallSite {
  std::string name;       ///< final identifier of the callee
  std::string qualifier;  ///< "A::B" for kQualified, receiver name otherwise
  CallQual qual = CallQual::kUnqualified;
  int line = 0;
  std::size_t token = 0;  ///< index of the name token in FileLex::tokens
};

/// A contiguous token range [begin, end) during which a guard is live.
/// One region usually has one segment; audited manual unlock/lock pairs
/// and lambda bodies split or pause it.
struct GuardSegment {
  std::size_t begin = 0;
  std::size_t end = 0;
};

/// One RAII guard construction and the token ranges it covers.
struct GuardRegion {
  /// Qualified mutex keys, e.g. "serve::Server::state_mutex_". Member
  /// chains keep their dotted form ("runtime::EvalCache::shard.mutex").
  std::vector<std::string> mutexes;
  std::string var;   ///< the guard local's name ("" for unnamed forms)
  int line = 0;      ///< acquisition line
  std::size_t token = 0;  ///< token index of the guard-class identifier
  std::vector<GuardSegment> segments;
};

struct FunctionDef {
  std::string qualified;  ///< "ns::Class::name" (lexical scope chain)
  std::string name;       ///< simple name
  std::string owner;      ///< enclosing class, qualified; "" for free fns
  std::string file;
  int line = 0;
  bool is_lambda = false;
  std::size_t body_begin = 0;  ///< token index of the body's '{'
  std::size_t body_end = 0;    ///< token index one past the closing '}'
  std::vector<CallSite> calls;
  std::vector<GuardRegion> guards;
};

struct FileModel {
  FileLex lex;
  /// Module = path component after "src" ("" when not under a src tree).
  std::string module;
  std::map<int, std::string> comment_by_line;
  /// Names declared with an unordered_{map,set} type in this file.
  /// R11 merges these per dir/stem so a header's members bind in its .cpp.
  std::set<std::string> unordered_decls;
  /// Names declared with a std::atomic<...>/atomic_flag type. Member calls
  /// on these receivers (`done.load(...)`) are std atomic protocol, not
  /// user methods — the call graph must not resolve them to same-named
  /// class methods (ModelRegistry::load).
  std::set<std::string> atomic_decls;
  std::vector<FunctionDef> functions;
};

/// True when `comments` carries `// LINT:<kind>(reason)` covering `line`
/// (the line itself or a contiguous comment block ending directly above),
/// with a non-empty reason. Shared by rules.cpp and xrules.cpp so every
/// rule family has identical waiver semantics.
bool waiver_at(const std::map<int, std::string>& comments, int line,
               const std::string& kind);

/// The path component directly after a "src" component, or "".
std::string module_of(const std::string& path);

/// Builds the per-TU model. Never throws; unparseable regions simply
/// contribute no structure (a linter degrades, it does not die).
FileModel build_model(FileLex lex);

}  // namespace chainnet::lint
