// Rule engine of chainnet_lint. Enforces the concurrency / tape / kernel
// contracts the runtime, serving, and inference subsystems were built on
// (DESIGN.md §11 has the full table and the rationale per rule):
//
//   R1-lock-discipline   mutexes are acquired through RAII guards only;
//                        naked .lock()/.unlock() needs // LINT:manual-lock(why)
//   R2-guarded-member    members annotated // GUARDED_BY(mu) may only be
//                        touched in a lexical scope that constructed a guard
//                        on mu; // LINT:unguarded(why) waives (e.g. "caller
//                        holds mu")
//   R3-relaxed-atomic    memory_order_relaxed only in files tagged
//                        // LINT:counters
//   R4-tape-frame        Tape::Frame must bind to a named local (a temporary
//                        releases at the semicolon); new Tape is forbidden
//   R5-kernel-routing    internal kernel symbols and kernels_simd.inc /
//                        kernels_simd_f32.inc / kernels_dispatch.h are
//                        private to src/tensor/
//   R6-allocation        naked new / malloc-family calls are forbidden
//                        outside files tagged // LINT:allocator (the arenas)
//   R7-plan-discipline   the interpreted Algorithm-2 entry points
//                        (forward_values_interpreted and friends) may only
//                        be called from chainnet.{h,cpp} (the reference
//                        executor) and plan_compiler.{h,cpp};
//                        // LINT:interpret(why) waives parity/debug uses
//
// The engine is lexical by design: scopes are brace scopes, "holds the
// mutex" means "a guard naming that mutex was constructed in an enclosing
// scope of the same function body". That is exactly the discipline the
// codebase follows, and anything cleverer needs a compiler.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "lexer.h"

namespace chainnet::lint {

struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;

  bool operator<(const Finding& o) const {
    if (file != o.file) return file < o.file;
    if (line != o.line) return line < o.line;
    if (rule != o.rule) return rule < o.rule;
    return message < o.message;
  }
  bool operator==(const Finding&) const = default;
};

class Linter {
 public:
  /// Pass 1: registers the file — GUARDED_BY annotations, LINT: file tags.
  /// Call for every file before the first check().
  void add_file(FileLex lex);

  /// Pass 2: checks every added file. Findings are sorted and deduplicated.
  std::vector<Finding> run();

 private:
  struct FileInfo {
    FileLex lex;
    bool tag_counters = false;   // LINT:counters
    bool tag_allocator = false;  // LINT:allocator
    bool in_tensor = false;      // a path component is "tensor"
    std::map<int, std::string> comment_by_line;
    std::set<int> annotation_lines;  // lines owning a GUARDED_BY member decl
  };
  struct Annotation {
    std::string member;
    std::string mutex;
  };

  void register_annotations(FileInfo& info);
  void check_file(const FileInfo& info, std::vector<Finding>& out) const;

  /// True when line (or the line above) carries `// LINT:<kind>(reason)`
  /// with a non-empty reason.
  static bool waived(const FileInfo& info, int line, const std::string& kind);

  std::vector<FileInfo> files_;
  /// dir/stem -> annotations; a header's annotations bind in that header
  /// and in its same-stem siblings (widget.h governs widget.cpp).
  std::map<std::string, std::vector<Annotation>> registry_;
};

}  // namespace chainnet::lint
