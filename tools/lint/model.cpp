#include "model.h"

#include <algorithm>

namespace chainnet::lint {

namespace {

const std::set<std::string>& guard_classes() {
  static const std::set<std::string> kGuards = {
      "lock_guard", "unique_lock", "shared_lock", "scoped_lock"};
  return kGuards;
}

/// Keywords that read as `name (` but are not calls.
const std::set<std::string>& non_call_keywords() {
  static const std::set<std::string> kKeywords = {
      "if",       "for",      "while",        "switch",  "catch",
      "return",   "sizeof",   "alignof",      "decltype", "static_assert",
      "assert",   "new",      "delete",       "throw",   "alignas",
      "noexcept", "co_await", "co_return",    "co_yield", "defined",
      "void"};
  return kKeywords;
}

std::string stem_of(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::string base =
      slash == std::string::npos ? path : path.substr(slash + 1);
  const std::size_t dot = base.find_last_of('.');
  return dot == std::string::npos ? base : base.substr(0, dot);
}

struct Scope {
  enum Kind { kNamespace, kClass, kFunction, kBlock, kOther };
  Kind kind = kBlock;
  std::string name;   // namespace/class name; "" when anonymous
  int fn = -1;        // kFunction: index into FileModel::functions
};

/// A live RAII guard while walking a function body.
struct ActiveGuard {
  int region = -1;          // index into the owning FunctionDef::guards
  int fn = -1;              // owning function index
  std::size_t depth = 0;    // scope-stack size at construction
  bool open = false;        // a segment is currently open
  bool manually_unlocked = false;
};

class ModelBuilder {
 public:
  explicit ModelBuilder(FileLex lex) {
    out_.lex = std::move(lex);
    out_.module = module_of(out_.lex.path);
    for (const Comment& c : out_.lex.comments) {
      auto& slot = out_.comment_by_line[c.line];
      if (!slot.empty()) slot += ' ';
      slot += c.text;
    }
  }

  FileModel run() {
    const std::vector<Token>& toks = out_.lex.tokens;
    register_unordered_decls();
    register_atomic_decls();
    std::size_t i = 0;
    while (i < toks.size()) {
      const Token& t = toks[i];
      if (t.kind == TokKind::kPunct) {
        if (t.text == "{") {
          push_brace(i);
          ++i;
          continue;
        }
        if (t.text == "}") {
          pop_brace(i);
          ++i;
          continue;
        }
        if (in_function() && t.text == "[") {
          const std::size_t adv = try_lambda(i);
          if (adv != i) {
            i = adv;  // positioned at the lambda's body '{'
            continue;
          }
        }
        ++i;
        continue;
      }
      if (t.kind != TokKind::kIdentifier) {
        ++i;
        continue;
      }
      if (in_function()) {
        i = function_body_token(i);
        continue;
      }
      // Namespace / class scope.
      if (t.text == "namespace") {
        i = handle_namespace(i);
        continue;
      }
      if ((t.text == "class" || t.text == "struct") && !is_template_param(i) &&
          (i == 0 || toks[i - 1].text != "enum")) {
        i = handle_class(i);
        continue;
      }
      if (t.text == "enum") {
        i = handle_enum(i);
        continue;
      }
      const std::size_t adv = try_function_def(i);
      if (adv != i) {
        i = adv;  // positioned at the body '{'
        continue;
      }
      ++i;
    }
    // Close anything left open (unterminated input must not lose regions).
    while (!scopes_.empty()) pop_brace(toks.size());
    return std::move(out_);
  }

 private:
  const std::vector<Token>& toks() const { return out_.lex.tokens; }

  bool in_function() const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      if (it->kind == Scope::kFunction) return true;
      if (it->kind == Scope::kNamespace || it->kind == Scope::kClass) break;
    }
    return false;
  }

  int current_fn() const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      if (it->kind == Scope::kFunction) return it->fn;
    }
    return -1;
  }

  std::string scope_prefix() const {
    std::string joined;
    for (const Scope& s : scopes_) {
      if ((s.kind != Scope::kNamespace && s.kind != Scope::kClass) ||
          s.name.empty()) {
        continue;
      }
      if (!joined.empty()) joined += "::";
      joined += s.name;
    }
    return joined;
  }

  std::string innermost_class() const {
    std::string joined;
    std::string cls;
    for (const Scope& s : scopes_) {
      if ((s.kind != Scope::kNamespace && s.kind != Scope::kClass) ||
          s.name.empty()) {
        continue;
      }
      if (!joined.empty()) joined += "::";
      joined += s.name;
      if (s.kind == Scope::kClass) cls = joined;
    }
    return cls;
  }

  bool is_template_param(std::size_t i) const {
    if (i == 0) return false;
    const std::string& prev = toks()[i - 1].text;
    return prev == "<" || prev == ",";
  }

  /// Skips a balanced (...) or {...} starting at `open`. Returns the index
  /// one past the matching close (or end of stream).
  std::size_t skip_balanced(std::size_t open) const {
    const std::string& o = toks()[open].text;
    const std::string c = o == "(" ? ")" : (o == "{" ? "}" : "]");
    int depth = 0;
    for (std::size_t j = open; j < toks().size(); ++j) {
      const std::string& t = toks()[j].text;
      if (t == o) ++depth;
      if (t == c && --depth == 0) return j + 1;
    }
    return toks().size();
  }

  std::size_t skip_angles(std::size_t i) const {
    int depth = 0;
    for (; i < toks().size(); ++i) {
      const std::string& t = toks()[i].text;
      if (t == "<") {
        ++depth;
      } else if (t == ">") {
        if (--depth == 0) return i + 1;
      } else if (t == ">>") {
        depth -= 2;
        if (depth <= 0) return i + 1;
      } else if (t == ";" || t == "{" || t == "}") {
        return i;  // not a template-arg list after all
      }
    }
    return i;
  }

  // --- scope machinery --------------------------------------------------

  void push_brace(std::size_t tok) {
    Scope s = pending_;
    pending_ = Scope{};  // default kBlock
    if (s.kind == Scope::kFunction && s.fn >= 0) {
      // Entering a (possibly nested lambda) function body: pause every
      // guard of enclosing functions — their code does not run here.
      pause_guards_of_other_functions(s.fn, tok);
    }
    scopes_.push_back(s);
  }

  void pop_brace(std::size_t tok) {
    if (scopes_.empty()) return;
    const Scope s = scopes_.back();
    // Close guards constructed in this scope.
    while (!active_.empty() && active_.back().depth >= scopes_.size()) {
      close_segment(active_.back(), tok);
      active_.pop_back();
    }
    scopes_.pop_back();
    if (s.kind == Scope::kFunction && s.fn >= 0) {
      if (out_.functions[s.fn].body_end == 0) {
        out_.functions[s.fn].body_end = tok + 1;
      }
      // Resume guards of the function we return to.
      resume_guards_of_current_function(tok + 1);
    }
  }

  void pause_guards_of_other_functions(int fn, std::size_t tok) {
    for (ActiveGuard& g : active_) {
      if (g.fn != fn && g.open) close_segment(g, tok);
    }
  }

  void resume_guards_of_current_function(std::size_t tok) {
    const int fn = current_fn();
    if (fn < 0) return;
    for (ActiveGuard& g : active_) {
      if (g.fn == fn && !g.open && !g.manually_unlocked) open_segment(g, tok);
    }
  }

  void open_segment(ActiveGuard& g, std::size_t tok) {
    out_.functions[g.fn].guards[g.region].segments.push_back({tok, tok});
    g.open = true;
  }

  void close_segment(ActiveGuard& g, std::size_t tok) {
    if (!g.open) return;
    auto& segs = out_.functions[g.fn].guards[g.region].segments;
    segs.back().end = tok;
    if (segs.back().end <= segs.back().begin) segs.pop_back();
    g.open = false;
  }

  // --- namespace / class / enum heads -----------------------------------

  std::size_t handle_namespace(std::size_t i) {
    std::size_t j = i + 1;
    std::string name;
    while (j < toks().size() && toks()[j].kind == TokKind::kIdentifier) {
      if (!name.empty()) name += "::";
      name += toks()[j].text;
      ++j;
      if (j < toks().size() && toks()[j].text == "::") ++j;
    }
    if (j < toks().size() && toks()[j].text == "=") {
      // namespace alias: skip to ';'
      while (j < toks().size() && toks()[j].text != ";") ++j;
      return j + 1;
    }
    if (j < toks().size() && toks()[j].text == "{") {
      pending_ = {Scope::kNamespace, name, -1};
      return j;  // main loop pushes at '{'
    }
    return i + 1;
  }

  std::size_t handle_class(std::size_t i) {
    std::size_t j = i + 1;
    // Skip attributes / alignas(...)
    while (j < toks().size() && toks()[j].text == "alignas") {
      ++j;
      if (j < toks().size() && toks()[j].text == "(") j = skip_balanced(j);
    }
    std::string name;
    if (j < toks().size() && toks()[j].kind == TokKind::kIdentifier) {
      name = toks()[j].text;
      ++j;
      if (j < toks().size() && toks()[j].text == "<") j = skip_angles(j);
    }
    // Scan to '{' (definition) or ';' (forward declaration).
    while (j < toks().size()) {
      const std::string& t = toks()[j].text;
      if (t == "{") {
        pending_ = {Scope::kClass, name, -1};
        return j;
      }
      if (t == ";" || t == "}") return j;
      if (t == "<") {
        j = skip_angles(j);
        continue;
      }
      if (t == "(") {
        j = skip_balanced(j);
        continue;
      }
      ++j;
    }
    return j;
  }

  std::size_t handle_enum(std::size_t i) {
    std::size_t j = i + 1;
    while (j < toks().size()) {
      const std::string& t = toks()[j].text;
      if (t == "{") {
        pending_ = {Scope::kOther, "", -1};
        return j;
      }
      if (t == ";") return j + 1;
      ++j;
    }
    return j;
  }

  // --- function definitions ---------------------------------------------

  /// Attempts to match a function definition whose name chain starts at
  /// `i`. On success records the def, sets pending_, and returns the index
  /// of the body '{'; otherwise returns `i`.
  std::size_t try_function_def(std::size_t i) {
    std::size_t j = i;
    std::string chain;  // explicit qualification before the name
    std::string name;
    bool dtor = i > 0 && toks()[i - 1].text == "~";
    while (j < toks().size() && toks()[j].kind == TokKind::kIdentifier) {
      std::string part = toks()[j].text;
      std::size_t after = j + 1;
      if (after < toks().size() && toks()[after].text == "<") {
        const std::size_t past = skip_angles(after);
        if (past > after + 1) after = past;
      }
      if (after < toks().size() && toks()[after].text == "::") {
        if (!chain.empty()) chain += "::";
        chain += part;
        j = after + 1;
        if (j < toks().size() && toks()[j].text == "~") {
          dtor = true;
          ++j;
        }
        continue;
      }
      name = std::move(part);
      j = after;
      break;
    }
    if (name.empty() || name == "operator") return i;
    if (j >= toks().size() || toks()[j].text != "(") return i;
    const int name_line = toks()[i].line;
    const std::size_t after_params = skip_balanced(j);
    std::size_t m = after_params;
    if (m >= toks().size()) return i;
    if (toks()[m].text == ":") {
      // Constructor initializer list: `: member(init), base{init} {`
      ++m;
      while (m < toks().size()) {
        const std::string& t = toks()[m].text;
        if (t == "{") {
          // Either an init with brace syntax (immediately after a name,
          // handled below) or the body. Reaching a '{' here means body.
          break;
        }
        if (t == ";" || t == "}") return i;
        if (t == "(") {
          m = skip_balanced(m);
          continue;
        }
        if (toks()[m].kind == TokKind::kIdentifier) {
          std::size_t n = m + 1;
          if (n < toks().size() && toks()[n].text == "<") n = skip_angles(n);
          if (n < toks().size() &&
              (toks()[n].text == "(" || toks()[n].text == "{")) {
            m = skip_balanced(n);
            continue;
          }
          m = n;
          continue;
        }
        ++m;
      }
    } else {
      // Suffix: const, noexcept(...), override, final, &, &&, -> type.
      while (m < toks().size()) {
        const Token& t = toks()[m];
        if (t.text == "{") break;
        if (t.text == ";" || t.text == "=" || t.text == "}") return i;
        if (t.text == "(") {
          m = skip_balanced(m);
          continue;
        }
        if (t.text == "<") {
          m = skip_angles(m);
          continue;
        }
        if (t.kind == TokKind::kIdentifier || t.text == "::" ||
            t.text == "->" || t.text == "&" || t.text == "&&" ||
            t.text == "*" || t.text == ",") {
          ++m;
          continue;
        }
        return i;
      }
    }
    if (m >= toks().size() || toks()[m].text != "{") return i;

    FunctionDef def;
    def.name = (dtor ? "~" : "") + name;
    const std::string prefix = scope_prefix();
    std::string qual = prefix;
    if (!chain.empty()) {
      if (!qual.empty()) qual += "::";
      qual += chain;
    }
    def.owner = !chain.empty()
                    ? qual  // out-of-line method: chain names the class
                    : innermost_class();
    def.qualified = qual.empty() ? def.name : qual + "::" + def.name;
    def.file = out_.lex.path;
    def.line = name_line;
    def.body_begin = m;
    out_.functions.push_back(std::move(def));
    pending_ = {Scope::kFunction, "", int(out_.functions.size()) - 1};
    return m;
  }

  /// Lambda introducer inside a function body: `[caps](params) ... {`.
  /// Returns the index of the body '{' (with pending_ set) or `i`.
  std::size_t try_lambda(std::size_t i) {
    if (i > 0) {
      const Token& p = toks()[i - 1];
      if (p.kind != TokKind::kPunct) return i;  // subscript: arr[i]
      if (p.text == ")" || p.text == "]") return i;
    }
    std::size_t m = skip_balanced(i);  // past the capture list
    if (m >= toks().size()) return i;
    if (toks()[m].text == "(") m = skip_balanced(m);
    // Optional specifiers / trailing return.
    while (m < toks().size()) {
      const Token& t = toks()[m];
      if (t.text == "{") break;
      if (t.kind == TokKind::kIdentifier || t.text == "->" ||
          t.text == "::") {
        ++m;
        continue;
      }
      if (t.text == "<") {
        m = skip_angles(m);
        continue;
      }
      if (t.text == "(") {
        m = skip_balanced(m);
        continue;
      }
      return i;  // not a lambda after all
    }
    if (m >= toks().size() || toks()[m].text != "{") return i;
    const int parent = current_fn();
    FunctionDef def;
    def.is_lambda = true;
    def.name = "<lambda>";
    def.owner = parent >= 0 ? out_.functions[parent].owner : "";
    const std::string base =
        parent >= 0 ? out_.functions[parent].qualified : scope_prefix();
    def.qualified = base + "::<lambda:" + std::to_string(toks()[i].line) + ">";
    def.file = out_.lex.path;
    def.line = toks()[i].line;
    def.body_begin = m;
    out_.functions.push_back(std::move(def));
    pending_ = {Scope::kFunction, "", int(out_.functions.size()) - 1};
    return m;
  }

  // --- function-body tokens: guards, unlock/lock splits, call sites -----

  std::size_t function_body_token(std::size_t i) {
    const Token& t = toks()[i];
    const int fn = current_fn();
    if (fn < 0) return i + 1;

    if (guard_classes().count(t.text) != 0) {
      const std::size_t adv = handle_guard(i, fn);
      if (adv != i) return adv;
    }

    const std::string prev = i > 0 ? toks()[i - 1].text : std::string();
    const std::string next =
        i + 1 < toks().size() ? toks()[i + 1].text : std::string();

    // Manual unlock/lock on a tracked guard splits its region (the audited
    // serve-flusher idiom: drop the lock around the blocking batch).
    if ((t.text == "unlock" || t.text == "lock") &&
        (prev == "." || prev == "->") && next == "(" && i >= 2 &&
        toks()[i - 2].kind == TokKind::kIdentifier) {
      const std::string& var = toks()[i - 2].text;
      for (ActiveGuard& g : active_) {
        if (g.fn != fn) continue;
        GuardRegion& region = out_.functions[fn].guards[g.region];
        if (region.var != var) continue;
        if (t.text == "unlock") {
          close_segment(g, i - 2);
          g.manually_unlocked = true;
        } else {
          g.manually_unlocked = false;
          if (!g.open) open_segment(g, skip_balanced(i + 1));
        }
      }
      return skip_balanced(i + 1);
    }

    if (t.kind == TokKind::kIdentifier && next == "(" &&
        non_call_keywords().count(t.text) == 0) {
      record_call(i, fn);
    }
    return i + 1;
  }

  /// Handles a guard-class identifier. Returns the index one past the
  /// construction (or `i` when the pattern is not a tracked construction).
  std::size_t handle_guard(std::size_t i, int fn) {
    std::size_t j = i + 1;
    if (j < toks().size() && toks()[j].text == "<") j = skip_angles(j);
    std::string var;
    std::size_t args = std::string::npos;
    if (j < toks().size() && toks()[j].kind == TokKind::kIdentifier &&
        j + 1 < toks().size() &&
        (toks()[j + 1].text == "(" || toks()[j + 1].text == "{")) {
      var = toks()[j].text;
      args = j + 1;
    } else if (j < toks().size() &&
               (toks()[j].text == "(" || toks()[j].text == "{")) {
      // `auto lk = std::unique_lock<std::mutex>(mu)` binds; temporaries
      // (an R1 finding) hold nothing past the semicolon — skip both ways,
      // but track the bound form, fishing the name from before the '='.
      std::size_t back = i;
      while (back >= 2 && toks()[back - 1].text == "::" &&
             toks()[back - 2].kind == TokKind::kIdentifier) {
        back -= 2;
      }
      if (back >= 2 && toks()[back - 1].text == "=" &&
          toks()[back - 2].kind == TokKind::kIdentifier) {
        var = toks()[back - 2].text;
        args = j;
      } else {
        return skip_balanced(j);  // temporary or parameter: not a region
      }
    } else {
      return i;  // a mention, not a construction (e.g. a type alias)
    }

    std::set<std::string> raw;
    const std::size_t close = collect_args(args, raw);
    if (raw.empty()) return close + 1;  // deferred-lock or default ctor

    GuardRegion region;
    region.var = var;
    region.line = toks()[i].line;
    region.token = i;
    const std::string owner_prefix = mutex_prefix(fn);
    for (const std::string& name : raw) {
      region.mutexes.push_back(owner_prefix + "::" + name);
    }
    std::sort(region.mutexes.begin(), region.mutexes.end());
    out_.functions[fn].guards.push_back(std::move(region));

    ActiveGuard g;
    g.fn = fn;
    g.region = int(out_.functions[fn].guards.size()) - 1;
    g.depth = scopes_.size();
    active_.push_back(g);
    open_segment(active_.back(), close + 1);
    return close + 1;
  }

  /// The qualification prefix for mutex keys acquired inside function
  /// `fn`: the owning class when there is one, else the function's
  /// namespace chain, else the file stem (so free-function locals in two
  /// files cannot alias).
  std::string mutex_prefix(int fn) const {
    const FunctionDef& def = out_.functions[fn];
    if (!def.owner.empty()) return def.owner;
    const std::size_t cut = def.qualified.rfind("::");
    if (cut != std::string::npos && cut > 0) {
      return def.qualified.substr(0, cut);
    }
    return stem_of(def.file);
  }

  /// Collects guard-construction argument names (dot-normalized member
  /// chains; `this->` stripped; std:: droppped — std::adopt_lock and
  /// friends are not mutexes). `open` indexes '(' or '{'; returns the
  /// index of the matching close.
  std::size_t collect_args(std::size_t open, std::set<std::string>& names) {
    const std::string o = toks()[open].text;
    const std::string c = o == "(" ? ")" : "}";
    int depth = 0;
    std::vector<std::string> parts;
    bool is_std = false;
    auto flush = [&]() {
      if (!parts.empty() && !is_std) {
        if (parts.front() == "this") parts.erase(parts.begin());
        if (!parts.empty()) {
          std::string full = parts.front();
          for (std::size_t p = 1; p < parts.size(); ++p) {
            full += "." + parts[p];
          }
          names.insert(full);
        }
      }
      parts.clear();
      is_std = false;
    };
    std::size_t i = open;
    for (; i < toks().size(); ++i) {
      const Token& t = toks()[i];
      if (t.kind == TokKind::kPunct) {
        if (t.text == o || (o == "(" && t.text == "{")) {
          ++depth;
          continue;
        }
        if (t.text == c || (o == "(" && t.text == "}")) {
          if (--depth == 0) break;
          continue;
        }
        if (t.text == "." || t.text == "->") continue;
        if (t.text == "::") {
          if (!parts.empty() && parts.back() == "std") is_std = true;
          continue;
        }
        flush();
        continue;
      }
      if (t.kind == TokKind::kIdentifier) parts.push_back(t.text);
    }
    flush();
    return i;
  }

  void record_call(std::size_t i, int fn) {
    const Token& t = toks()[i];
    CallSite call;
    call.name = t.text;
    call.line = t.line;
    call.token = i;
    const std::string prev = i > 0 ? toks()[i - 1].text : std::string();
    if (prev == "::") {
      call.qual = CallQual::kQualified;
      std::vector<std::string> chain;
      std::size_t p = i;
      while (p >= 2 && toks()[p - 1].text == "::" &&
             toks()[p - 2].kind == TokKind::kIdentifier) {
        chain.push_back(toks()[p - 2].text);
        p -= 2;
      }
      // The chain might itself hang off a member access (`obj.f_->g::h()`
      // does not occur here); keep the plain qualified chain.
      for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
        if (!call.qualifier.empty()) call.qualifier += "::";
        call.qualifier += *it;
      }
    } else if (prev == "." || prev == "->") {
      call.qual = CallQual::kMember;
      if (i >= 2 && toks()[i - 2].kind == TokKind::kIdentifier) {
        call.qualifier = toks()[i - 2].text;
      }
    }
    out_.functions[fn].calls.push_back(std::move(call));
  }

  void register_unordered_decls() {
    const std::vector<Token>& ts = toks();
    for (std::size_t i = 0; i + 1 < ts.size(); ++i) {
      if (ts[i].kind != TokKind::kIdentifier) continue;
      if (ts[i].text != "unordered_map" && ts[i].text != "unordered_set" &&
          ts[i].text != "unordered_multimap" &&
          ts[i].text != "unordered_multiset") {
        continue;
      }
      std::size_t j = i + 1;
      if (ts[j].text == "<") j = skip_angles(j);
      // `unordered_map<K, V> name` — possibly with &, *, const between.
      while (j < ts.size() &&
             (ts[j].text == "&" || ts[j].text == "*" ||
              ts[j].text == "const")) {
        ++j;
      }
      if (j < ts.size() && ts[j].kind == TokKind::kIdentifier) {
        out_.unordered_decls.insert(ts[j].text);
      }
    }
  }

  /// `std::atomic<T> name` / `atomic_flag name` — possibly with &, *,
  /// const between type and name. See FileModel::atomic_decls.
  void register_atomic_decls() {
    const std::vector<Token>& ts = toks();
    for (std::size_t i = 0; i + 1 < ts.size(); ++i) {
      if (ts[i].kind != TokKind::kIdentifier) continue;
      if (ts[i].text != "atomic" && ts[i].text != "atomic_flag") continue;
      std::size_t j = i + 1;
      if (ts[j].text == "<") j = skip_angles(j);
      while (j < ts.size() &&
             (ts[j].text == "&" || ts[j].text == "*" ||
              ts[j].text == "const")) {
        ++j;
      }
      if (j < ts.size() && ts[j].kind == TokKind::kIdentifier) {
        out_.atomic_decls.insert(ts[j].text);
      }
    }
  }

  FileModel out_;
  std::vector<Scope> scopes_;
  Scope pending_;  // classification for the next '{'
  std::vector<ActiveGuard> active_;
};

}  // namespace

bool waiver_at(const std::map<int, std::string>& comments, int line,
               const std::string& kind) {
  std::vector<const std::string*> parts;
  if (const auto it = comments.find(line); it != comments.end()) {
    parts.push_back(&it->second);
  }
  for (int l = line - 1; l > 0; --l) {
    const auto it = comments.find(l);
    if (it == comments.end()) break;
    parts.push_back(&it->second);
  }
  std::string joined;
  for (auto rit = parts.rbegin(); rit != parts.rend(); ++rit) {
    joined += **rit;
    joined += ' ';
  }
  const std::string needle = "LINT:" + kind + "(";
  const std::size_t at = joined.find(needle);
  if (at == std::string::npos) return false;
  const std::size_t close = joined.find(')', at + needle.size());
  return close != std::string::npos && close > at + needle.size();
}

std::string module_of(const std::string& path) {
  std::size_t start = 0;
  std::string prev;
  while (start <= path.size()) {
    const std::size_t slash = path.find('/', start);
    const std::size_t end = slash == std::string::npos ? path.size() : slash;
    const std::string comp = path.substr(start, end - start);
    if (prev == "src" && !comp.empty() && slash != std::string::npos) {
      return comp;  // a directory component right under src/
    }
    prev = comp;
    if (slash == std::string::npos) break;
    start = slash + 1;
  }
  return "";
}

FileModel build_model(FileLex lex) {
  return ModelBuilder(std::move(lex)).run();
}

}  // namespace chainnet::lint
